"""Build the remaining sim-13b artifacts (dt drafts + main AASD head)."""
import time

from repro.obs.logsetup import configure_logging, get_logger
from repro.zoo import ModelZoo, PROFILE_FULL

configure_logging()
logger = get_logger("repro.scripts.finish_13b")

zoo = ModelZoo(PROFILE_FULL)
t0 = time.time()
zoo.text_draft("dt", "sim-13b")
logger.info("dt-llama-13b done %.0fs", time.time() - t0)
zoo.llava_draft("dt", "sim-13b")
logger.info("dt-llava-13b done %.0fs", time.time() - t0)
zoo.aasd_head("sim-13b")
logger.info("aasd-13b done %.0fs", time.time() - t0)
