"""Build the remaining sim-13b artifacts (dt drafts + main AASD head)."""
import time
from repro.zoo import ModelZoo, PROFILE_FULL

zoo = ModelZoo(PROFILE_FULL)
t0 = time.time()
zoo.text_draft("dt", "sim-13b")
print(f"dt-llama-13b done {time.time()-t0:.0f}s", flush=True)
zoo.llava_draft("dt", "sim-13b")
print(f"dt-llava-13b done {time.time()-t0:.0f}s", flush=True)
zoo.aasd_head("sim-13b")
print(f"aasd-13b done {time.time()-t0:.0f}s", flush=True)
