"""Perf-regression gate CLI over :mod:`repro.obs.perfgate`.

Check the current ``results/`` files against the checked-in baseline::

    python scripts/perf_gate.py check [--report-only] [--json]

Bless the current numbers as the new baseline (requires a real
justification — empty or TODO text is rejected, and the update history
accumulates inside the baseline file)::

    python scripts/perf_gate.py update --justification \\
        "packed ragged-batch verify cut sim_ms 18%; see PR #12 benchmarks"

Exit codes for ``check``: 0 = no gated metric regressed beyond its
tolerance, 1 = regression or missing results file.  ``--report-only``
always exits 0 (the CI perf job runs this mode while the gate bakes).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.errors import ConfigError
from repro.eval.reporting import run_metadata
from repro.obs.logsetup import configure_logging, get_logger
from repro.obs.perfgate import (
    build_baseline,
    compare,
    load_baseline,
    render_gate_report,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

logger = get_logger("repro.scripts.perf_gate")


def cmd_check(args: argparse.Namespace) -> int:
    baseline = load_baseline(args.baseline)
    report = compare(args.results, baseline)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(render_gate_report(report, verbose=args.verbose))
    if report.passed or args.report_only:
        if not report.passed:
            logger.warning(
                "perf gate failed but running report-only",
                extra={"event": "perf_gate_report_only",
                       "n_regressions": len(report.regressions),
                       "n_missing": len(report.missing)},
            )
        return 0
    return 1


def cmd_update(args: argparse.Namespace) -> int:
    baseline_path = Path(args.baseline)
    previous = load_baseline(baseline_path) if baseline_path.exists() else None
    baseline = build_baseline(
        args.results,
        args.justification,
        previous=previous,
        meta=run_metadata(),
    )
    baseline_path.parent.mkdir(parents=True, exist_ok=True)
    baseline_path.write_text(
        json.dumps(baseline, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {baseline_path}")
    # A fresh baseline must gate clean against the results it came from.
    report = compare(args.results, baseline)
    if not report.passed:
        print(render_gate_report(report))
        print("warning: new baseline does not pass against its own results",
              file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--results", default=str(REPO_ROOT / "results"),
                        help="directory holding the benchmark results files")
    parser.add_argument("--baseline",
                        default=str(REPO_ROOT / "results" / "perf_baseline.json"),
                        help="checked-in baseline file")
    sub = parser.add_subparsers(dest="command", required=True)

    p_check = sub.add_parser("check", help="gate current results against the baseline")
    p_check.add_argument("--report-only", action="store_true",
                         help="print the report but always exit 0")
    p_check.add_argument("--json", action="store_true",
                         help="emit machine-readable JSON")
    p_check.add_argument("--verbose", action="store_true",
                         help="also list metrics that passed")

    p_update = sub.add_parser("update", help="bless current results as the baseline")
    p_update.add_argument("--justification", required=True,
                          help="why the new numbers are correct (required; "
                               "TODO placeholders rejected)")

    args = parser.parse_args(argv)
    configure_logging()
    try:
        if args.command == "check":
            return cmd_check(args)
        return cmd_update(args)
    except ConfigError as exc:
        print(f"perf_gate: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
