"""Measure target-model quality and grounding; writes results/quality.json.

    python scripts/eval_target_quality.py [--profile full] [--samples 24]
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.data.tasks import DATASET_NAMES
from repro.eval.quality import evaluate_quality, image_grounding_score
from repro.obs.logsetup import configure_logging, get_logger
from repro.zoo import ModelZoo, PROFILE_FULL, PROFILE_SMOKE, TARGET_NAMES

logger = get_logger("repro.scripts.eval_target_quality")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default="full", choices=["full", "smoke"])
    parser.add_argument("--samples", type=int, default=24)
    parser.add_argument("--targets", default=",".join(TARGET_NAMES),
                        help="comma-separated subset of targets")
    parser.add_argument("--out", default="results/quality.json")
    args = parser.parse_args()
    configure_logging()

    zoo = ModelZoo(PROFILE_FULL if args.profile == "full" else PROFILE_SMOKE, verbose=False)
    tok = zoo.tokenizer()
    payload = {}
    for target_name in args.targets.split(','):
        model = zoo.target(target_name)
        entry = {"n_parameters": model.num_parameters()}
        grounding_samples = zoo.eval_dataset("coco-sim", min(8, args.samples)).samples
        entry["image_grounding"] = image_grounding_score(model, tok, grounding_samples)
        for dataset in DATASET_NAMES:
            samples = zoo.eval_dataset(dataset, args.samples).samples
            report = evaluate_quality(model, tok, samples, max_new_tokens=64)
            entry[dataset] = {
                "token_accuracy": report.token_accuracy,
                "exact_match": report.exact_match,
            }
        payload[target_name] = entry
        print(target_name, json.dumps(entry, indent=2))

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    if out.exists():
        previous = json.loads(out.read_text(encoding="utf-8"))
        previous.update(payload)
        payload = previous
    out.write_text(json.dumps(payload, indent=2), encoding="utf-8")
    logger.info("wrote %s", out)


if __name__ == "__main__":
    main()
