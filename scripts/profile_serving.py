"""Profiled serving run: attribution report, flamegraph, latency digests.

Serves a batch of requests through the continuous-batching scheduler on
the smoke-profile zoo with tracing *and* op-level profiling enabled,
then writes every profiling artifact this repo knows how to produce::

    python scripts/profile_serving.py [--out results/profile] \\
        [--concurrency 8] [--requests 8] [--target sim-7b]

Outputs under ``--out``:

* ``trace.jsonl``        — lossless span log (op attrs included)
* ``flamegraph.collapsed`` — collapsed stacks for speedscope/flamegraph.pl
* ``attribution.txt`` / ``attribution.json`` — the {gemm, arena_copy,
  python_overhead, other} wall-clock split
* ``metrics.json``       — registry snapshot (histograms with p50/p95/p99)

The attribution table is the quantitative form of the ROADMAP's
wall-clock question: how much of a batched round is fused compute vs.
N× per-request Python.  Inspect any trace later with
``python -m repro.obs summarize --attribution <out>/trace.jsonl``.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.decoding.cost_model import CostModel, get_profile
from repro.eval.baselines import build_aasd_engine
from repro.obs import (
    build_attribution,
    configure_logging,
    enable_profiling,
    enable_tracing,
    export_collapsed,
    export_jsonl,
    get_logger,
    get_registry,
    render_attribution,
)
from repro.serving import ServingConfig, serve_requests
from repro.zoo import ModelZoo, PROFILE_SMOKE

logger = get_logger("repro.scripts.profile_serving")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="results/profile")
    parser.add_argument("--requests", type=int, default=8)
    parser.add_argument("--concurrency", type=int, default=8)
    parser.add_argument("--max-new-tokens", type=int, default=24)
    parser.add_argument("--gamma", type=int, default=3)
    parser.add_argument("--target", default="sim-7b")
    args = parser.parse_args()

    configure_logging()
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)

    zoo = ModelZoo(PROFILE_SMOKE)
    cost_model = CostModel(get_profile(args.target))
    engine = build_aasd_engine(
        zoo, args.target, args.gamma, cost_model,
        max_new_tokens=args.max_new_tokens,
    )
    samples = zoo.eval_dataset("coco-sim", args.requests)

    tracer = enable_tracing()
    enable_profiling()
    report = serve_requests(
        engine, samples, ServingConfig(max_batch_size=args.concurrency)
    )
    logger.info(
        "served batch",
        extra={"event": "profile_serving_done", **report.summary()},
    )

    spans = tracer.spans
    jsonl = export_jsonl(spans, out_dir / "trace.jsonl")
    flame = export_collapsed(spans, out_dir / "flamegraph.collapsed")
    attribution = build_attribution(spans)
    rendered = render_attribution(attribution)
    (out_dir / "attribution.txt").write_text(rendered + "\n", encoding="utf-8")
    (out_dir / "attribution.json").write_text(
        json.dumps(attribution.to_dict(), indent=2, sort_keys=True),
        encoding="utf-8",
    )
    metrics = out_dir / "metrics.json"
    metrics.write_text(
        json.dumps(get_registry().snapshot(), indent=2), encoding="utf-8"
    )

    print(rendered)
    print()
    for metric, digest in sorted(report.latency_ms.items()):
        print(f"{metric:>8}: n={int(digest['count'])} mean {digest['mean']:.1f} "
              f"p50 {digest['p50']:.1f} p95 {digest['p95']:.1f} "
              f"p99 {digest['p99']:.1f} (server ms)")
    print()
    print(f"wrote {jsonl}, {flame}, {out_dir / 'attribution.txt'}, {metrics}")


if __name__ == "__main__":
    main()
