"""Build (and cache) every trained artifact used by the benchmarks.

Run:  python scripts/build_zoo.py [--profile full|smoke]
"""

from __future__ import annotations

import argparse
import time

from repro.obs.logsetup import configure_logging, get_logger
from repro.zoo import ModelZoo, PROFILE_FULL, PROFILE_SMOKE, TARGET_NAMES

logger = get_logger("repro.scripts.build_zoo")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default="full", choices=["full", "smoke"])
    args = parser.parse_args()
    configure_logging()
    profile = PROFILE_FULL if args.profile == "full" else PROFILE_SMOKE

    zoo = ModelZoo(profile)
    start = time.time()
    zoo.tokenizer()
    for target_name in TARGET_NAMES:
        zoo.target(target_name)
        logger.info("%s target done (%.0fs)", target_name, time.time() - start)
        for variant in ("ft", "dt"):
            zoo.text_draft(variant, target_name)
            zoo.llava_draft(variant, target_name)
        logger.info("%s baselines done (%.0fs)", target_name, time.time() - start)
        zoo.aasd_head(target_name)
        zoo.aasd_head(target_name, use_kv_projector=False)
        zoo.aasd_head(target_name, use_target_kv=False)
        logger.info("%s AASD heads done (%.0fs)", target_name, time.time() - start)
    logger.info("zoo build complete in %.0fs -> %s", time.time() - start, zoo.cache_dir)


if __name__ == "__main__":
    main()
