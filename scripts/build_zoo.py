"""Build (and cache) every trained artifact used by the benchmarks.

Run:  python scripts/build_zoo.py [--profile full|smoke]
"""

from __future__ import annotations

import argparse
import time

from repro.zoo import ModelZoo, PROFILE_FULL, PROFILE_SMOKE, TARGET_NAMES


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default="full", choices=["full", "smoke"])
    args = parser.parse_args()
    profile = PROFILE_FULL if args.profile == "full" else PROFILE_SMOKE

    zoo = ModelZoo(profile)
    start = time.time()
    zoo.tokenizer()
    for target_name in TARGET_NAMES:
        zoo.target(target_name)
        print(f"== {target_name} target done ({time.time() - start:.0f}s)")
        for variant in ("ft", "dt"):
            zoo.text_draft(variant, target_name)
            zoo.llava_draft(variant, target_name)
        print(f"== {target_name} baselines done ({time.time() - start:.0f}s)")
        zoo.aasd_head(target_name)
        zoo.aasd_head(target_name, use_kv_projector=False)
        zoo.aasd_head(target_name, use_target_kv=False)
        print(f"== {target_name} AASD heads done ({time.time() - start:.0f}s)")
    print(f"zoo build complete in {time.time() - start:.0f}s -> {zoo.cache_dir}")


if __name__ == "__main__":
    main()
