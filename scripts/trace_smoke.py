"""Traced smoke decode: emit JSONL + Chrome traces for a few SD decodes.

Runs a greedy AASD decode (plus the AR baseline for one sample) on the
smoke-profile zoo with tracing enabled, then writes both trace formats and
a metrics-registry snapshot:

    python scripts/trace_smoke.py [--out results/trace] [--samples 3]

Inspect with ``python -m repro.obs summarize <out>/trace.jsonl`` or load
``<out>/trace_chrome.json`` in chrome://tracing / https://ui.perfetto.dev.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.decoding.autoregressive import AutoregressiveDecoder
from repro.decoding.cost_model import CostModel, get_profile
from repro.eval.baselines import build_aasd_engine
from repro.obs import (
    configure_logging,
    enable_tracing,
    export_chrome,
    export_jsonl,
    get_logger,
    get_registry,
)
from repro.zoo import ModelZoo, PROFILE_SMOKE

logger = get_logger("repro.scripts.trace_smoke")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="results/trace")
    parser.add_argument("--samples", type=int, default=3)
    parser.add_argument("--max-new-tokens", type=int, default=24)
    parser.add_argument("--gamma", type=int, default=3)
    parser.add_argument("--target", default="sim-7b")
    args = parser.parse_args()

    configure_logging()
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)

    zoo = ModelZoo(PROFILE_SMOKE)
    cost_model = CostModel(get_profile(args.target))
    engine = build_aasd_engine(
        zoo, args.target, args.gamma, cost_model, max_new_tokens=args.max_new_tokens
    )
    ar = AutoregressiveDecoder(
        zoo.target(args.target), zoo.tokenizer(), cost_model,
        max_new_tokens=args.max_new_tokens,
    )
    samples = zoo.eval_dataset("coco-sim", args.samples)

    tracer = enable_tracing()
    for sample in samples:
        record = engine.decode(sample)
        logger.info(
            "decoded sample",
            extra={"event": "smoke_decode", "n_tokens": record.n_tokens,
                   "sim_ms": round(record.sim_time_ms, 1),
                   "wall_s": round(record.wall_time_s, 4)},
        )
    ar.decode(samples[0])

    jsonl = export_jsonl(tracer, out_dir / "trace.jsonl")
    chrome = export_chrome(tracer, out_dir / "trace_chrome.json")
    metrics = out_dir / "metrics.json"
    metrics.write_text(json.dumps(get_registry().snapshot(), indent=2), encoding="utf-8")
    logger.info("wrote %s, %s, %s", jsonl, chrome, metrics)


if __name__ == "__main__":
    main()
