#!/usr/bin/env python
"""Thin shim: the docs checks live in :mod:`repro.analysis.docs_check`.

Kept so existing CI invocations and muscle memory
(``python scripts/check_docs.py``) keep working; the canonical entry
point is ``python -m repro.analysis docs``.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import docs_check  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(docs_check.main(root=REPO_ROOT))
