#!/usr/bin/env python
"""Keep the docs honest: link integrity + executable examples.

Two checks, both run in CI (the ``docs`` job):

1. **Links** — every relative markdown link in ``docs/*.md`` and
   ``README.md`` must point at an existing file (fragments are stripped;
   external ``http(s)``/``mailto`` links are not fetched).
2. **Examples** — the fenced ``python`` blocks of the executable pages
   (``docs/api_guide.md``, ``docs/serving.md``) are run top-to-bottom in
   one shared namespace per page, from a scratch working directory.  A
   block preceded by an ``<!-- doccheck: skip -->`` marker is
   compile-checked only (used for pages whose examples would train
   models).

Usage::

    python scripts/check_docs.py [--links-only]

Exits non-zero on the first category of failure, listing every offender.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import re
import sys
import tempfile
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"^```")
SKIP_MARKER = "<!-- doccheck: skip -->"

# Pages whose python blocks must execute end-to-end.
EXECUTABLE_PAGES = ("docs/api_guide.md", "docs/serving.md")


def iter_doc_files() -> Iterator[Path]:
    yield REPO_ROOT / "README.md"
    yield from sorted((REPO_ROOT / "docs").glob("*.md"))


def check_links() -> List[str]:
    """Return a list of 'file: broken-target' strings."""
    errors = []
    for path in iter_doc_files():
        text = path.read_text(encoding="utf-8")
        # ignore links inside fenced code blocks
        in_fence = False
        for lineno, line in enumerate(text.splitlines(), start=1):
            if FENCE_RE.match(line.strip()):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for target in LINK_RE.findall(line):
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                rel = target.split("#", 1)[0]
                if not rel:  # pure fragment, same-page anchor
                    continue
                resolved = (path.parent / rel).resolve()
                if not resolved.exists():
                    errors.append(f"{path.relative_to(REPO_ROOT)}:{lineno}: {target}")
    return errors


@dataclass
class CodeBlock:
    lineno: int
    source: str
    skip: bool


def extract_python_blocks(path: Path) -> List[CodeBlock]:
    blocks = []
    lines = path.read_text(encoding="utf-8").splitlines()
    i = 0
    pending_skip = False
    while i < len(lines):
        stripped = lines[i].strip()
        if stripped == SKIP_MARKER:
            pending_skip = True
        elif stripped.startswith("```python"):
            start = i + 1
            body = []
            i += 1
            while i < len(lines) and not lines[i].strip().startswith("```"):
                body.append(lines[i])
                i += 1
            blocks.append(CodeBlock(start + 1, "\n".join(body), pending_skip))
            pending_skip = False
        elif stripped:  # any other non-blank line clears a dangling marker
            pending_skip = False
        i += 1
    return blocks


def run_examples(rel_path: str) -> List[str]:
    """Execute (or compile) every python block of one page; return errors."""
    path = REPO_ROOT / rel_path
    blocks = extract_python_blocks(path)
    if not blocks:
        return [f"{rel_path}: no python blocks found"]
    errors = []
    namespace: dict = {"__name__": f"doccheck_{path.stem}"}
    with tempfile.TemporaryDirectory(prefix="doccheck-") as scratch:
        with contextlib.ExitStack() as stack:
            cwd = os.getcwd()
            os.chdir(scratch)
            stack.callback(os.chdir, cwd)
            for block in blocks:
                label = f"{rel_path}:{block.lineno}"
                try:
                    code = compile(block.source, label, "exec")
                except SyntaxError:
                    errors.append(f"{label}: syntax error\n{traceback.format_exc()}")
                    continue
                if block.skip:
                    print(f"  compiled  {label}")
                    continue
                try:
                    exec(code, namespace)
                except Exception:
                    errors.append(f"{label}: raised\n{traceback.format_exc()}")
                    break  # later blocks depend on this namespace
                print(f"  executed  {label}")
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--links-only", action="store_true", help="skip executing doc examples"
    )
    args = parser.parse_args()

    link_errors = check_links()
    n_files = len(list(iter_doc_files()))
    if link_errors:
        print(f"broken links ({len(link_errors)}):")
        for err in link_errors:
            print(f"  {err}")
        return 1
    print(f"links ok across {n_files} markdown files")

    if not args.links_only:
        for rel_path in EXECUTABLE_PAGES:
            print(f"running examples in {rel_path}")
            errors = run_examples(rel_path)
            if errors:
                for err in errors:
                    print(err)
                return 1
    print("docs ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
