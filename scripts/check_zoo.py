"""Verify the integrity of every cached model-zoo artifact.

Recomputes the per-tensor SHA-256 checksums stored inside each ``.npz``
archive (and detects truncated/byte-flipped files that fail to open at
all).  Exits non-zero when any artifact is corrupt, so CI can gate on it.

Run:  python scripts/check_zoo.py [--profile full|smoke] [--all-profiles]
"""

from __future__ import annotations

import argparse
import sys

from repro.zoo import ModelZoo, PROFILE_FULL, PROFILE_SMOKE


def check_profile(profile, quarantine: bool = False) -> int:
    """Print a per-artifact report; return the number of corrupt files.

    With ``quarantine=True`` corrupt artifacts are moved aside to
    ``<name>.corrupt`` (the zoo rebuilds them lazily on next use) and no
    longer count as failures.
    """
    zoo = ModelZoo(profile, verbose=False)
    report = zoo.verify_cache()
    print(f"== profile {profile.name} ({zoo.cache_dir})")
    if not report:
        print("   (no cached artifacts)")
    n_bad = 0
    for name, entry in report.items():
        if entry["ok"]:
            suffix = "" if entry["has_checksums"] else "  [legacy: no checksum manifest]"
            print(f"   OK   {name}  ({entry['n_tensors']} tensors){suffix}")
        elif quarantine:
            zoo._quarantine(zoo.cache_dir / name, entry["error"])
            print(f"   BAD  {name}: quarantined (will rebuild on next use)")
        else:
            n_bad += 1
            print(f"   BAD  {name}: {entry['error']}")
    for name in sorted(p.name for p in zoo.cache_dir.glob("*.corrupt")):
        print(f"   QUARANTINED  {name}")
    return n_bad


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default="smoke", choices=["full", "smoke"])
    parser.add_argument(
        "--all-profiles", action="store_true",
        help="check every profile directory under the cache root",
    )
    parser.add_argument(
        "--quarantine", action="store_true",
        help="move corrupt artifacts aside instead of failing (rebuilt lazily)",
    )
    args = parser.parse_args()

    profiles = (
        [PROFILE_FULL, PROFILE_SMOKE]
        if args.all_profiles
        else [PROFILE_FULL if args.profile == "full" else PROFILE_SMOKE]
    )
    n_bad = sum(check_profile(p, quarantine=args.quarantine) for p in profiles)
    if n_bad:
        print(f"FAILED: {n_bad} corrupt artifact(s)")
        return 1
    print("all cached artifacts verified")
    return 0


if __name__ == "__main__":
    sys.exit(main())
