#!/usr/bin/env python
"""Docstring-coverage gate for the documented public surface.

Walks the packages listed in ``TARGETS`` with ``ast`` (no imports, so it
is safe on any tree) and computes the fraction of *public* definitions —
modules, classes, functions, and methods whose names don't start with an
underscore (dunders other than ``__init__`` are ignored; ``__init__``
counts as covered by its class docstring) — that carry a docstring.
Fails if any package is below ``THRESHOLD``.

Usage::

    python scripts/check_docstrings.py [--list-missing]
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
TARGETS = ("src/repro/serving", "src/repro/core")
THRESHOLD = 0.90


def iter_public_defs(tree: ast.Module, module: str) -> Iterator[Tuple[str, bool]]:
    """Yield ``(qualified_name, has_docstring)`` for the module + members."""
    yield module, ast.get_docstring(tree) is not None

    def walk(node: ast.AST, prefix: str) -> Iterator[Tuple[str, bool]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                name = child.name
                if name.startswith("_") and not name.startswith("__"):
                    continue
                if name.startswith("__") and name.endswith("__"):
                    continue  # dunders documented by convention, not required
                qualified = f"{prefix}.{name}"
                yield qualified, ast.get_docstring(child) is not None
                if isinstance(child, ast.ClassDef):
                    yield from walk(child, qualified)

    yield from walk(tree, module)


def collect(package: Path) -> List[Tuple[str, bool]]:
    entries = []
    for path in sorted(package.rglob("*.py")):
        module = ".".join(path.relative_to(REPO_ROOT / "src").with_suffix("").parts)
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        entries.extend(iter_public_defs(tree, module))
    return entries


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--list-missing", action="store_true", help="print every undocumented name"
    )
    args = parser.parse_args()

    failed = False
    for target in TARGETS:
        entries = collect(REPO_ROOT / target)
        documented = sum(1 for _, ok in entries if ok)
        coverage = documented / len(entries) if entries else 1.0
        status = "ok " if coverage >= THRESHOLD else "FAIL"
        print(
            f"{status} {target}: {documented}/{len(entries)} public defs "
            f"documented ({coverage:.1%}, need >= {THRESHOLD:.0%})"
        )
        missing = [name for name, ok in entries if not ok]
        if coverage < THRESHOLD:
            failed = True
        if missing and (args.list_missing or coverage < THRESHOLD):
            for name in missing:
                print(f"    missing: {name}")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
