#!/usr/bin/env python
"""Thin shim: the coverage gate lives in :mod:`repro.analysis.docstrings`.

Kept so existing CI invocations and muscle memory
(``python scripts/check_docstrings.py``) keep working; the canonical
entry point is ``python -m repro.analysis docstrings``.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import docstrings  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(docstrings.main(root=REPO_ROOT))
