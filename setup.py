"""Legacy setup shim: this offline environment lacks the ``wheel`` package,
so PEP 517 editable installs fail; ``pip install -e . --no-use-pep517`` uses
this file instead. Configuration lives in pyproject.toml."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
)
