"""Image captioning (COCO-sim) with every Table-1 decoding strategy.

Decodes the same captioning workload with the autoregressive baseline,
a conventional speculative decoder using a language-only draft, and the
AASD engine — then prints a head-to-head metric comparison.

    python examples/image_captioning.py --profile full --samples 10
"""

from __future__ import annotations

import argparse

from repro.decoding import (
    AutoregressiveDecoder,
    CostModel,
    LlamaTextDraft,
    SpeculativeDecoder,
    aggregate_metrics,
    get_profile,
)
from repro.core import AASDEngine, AASDEngineConfig
from repro.zoo import ModelZoo, PROFILE_FULL, PROFILE_SMOKE


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default="smoke", choices=["smoke", "full"])
    parser.add_argument("--samples", type=int, default=8)
    parser.add_argument("--gamma", type=int, default=3)
    args = parser.parse_args()

    zoo = ModelZoo(PROFILE_FULL if args.profile == "full" else PROFILE_SMOKE)
    tokenizer = zoo.tokenizer()
    target = zoo.target("sim-7b")
    cost_model = CostModel(get_profile("sim-7b"))
    dataset = zoo.eval_dataset("coco-sim", args.samples)

    baseline = AutoregressiveDecoder(target, tokenizer, cost_model, max_new_tokens=48)
    conventional = SpeculativeDecoder(
        target,
        LlamaTextDraft(zoo.text_draft("ft", "sim-7b"), "ft-llama"),
        tokenizer, cost_model, gamma=args.gamma, max_new_tokens=48,
    )
    aasd = AASDEngine(
        target, zoo.aasd_head("sim-7b"), tokenizer, cost_model,
        AASDEngineConfig(gamma=args.gamma, max_new_tokens=48),
    )

    ar_records = [baseline.decode(s) for s in dataset]
    print("sample captions (all decoders are lossless, outputs identical):")
    for sample, record in list(zip(dataset, ar_records))[:3]:
        print(f"  image of: {', '.join(o.phrase() for o in sample.scene)}")
        print(f"  caption : {record.text}")

    print(f"\n{'decoder':>24} {'omega':>7} {'alpha':>7} {'tau':>7} {'delta':>8}")
    for decoder in (conventional, aasd):
        records = [decoder.decode(s) for s in dataset]
        report = aggregate_metrics(records, ar_records)
        row = report.row()
        print(
            f"{decoder.name:>24} {row['omega']:>7.2f} {row['alpha']:>7.2f} "
            f"{row['tau']:>7.2f} {row['delta']:>8.1f}"
        )


if __name__ == "__main__":
    main()
