"""Quickstart: speed up a MiniLlava target with AASD speculative decoding.

Runs with the fast "smoke" zoo by default so the first launch finishes in
about a minute (artifacts are cached afterwards); pass ``--profile full``
for benchmark-quality models.

    python examples/quickstart.py
    python examples/quickstart.py --profile full
"""

from __future__ import annotations

import argparse

from repro.core import AASDEngine, AASDEngineConfig
from repro.decoding import AutoregressiveDecoder, CostModel, aggregate_metrics, get_profile
from repro.zoo import ModelZoo, PROFILE_FULL, PROFILE_SMOKE


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default="smoke", choices=["smoke", "full"])
    parser.add_argument("--gamma", type=int, default=3)
    parser.add_argument("--samples", type=int, default=5)
    args = parser.parse_args()

    zoo = ModelZoo(PROFILE_FULL if args.profile == "full" else PROFILE_SMOKE)
    tokenizer = zoo.tokenizer()
    target = zoo.target("sim-7b")
    head = zoo.aasd_head("sim-7b")
    cost_model = CostModel(get_profile("sim-7b"))

    baseline = AutoregressiveDecoder(target, tokenizer, cost_model, max_new_tokens=48)
    engine = AASDEngine(
        target, head, tokenizer, cost_model,
        AASDEngineConfig(gamma=args.gamma, max_new_tokens=48),
    )

    dataset = zoo.eval_dataset("coco-sim", args.samples)
    ar_records, sd_records = [], []
    for sample in dataset:
        ar = baseline.decode(sample)
        sd = engine.decode(sample)
        ar_records.append(ar)
        sd_records.append(sd)
        status = "lossless" if sd.token_ids == ar.token_ids else "MISMATCH"
        print(f"prompt : {sample.prompt}")
        print(f"output : {sd.text}   [{status}]")
        print()

    report = aggregate_metrics(sd_records, ar_records)
    print(f"walltime speedup  (omega): {report.walltime_speedup:.2f}x")
    print(f"acceptance rate   (alpha): {report.acceptance_rate:.2f}")
    print(f"block efficiency  (tau)  : {report.block_efficiency:.2f}")
    print(f"decoding speed    (delta): {report.decoding_speed:.1f} tok/s "
          f"(AR baseline {report.ar_decoding_speed:.1f} tok/s)")


if __name__ == "__main__":
    main()
