"""Multi-question VQA over one scene, with a per-block acceptance trace.

Shows what the speculating module does inside a conversation: for each
question the engine prints the answer plus, per draft-then-verify block,
how many of the gamma draft tokens the target accepted.

    python examples/vqa_chat.py --profile full
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core import AASDEngine, AASDEngineConfig
from repro.data import ImageRenderer, MultimodalSample, image_to_ascii, sample_scene
from repro.data.language import conversation_sample, reasoning_sample
from repro.decoding import CostModel, get_profile
from repro.zoo import ModelZoo, PROFILE_FULL, PROFILE_SMOKE


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default="smoke", choices=["smoke", "full"])
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    zoo = ModelZoo(PROFILE_FULL if args.profile == "full" else PROFILE_SMOKE)
    engine = AASDEngine(
        zoo.target("sim-7b"), zoo.aasd_head("sim-7b"), zoo.tokenizer(),
        CostModel(get_profile("sim-7b")),
        AASDEngineConfig(gamma=3, max_new_tokens=48),
    )

    rng = np.random.default_rng(args.seed)
    scene = sample_scene(rng, min_objects=2, max_objects=3)
    image = ImageRenderer().render(scene)
    print("scene:", "; ".join(f"{o.phrase()} in the {o.position}" for o in scene))
    print(image_to_ascii(image, width=24))
    print()

    questions = []
    for _ in range(3):
        questions.append(conversation_sample(scene, rng))
    questions.append(reasoning_sample(scene, rng))

    for prompt, ground_truth in questions:
        sample = MultimodalSample(
            image=image, prompt=prompt, response=ground_truth, task="conversation", scene=scene
        )
        record = engine.decode(sample)
        trace = " ".join(f"{b.n_accepted}/{b.n_draft}" for b in record.blocks)
        print(f"Q: {prompt}")
        print(f"A: {record.text}")
        print(f"   truth   : {ground_truth}")
        print(f"   accepted: [{trace}]  "
              f"({record.n_tokens} tokens in {len(record.blocks)} target verifies)")
        print()


if __name__ == "__main__":
    main()
