"""Chain-of-thought ScienceQA-sim with speedup accounting per question.

Chain-of-thought answers are the longest generations in the evaluation mix,
which is where speculative decoding pays off most; this example prints the
simulated latency of autoregressive vs AASD decoding per question.

    python examples/scienceqa_cot.py --profile full --samples 5
"""

from __future__ import annotations

import argparse

from repro.core import AASDEngine, AASDEngineConfig
from repro.decoding import AutoregressiveDecoder, CostModel, get_profile
from repro.zoo import ModelZoo, PROFILE_FULL, PROFILE_SMOKE


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default="smoke", choices=["smoke", "full"])
    parser.add_argument("--samples", type=int, default=5)
    parser.add_argument("--gamma", type=int, default=5)
    args = parser.parse_args()

    zoo = ModelZoo(PROFILE_FULL if args.profile == "full" else PROFILE_SMOKE)
    tokenizer = zoo.tokenizer()
    target = zoo.target("sim-7b")
    cost_model = CostModel(get_profile("sim-7b"))

    baseline = AutoregressiveDecoder(target, tokenizer, cost_model, max_new_tokens=64)
    engine = AASDEngine(
        target, zoo.aasd_head("sim-7b"), tokenizer, cost_model,
        AASDEngineConfig(gamma=args.gamma, max_new_tokens=64),
    )

    total_ar = total_sd = 0.0
    for sample in zoo.eval_dataset("scienceqa-sim", args.samples):
        ar = baseline.decode(sample)
        sd = engine.decode(sample)
        total_ar += ar.sim_time_ms
        total_sd += sd.sim_time_ms
        print(f"Q : {sample.prompt}")
        print(f"A : {sd.text}")
        print(
            f"    AR {ar.sim_time_ms:6.0f} ms -> AASD {sd.sim_time_ms:6.0f} ms "
            f"({ar.sim_time_ms / sd.sim_time_ms:.2f}x), "
            f"{'lossless' if sd.token_ids == ar.token_ids else 'MISMATCH'}"
        )
        print()

    print(f"overall speedup on CoT reasoning: {total_ar / total_sd:.2f}x")


if __name__ == "__main__":
    main()
