"""Train an AASD speculating module from scratch against a zoo target.

Demonstrates the library's training API end to end: build a fresh draft
head, measure its acceptance rate untrained, train it with Target-Draft
Attention, and measure again.

    python examples/train_custom_draft.py --steps 200
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core import AASDDraftHead, AASDEngine, AASDEngineConfig, DraftHeadConfig
from repro.decoding import AutoregressiveDecoder, CostModel, aggregate_metrics, get_profile
from repro.training import DraftTrainConfig, train_draft_head
from repro.zoo import ModelZoo, PROFILE_FULL, PROFILE_SMOKE


def measure(engine, baseline, dataset):
    sd = [engine.decode(s) for s in dataset]
    ar = [baseline.decode(s) for s in dataset]
    return aggregate_metrics(sd, ar)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default="smoke", choices=["smoke", "full"])
    parser.add_argument("--steps", type=int, default=200)
    parser.add_argument("--kl-weight", type=float, default=0.5)
    parser.add_argument("--k-compressed", type=int, default=8)
    args = parser.parse_args()

    zoo = ModelZoo(PROFILE_FULL if args.profile == "full" else PROFILE_SMOKE)
    tokenizer = zoo.tokenizer()
    target = zoo.target("sim-7b")
    cost_model = CostModel(get_profile("sim-7b"))

    head = AASDDraftHead(
        DraftHeadConfig.for_target(
            target.config.llama,
            n_vision_tokens=target.n_vision_tokens,
            k_compressed=args.k_compressed,
        ),
        rng=np.random.default_rng(0),
    )
    head.init_from_target(target.llama)
    print(f"draft head: {head.num_parameters()} params "
          f"(target: {target.num_parameters()}), "
          f"vision KV compressed {target.n_vision_tokens} -> {args.k_compressed}")

    baseline = AutoregressiveDecoder(target, tokenizer, cost_model, max_new_tokens=48)
    engine = AASDEngine(
        target, head, tokenizer, cost_model, AASDEngineConfig(gamma=3, max_new_tokens=48)
    )
    dataset = zoo.eval_dataset("llava-bench-sim", 6)

    before = measure(engine, baseline, dataset)
    print(f"untrained: alpha={before.acceptance_rate:.2f} omega={before.walltime_speedup:.2f}")

    result = train_draft_head(
        head, target, tokenizer, zoo.train_pool(),
        DraftTrainConfig(
            steps=args.steps, batch_size=8, lr=2e-3,
            warmup_steps=min(20, args.steps // 4),
            gamma_train=5, kl_weight=args.kl_weight, seed=0,
        ),
    )
    print(f"trained {args.steps} steps: loss {result.losses[0]:.3f} -> {result.final_loss:.3f}")

    after = measure(engine, baseline, dataset)
    print(f"trained  : alpha={after.acceptance_rate:.2f} omega={after.walltime_speedup:.2f}")


if __name__ == "__main__":
    main()
