"""Tracer semantics: nesting, thread safety, disabled fast path."""

from __future__ import annotations

import threading

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import (
    NULL_SPAN,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    set_tracer,
)


class TestNesting:
    def test_parent_child_linkage(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("mid") as mid:
                with tracer.span("inner") as inner:
                    pass
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["outer"].parent_id is None
        assert by_name["mid"].parent_id == by_name["outer"].span_id
        assert by_name["inner"].parent_id == by_name["mid"].span_id

    def test_siblings_share_parent(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["a"].parent_id == by_name["root"].span_id
        assert by_name["b"].parent_id == by_name["root"].span_id
        # Children finish before the root is recorded.
        assert [s.name for s in tracer.spans] == ["a", "b", "root"]

    def test_durations_nest(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        by_name = {s.name: s for s in tracer.spans}
        assert 0 <= by_name["inner"].duration_s <= by_name["outer"].duration_s
        assert by_name["outer"].start_s <= by_name["inner"].start_s
        assert by_name["inner"].end_s <= by_name["outer"].end_s

    def test_attrs_and_sim_ms(self):
        tracer = Tracer()
        with tracer.span("phase", gamma=3) as sp:
            sp.set_attr("n_accepted", 2)
            sp.add_sim_ms(10.0)
            sp.add_sim_ms(2.5)
        (span,) = tracer.spans
        assert span.attrs["gamma"] == 3
        assert span.attrs["n_accepted"] == 2
        assert span.sim_ms == pytest.approx(12.5)

    def test_current_span(self):
        tracer = Tracer()
        assert tracer.current_span() is NULL_SPAN
        with tracer.span("s") as sp:
            assert tracer.current_span() is sp
        assert tracer.current_span() is NULL_SPAN

    def test_exception_still_records_span(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("broken"):
                raise ValueError("boom")
        assert [s.name for s in tracer.spans] == ["broken"]
        assert tracer.current_span() is NULL_SPAN


class TestDisabled:
    def test_disabled_returns_shared_null_span(self):
        tracer = Tracer(enabled=False)
        sp = tracer.span("x", attr=1)
        assert sp is NULL_SPAN
        with sp as inner:
            inner.set_attr("k", "v")
            inner.add_sim_ms(1.0)
        assert tracer.spans == []

    def test_global_toggle(self):
        try:
            tracer = enable_tracing(registry=MetricsRegistry())
            assert get_tracer() is tracer
            assert tracer.enabled
            disable_tracing()
            assert not get_tracer().enabled
            assert get_tracer().span("x") is NULL_SPAN
        finally:
            disable_tracing()

    def test_set_tracer_swaps_global(self):
        mine = Tracer(enabled=False)
        previous = set_tracer(mine)
        try:
            assert get_tracer() is mine
        finally:
            set_tracer(previous)


class TestThreadSafety:
    def test_threads_keep_independent_stacks(self):
        tracer = Tracer()
        errors = []

        def worker(label):
            try:
                for i in range(50):
                    with tracer.span(f"{label}-outer"):
                        with tracer.span(f"{label}-inner"):
                            pass
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(f"t{i}",)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        spans = tracer.spans
        assert len(spans) == 4 * 50 * 2
        # Every inner span's parent is an outer span from the same thread.
        by_id = {s.span_id: s for s in spans}
        for span in spans:
            if span.name.endswith("-inner"):
                parent = by_id[span.parent_id]
                assert parent.name == span.name.replace("-inner", "-outer")
                assert parent.thread_id == span.thread_id


class TestRegistryFeed:
    def test_span_durations_feed_histograms(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry=registry)
        for _ in range(3):
            with tracer.span("verify"):
                pass
        hist = registry.get("span_ms.verify")
        assert hist is not None and hist.count == 3
        assert hist.total >= 0.0

    def test_drain_clears_buffer(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        assert len(tracer.drain()) == 1
        assert tracer.spans == []
