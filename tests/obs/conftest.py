"""Fixtures for observability tests: a tiny AASD world, no zoo needed."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AASDDraftHead, DraftHeadConfig
from repro.data.tasks import make_dataset
from repro.decoding import CostModel, get_profile
from repro.models.config import LlamaConfig, LlavaConfig, VisionConfig
from repro.models.llava import MiniLlava


@pytest.fixture(scope="module")
def world(tokenizer):
    gen = np.random.default_rng(0)
    vocab = tokenizer.vocab_size
    target = MiniLlava(
        LlavaConfig(
            llama=LlamaConfig(vocab_size=vocab, dim=16, n_layers=1, n_heads=2, mlp_hidden=24),
            vision=VisionConfig(image_size=48, patch_size=16, dim=8, n_layers=1,
                                n_heads=2, mlp_hidden=16),
        ),
        rng=gen,
    )
    head = AASDDraftHead(
        DraftHeadConfig(
            vocab_size=vocab, dim=16, n_heads=2, mlp_hidden=24,
            n_vision_tokens=9, k_compressed=3,
        ),
        rng=gen,
    )
    cm = CostModel(get_profile("sim-7b"))
    samples = make_dataset("coco-sim", 3, seed=4).samples
    return dict(target=target, head=head, cm=cm, samples=samples, tokenizer=tokenizer)
