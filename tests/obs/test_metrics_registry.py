"""Metrics-registry semantics plus agreement with aggregate_metrics."""

from __future__ import annotations

import threading

import pytest

from repro.core import AASDEngine, AASDEngineConfig
from repro.decoding import AutoregressiveDecoder, aggregate_metrics
from repro.errors import ConfigError
from repro.obs.metrics import MetricsRegistry, get_registry, set_registry


class TestInstruments:
    def test_counter(self):
        registry = MetricsRegistry()
        counter = registry.counter("x_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == pytest.approx(3.5)
        assert registry.counter("x_total") is counter
        with pytest.raises(ConfigError):
            counter.inc(-1)

    def test_gauge(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(5)
        gauge.add(-2)
        assert gauge.value == 3

    def test_histogram_buckets_and_summary(self):
        hist = MetricsRegistry().histogram("lat_ms", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.total == pytest.approx(555.5)
        assert hist.min == 0.5 and hist.max == 500.0
        assert hist.mean == pytest.approx(555.5 / 4)
        assert hist.bucket_counts == [1, 1, 1, 1]

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("name")
        with pytest.raises(ConfigError, match="already registered"):
            registry.gauge("name")

    def test_snapshot_and_reset(self):
        registry = MetricsRegistry()
        registry.counter("a_total").inc(4)
        registry.histogram("h").observe(2.0)
        snap = registry.snapshot()
        assert snap["a_total"]["value"] == 4
        assert snap["h"]["count"] == 1
        registry.reset()
        assert registry.counter("a_total").value == 0
        assert registry.histogram("h").count == 0
        # Registrations survive reset.
        assert set(registry.names()) == {"a_total", "h"}

    def test_thread_safety(self):
        registry = MetricsRegistry()
        counter = registry.counter("n")

        def worker():
            for _ in range(1000):
                counter.inc()
                registry.histogram("h").observe(1.0)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 4000
        assert registry.histogram("h").count == 4000

    def test_global_swap(self):
        mine = MetricsRegistry()
        previous = set_registry(mine)
        try:
            assert get_registry() is mine
        finally:
            set_registry(previous)


class TestAgreementWithAggregateMetrics:
    """The registry's cross-sample totals must match what aggregate_metrics
    derives from the per-sample records — same events, two views."""

    def test_decode_counters_match_report(self, world):
        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            engine = AASDEngine(
                world["target"], world["head"], world["tokenizer"], world["cm"],
                AASDEngineConfig(gamma=3, max_new_tokens=12),
            )
            ar = AutoregressiveDecoder(
                world["target"], world["tokenizer"], world["cm"], max_new_tokens=12
            )
            sd_records = [engine.decode(s) for s in world["samples"]]
            ar_records = [ar.decode(s) for s in world["samples"]]
        finally:
            set_registry(previous)

        report = aggregate_metrics(sd_records, ar_records)
        blocks = [b for r in sd_records for b in r.blocks]

        def value(name):
            inst = registry.get(name)
            return inst.value if inst is not None else 0.0

        assert value("decode.blocks_total") == len(blocks)
        assert value("decode.tokens_drafted_total") == sum(b.n_draft for b in blocks)
        assert value("decode.tokens_accepted_total") == sum(b.n_accepted for b in blocks)
        assert value("decode.tokens_emitted_total") == sum(b.n_emitted for b in blocks)
        assert value("decode.draft_faults_total") == report.n_draft_faults
        assert value("decode.fallback_steps_total") == report.n_fallback_steps
        assert value("decode.target_forwards_total") == sum(
            r.n_target_forwards for r in sd_records + ar_records
        )
        # Block efficiency recomputed from registry counters equals tau.
        if blocks:
            tau = value("decode.tokens_emitted_total") / value("decode.blocks_total")
            assert tau == pytest.approx(report.block_efficiency)

    def test_sim_categories_cover_total(self, world):
        engine = AASDEngine(
            world["target"], world["head"], world["tokenizer"], world["cm"],
            AASDEngineConfig(gamma=3, max_new_tokens=10),
        )
        record = engine.decode(world["samples"][0])
        assert record.sim_by_category           # categorised charges exist
        assert sum(record.sim_by_category.values()) == pytest.approx(record.sim_time_ms)
        assert set(record.sim_by_category) <= {"prefill", "draft", "verify", "fallback"}

    def test_report_surfaces_categories(self, world):
        engine = AASDEngine(
            world["target"], world["head"], world["tokenizer"], world["cm"],
            AASDEngineConfig(gamma=3, max_new_tokens=10),
        )
        ar = AutoregressiveDecoder(
            world["target"], world["tokenizer"], world["cm"], max_new_tokens=10
        )
        sd_records = [engine.decode(s) for s in world["samples"]]
        ar_records = [ar.decode(s) for s in world["samples"]]
        report = aggregate_metrics(sd_records, ar_records)
        assert sum(report.sim_time_by_category.values()) == pytest.approx(
            sum(r.sim_time_ms for r in sd_records)
        )
        assert "draft" in report.sim_time_by_category
        assert "verify" in report.sim_time_by_category
