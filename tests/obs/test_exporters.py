"""Trace export → reload round-trips for both on-disk formats."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.obs.exporters import (
    export_chrome,
    export_jsonl,
    read_chrome,
    read_jsonl,
    read_trace,
)
from repro.obs.tracing import Tracer


@pytest.fixture()
def tracer() -> Tracer:
    tracer = Tracer()
    with tracer.span("decode", decoder="ours", n_prompt_tokens=7) as root:
        root.add_sim_ms(100.0)
        with tracer.span("prefill") as sp:
            sp.add_sim_ms(63.5)
        with tracer.span("draft", gamma=3) as sp:
            sp.set_attr("n_draft", 3)
        with tracer.span("verify", n_draft=3) as sp:
            sp.set_attr("n_accepted", 2)
    return tracer


class TestJsonlRoundTrip:
    def test_lossless(self, tracer, tmp_path):
        path = export_jsonl(tracer, tmp_path / "trace.jsonl")
        reloaded = read_jsonl(path)
        assert reloaded == tracer.spans   # SpanRecord is a frozen dataclass

    def test_rejects_garbage_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"name": "ok", "span_id": 1, "start_s": 0, "end_s": 1}\nnot json\n')
        with pytest.raises(ConfigError, match="invalid trace line"):
            read_jsonl(path)


class TestChromeRoundTrip:
    def test_loadable_structure(self, tracer, tmp_path):
        path = export_chrome(tracer, tmp_path / "trace.json", pid=1234)
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        assert {e["ph"] for e in events} == {"X"}
        assert all(e["pid"] == 1234 for e in events)
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in events)

    def test_round_trip_preserves_content(self, tracer, tmp_path):
        path = export_chrome(tracer, tmp_path / "trace.json")
        reloaded = read_chrome(path)
        originals = {s.span_id: s for s in tracer.spans}
        assert set(originals) == {s.span_id for s in reloaded}
        for span in reloaded:
            original = originals[span.span_id]
            assert span.name == original.name
            assert span.parent_id == original.parent_id
            assert span.duration_s == pytest.approx(original.duration_s, abs=1e-9)
            assert span.start_s == pytest.approx(original.start_s, abs=1e-6)
            assert span.sim_ms == pytest.approx(original.sim_ms)
            # Attributes survive minus the id bookkeeping keys.
            for key, value in original.attrs.items():
                assert span.attrs[key] == value


class TestFormatSniffing:
    def test_reads_either_format(self, tracer, tmp_path):
        jsonl = export_jsonl(tracer, tmp_path / "a.jsonl")
        chrome = export_chrome(tracer, tmp_path / "b.json")
        assert {s.name for s in read_trace(jsonl)} == {s.name for s in tracer.spans}
        assert {s.name for s in read_trace(chrome)} == {s.name for s in tracer.spans}

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigError, match="not found"):
            read_trace(tmp_path / "nope.jsonl")

    def test_non_trace_content(self, tmp_path):
        path = tmp_path / "junk.txt"
        path.write_text("hello world\n")
        with pytest.raises(ConfigError):
            read_trace(path)
