"""Perf-regression gate: baseline build, comparison, and CLI exit codes."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.errors import ConfigError
from repro.eval.reporting import save_results
from repro.obs.perfgate import (
    DEFAULT_SPECS,
    STATUS_IMPROVED,
    STATUS_MISSING,
    STATUS_OK,
    STATUS_REGRESSED,
    STATUS_SKIPPED,
    MetricSpec,
    build_baseline,
    compare,
    load_baseline,
    render_gate_report,
    validate_justification,
)

REPO_ROOT = Path(__file__).resolve().parents[2]

SERVING_ROW = ("sim-7b", 3, "c=4")
ARENA_ROW = ("sim-7b", 3, "arena")
TREE_ROW = ("sim-7b", 7, "tree")


def _write_results(results_dir: Path, *, tok_per_s: float = 100.0,
                   sim_ms: float = 50.0, arena_ms: float = 2.0,
                   serving_config=None) -> Path:
    save_results(
        {SERVING_ROW: {"speedup": 2.0, "tok_per_s": tok_per_s, "sim_ms": sim_ms,
                       "ttft_ms_p50": 120.0, "e2e_ms_p95": 900.0,
                       "wall_tok_per_s": 40.0}},
        results_dir / "serving",
        config=serving_config or {"profile": "smoke", "n_requests": 8},
    )
    save_results(
        {ARENA_ROW: {"speedup": 3.0, "arena_ms": arena_ms}},
        results_dir / "kv_arena",
        config={"tokens": 256},
    )
    save_results(
        {TREE_ROW: {"apf": 4.9, "sim_ms": 2700.0, "tok_per_s": 65.0}},
        results_dir / "tree",
        config={"gamma": 7, "branch": 2},
    )
    return results_dir


@pytest.fixture()
def results_dir(tmp_path):
    return _write_results(tmp_path / "results")


class TestJustification:
    def test_accepts_real_text(self):
        text = "packed verify cut sim_ms 18% on the smoke profile"
        assert validate_justification(text) == text

    @pytest.mark.parametrize("bad", ["", "   ", "short", "TODO: fill in later",
                                     "fixme", "xxx placeholder", "tbd"])
    def test_rejects_placeholders(self, bad):
        with pytest.raises(ConfigError):
            validate_justification(bad)


class TestBaseline:
    def test_build_snapshots_gated_metrics(self, results_dir):
        baseline = build_baseline(results_dir, "initial smoke-profile numbers")
        serving = baseline["sources"]["serving"]
        row = serving["rows"]["sim-7b|3|c=4"]
        assert row["tok_per_s"] == {"value": 100.0, "direction": "higher",
                                    "rel_tol": 0.02}
        assert serving["config"]["profile"] == "smoke"
        assert baseline["sources"]["kv_arena"]["rows"]["sim-7b|3|arena"]
        assert len(baseline["updated"]) == 1

    def test_history_carries_forward(self, results_dir):
        first = build_baseline(results_dir, "initial smoke-profile numbers")
        second = build_baseline(results_dir, "re-blessed after scheduler change",
                                previous=first,
                                meta={"created_utc": "t", "git_sha": "abc"})
        assert [e["justification"] for e in second["updated"]] == [
            "initial smoke-profile numbers",
            "re-blessed after scheduler change",
        ]
        assert second["updated"][1]["git_sha"] == "abc"

    def test_missing_source_is_an_error(self, tmp_path):
        with pytest.raises(ConfigError, match="kv_arena"):
            build_baseline(tmp_path, "numbers without benchmarks")

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "perf_baseline.json"
        path.write_text(json.dumps({"schema": 99, "sources": {}}))
        with pytest.raises(ConfigError):
            load_baseline(path)
        with pytest.raises(ConfigError, match="not found"):
            load_baseline(tmp_path / "nope.json")


class TestCompare:
    def test_unchanged_results_pass(self, results_dir):
        baseline = build_baseline(results_dir, "initial smoke-profile numbers")
        report = compare(results_dir, baseline)
        assert report.passed
        assert not report.regressions
        assert {e.status for e in report.entries} == {STATUS_OK}
        assert "PASS" in render_gate_report(report)

    def test_higher_is_better_regression(self, results_dir, tmp_path):
        baseline = build_baseline(results_dir, "initial smoke-profile numbers")
        worse = _write_results(tmp_path / "worse", tok_per_s=90.0)  # -10% > 2%
        report = compare(worse, baseline)
        assert not report.passed
        bad = [e for e in report.regressions if e.metric == "tok_per_s"]
        assert len(bad) == 1
        assert bad[0].rel_change == pytest.approx(-0.10)
        assert "FAIL" in render_gate_report(report)

    def test_lower_is_better_regression(self, results_dir, tmp_path):
        baseline = build_baseline(results_dir, "initial smoke-profile numbers")
        worse = _write_results(tmp_path / "worse", sim_ms=55.0)  # +10% > 2%
        report = compare(worse, baseline)
        assert [e.metric for e in report.regressions] == ["sim_ms"]

    def test_improvement_and_within_tolerance_pass(self, results_dir, tmp_path):
        baseline = build_baseline(results_dir, "initial smoke-profile numbers")
        better = _write_results(tmp_path / "better", tok_per_s=130.0,
                                sim_ms=50.5)  # +1% sim_ms is inside 2%
        report = compare(better, baseline)
        assert report.passed
        statuses = {e.metric: e.status for e in report.entries
                    if e.source == "serving"}
        assert statuses["tok_per_s"] == STATUS_IMPROVED
        assert statuses["sim_ms"] == STATUS_OK

    def test_noisy_metric_needs_wide_tolerance(self, results_dir, tmp_path):
        baseline = build_baseline(results_dir, "initial smoke-profile numbers")
        # wall_tok_per_s gates at 60%: a 50% wobble passes, 70% fails.
        wobble = _write_results(tmp_path / "wobble")
        payload = json.loads((wobble / "serving.json").read_text())
        payload["results"]["sim-7b|3|c=4"]["wall_tok_per_s"] = 20.0
        (wobble / "serving.json").write_text(json.dumps(payload))
        assert compare(wobble, baseline).passed
        payload["results"]["sim-7b|3|c=4"]["wall_tok_per_s"] = 10.0
        (wobble / "serving.json").write_text(json.dumps(payload))
        report = compare(wobble, baseline)
        assert [e.metric for e in report.regressions] == ["wall_tok_per_s"]

    def test_config_mismatch_skips_source(self, results_dir, tmp_path):
        baseline = build_baseline(results_dir, "initial smoke-profile numbers")
        other = _write_results(tmp_path / "other", tok_per_s=1.0,
                               serving_config={"profile": "full",
                                               "n_requests": 64})
        report = compare(other, baseline)
        skipped = [e for e in report.entries if e.status == STATUS_SKIPPED]
        assert len(skipped) == 1 and skipped[0].source == "serving"
        assert report.passed   # incomparable runs do not fail the gate

    def test_missing_results_file_fails(self, results_dir, tmp_path):
        baseline = build_baseline(results_dir, "initial smoke-profile numbers")
        partial = _write_results(tmp_path / "partial")
        (partial / "kv_arena.json").unlink()
        report = compare(partial, baseline)
        assert not report.passed
        assert [e.source for e in report.missing] == ["kv_arena"]

    def test_missing_metric_fails(self, results_dir, tmp_path):
        baseline = build_baseline(results_dir, "initial smoke-profile numbers")
        partial = _write_results(tmp_path / "partial")
        payload = json.loads((partial / "serving.json").read_text())
        del payload["results"]["sim-7b|3|c=4"]["speedup"]
        (partial / "serving.json").write_text(json.dumps(payload))
        report = compare(partial, baseline)
        missing = [e for e in report.missing if e.metric == "speedup"]
        assert len(missing) == 1 and not report.passed

    def test_custom_specs(self, results_dir):
        specs = {"serving": (MetricSpec("tok_per_s", "higher", 0.5),)}
        baseline = build_baseline(results_dir, "gate tok_per_s only at 50%",
                                  specs=specs)
        rows = baseline["sources"]["serving"]["rows"]["sim-7b|3|c=4"]
        assert list(rows) == ["tok_per_s"]

    def test_spec_validation(self):
        with pytest.raises(ConfigError):
            MetricSpec("tok_per_s", "sideways", 0.02)
        with pytest.raises(ConfigError):
            MetricSpec("tok_per_s", "higher", -0.1)


class TestCli:
    """scripts/perf_gate.py exit codes, run end-to-end in a subprocess."""

    def _run(self, results_dir: Path, *argv: str):
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        return subprocess.run(
            [sys.executable, str(REPO_ROOT / "scripts" / "perf_gate.py"),
             "--results", str(results_dir),
             "--baseline", str(results_dir / "perf_baseline.json"), *argv],
            capture_output=True, text=True, env=env,
        )

    def test_update_then_check_then_regress(self, results_dir, tmp_path):
        update = self._run(results_dir, "update", "--justification",
                           "initial smoke numbers for the CLI test")
        assert update.returncode == 0, update.stderr

        check = self._run(results_dir, "check")
        assert check.returncode == 0, check.stdout + check.stderr
        assert "PASS" in check.stdout

        bad_justification = self._run(results_dir, "update",
                                      "--justification", "TODO")
        assert bad_justification.returncode == 2

        worse = _write_results(tmp_path / "worse", tok_per_s=80.0)
        (results_dir / "perf_baseline.json").rename(
            worse / "perf_baseline.json")
        failing = self._run(worse, "check")
        assert failing.returncode == 1
        assert "FAIL" in failing.stdout

        report_only = self._run(worse, "check", "--report-only")
        assert report_only.returncode == 0
