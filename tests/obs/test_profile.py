"""Profiler, quantiles, attribution, and flamegraph round-trip tests."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import AASDEngine, AASDEngineConfig
from repro.errors import ConfigError
from repro.nn.tensor import Tensor
from repro.obs.flamegraph import export_collapsed, fold_spans, read_collapsed
from repro.obs.metrics import MetricsRegistry, exact_quantile
from repro.obs.profile import (
    PROFILER,
    _self_check_phase_sets,
    build_attribution,
    collect_latencies,
    disable_profiling,
    enable_profiling,
    render_attribution,
    summarize_latencies,
)
from repro.obs.tracing import Tracer
from repro.utils.arena import Arena


@pytest.fixture()
def profiler():
    """Profiling on for the test, fully reset afterwards."""
    PROFILER.reset()
    enable_profiling()
    yield PROFILER
    disable_profiling()
    PROFILER.tracer = None
    PROFILER.reset()


def _engine(world, tracer=None) -> AASDEngine:
    return AASDEngine(
        world["target"], world["head"], world["tokenizer"], world["cm"],
        AASDEngineConfig(gamma=3, max_new_tokens=16),
        rng=np.random.default_rng(7),
        tracer=tracer,
    )


# ---------------------------------------------------------------------------
# Quantiles
# ---------------------------------------------------------------------------
class TestQuantiles:
    def test_exact_quantile_matches_numpy(self):
        rng = np.random.default_rng(3)
        values = list(rng.lognormal(mean=1.0, sigma=2.0, size=257))
        for q in (0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0):
            assert exact_quantile(values, q) == pytest.approx(
                float(np.percentile(values, 100 * q)), rel=1e-9
            )

    def test_exact_quantile_rejects_bad_input(self):
        with pytest.raises(ConfigError):
            exact_quantile([], 0.5)
        with pytest.raises(ConfigError):
            exact_quantile([1.0], 1.5)

    def test_histogram_quantile_fine_buckets_accurate(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "fine", buckets=tuple(float(b) for b in range(0, 1001, 10))
        )
        rng = np.random.default_rng(5)
        values = rng.uniform(0.0, 1000.0, size=2000)
        for v in values:
            hist.observe(float(v))
        for q in (0.5, 0.95, 0.99):
            exact = float(np.percentile(values, 100 * q))
            assert hist.quantile(q) == pytest.approx(exact, rel=0.05)

    def test_histogram_quantile_default_ladder_bounded_error(self):
        # The log ladder steps by at most 2.5x, so an interpolated
        # estimate is within one bucket ratio of the exact quantile.
        registry = MetricsRegistry()
        hist = registry.histogram("coarse")
        rng = np.random.default_rng(6)
        values = rng.lognormal(mean=0.0, sigma=1.5, size=1500)
        for v in values:
            hist.observe(float(v))
        for q in (0.5, 0.95, 0.99):
            exact = float(np.percentile(values, 100 * q))
            estimate = hist.quantile(q)
            assert estimate is not None
            assert exact / 2.5 <= estimate <= exact * 2.5
            assert hist.min <= estimate <= hist.max

    def test_histogram_quantile_empty_and_snapshot(self):
        registry = MetricsRegistry()
        hist = registry.histogram("empty")
        assert hist.quantile(0.5) is None
        assert hist.snapshot()["p50"] is None
        hist.observe(3.0)
        assert hist.snapshot()["p50"] == pytest.approx(3.0)

    def test_default_ladder_resolves_sub_millisecond(self):
        registry = MetricsRegistry()
        hist = registry.histogram("subms")
        for v in (0.002, 0.03, 0.4):
            hist.observe(v)
        # Three sub-millisecond observations land in three distinct buckets.
        assert sum(1 for c in hist.bucket_counts if c > 0) == 3

    def test_bucket_override_and_conflict(self):
        registry = MetricsRegistry()
        custom = (1.0, 2.0, 4.0)
        hist = registry.histogram("custom", buckets=custom)
        assert hist.bounds == custom
        assert registry.histogram("custom") is hist            # None = keep
        assert registry.histogram("custom", buckets=custom) is hist
        with pytest.raises(ConfigError):
            registry.histogram("custom", buckets=(1.0, 8.0))


# ---------------------------------------------------------------------------
# Op hooks
# ---------------------------------------------------------------------------
class TestHooks:
    def test_gemm_hook_counts_calls_and_flops(self, profiler):
        a = Tensor(np.ones((4, 8), dtype=np.float32))
        b = Tensor(np.ones((8, 5), dtype=np.float32))
        _ = a @ b
        stats = profiler.op("gemm")
        assert stats.calls == 1
        assert stats.flops == pytest.approx(2.0 * 4 * 5 * 8)
        assert stats.wall_ms > 0.0

    def test_disabled_hook_records_nothing(self):
        PROFILER.reset()
        assert not PROFILER.enabled
        a = Tensor(np.ones((4, 8), dtype=np.float32))
        b = Tensor(np.ones((8, 5), dtype=np.float32))
        _ = a @ b
        assert PROFILER.snapshot() == {}

    def test_arena_hooks_count_bytes(self, profiler):
        arena = Arena((1, 2, 0, 4), axis=2, dtype=np.float32)
        block = np.ones((1, 2, 8, 4), dtype=np.float32)
        arena.append(block)
        arena.view()
        copy_stats = profiler.op("arena_copy")
        assert copy_stats.calls >= 1
        assert copy_stats.bytes >= block.nbytes
        assert profiler.op("arena_view").calls == 1
        arena.view()   # cached: no second view record
        assert profiler.op("arena_view").calls == 1

    def test_ops_stamp_innermost_span(self, world):
        tracer = Tracer(enabled=True)
        PROFILER.reset()
        enable_profiling(tracer)
        try:
            with tracer.span("decode"):
                with tracer.span("draft"):
                    a = Tensor(np.ones((4, 8), dtype=np.float32))
                    _ = a @ Tensor(np.ones((8, 5), dtype=np.float32))
        finally:
            disable_profiling()
            PROFILER.tracer = None
        draft = [s for s in tracer.spans if s.name == "draft"][0]
        assert draft.attrs["gemm_calls"] == 1
        assert draft.attrs["gemm_ms"] > 0.0
        decode = [s for s in tracer.spans if s.name == "decode"][0]
        assert "gemm_ms" not in decode.attrs   # innermost span only

    def test_disabled_hook_near_zero_overhead(self):
        # The disabled path must cost one flag check.  Enabled does
        # strictly more (two clock reads + locked accounting per op), so
        # disabled best-of time is bounded by the enabled best-of time.
        a = Tensor(np.ones((8, 8), dtype=np.float32))
        b = Tensor(np.ones((8, 8), dtype=np.float32))

        def best_of(runs: int = 9, iters: int = 200) -> float:
            best = float("inf")
            for _ in range(runs):
                t0 = time.perf_counter()
                for _ in range(iters):
                    _ = a @ b
                best = min(best, time.perf_counter() - t0)
            return best

        PROFILER.reset()
        disable_profiling()
        disabled = best_of()
        enable_profiling()
        try:
            enabled = best_of()
        finally:
            disable_profiling()
            PROFILER.reset()
        assert disabled <= enabled * 1.25


# ---------------------------------------------------------------------------
# Attribution
# ---------------------------------------------------------------------------
class TestAttribution:
    def test_decode_attribution_completeness(self, world):
        tracer = Tracer(enabled=True)
        PROFILER.reset()
        enable_profiling(tracer)
        try:
            engine = _engine(world, tracer=tracer)
            engine.decode(world["samples"][0])
        finally:
            disable_profiling()
            PROFILER.tracer = None
        spans = tracer.spans
        report = build_attribution(spans)
        assert report.has_ops
        assert report.total_ms > 0.0
        # Measured op time never exceeds the wall of the span it ran in.
        for phase in report.phases.values():
            assert phase.gemm_ms + phase.arena_ms <= phase.wall_ms * 1.001
        # Buckets + residual account for the whole trace, and the
        # unattributed residual respects the span-tiling guarantee.
        total = sum(report.buckets.values())
        assert total <= report.total_ms * 1.001
        assert report.residual_fraction < 0.10
        assert report.buckets["gemm"] > 0.0
        rendered = render_attribution(report)
        assert "python_overhead" in rendered and "residual" in rendered

    def test_profiling_is_invisible_to_decoding(self, world):
        baseline = _engine(world).decode(world["samples"][0])
        PROFILER.reset()
        enable_profiling()
        try:
            profiled = _engine(world).decode(world["samples"][0])
        finally:
            disable_profiling()
            PROFILER.reset()
        # Byte-identical output: profiling never touches RNG or data.
        assert profiled.token_ids == baseline.token_ids
        assert profiled.text == baseline.text

    def test_attribution_without_ops_flags_it(self):
        tracer = Tracer(enabled=True)
        with tracer.span("decode"):
            with tracer.span("draft"):
                pass
        report = build_attribution(tracer.spans)
        assert not report.has_ops
        assert "profiling enabled" in render_attribution(report)

    def test_phase_lists_in_sync_with_summarizer(self):
        _self_check_phase_sets()


# ---------------------------------------------------------------------------
# Latency helpers
# ---------------------------------------------------------------------------
class TestLatencyHelpers:
    def test_collect_and_summarize(self):
        tracer = Tracer(enabled=True)
        for i, e2e in enumerate((100.0, 200.0, 300.0)):
            with tracer.span("request_latency", request_id=f"r{i}",
                             ttft_ms=10.0 * (i + 1), tpot_ms=5.0, e2e_ms=e2e):
                pass
        latencies = collect_latencies(tracer.spans)
        assert sorted(latencies["e2e_ms"]) == [100.0, 200.0, 300.0]
        digest = summarize_latencies(latencies)
        assert digest["e2e_ms"]["count"] == 3
        assert digest["e2e_ms"]["p50"] == pytest.approx(200.0)
        assert digest["ttft_ms"]["p99"] == pytest.approx(
            float(np.percentile([10.0, 20.0, 30.0], 99))
        )

    def test_empty_trace(self):
        assert collect_latencies([]) == {}
        assert summarize_latencies({}) == {}


# ---------------------------------------------------------------------------
# Flamegraph
# ---------------------------------------------------------------------------
class TestFlamegraph:
    def _trace(self) -> Tracer:
        tracer = Tracer(enabled=True)
        for _ in range(3):
            with tracer.span("decode"):
                with tracer.span("draft"):
                    time.sleep(0.001)
                with tracer.span("verify"):
                    time.sleep(0.002)
        return tracer

    def test_roundtrip(self, tmp_path):
        tracer = self._trace()
        folded = fold_spans(tracer)
        path = export_collapsed(tracer, tmp_path / "fg.collapsed")
        assert read_collapsed(path) == folded
        assert "decode;draft" in folded and "decode;verify" in folded

    def test_self_time_sums_to_wall(self):
        tracer = self._trace()
        spans = tracer.spans
        folded = fold_spans(spans)
        total_us = sum(folded.values())
        root_us = sum(1e6 * s.duration_s for s in spans if s.parent_id is None)
        # Self times tile the roots exactly up to integer rounding.
        assert total_us == pytest.approx(root_us, abs=len(spans) + 1)

    def test_rejects_malformed_file(self, tmp_path):
        bad = tmp_path / "bad.collapsed"
        bad.write_text("no trailing count here\n", encoding="utf-8")
        with pytest.raises(ConfigError):
            read_collapsed(bad)

    def test_orphan_spans_root_their_stacks(self):
        tracer = self._trace()
        spans = [s for s in tracer.spans if s.name != "decode"]  # drop parents
        folded = fold_spans(spans)
        assert set(folded) == {"draft", "verify"}
