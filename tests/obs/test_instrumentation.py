"""End-to-end tracing of real decodes: coverage, overhead, summarize CLI."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import AASDEngine, AASDEngineConfig
from repro.decoding import AutoregressiveDecoder
from repro.obs.__main__ import main as obs_main
from repro.obs.exporters import export_chrome, export_jsonl, read_chrome, read_jsonl
from repro.obs.summarize import render_summary, summarize_spans
from repro.obs.tracing import Tracer
from repro.training.trainer import TrainConfig, run_training
from repro.nn.tensor import Tensor


def _engine(world, tracer=None, seed=7, max_new_tokens=32):
    return AASDEngine(
        world["target"], world["head"], world["tokenizer"], world["cm"],
        AASDEngineConfig(gamma=3, max_new_tokens=max_new_tokens),
        rng=np.random.default_rng(seed),
        tracer=tracer,
    )


class TestOverheadGuard:
    def test_disabled_tracer_output_identical_to_untraced(self, world):
        """Tracing off must be a true no-op: byte-identical token stream."""
        baseline = _engine(world, tracer=None).decode(world["samples"][0])
        disabled = _engine(world, tracer=Tracer(enabled=False)).decode(world["samples"][0])
        assert disabled.token_ids == baseline.token_ids
        assert disabled.text == baseline.text
        assert disabled.sim_time_ms == pytest.approx(baseline.sim_time_ms)

    def test_enabled_tracer_does_not_perturb_decode(self, world):
        tracer = Tracer()
        baseline = _engine(world, tracer=None).decode(world["samples"][0])
        traced = _engine(world, tracer=tracer).decode(world["samples"][0])
        assert traced.token_ids == baseline.token_ids
        assert tracer.spans  # and we actually recorded something


class TestDecodeTrace:
    def test_phase_spans_tile_wall_time(self, world, tmp_path):
        """Chrome-trace per-phase durations sum to within 3% of wall time.

        3% (not tighter) because the raw-ndarray inference kernels cut
        per-phase work to the point where inter-phase bookkeeping and
        first-call costs (rope table growth, numpy internals) are a
        visible fraction of a single decode's wall time; a real coverage
        hole (an untraced phase) is far larger than 3%.
        """
        # Warm-up decode keeps one-time costs out of the traced run.
        _engine(world).decode(world["samples"][0])
        tracer = Tracer()
        record = _engine(world, tracer=tracer).decode(world["samples"][0])
        spans = read_chrome(export_chrome(tracer, tmp_path / "trace.json"))

        decode = [s for s in spans if s.name == "decode"]
        assert len(decode) == 1
        phase_s = sum(
            s.duration_s for s in spans
            if s.parent_id == decode[0].span_id
            and s.name in ("prefill", "draft", "verify", "fallback")
        )
        assert phase_s == pytest.approx(record.wall_time_s, rel=0.03)
        # The decode root itself also tracks the wall timer closely.
        assert decode[0].duration_s == pytest.approx(record.wall_time_s, rel=0.03)

    def test_span_structure_and_attrs(self, world):
        tracer = Tracer()
        record = _engine(world, tracer=tracer).decode(world["samples"][0])
        spans = tracer.spans
        names = {s.name for s in spans}
        assert {"decode", "prefill", "draft", "verify"} <= names
        verifies = [s for s in spans if s.name == "verify"]
        assert len(verifies) == len(record.blocks)
        assert sum(int(s.attrs["n_accepted"]) for s in verifies) == sum(
            b.n_accepted for b in record.blocks
        )
        # Simulated charges on phase spans add up to the record total.
        phase_sim = sum(s.sim_ms for s in spans if s.name != "decode")
        assert phase_sim == pytest.approx(record.sim_time_ms)

    def test_ar_baseline_traced(self, world):
        tracer = Tracer()
        ar = AutoregressiveDecoder(
            world["target"], world["tokenizer"], world["cm"],
            max_new_tokens=12, tracer=tracer,
        )
        record = ar.decode(world["samples"][0])
        names = [s.name for s in tracer.spans]
        assert names.count("ar_step") == record.n_tokens - 1
        assert "prefill" in names and "decode" in names


class TestSummarize:
    def test_summary_stats(self, world):
        tracer = Tracer()
        record = _engine(world, tracer=tracer).decode(world["samples"][0])
        summary = summarize_spans(tracer.spans)
        assert summary.n_decodes == 1
        assert summary.coverage is not None and summary.coverage > 0.99
        blocks = record.blocks
        drafted = sum(b.n_draft for b in blocks)
        if drafted:
            assert summary.acceptance_rate == pytest.approx(
                sum(b.n_accepted for b in blocks) / drafted
            )
        rendered = render_summary(summary)
        assert "prefill" in rendered and "verify" in rendered
        assert "coverage" in rendered

    def test_cli_on_both_formats(self, world, tmp_path, capsys):
        tracer = Tracer()
        _engine(world, tracer=tracer, max_new_tokens=8).decode(world["samples"][0])
        jsonl = export_jsonl(tracer, tmp_path / "t.jsonl")
        chrome = export_chrome(tracer, tmp_path / "t.json")
        for path in (jsonl, chrome):
            assert obs_main(["summarize", str(path)]) == 0
            out = capsys.readouterr().out
            assert "phase" in out and "prefill" in out
        assert obs_main(["summarize", str(jsonl), "--json"]) == 0
        assert '"n_decodes": 1' in capsys.readouterr().out


class TestMemorySection:
    def test_decode_spans_carry_arena_attrs(self, world):
        tracer = Tracer()
        _engine(world, tracer=tracer).decode(world["samples"][0])
        summary = summarize_spans(tracer.spans)
        assert summary.has_memory
        assert summary.bytes_copied > 0
        assert summary.peak_cache_tokens > 0
        rendered = render_summary(summary)
        assert "memory:" in rendered
        assert "copied by KV arenas" in rendered
        assert "peak cache" in rendered

    def test_memory_section_absent_without_attrs(self, world):
        """Traces from non-decode work must not grow a bogus memory line."""
        tracer = Tracer()
        with tracer.span("decode"):
            with tracer.span("prefill"):
                pass
        summary = summarize_spans(tracer.spans)
        assert not summary.has_memory
        assert "memory:" not in render_summary(summary)

    def test_json_cli_reports_memory(self, world, tmp_path, capsys):
        tracer = Tracer()
        _engine(world, tracer=tracer, max_new_tokens=8).decode(world["samples"][0])
        jsonl = export_jsonl(tracer, tmp_path / "t.jsonl")
        assert obs_main(["summarize", str(jsonl), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["memory"] is not None
        assert payload["memory"]["bytes_copied"] > 0
        assert payload["memory"]["peak_cache_tokens"] > 0


class TestResilienceSection:
    def _schedule_span(self, tracer, **attrs):
        with tracer.span("schedule") as span:
            for key, value in attrs.items():
                span.set_attr(key, value)

    def test_schedule_spans_aggregate_retries_and_breaker(self):
        tracer = Tracer()
        self._schedule_span(tracer, breaker_state="closed", n_retried=2)
        self._schedule_span(tracer, breaker_state="open", n_shed=3)
        self._schedule_span(tracer, breaker_state="open")
        summary = summarize_spans(tracer.spans)
        assert summary.has_resilience
        assert summary.n_retries == 2 and summary.n_shed == 3
        assert summary.breaker_rounds == {"closed": 1, "open": 2}
        rendered = render_summary(summary)
        assert "resilience: 2 retries; 3 shed" in rendered
        assert "breaker rounds: closed=1, open=2" in rendered

    def test_section_absent_without_resilience_attrs(self):
        tracer = Tracer()
        with tracer.span("schedule"):
            pass
        summary = summarize_spans(tracer.spans)
        assert not summary.has_resilience
        assert "resilience:" not in render_summary(summary)


class TestAcceptanceSection:
    """The ``acceptance:`` block: tokens/target-forward + block-eff p50/p95."""

    def _verify_span(self, tracer, n_accepted, batch=None):
        with tracer.span("verify") as span:
            span.set_attr("n_accepted", n_accepted)
            if batch is not None:
                span.set_attr("batch", batch)

    def test_synthetic_spans_aggregate_exactly(self):
        tracer = Tracer()
        with tracer.span("prefill"):
            pass
        self._verify_span(tracer, 3)            # solo: emits 4
        self._verify_span(tracer, 1)            # solo: emits 2
        self._verify_span(tracer, 4, batch=2)   # batched: emits 6 over 2 reqs
        summary = summarize_spans(tracer.spans)
        assert summary.n_target_forward_spans == 4
        # prefill 1 + verify 4 + 2 + 6 = 13 tokens over 4 forwards.
        assert summary.tokens_emitted == 13
        assert summary.accepted_per_forward == pytest.approx(13 / 4)
        # Per-request samples: [4, 2, 3, 3] (batched span -> round mean x2).
        assert sorted(summary.block_emitted) == [2.0, 3.0, 3.0, 4.0]

    def test_rendered_section_snapshot(self):
        tracer = Tracer()
        with tracer.span("prefill"):
            pass
        self._verify_span(tracer, 3)
        self._verify_span(tracer, 1)
        rendered = render_summary(summarize_spans(tracer.spans))
        assert (
            "acceptance: 2.333 accepted tokens/target-forward; "
            "block efficiency p50 3.00 p95 3.90" in rendered
        )

    def test_section_absent_without_forward_spans(self):
        tracer = Tracer()
        with tracer.span("draft"):
            pass
        summary = summarize_spans(tracer.spans)
        assert summary.accepted_per_forward is None
        assert "acceptance:" not in render_summary(summary)

    def test_real_decode_matches_record(self, world):
        """Trace-derived apf equals the record's pre-trim forward accounting."""
        tracer = Tracer()
        record = _engine(world, tracer=tracer).decode(world["samples"][0])
        summary = summarize_spans(tracer.spans)
        assert summary.n_target_forward_spans == record.n_target_forwards
        emitted = 1 + sum(b.n_emitted for b in record.blocks)  # prefill + blocks
        assert summary.tokens_emitted == emitted
        assert summary.accepted_per_forward == pytest.approx(
            emitted / record.n_target_forwards
        )

    def test_json_cli_reports_acceptance(self, world, tmp_path, capsys):
        tracer = Tracer()
        _engine(world, tracer=tracer, max_new_tokens=8).decode(world["samples"][0])
        jsonl = export_jsonl(tracer, tmp_path / "t.jsonl")
        assert obs_main(["summarize", str(jsonl), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        acc = payload["acceptance"]
        assert acc is not None
        assert acc["accepted_per_target_forward"] >= 1.0
        assert acc["block_efficiency_p95"] >= acc["block_efficiency_p50"] >= 1.0


class TestTrainingTrace:
    def test_run_training_emits_spans(self, rng):
        from repro.obs.tracing import set_tracer

        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            weight = Tensor(np.array([2.0]), requires_grad=True)

            def loss_fn(step, gen):
                return (weight * weight).sum()

            result = run_training([weight], loss_fn, TrainConfig(steps=5, warmup_steps=1), rng)
        finally:
            set_tracer(previous)
        assert len(result.losses) == 5
        names = [s.name for s in tracer.spans]
        assert names.count("train_step") == 5
        assert names.count("train") == 1
        train = [s for s in tracer.spans if s.name == "train"][0]
        assert train.attrs["steps"] == 5
