"""Unit tests for the guard validators and the deterministic fault injectors."""

import numpy as np
import pytest

from repro.core.hybrid_cache import SEGMENT_TEXT, HybridKVCache
from repro.errors import ConfigError, DecodingError, GuardViolation
from repro.decoding.sampling import SamplerConfig, logits_to_probs, speculative_verify
from repro.nn.layers import Linear
from repro.robustness import (
    ArenaPressureFault,
    DraftFault,
    FaultyDraftHead,
    LatencySpikeFault,
    NaNLogitsFault,
    all_finite,
    check_hybrid_cache,
    ensure_finite,
    inject_nan_weights,
    is_transient,
)


class TestFiniteGuards:
    def test_ensure_finite_passes_clean(self):
        arr = np.ones((2, 3))
        assert ensure_finite(arr, "x") is not None

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_ensure_finite_raises(self, bad):
        arr = np.ones(4)
        arr[2] = bad
        with pytest.raises(GuardViolation) as excinfo:
            ensure_finite(arr, "draft logits")
        assert "draft logits" in str(excinfo.value)

    def test_all_finite(self):
        assert all_finite(np.zeros(3))
        assert not all_finite(np.array([1.0, np.nan]))


class TestCacheGuard:
    def _cache(self, n=4, n_heads=2, head_dim=4):
        cache = HybridKVCache(n_heads, head_dim)
        k = np.ones((1, n_heads, n, head_dim), dtype=np.float32)
        cache.append_context(k, k, np.arange(n, dtype=np.int64), SEGMENT_TEXT)
        return cache

    def test_clean_cache_passes(self):
        check_hybrid_cache(self._cache())

    def test_nan_in_draft_segment_detected(self):
        cache = self._cache()
        bad = np.full((1, 2, 1, 4), np.nan, dtype=np.float32)
        cache.append_draft(bad, bad, np.asarray([9], dtype=np.int64))
        with pytest.raises(GuardViolation):
            check_hybrid_cache(cache)

    def test_negative_positions_detected(self):
        cache = HybridKVCache(2, 4)
        k = np.ones((1, 2, 1, 4), dtype=np.float32)
        cache.append_context(k, k, np.asarray([-1], dtype=np.int64), SEGMENT_TEXT)
        with pytest.raises(GuardViolation):
            check_hybrid_cache(cache)


class TestNanWeightInjection:
    def test_deterministic_and_counted(self, rng):
        a = Linear(8, 8, rng=np.random.default_rng(0))
        b = Linear(8, 8, rng=np.random.default_rng(0))
        n_a = inject_nan_weights(a, fraction=0.1, seed=5)
        n_b = inject_nan_weights(b, fraction=0.1, seed=5)
        assert n_a == n_b > 0
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert np.array_equal(np.isnan(pa.data), np.isnan(pb.data))
            assert np.isnan(pa.data).sum() > 0

    def test_bad_fraction_rejected(self, rng):
        with pytest.raises(ConfigError):
            inject_nan_weights(Linear(2, 2, rng=rng), fraction=0.0)


class TestFaultyDraftHeadSchedule:
    class _StubHead:
        class config:
            vocab_size = 11
            n_heads = 2
            head_dim = 4

        def step(self, token_id, position, hybrid, **kwargs):
            return np.zeros(11)

    def test_fail_steps_pins_exact_indices(self):
        head = FaultyDraftHead(self._StubHead(), mode="nan-logits", fail_steps=[1, 3])
        results = [head.step(0, i, None) for i in range(5)]
        nan_steps = [i for i, r in enumerate(results) if np.isnan(r).any()]
        assert nan_steps == [1, 3]
        assert head.n_faults == 2 and head.n_steps == 5

    def test_fail_every_with_offset(self):
        head = FaultyDraftHead(self._StubHead(), mode="inf-logits", fail_every=2, start_step=1)
        results = [head.step(0, i, None) for i in range(6)]
        inf_steps = [i for i, r in enumerate(results) if np.isinf(r).any()]
        assert inf_steps == [1, 3, 5]

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigError):
            FaultyDraftHead(self._StubHead(), mode="gremlins")

    def test_delegates_attributes(self):
        head = FaultyDraftHead(self._StubHead())
        assert head.config.vocab_size == 11


class TestFaultTaxonomy:
    def test_transient_flags_by_type(self):
        assert not is_transient(DraftFault("generic"))
        assert is_transient(DraftFault("flaky", transient=True))
        assert is_transient(LatencySpikeFault("slow"))
        assert is_transient(ArenaPressureFault("oom"))
        assert not is_transient(NaNLogitsFault("nan"))

    def test_subtypes_are_draft_faults(self):
        for cls in (LatencySpikeFault, ArenaPressureFault, NaNLogitsFault):
            assert issubclass(cls, DraftFault)

    def test_non_draft_exceptions_are_persistent(self):
        assert not is_transient(RuntimeError("boom"))
        assert not is_transient(ValueError("bad"))


class TestPerRequestSchedule:
    """Per-request fault keying: schedules must not depend on batch order."""

    def _head(self, **kwargs):
        return FaultyDraftHead(TestFaultyDraftHeadSchedule._StubHead(),
                               mode="raise", per_request=True, **kwargs)

    def _drive(self, head, plan):
        """Step request ids in ``plan`` order; return ids that faulted."""
        faulted = []
        for rid in plan:
            try:
                head.step(0, 0, None, request_id=rid)
            except DraftFault:
                faulted.append(rid)
        return faulted

    def test_interleaving_does_not_move_faults(self):
        # Each request faults at its *own* step 1, no matter how the
        # scheduler interleaves the two requests.
        sequential = self._drive(self._head(fail_steps=[1]),
                                 ["a", "a", "a", "b", "b", "b"])
        interleaved = self._drive(self._head(fail_steps=[1]),
                                  ["a", "b", "a", "b", "a", "b"])
        assert sorted(sequential) == sorted(interleaved) == ["a", "b"]

    def test_global_schedule_remains_order_dependent_default(self):
        # The legacy global counter is preserved as the default.
        head = FaultyDraftHead(TestFaultyDraftHeadSchedule._StubHead(),
                               mode="raise", fail_steps=[0])
        faulted = self._drive(head, ["a", "b"])
        assert faulted == ["a"]
        assert not head.per_request

    def test_storm_schedule_is_deterministic_and_rate_bounded(self):
        head = self._head(request_fault_rate=0.2, seed=9)
        ids = [f"req-{i:03d}" for i in range(200)]
        afflicted = [rid for rid in ids if head.storm_steps(rid)]
        # identical on a second head with the same seed
        again = self._head(request_fault_rate=0.2, seed=9)
        assert afflicted == [rid for rid in ids if again.storm_steps(rid)]
        # roughly the configured rate, and inside the horizon
        assert 0.1 <= len(afflicted) / len(ids) <= 0.3
        for rid in afflicted:
            assert all(0 <= s < head.fault_horizon for s in head.storm_steps(rid))

    def test_storm_rate_extremes(self):
        assert not self._head(request_fault_rate=0.0).storm_steps("anything")
        assert self._head(request_fault_rate=1.0).storm_steps("anything")

    def test_retry_runs_past_one_shot_fault(self):
        # The per-request counter never resets: after the fault at step 0
        # fires once, a retried request keeps stepping cleanly.
        head = self._head(request_fault_rate=1.0, faults_per_request=1,
                          fault_horizon=1, transient=True)
        with pytest.raises(DraftFault) as excinfo:
            head.step(0, 0, None, request_id="r")
        assert excinfo.value.transient
        for _ in range(5):   # the "retry" resumes at index 1
            head.step(0, 0, None, request_id="r")
        assert head.faults_by_request["r"] == 1


class TestSamplingHardening:
    def test_partial_nan_logits_masked(self):
        logits = np.array([1.0, np.nan, 3.0, np.inf])
        probs = logits_to_probs(logits, SamplerConfig(greedy=True))
        assert probs[2] == 1.0 and probs.sum() == 1.0

    def test_partial_nan_logits_masked_sampling(self):
        logits = np.array([1.0, np.nan, 3.0, -np.inf])
        probs = logits_to_probs(logits, SamplerConfig(greedy=False, temperature=1.0))
        assert np.isfinite(probs).all()
        assert probs[1] == 0.0 and probs[3] == 0.0
        assert probs.sum() == pytest.approx(1.0)

    def test_all_nan_logits_raise(self):
        with pytest.raises(DecodingError):
            logits_to_probs(np.full(5, np.nan), SamplerConfig())

    def test_verify_with_nan_draft_probs_rejects_losslessly(self, rng):
        config = SamplerConfig(greedy=False, temperature=1.0)
        vocab = 6
        target_logits = np.zeros((2, vocab))
        target_logits[:, 2] = 50.0  # target overwhelmingly wants token 2
        draft_probs = np.full((1, vocab), np.nan)
        outcome = speculative_verify([4], draft_probs, target_logits, config, rng)
        assert outcome.n_accepted == 0
        assert outcome.next_token == 2
        assert not outcome.all_accepted

    def test_verify_greedy_unaffected_by_nan_draft_probs(self, rng):
        config = SamplerConfig(greedy=True)
        vocab = 6
        target_logits = np.zeros((2, vocab))
        target_logits[0, 4] = 10.0
        target_logits[1, 1] = 10.0
        draft_probs = np.full((1, vocab), np.nan)
        outcome = speculative_verify([4], draft_probs, target_logits, config, rng)
        assert outcome.accepted == (4,)
        assert outcome.next_token == 1
