"""Chaos harness: the four canonical storms and their invariants.

The module-scoped report runs the full quick suite once; individual
tests then pin the per-storm acceptance criteria — the headline one
being the transient-draft storm: under a 20% per-request transient
fault rate with engine fallback disabled, at least 95% of requests must
complete within deadline via the retry path, token-identical to a
fault-free run.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import AASDDraftHead, DraftHeadConfig
from repro.data.tasks import make_dataset
from repro.decoding import CostModel, get_profile
from repro.errors import ChaosError
from repro.models.config import LlamaConfig, LlavaConfig, VisionConfig
from repro.models.llava import MiniLlava
from repro.obs.metrics import get_registry
from repro.robustness.chaos import (
    ChaosWorld,
    StormProfile,
    StormReport,
    assert_chaos,
    default_profiles,
    run_chaos,
    run_storm,
)


@pytest.fixture(scope="module")
def chaos_world(tokenizer):
    gen = np.random.default_rng(0)
    vocab = tokenizer.vocab_size
    target = MiniLlava(
        LlavaConfig(
            llama=LlamaConfig(vocab_size=vocab, dim=16, n_layers=1,
                              n_heads=2, mlp_hidden=24),
            vision=VisionConfig(image_size=48, patch_size=16, dim=8,
                                n_layers=1, n_heads=2, mlp_hidden=16),
        ),
        rng=gen,
    )
    head = AASDDraftHead(
        DraftHeadConfig(vocab_size=vocab, dim=16, n_heads=2, mlp_hidden=24,
                        n_vision_tokens=9, k_compressed=3),
        rng=gen,
    )
    return ChaosWorld(
        target=target,
        head=head,
        tokenizer=tokenizer,
        cost_model=CostModel(get_profile("sim-7b")),
        samples=make_dataset("coco-sim", 8, seed=4).samples,
    )


@pytest.fixture(scope="module")
def chaos_report(chaos_world, tmp_path_factory):
    work_dir = tmp_path_factory.mktemp("chaos")
    return run_chaos(chaos_world, quick=True, work_dir=work_dir)


def _storm(report, name) -> StormReport:
    by_name = {s.profile: s for s in report.storms}
    assert name in by_name, f"missing storm {name}: {sorted(by_name)}"
    return by_name[name]


class TestStormSuite:
    def test_every_storm_passes_every_invariant(self, chaos_report):
        for storm in chaos_report.storms:
            assert storm.passed, f"{storm.profile}: {storm.violations}"
        assert_chaos(chaos_report)   # and the aggregate raises nothing

    def test_transient_storm_meets_availability_slo(self, chaos_report):
        storm = _storm(chaos_report, "transient-draft")
        # >=95% of requests complete within deadline via retry, and every
        # surviving output is token-identical to the fault-free oracle.
        assert storm.availability >= 0.95
        assert storm.n_retries > 0
        assert storm.token_identical

    def test_latency_storm_cycles_the_breaker(self, chaos_report):
        storm = _storm(chaos_report, "latency-spike")
        assert storm.availability == 1.0
        assert storm.token_identical   # forced fallback stays AR-identical
        transitions = storm.breaker_transitions
        assert transitions, "the breaker never reacted to a 100% fault storm"
        assert (transitions[0][1], transitions[0][2]) == ("closed", "open")
        # a persistent fault storm must also fail at least one probe cycle
        assert any(src == "half-open" and dst == "open"
                   for _, src, dst in transitions)

    def test_queue_flood_sheds_instead_of_hanging(self, chaos_report):
        storm = _storm(chaos_report, "queue-flood")
        assert storm.n_shed > 0
        terminal = (storm.n_completed + storm.n_timeout
                    + storm.n_rejected + storm.n_failed)
        assert terminal == storm.n_requests
        assert storm.token_identical   # survivors are still exact

    def test_corrupt_reload_is_detected(self, chaos_report):
        storm = _storm(chaos_report, "corrupt-reload")
        assert storm.checkpoint_error is not None
        assert storm.availability == 1.0   # serving proceeds on healthy weights


class TestHarnessPlumbing:
    def test_report_roundtrips_to_json(self, chaos_report):
        payload = json.dumps(chaos_report.to_dict())
        decoded = json.loads(payload)
        assert decoded["passed"] is True
        assert len(decoded["storms"]) == len(chaos_report.storms)

    def test_storms_are_deterministic(self, chaos_world, tmp_path):
        profile = default_profiles(quick=True)[0]
        first = run_storm(profile, chaos_world, work_dir=tmp_path)
        second = run_storm(profile, chaos_world, work_dir=tmp_path)
        assert first == second

    def test_registry_swap_is_restored(self, chaos_world, tmp_path):
        before = get_registry()
        run_storm(default_profiles(quick=True)[0], chaos_world,
                  work_dir=tmp_path)
        assert get_registry() is before

    def test_corruption_storm_requires_work_dir(self, chaos_world):
        profile = StormProfile(name="corrupt", n_requests=1,
                               corrupt_reload="truncate")
        with pytest.raises(ChaosError):
            run_storm(profile, chaos_world)

    def test_assert_chaos_lists_violations(self, chaos_report):
        bad_storm = StormReport(
            profile="doctored", n_requests=1, n_completed=0, n_timeout=0,
            n_rejected=0, n_failed=1, n_retries=0, n_shed=0,
            availability=0.0, sim_ms=0.0, total_tokens=0,
            token_identical=False, breaker_transitions=(),
            checkpoint_error=None,
            violations=("output diverged", "counter mismatch"),
        )
        doctored = type(chaos_report)(storms=(bad_storm,))
        with pytest.raises(ChaosError) as excinfo:
            assert_chaos(doctored)
        message = str(excinfo.value)
        assert "[doctored] output diverged" in message
        assert "[doctored] counter mismatch" in message
