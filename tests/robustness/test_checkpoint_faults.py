"""Checkpoint fault injection: truncation, byte flips, checksum mismatch."""

import json

import numpy as np
import pytest

from repro.errors import CheckpointError
from repro.nn.layers import Linear
from repro.nn.serialization import (
    load_checkpoint,
    load_state_dict,
    save_checkpoint,
    save_state_dict,
    state_dict_checksums,
    verify_checkpoint,
)
from repro.robustness import corrupt_checkpoint, flip_checkpoint_bytes, truncate_checkpoint


@pytest.fixture()
def state(rng):
    return {"a": rng.standard_normal((4, 5)), "b": np.arange(7.0)}


class TestSuffixNormalisation:
    def test_save_without_suffix_load_without_suffix(self, tmp_path, state):
        save_state_dict(tmp_path / "ckpt", state)
        assert (tmp_path / "ckpt.npz").exists()
        loaded, _ = load_state_dict(tmp_path / "ckpt")
        assert np.allclose(loaded["a"], state["a"])

    def test_mixed_suffix_roundtrip(self, tmp_path, state):
        save_state_dict(tmp_path / "ckpt.npz", state)
        loaded, _ = load_state_dict(tmp_path / "ckpt")
        assert set(loaded) == {"a", "b"}


class TestCorruptionDetection:
    def test_truncated_checkpoint_raises_checkpoint_error(self, tmp_path, state):
        path = tmp_path / "c.npz"
        save_state_dict(path, state)
        truncate_checkpoint(path, keep_fraction=0.5)
        with pytest.raises(CheckpointError) as excinfo:
            load_state_dict(path)
        assert "c.npz" in str(excinfo.value)

    def test_byteflipped_checkpoint_raises_checkpoint_error(self, tmp_path, state):
        path = tmp_path / "c.npz"
        save_state_dict(path, state)
        flip_checkpoint_bytes(path, n_flips=16, seed=7)
        with pytest.raises(CheckpointError):
            load_state_dict(path)

    @pytest.mark.parametrize("mode", ["truncate", "byteflip"])
    def test_corrupt_checkpoint_modes(self, tmp_path, state, mode):
        path = tmp_path / "c.npz"
        save_state_dict(path, state)
        corrupt_checkpoint(path, mode=mode)
        report = verify_checkpoint(path)
        assert report["ok"] is False
        assert report["error"]

    def test_missing_file_raises_checkpoint_error(self, tmp_path):
        with pytest.raises(CheckpointError) as excinfo:
            load_state_dict(tmp_path / "nope.npz")
        assert "nope.npz" in str(excinfo.value)

    def test_checksum_mismatch_detected(self, tmp_path, state):
        # Forge an archive whose manifest disagrees with its tensors: zip
        # CRCs pass (the file is structurally valid) but SHA-256 must not.
        bad_manifest = state_dict_checksums({"a": state["a"] + 1.0, "b": state["b"]})
        payload = dict(state)
        payload["__checksums_json__"] = np.frombuffer(
            json.dumps(bad_manifest).encode("utf-8"), dtype=np.uint8
        )
        np.savez(tmp_path / "forged.npz", **payload)
        with pytest.raises(CheckpointError) as excinfo:
            load_state_dict(tmp_path / "forged.npz")
        assert "checksum mismatch" in str(excinfo.value)

    def test_manifest_missing_tensor_detected(self, tmp_path, state):
        manifest = state_dict_checksums(state)
        payload = {"a": state["a"]}  # drop tensor "b" but keep its manifest entry
        payload["__checksums_json__"] = np.frombuffer(
            json.dumps(manifest).encode("utf-8"), dtype=np.uint8
        )
        np.savez(tmp_path / "partial.npz", **payload)
        with pytest.raises(CheckpointError) as excinfo:
            load_state_dict(tmp_path / "partial.npz")
        assert "missing tensors" in str(excinfo.value)

    def test_legacy_archive_without_manifest_loads(self, tmp_path, state):
        np.savez(tmp_path / "legacy.npz", **state)
        loaded, meta = load_state_dict(tmp_path / "legacy.npz")
        assert meta is None
        assert np.allclose(loaded["b"], state["b"])
        report = verify_checkpoint(tmp_path / "legacy.npz")
        assert report["ok"] is True and report["has_checksums"] is False


class TestVerifyCheckpoint:
    def test_healthy_report(self, tmp_path, state):
        save_state_dict(tmp_path / "ok.npz", state)
        report = verify_checkpoint(tmp_path / "ok.npz")
        assert report == {
            "ok": True,
            "n_tensors": 2,
            "has_checksums": True,
            "error": None,
        }


class TestModuleCheckpointWrapping:
    def test_missing_tensor_wrapped(self, tmp_path, rng):
        module = Linear(4, 3, rng=rng)
        state = module.state_dict()
        state.pop(sorted(state)[0])
        save_state_dict(tmp_path / "partial.npz", state)
        with pytest.raises(CheckpointError) as excinfo:
            load_checkpoint(tmp_path / "partial.npz", Linear(4, 3, rng=rng))
        assert "partial.npz" in str(excinfo.value)

    def test_shape_mismatch_wrapped(self, tmp_path, rng):
        save_checkpoint(tmp_path / "lin.npz", Linear(4, 3, rng=rng))
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path / "lin.npz", Linear(5, 3, rng=rng), strict=False)

    def test_atomic_write_leaves_no_temp_files(self, tmp_path, state):
        save_state_dict(tmp_path / "a.npz", state)
        save_state_dict(tmp_path / "a.npz", state)  # overwrite in place
        leftovers = [p for p in tmp_path.iterdir() if p.name != "a.npz"]
        assert leftovers == []
