"""Zoo fault recovery: corrupt cached artifacts are quarantined and rebuilt."""

import numpy as np
import pytest

from repro.errors import CheckpointError
from repro.robustness import corrupt_checkpoint
from repro.zoo import PROFILE_SMOKE, ModelZoo


class FakeModel:
    """Minimal state_dict/load_state_dict carrier for cache-layer tests."""

    def __init__(self, value=0.0):
        self.state = {"w": np.full(3, value), "b": np.zeros(2)}

    def state_dict(self):
        return dict(self.state)

    def load_state_dict(self, state):
        if set(state) != set(self.state):
            raise KeyError(f"state dict mismatch: {sorted(state)}")
        self.state = {k: np.asarray(v) for k, v in state.items()}


@pytest.fixture()
def fake_zoo(tmp_path):
    return ModelZoo(PROFILE_SMOKE, cache_dir=tmp_path, verbose=False)


class TestCacheLayer:
    def test_save_load_roundtrip(self, fake_zoo):
        fake_zoo._save("fake", FakeModel(1.5))
        model = FakeModel()
        assert fake_zoo._load_into("fake", model)
        assert np.allclose(model.state["w"], 1.5)

    @pytest.mark.parametrize("mode", ["truncate", "byteflip"])
    def test_corrupt_artifact_quarantined_not_raised(self, fake_zoo, mode):
        fake_zoo._save("fake", FakeModel(1.5))
        corrupt_checkpoint(fake_zoo._path("fake"), mode=mode)
        assert not fake_zoo._load_into("fake", FakeModel())   # no exception
        assert not fake_zoo._path("fake").exists()
        quarantined = fake_zoo.cache_dir / "fake.corrupt"
        assert quarantined.exists()

    def test_rebuild_after_quarantine(self, fake_zoo):
        fake_zoo._save("fake", FakeModel(1.5))
        corrupt_checkpoint(fake_zoo._path("fake"), mode="truncate")
        assert not fake_zoo._load_into("fake", FakeModel())
        # The caller's contract: a False return means "train and save".
        fake_zoo._save("fake", FakeModel(2.5))
        model = FakeModel()
        assert fake_zoo._load_into("fake", model)
        assert np.allclose(model.state["w"], 2.5)

    def test_stale_geometry_artifact_quarantined(self, fake_zoo):
        fake_zoo._save("fake", FakeModel())
        class Other:
            def load_state_dict(self, state):
                raise KeyError("unexpected tensors")
        assert not fake_zoo._load_into("fake", Other())
        assert (fake_zoo.cache_dir / "fake.corrupt").exists()

    def test_verify_cache_reports_each_artifact(self, fake_zoo):
        fake_zoo._save("good", FakeModel())
        fake_zoo._save("bad", FakeModel())
        corrupt_checkpoint(fake_zoo._path("bad"), mode="byteflip")
        report = fake_zoo.verify_cache()
        assert report["good.npz"]["ok"] is True
        assert report["bad.npz"]["ok"] is False

    def test_corrupt_vocab_rebuilt(self, fake_zoo):
        tok = fake_zoo.tokenizer()
        vocab_path = fake_zoo.cache_dir / "vocab.json"
        assert vocab_path.exists()
        vocab_path.write_text("{not json", encoding="utf-8")
        rebuilt = ModelZoo(PROFILE_SMOKE, cache_dir=fake_zoo.cache_dir, verbose=False)
        tok2 = rebuilt.tokenizer()
        assert tok2.vocab_size == tok.vocab_size
        assert (fake_zoo.cache_dir / "vocab.corrupt").exists()


class TestEndToEndRebuild:
    def test_corrupt_cached_draft_is_rebuilt_transparently(self, smoke_zoo):
        # Ensure the artifact exists (trains on first session, then cached).
        original = smoke_zoo.text_draft("ft", "sim-7b")
        path = smoke_zoo.cache_dir / "ft-llama.npz"
        assert path.exists()
        corrupt_checkpoint(path, mode="truncate")
        # A fresh zoo sees the corrupt file, quarantines it, and retrains.
        fresh = ModelZoo(PROFILE_SMOKE, cache_dir=smoke_zoo.cache_dir, verbose=False)
        rebuilt = fresh.text_draft("ft", "sim-7b")
        assert path.exists()
        assert (smoke_zoo.cache_dir / "ft-llama.corrupt").exists()
        a = dict(original.named_parameters())
        b = dict(rebuilt.named_parameters())
        assert set(a) == set(b)
        for name in a:
            assert a[name].data.shape == b[name].data.shape, name
        # The rebuilt artifact passes integrity verification end-to-end.
        assert fresh.verify_cache()["ft-llama.npz"]["ok"] is True
