"""Engine graceful degradation: a broken drafter costs speed, never output.

These tests run on tiny *untrained* models — losslessness is a structural
property of draft-then-verify, not of training quality, so greedy AASD
output must match greedy autoregressive output token-for-token even when
the draft path is actively sabotaged.
"""

import numpy as np
import pytest

from repro.core.draft_head import AASDDraftHead, DraftHeadConfig
from repro.core.engine import AASDEngine, AASDEngineConfig
from repro.data.tasks import make_dataset
from repro.decoding import AutoregressiveDecoder
from repro.decoding.cost_model import CostModel, get_profile
from repro.decoding.metrics import aggregate_metrics
from repro.errors import GuardViolation
from repro.robustness import DraftFault, FaultyDraftHead, inject_nan_weights


@pytest.fixture(scope="module")
def tiny(tokenizer):
    from repro.models.config import get_config
    from repro.models.llava import MiniLlava

    target = MiniLlava(get_config("sim-112m-llava", tokenizer.vocab_size),
                       rng=np.random.default_rng(0))
    target.eval()
    head = AASDDraftHead(
        DraftHeadConfig.for_target(target.config.llama,
                                   n_vision_tokens=target.n_vision_tokens),
        rng=np.random.default_rng(1),
    )
    head.init_from_target(target.llama)
    head.eval()
    return target, head


@pytest.fixture(scope="module")
def samples():
    return list(make_dataset("coco-sim", 2, seed=0))


@pytest.fixture(scope="module")
def cost_model():
    return CostModel(get_profile("sim-7b"))


@pytest.fixture(scope="module")
def ar_records(tiny, tokenizer, cost_model, samples):
    target, _ = tiny
    decoder = AutoregressiveDecoder(target, tokenizer, cost_model, max_new_tokens=16)
    return [decoder.decode(s) for s in samples]


def _engine(target, head, tokenizer, cost_model, **overrides):
    config = AASDEngineConfig(gamma=3, max_new_tokens=16, **overrides)
    return AASDEngine(target, head, tokenizer, cost_model, config)


class TestFaultModes:
    @pytest.mark.parametrize("mode", ["nan-logits", "inf-logits", "raise", "corrupt-cache"])
    def test_output_matches_ar_and_faults_counted(
        self, tiny, tokenizer, cost_model, samples, ar_records, mode
    ):
        target, head = tiny
        faulty = FaultyDraftHead(head, mode=mode, fail_every=2)
        engine = _engine(target, faulty, tokenizer, cost_model)
        for sample, ar in zip(samples, ar_records):
            record = engine.decode(sample)
            assert record.token_ids == ar.token_ids
            assert record.n_draft_faults > 0
            assert record.degraded
            assert record.fault_log

    def test_every_step_faulting_goes_target_only(
        self, tiny, tokenizer, cost_model, samples, ar_records
    ):
        target, head = tiny
        faulty = FaultyDraftHead(head, mode="nan-logits", fail_every=1)
        engine = _engine(target, faulty, tokenizer, cost_model, max_draft_faults=2)
        record = engine.decode(samples[0])
        assert record.token_ids == ar_records[0].token_ids
        assert record.fallback_mode == "target-only"
        assert record.n_draft_faults == 2          # capped by max_draft_faults
        assert record.n_fallback_steps > 0
        assert record.blocks == []                 # no block ever verified

    def test_single_fault_recovers_and_keeps_speculating(
        self, tiny, tokenizer, cost_model, samples, ar_records
    ):
        target, head = tiny
        faulty = FaultyDraftHead(head, mode="raise", fail_steps=[0])
        engine = _engine(target, faulty, tokenizer, cost_model)
        record = engine.decode(samples[0])
        assert record.token_ids == ar_records[0].token_ids
        assert record.n_draft_faults == 1
        assert record.fallback_mode == "degraded"  # never escalated
        assert record.blocks                       # speculation resumed

    def test_nan_weights_in_head_degrade_gracefully(
        self, tokenizer, cost_model, samples, ar_records, tiny
    ):
        target, _ = tiny
        head = AASDDraftHead(
            DraftHeadConfig.for_target(target.config.llama,
                                       n_vision_tokens=target.n_vision_tokens),
            rng=np.random.default_rng(1),
        )
        head.init_from_target(target.llama)
        head.eval()
        inject_nan_weights(head, fraction=0.02, seed=0)
        engine = _engine(target, head, tokenizer, cost_model)
        record = engine.decode(samples[0])
        assert record.token_ids == ar_records[0].token_ids
        assert record.n_draft_faults > 0

    def test_clean_decode_reports_no_faults(
        self, tiny, tokenizer, cost_model, samples, ar_records
    ):
        target, head = tiny
        engine = _engine(target, head, tokenizer, cost_model)
        for sample, ar in zip(samples, ar_records):
            record = engine.decode(sample)
            assert record.token_ids == ar.token_ids
            assert record.n_draft_faults == 0
            assert not record.degraded
            assert record.fallback_mode == "none"


class TestFallbackDisabled:
    def test_fault_propagates_when_fallback_off(
        self, tiny, tokenizer, cost_model, samples
    ):
        target, head = tiny
        faulty = FaultyDraftHead(head, mode="nan-logits", fail_every=1)
        engine = _engine(target, faulty, tokenizer, cost_model, fallback_on_fault=False)
        with pytest.raises(GuardViolation):
            engine.decode(samples[0])

    def test_raise_mode_propagates_original_exception(
        self, tiny, tokenizer, cost_model, samples
    ):
        target, head = tiny
        faulty = FaultyDraftHead(head, mode="raise", fail_every=1)
        engine = _engine(target, faulty, tokenizer, cost_model, fallback_on_fault=False)
        with pytest.raises(DraftFault):
            engine.decode(samples[0])


class TestDegradedAggregation:
    def test_metrics_aggregate_fully_degraded_run(
        self, tiny, tokenizer, cost_model, samples, ar_records
    ):
        target, head = tiny
        faulty = FaultyDraftHead(head, mode="nan-logits", fail_every=1)
        engine = _engine(target, faulty, tokenizer, cost_model, max_draft_faults=1)
        sd = [engine.decode(s) for s in samples]
        report = aggregate_metrics(sd, ar_records)
        assert report.acceptance_rate == 0.0
        assert report.degraded_fraction == 1.0
        assert report.n_draft_faults >= len(samples)
        assert report.n_fallback_steps > 0

    def test_clean_run_reports_zero_degradation(
        self, tiny, tokenizer, cost_model, samples, ar_records
    ):
        target, head = tiny
        engine = _engine(target, head, tokenizer, cost_model)
        sd = [engine.decode(s) for s in samples]
        report = aggregate_metrics(sd, ar_records)
        assert report.degraded_fraction == 0.0
        assert report.n_draft_faults == 0
