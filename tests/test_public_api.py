"""Public API surface: documented entry points exist and are importable."""

import importlib

import pytest


def test_version():
    import repro

    assert repro.__version__ == "1.0.0"


@pytest.mark.parametrize(
    "module,names",
    [
        ("repro.nn", ["Tensor", "Module", "Linear", "RMSNorm", "MultiHeadAttention", "Adam"]),
        ("repro.tokenizer", ["WordTokenizer", "Vocab"]),
        ("repro.models", ["MiniLlama", "MiniLlava", "KVCache", "get_config"]),
        ("repro.data", ["make_dataset", "sample_scene", "ImageRenderer", "collate_multimodal"]),
        (
            "repro.core",
            [
                "KVProjector",
                "target_draft_attention",
                "naive_target_draft_attention",
                "AASDDraftHead",
                "AASDEngine",
                "HybridKVCache",
            ],
        ),
        (
            "repro.decoding",
            [
                "AutoregressiveDecoder",
                "SpeculativeDecoder",
                "speculative_verify",
                "CostModel",
                "aggregate_metrics",
            ],
        ),
        ("repro.training", ["pretrain_lm", "finetune_target", "train_draft_head"]),
        ("repro.eval", ["run_table1", "run_figure4", "render_table1", "ExperimentRunner"]),
        ("repro.zoo", ["ModelZoo", "PROFILE_FULL", "PROFILE_SMOKE"]),
        (
            "repro.robustness",
            [
                "FaultyDraftHead",
                "corrupt_checkpoint",
                "inject_nan_weights",
                "ensure_finite",
                "check_hybrid_cache",
            ],
        ),
        (
            "repro.serving",
            [
                "ServeRequest",
                "ServeResult",
                "AdmissionQueue",
                "ContinuousBatchingScheduler",
                "ServingConfig",
                "serve_requests",
            ],
        ),
        ("repro.errors", ["CheckpointError", "GuardViolation", "ServingError", "AdmissionError"]),
    ],
)
def test_module_exports(module, names):
    mod = importlib.import_module(module)
    for name in names:
        assert hasattr(mod, name), f"{module} missing {name}"


def test_all_lists_are_accurate():
    for module in (
        "repro.nn",
        "repro.tokenizer",
        "repro.models",
        "repro.data",
        "repro.core",
        "repro.decoding",
        "repro.training",
        "repro.eval",
        "repro.robustness",
        "repro.serving",
    ):
        mod = importlib.import_module(module)
        for name in mod.__all__:
            assert hasattr(mod, name), f"{module}.__all__ lists missing {name}"
