"""Shared fixtures: RNG streams, tokenizer, and the smoke-profile zoo."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.corpus import build_reference_texts
from repro.tokenizer import WordTokenizer
from repro.zoo import ModelZoo, PROFILE_SMOKE


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def tokenizer() -> WordTokenizer:
    return WordTokenizer.from_texts(build_reference_texts())


@pytest.fixture(scope="session")
def smoke_zoo() -> ModelZoo:
    """Smoke-profile zoo (fast budgets); artifacts are disk-cached, so the
    first test session trains them (~1 min) and later sessions just load."""
    return ModelZoo(PROFILE_SMOKE, verbose=False)
