"""Utility tests: RNG derivation and clocks."""

import time

import numpy as np
import pytest

from repro.utils.rng import derive, seed_sequence
from repro.utils.timing import SimulatedClock, WallTimer


class TestRng:
    def test_same_tag_same_stream(self):
        a = derive(1, "x").random(5)
        b = derive(1, "x").random(5)
        assert np.array_equal(a, b)

    def test_different_tags_different_streams(self):
        a = derive(1, "x").random(5)
        b = derive(1, "y").random(5)
        assert not np.array_equal(a, b)

    def test_different_seeds_different_streams(self):
        a = derive(1, "x").random(5)
        b = derive(2, "x").random(5)
        assert not np.array_equal(a, b)

    def test_seed_sequence_stable(self):
        assert seed_sequence(3, "t").entropy == seed_sequence(3, "t").entropy


class TestSimulatedClock:
    def test_accumulates_by_category(self):
        clock = SimulatedClock()
        clock.charge(1.5, "draft")
        clock.charge(2.5, "verify")
        clock.charge(1.0, "draft")
        assert clock.total == pytest.approx(5.0)
        assert clock.by_category["draft"] == pytest.approx(2.5)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            SimulatedClock().charge(-1.0)

    def test_reset(self):
        clock = SimulatedClock()
        clock.charge(1.0)
        clock.reset()
        assert clock.total == 0.0
        assert not clock.by_category


class TestWallTimer:
    def test_measures_elapsed(self):
        with WallTimer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009
