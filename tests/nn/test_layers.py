"""Layer unit tests: Linear, Embedding, Dropout, MLP."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.layers import MLP, Dropout, Embedding, Linear, Sequential
from repro.nn.tensor import Tensor


class TestLinear:
    def test_shapes(self, rng):
        layer = Linear(4, 6, rng=rng)
        out = layer(Tensor(rng.standard_normal((2, 3, 4))))
        assert out.shape == (2, 3, 6)

    def test_matches_manual(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = rng.standard_normal((5, 3)).astype(np.float32)
        out = layer(Tensor(x)).data
        manual = x @ layer.weight.data.T + layer.bias.data
        assert np.allclose(out, manual, atol=1e-5)

    def test_no_bias(self, rng):
        layer = Linear(3, 2, bias=False, rng=rng)
        assert layer.bias is None
        assert len(list(layer.named_parameters())) == 1

    def test_deterministic_init(self):
        a = Linear(4, 4, rng=np.random.default_rng(7))
        b = Linear(4, 4, rng=np.random.default_rng(7))
        assert np.allclose(a.weight.data, b.weight.data)

    def test_gradients_flow(self, rng):
        layer = Linear(3, 2, rng=rng)
        out = layer(Tensor(rng.standard_normal((4, 3)), requires_grad=False))
        out.sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestEmbedding:
    def test_lookup_shape(self, rng):
        emb = Embedding(10, 5, rng=rng)
        assert emb(np.array([[1, 2, 3]])).shape == (1, 3, 5)

    def test_out_of_range_raises(self, rng):
        emb = Embedding(10, 5, rng=rng)
        with pytest.raises(IndexError):
            emb(np.array([10]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_repr(self, rng):
        assert "Embedding" in repr(Embedding(3, 2, rng=rng))


class TestDropout:
    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.5)

    def test_eval_mode_identity(self, rng):
        d = Dropout(0.9, rng=rng)
        d.eval()
        x = Tensor(rng.standard_normal((4, 4)))
        assert d(x) is x

    def test_train_mode_zeroes(self, rng):
        d = Dropout(0.5, rng=rng)
        out = d(Tensor(np.ones((100, 100)))).data
        assert (out == 0).any()


class TestMLP:
    def test_forward_shape(self, rng):
        mlp = MLP([4, 8, 2], rng=rng)
        assert mlp(Tensor(rng.standard_normal((3, 4)))).shape == (3, 2)

    def test_too_few_sizes_raises(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_custom_activation(self, rng):
        mlp = MLP([2, 3, 2], activation=F.relu, rng=rng)
        out = mlp(Tensor(rng.standard_normal((1, 2))))
        assert out.shape == (1, 2)

    def test_can_fit_xor(self):
        from repro.nn.optim import Adam
        gen = np.random.default_rng(0)
        mlp = MLP([2, 16, 1], activation=F.tanh if hasattr(F, "tanh") else F.gelu, rng=gen)
        x = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=np.float32)
        y = np.array([[0], [1], [1], [0]], dtype=np.float32)
        opt = Adam(mlp.parameters(), lr=1e-2)
        for _ in range(400):
            opt.zero_grad()
            pred = mlp(Tensor(x))
            loss = ((pred - Tensor(y)) ** 2).mean()
            loss.backward()
            opt.step()
        assert loss.item() < 0.03


class TestSequential:
    def test_chains(self, rng):
        seq = Sequential(Linear(3, 5, rng=rng), Linear(5, 2, rng=rng))
        assert seq(Tensor(rng.standard_normal((4, 3)))).shape == (4, 2)
