"""Checkpoint I/O round trips."""

import numpy as np
import pytest

from repro.nn.layers import Linear
from repro.nn.serialization import (
    load_checkpoint,
    load_state_dict,
    save_checkpoint,
    save_state_dict,
)


class TestStateDictIO:
    def test_roundtrip_with_meta(self, tmp_path, rng):
        state = {"a": rng.standard_normal((2, 3)), "b": np.arange(4.0)}
        path = tmp_path / "ckpt.npz"
        save_state_dict(path, state, meta={"epoch": 3, "name": "x"})
        loaded, meta = load_state_dict(path)
        assert set(loaded) == {"a", "b"}
        assert np.allclose(loaded["a"], state["a"])
        assert meta == {"epoch": 3, "name": "x"}

    def test_roundtrip_without_meta(self, tmp_path):
        path = tmp_path / "c.npz"
        save_state_dict(path, {"x": np.ones(2)})
        loaded, meta = load_state_dict(path)
        assert meta is None
        assert np.allclose(loaded["x"], 1.0)

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "dir" / "c.npz"
        save_state_dict(path, {"x": np.ones(1)})
        assert path.exists()


class TestModuleCheckpoint:
    def test_module_roundtrip(self, tmp_path, rng):
        a = Linear(4, 3, rng=rng)
        b = Linear(4, 3, rng=np.random.default_rng(99))
        path = tmp_path / "lin.npz"
        save_checkpoint(path, a, meta={"kind": "linear"})
        meta = load_checkpoint(path, b)
        assert meta == {"kind": "linear"}
        assert np.allclose(a.weight.data, b.weight.data)
        assert np.allclose(a.bias.data, b.bias.data)

    def test_strict_mismatch(self, tmp_path, rng):
        a = Linear(4, 3, rng=rng)
        path = tmp_path / "lin.npz"
        save_checkpoint(path, a)
        wrong = Linear(5, 3, rng=rng)
        with pytest.raises(Exception):
            load_checkpoint(path, wrong)
