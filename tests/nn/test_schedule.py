"""Learning-rate schedule tests."""

import pytest

from repro.nn.optim import SGD
from repro.nn.schedule import apply_schedule, constant, warmup_cosine, warmup_linear
from repro.nn.tensor import Tensor
import numpy as np


class TestConstant:
    def test_constant(self):
        sched = constant(0.1)
        assert sched(0) == sched(1000) == 0.1


class TestWarmupCosine:
    def test_warmup_ramps(self):
        sched = warmup_cosine(1.0, warmup_steps=10, total_steps=100)
        assert sched(0) < sched(5) < sched(9)
        assert sched(9) == pytest.approx(1.0)

    def test_peak_then_decay_to_min(self):
        sched = warmup_cosine(1.0, warmup_steps=10, total_steps=100, min_lr=0.1)
        assert sched(10) == pytest.approx(1.0)
        assert sched(99) < 0.12
        assert sched(100) == pytest.approx(0.1, abs=1e-6)
        assert sched(500) == pytest.approx(0.1, abs=1e-6)  # clamped past total

    def test_invalid_total(self):
        with pytest.raises(ValueError):
            warmup_cosine(1.0, warmup_steps=10, total_steps=10)


class TestWarmupLinear:
    def test_decays_to_zero(self):
        sched = warmup_linear(1.0, warmup_steps=5, total_steps=50)
        assert sched(50) == pytest.approx(0.0)
        assert sched(100) == pytest.approx(0.0)

    def test_monotone_after_warmup(self):
        sched = warmup_linear(1.0, warmup_steps=5, total_steps=50)
        values = [sched(s) for s in range(5, 50)]
        assert all(a >= b for a, b in zip(values, values[1:]))


class TestApplySchedule:
    def test_updates_optimizer(self):
        opt = SGD([Tensor(np.ones(1), requires_grad=True)], lr=1.0)
        lr = apply_schedule(opt, constant(0.25), step=7)
        assert lr == 0.25
        assert opt.lr == 0.25
