"""Rotary embedding tests: relative-position property and table growth."""

import numpy as np
import pytest

from repro.nn.rope import RotaryEmbedding, apply_rope
from repro.nn.tensor import Tensor


class TestRotaryEmbedding:
    def test_odd_head_dim_rejected(self):
        with pytest.raises(ValueError):
            RotaryEmbedding(7)

    def test_table_shapes(self):
        rope = RotaryEmbedding(8)
        cos, sin = rope.tables(np.arange(5))
        assert cos.shape == (5, 8)
        assert sin.shape == (5, 8)

    def test_lazy_growth(self):
        rope = RotaryEmbedding(4, initial_len=4)
        cos, _ = rope.tables(np.array([1000]))
        assert cos.shape == (1, 4)

    def test_position_zero_is_identity(self, rng):
        rope = RotaryEmbedding(8)
        x = Tensor(rng.standard_normal((1, 1, 1, 8)))
        cos, sin = rope.tables(np.array([0]))
        out = apply_rope(x, cos, sin)
        assert np.allclose(out.data, x.data, atol=1e-6)

    def test_norm_preserved(self, rng):
        rope = RotaryEmbedding(8)
        x = rng.standard_normal((1, 2, 4, 8)).astype(np.float32)
        cos, sin = rope.tables(np.arange(4))
        out = apply_rope(Tensor(x), cos, sin).data
        # Rotation preserves the norm of each (x_i, x_{i+d/2}) pair.
        assert np.allclose(np.linalg.norm(out, axis=-1), np.linalg.norm(x, axis=-1), atol=1e-4)

    def test_relative_property(self, rng):
        """q_i . k_j depends only on i - j after RoPE."""
        rope = RotaryEmbedding(16)
        q = rng.standard_normal((1, 1, 1, 16)).astype(np.float32)
        k = rng.standard_normal((1, 1, 1, 16)).astype(np.float32)

        def dot_at(i, j):
            ci, si = rope.tables(np.array([i]))
            cj, sj = rope.tables(np.array([j]))
            qi = apply_rope(Tensor(q), ci, si).data
            kj = apply_rope(Tensor(k), cj, sj).data
            return float((qi * kj).sum())

        assert dot_at(5, 3) == pytest.approx(dot_at(12, 10), abs=1e-4)
        assert dot_at(7, 0) == pytest.approx(dot_at(27, 20), abs=1e-4)

    def test_gradient_through_rope(self, rng):
        rope = RotaryEmbedding(4)
        x = Tensor(rng.standard_normal((1, 1, 3, 4)), requires_grad=True)
        cos, sin = rope.tables(np.arange(3))
        apply_rope(x, cos, sin).sum().backward()
        assert x.grad is not None
        assert np.isfinite(x.grad).all()
