"""Unit tests for the autodiff engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.tensor import Tensor, as_tensor, concat, no_grad, stack, unbroadcast, where


def numeric_grad(fn, value: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar-valued fn."""
    value = value.astype(np.float64)
    grad = np.zeros_like(value)
    flat = value.reshape(-1)
    out = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = fn(value)
        flat[i] = orig - eps
        lo = fn(value)
        flat[i] = orig
        out[i] = (hi - lo) / (2 * eps)
    return grad


def check_grad(op, shape, rng, tol=1e-5):
    x0 = rng.standard_normal(shape)

    def scalar(v):
        t = Tensor(np.float64(v), requires_grad=True)
        return op(t).sum().item()

    t = Tensor(np.float64(x0), requires_grad=True)
    op(t).sum().backward()
    num = numeric_grad(scalar, x0.copy())
    assert np.abs(t.grad - num).max() < tol


class TestConstruction:
    def test_scalar_wraps_to_float32(self):
        t = Tensor(3)
        assert t.dtype == np.float32
        assert t.item() == 3.0

    def test_float64_preserved(self):
        t = Tensor(np.zeros(3, dtype=np.float64))
        assert t.dtype == np.float64

    def test_zeros_ones_full(self):
        assert Tensor.zeros(2, 3).shape == (2, 3)
        assert Tensor.ones(2).data.sum() == 2.0
        assert Tensor.full((2, 2), 7.0).data[0, 0] == 7.0

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor(1.0, requires_grad=True))

    def test_detach_cuts_graph(self):
        a = Tensor(2.0, requires_grad=True)
        b = a.detach()
        assert not b.requires_grad

    def test_as_tensor_identity(self):
        t = Tensor(1.0)
        assert as_tensor(t) is t


class TestArithmeticGradients:
    def test_add(self, rng):
        check_grad(lambda x: x + x * 2.0 + 1.0, (3, 4), rng)

    def test_mul(self, rng):
        check_grad(lambda x: x * x, (3, 4), rng)

    def test_div(self, rng):
        check_grad(lambda x: x / (x * x + 2.0), (3, 4), rng)

    def test_pow(self, rng):
        check_grad(lambda x: (x * x + 1.0) ** 1.5, (5,), rng)

    def test_rsub_rdiv(self, rng):
        check_grad(lambda x: 3.0 - x, (4,), rng)
        check_grad(lambda x: 2.0 / (x * x + 1.0), (4,), rng)

    def test_matmul(self, rng):
        w = rng.standard_normal((4, 5))
        check_grad(lambda x: x @ Tensor(np.float64(w)), (3, 4), rng)

    def test_batched_matmul(self, rng):
        w = rng.standard_normal((2, 5, 3))
        check_grad(lambda x: x @ Tensor(np.float64(w)), (2, 4, 5), rng)

    def test_matmul_broadcast_weight_grad(self, rng):
        # (k, n) @ (B, H, n, d): gradient into the broadcast (k, n) operand.
        x = rng.standard_normal((2, 3, 6, 4))

        def scalar(v):
            w = Tensor(np.float64(v), requires_grad=True)
            return (w @ Tensor(np.float64(x))).sum().item()

        w0 = rng.standard_normal((5, 6))
        w = Tensor(np.float64(w0), requires_grad=True)
        (w @ Tensor(np.float64(x))).sum().backward()
        num = numeric_grad(scalar, w0.copy())
        assert np.abs(w.grad - num).max() < 1e-5

    def test_exp_log_sqrt_tanh_sigmoid(self, rng):
        check_grad(lambda x: (x * 0.3).exp(), (3, 3), rng)
        check_grad(lambda x: (x * x + 1.0).log(), (3, 3), rng)
        check_grad(lambda x: (x * x + 1.0).sqrt(), (3, 3), rng)
        check_grad(lambda x: x.tanh(), (3, 3), rng)
        check_grad(lambda x: x.sigmoid(), (3, 3), rng)

    def test_relu_abs(self, rng):
        # offset so we avoid the kink at exactly 0
        check_grad(lambda x: (x + 0.1).relu(), (17,), rng)
        check_grad(lambda x: (x + 0.1).abs(), (17,), rng)


class TestReductionsAndShape:
    def test_sum_axes(self, rng):
        check_grad(lambda x: x.sum(axis=0), (3, 4), rng)
        check_grad(lambda x: x.sum(axis=1, keepdims=True), (3, 4), rng)
        check_grad(lambda x: x.sum(axis=(0, 2)), (2, 3, 4), rng)

    def test_mean(self, rng):
        check_grad(lambda x: x.mean(axis=-1), (3, 4), rng)
        t = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        t.mean().backward()
        assert np.allclose(t.grad, np.full((2, 3), 1 / 6))

    def test_max_gradient_splits_ties(self):
        t = Tensor(np.array([[1.0, 1.0, 0.0]], dtype=np.float64), requires_grad=True)
        t.max(axis=1).sum().backward()
        assert np.allclose(t.grad, [[0.5, 0.5, 0.0]])

    def test_reshape_transpose_swapaxes(self, rng):
        check_grad(lambda x: x.reshape(6, 2), (3, 4), rng)
        check_grad(lambda x: x.transpose(1, 0) * 2.0, (3, 4), rng)
        check_grad(lambda x: x.swapaxes(0, 2), (2, 3, 4), rng)

    def test_getitem_slice_and_fancy(self, rng):
        check_grad(lambda x: x[1:, :2], (3, 4), rng)
        idx = np.array([0, 2, 2])

        def op(x):
            return x[idx]

        check_grad(op, (3, 4), rng)

    def test_take_along_axis(self, rng):
        idx = np.array([[0], [2], [1]])
        check_grad(lambda x: x.take_along_axis(idx, axis=1), (3, 4), rng)

    def test_pad(self, rng):
        check_grad(lambda x: x.pad(((1, 0), (0, 2))), (2, 3), rng)

    def test_masked_fill(self, rng):
        mask = np.array([True, False, True, False])
        check_grad(lambda x: x.masked_fill(mask, -5.0), (4,), rng)

    def test_concat_stack_where(self, rng):
        a0, b0 = rng.standard_normal((2, 3)), rng.standard_normal((2, 3))
        a = Tensor(np.float64(a0), requires_grad=True)
        b = Tensor(np.float64(b0), requires_grad=True)
        concat([a, b], axis=1).sum().backward()
        assert np.allclose(a.grad, 1.0) and np.allclose(b.grad, 1.0)

        a.zero_grad(); b.zero_grad()
        stack([a, b], axis=0).sum().backward()
        assert np.allclose(a.grad, 1.0) and np.allclose(b.grad, 1.0)

        cond = np.array([[True, False, True], [False, True, False]])
        a.zero_grad(); b.zero_grad()
        where(cond, a, b).sum().backward()
        assert np.allclose(a.grad, cond.astype(float))
        assert np.allclose(b.grad, (~cond).astype(float))


class TestBroadcasting:
    def test_unbroadcast_leading(self):
        g = np.ones((2, 3, 4))
        assert unbroadcast(g, (3, 4)).shape == (3, 4)
        assert unbroadcast(g, (3, 4)).sum() == 24

    def test_unbroadcast_size_one_axes(self):
        g = np.ones((2, 3, 4))
        out = unbroadcast(g, (2, 1, 4))
        assert out.shape == (2, 1, 4)
        assert np.allclose(out, 3.0)

    def test_bias_broadcast_grad(self, rng):
        x = rng.standard_normal((5, 3))

        def scalar(v):
            b = Tensor(np.float64(v), requires_grad=True)
            return ((Tensor(np.float64(x)) + b) ** 2).sum().item()

        b0 = rng.standard_normal((3,))
        b = Tensor(np.float64(b0), requires_grad=True)
        ((Tensor(np.float64(x)) + b) ** 2).sum().backward()
        num = numeric_grad(scalar, b0.copy())
        assert np.abs(b.grad - num).max() < 1e-5


class TestGraphSemantics:
    def test_backward_requires_scalar_or_grad(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            t.backward()

    def test_backward_on_detached_raises(self):
        with pytest.raises(RuntimeError):
            Tensor(1.0).backward()

    def test_grad_accumulates_over_reuse(self):
        a = Tensor(2.0, requires_grad=True)
        (a * a + a * 3.0).backward()
        assert a.grad == pytest.approx(2 * 2.0 + 3.0)

    def test_diamond_graph(self):
        a = Tensor(2.0, requires_grad=True)
        b = a * 3.0
        (b * b + b).backward()
        assert a.grad == pytest.approx((2 * 6.0 + 1) * 3.0)

    def test_no_grad_blocks_graph(self):
        a = Tensor(1.0, requires_grad=True)
        with no_grad():
            b = a * 2.0
        assert not b.requires_grad

    def test_no_grad_restores(self):
        from repro.nn.tensor import is_grad_enabled
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_zero_grad(self):
        a = Tensor(1.0, requires_grad=True)
        (a * a).backward()
        a.zero_grad()
        assert a.grad is None


@settings(max_examples=25, deadline=None)
@given(
    rows=st.integers(1, 4),
    cols=st.integers(1, 4),
    seed=st.integers(0, 10_000),
)
def test_softmaxlike_grad_property(rows, cols, seed):
    """Gradient of a random composite expression matches finite differences."""
    gen = np.random.default_rng(seed)
    x0 = gen.standard_normal((rows, cols))

    def op(t):
        e = (t - 0.5).exp()
        return (e / (e.sum(axis=-1, keepdims=True) + 1.0)).sum()

    def scalar(v):
        return op(Tensor(np.float64(v), requires_grad=True)).item()

    t = Tensor(np.float64(x0), requires_grad=True)
    op(t).backward()
    num = numeric_grad(scalar, x0.copy())
    assert np.abs(t.grad - num).max() < 1e-5
