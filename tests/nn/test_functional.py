"""Unit tests for functional ops (softmax family, losses, activations)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import functional as F
from repro.nn.tensor import Tensor


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        x = Tensor(rng.standard_normal((4, 7)))
        out = F.softmax(x).data
        assert np.allclose(out.sum(axis=-1), 1.0, atol=1e-6)
        assert (out >= 0).all()

    def test_large_logits_stable(self):
        x = Tensor(np.array([[1000.0, 999.0, 0.0]]))
        out = F.softmax(x).data
        assert np.isfinite(out).all()
        assert out[0, 0] > out[0, 1] > out[0, 2]

    def test_matches_log_softmax(self, rng):
        x = Tensor(rng.standard_normal((3, 5)))
        assert np.allclose(np.log(F.softmax(x).data), F.log_softmax(x).data, atol=1e-5)

    def test_axis_argument(self, rng):
        x = Tensor(rng.standard_normal((3, 5)))
        out = F.softmax(x, axis=0).data
        assert np.allclose(out.sum(axis=0), 1.0, atol=1e-6)

    def test_shift_invariance(self, rng):
        x = rng.standard_normal((2, 6))
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 100.0)).data
        assert np.allclose(a, b, atol=1e-5)


class TestCrossEntropy:
    def test_matches_manual(self, rng):
        logits = rng.standard_normal((4, 6))
        targets = rng.integers(0, 6, size=4)
        loss = F.cross_entropy(Tensor(logits, requires_grad=True), targets)
        logp = np.log(np.exp(logits - logits.max(-1, keepdims=True)).T
                      / np.exp(logits - logits.max(-1, keepdims=True)).sum(-1)).T
        manual = -logp[np.arange(4), targets].mean()
        assert loss.item() == pytest.approx(manual, abs=1e-5)

    def test_perfect_prediction_near_zero(self):
        logits = np.full((2, 4), -20.0)
        logits[0, 1] = 20.0
        logits[1, 3] = 20.0
        loss = F.cross_entropy(Tensor(logits), np.array([1, 3]))
        assert loss.item() < 1e-4

    def test_ignore_index(self, rng):
        logits = rng.standard_normal((4, 5))
        targets = np.array([1, -100, 2, -100])
        loss = F.cross_entropy(Tensor(logits), targets, ignore_index=-100)
        ref = F.cross_entropy(Tensor(logits[[0, 2]]), targets[[0, 2]])
        assert loss.item() == pytest.approx(ref.item(), abs=1e-5)

    def test_all_ignored_raises(self):
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros((2, 3))), np.array([-100, -100]), ignore_index=-100)

    def test_gradient_is_probs_minus_onehot(self, rng):
        logits0 = rng.standard_normal((3, 5))
        targets = np.array([0, 2, 4])
        t = Tensor(np.float64(logits0), requires_grad=True)
        F.cross_entropy(t, targets).backward()
        probs = np.exp(logits0 - logits0.max(-1, keepdims=True))
        probs /= probs.sum(-1, keepdims=True)
        onehot = np.zeros_like(probs)
        onehot[np.arange(3), targets] = 1.0
        assert np.abs(t.grad - (probs - onehot) / 3).max() < 1e-5


class TestKL:
    def test_zero_for_identical(self, rng):
        logits = rng.standard_normal((3, 6))
        kl = F.kl_divergence(Tensor(logits), Tensor(logits.copy(), requires_grad=True))
        assert abs(kl.item()) < 1e-6

    def test_positive_for_different(self, rng):
        a = rng.standard_normal((3, 6))
        b = rng.standard_normal((3, 6))
        assert F.kl_divergence(Tensor(a), Tensor(b, requires_grad=True)).item() > 0

    def test_teacher_gets_no_grad(self, rng):
        teacher = Tensor(rng.standard_normal((2, 4)), requires_grad=True)
        student = Tensor(rng.standard_normal((2, 4)), requires_grad=True)
        F.kl_divergence(teacher, student).backward()
        assert teacher.grad is None
        assert student.grad is not None


class TestActivations:
    def test_gelu_properties(self):
        x = Tensor(np.array([-10.0, 0.0, 10.0]))
        out = F.gelu(x).data
        assert out[0] == pytest.approx(0.0, abs=1e-3)
        assert out[1] == pytest.approx(0.0, abs=1e-6)
        assert out[2] == pytest.approx(10.0, abs=1e-3)

    def test_silu_properties(self):
        x = Tensor(np.array([0.0, 20.0, -20.0]))
        out = F.silu(x).data
        assert out[0] == 0.0
        assert out[1] == pytest.approx(20.0, abs=1e-3)
        assert abs(out[2]) < 1e-3

    def test_relu(self):
        out = F.relu(Tensor(np.array([-1.0, 2.0]))).data
        assert np.allclose(out, [0.0, 2.0])


class TestEmbeddingDropoutOneHot:
    def test_embedding_lookup(self, rng):
        w = Tensor(rng.standard_normal((10, 4)), requires_grad=True)
        out = F.embedding(w, np.array([[1, 2], [3, 1]]))
        assert out.shape == (2, 2, 4)
        assert np.allclose(out.data[0, 0], w.data[1])

    def test_embedding_grad_accumulates_repeats(self, rng):
        w = Tensor(rng.standard_normal((5, 3)), requires_grad=True)
        F.embedding(w, np.array([1, 1, 1])).sum().backward()
        assert np.allclose(w.grad[1], 3.0)
        assert np.allclose(w.grad[0], 0.0)

    def test_dropout_eval_identity(self, rng):
        x = Tensor(rng.standard_normal((5, 5)))
        out = F.dropout(x, 0.5, training=False)
        assert out is x

    def test_dropout_scales(self, rng):
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.5, training=True, rng=rng).data
        assert out.mean() == pytest.approx(1.0, abs=0.05)
        assert set(np.unique(out)).issubset({0.0, 2.0})

    def test_dropout_invalid_p(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0, training=True)

    def test_one_hot(self):
        out = F.one_hot(np.array([0, 2]), 3)
        assert np.allclose(out, [[1, 0, 0], [0, 0, 1]])


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 1000), n=st.integers(2, 8))
def test_nll_equals_cross_entropy(seed, n):
    gen = np.random.default_rng(seed)
    logits = gen.standard_normal((3, n))
    targets = gen.integers(0, n, size=3)
    ce = F.cross_entropy(Tensor(logits), targets).item()
    nll = F.nll_loss(F.log_softmax(Tensor(logits)), targets).item()
    assert ce == pytest.approx(nll, abs=1e-5)
