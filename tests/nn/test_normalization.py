"""LayerNorm / RMSNorm tests."""

import numpy as np
import pytest

from repro.nn.normalization import LayerNorm, RMSNorm
from repro.nn.tensor import Tensor


class TestLayerNorm:
    def test_output_standardised(self, rng):
        ln = LayerNorm(16)
        out = ln(Tensor(rng.standard_normal((4, 16)) * 5 + 3)).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-4)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_affine_params_apply(self, rng):
        ln = LayerNorm(4)
        ln.weight.data = np.full(4, 2.0, dtype=np.float32)
        ln.bias.data = np.full(4, 1.0, dtype=np.float32)
        out = ln(Tensor(rng.standard_normal((3, 4)))).data
        assert np.allclose(out.mean(axis=-1), 1.0, atol=1e-4)

    def test_gradients(self, rng):
        ln = LayerNorm(8)
        x = Tensor(rng.standard_normal((2, 8)), requires_grad=True)
        ln(x).sum().backward()
        assert ln.weight.grad is not None
        assert ln.bias.grad is not None
        assert x.grad is not None


class TestRMSNorm:
    def test_unit_rms(self, rng):
        norm = RMSNorm(16)
        out = norm(Tensor(rng.standard_normal((4, 16)) * 7)).data
        rms = np.sqrt((out ** 2).mean(axis=-1))
        assert np.allclose(rms, 1.0, atol=1e-3)

    def test_scale_invariance(self, rng):
        norm = RMSNorm(8)
        x = rng.standard_normal((2, 8)).astype(np.float32)
        a = norm(Tensor(x)).data
        b = norm(Tensor(x * 10)).data
        assert np.allclose(a, b, atol=1e-4)

    def test_no_bias_parameter(self):
        names = [n for n, _ in RMSNorm(4).named_parameters()]
        assert names == ["weight"]

    def test_batched_3d_input(self, rng):
        norm = RMSNorm(6)
        out = norm(Tensor(rng.standard_normal((2, 3, 6))))
        assert out.shape == (2, 3, 6)

    def test_zero_input_no_nan(self):
        out = RMSNorm(4)(Tensor(np.zeros((1, 4)))).data
        assert np.isfinite(out).all()
