"""Optimizer tests: convergence, state handling, clipping."""

import numpy as np
import pytest

from repro.nn.optim import SGD, Adam, AdamW, clip_grad_norm
from repro.nn.tensor import Tensor


def quadratic_steps(optimizer_factory, steps=200):
    """Minimise ||x - 3||^2 and return the final parameter."""
    x = Tensor(np.array([10.0, -10.0]), requires_grad=True)
    opt = optimizer_factory([x])
    for _ in range(steps):
        opt.zero_grad()
        loss = ((x - 3.0) ** 2).sum()
        loss.backward()
        opt.step()
    return x.data


class TestSGD:
    def test_converges(self):
        final = quadratic_steps(lambda ps: SGD(ps, lr=0.1))
        assert np.allclose(final, 3.0, atol=1e-3)

    def test_momentum_converges(self):
        final = quadratic_steps(lambda ps: SGD(ps, lr=0.05, momentum=0.9))
        assert np.allclose(final, 3.0, atol=1e-2)

    def test_skips_none_grads(self):
        x = Tensor(np.ones(2), requires_grad=True)
        opt = SGD([x], lr=0.1)
        opt.step()  # no grad yet: must not crash or move
        assert np.allclose(x.data, 1.0)


class TestAdam:
    def test_converges(self):
        final = quadratic_steps(lambda ps: Adam(ps, lr=0.3))
        assert np.allclose(final, 3.0, atol=1e-2)

    def test_bias_correction_first_step(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        opt = Adam([x], lr=0.1)
        (x * 2.0).sum().backward()
        opt.step()
        # First Adam step moves by ~lr regardless of gradient scale.
        assert abs(x.data[0] - (1.0 - 0.1)) < 1e-3

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            Adam([Tensor(np.ones(1), requires_grad=True)], lr=0.0)

    def test_rejects_empty_params(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)


class TestAdamW:
    def test_converges(self):
        final = quadratic_steps(lambda ps: AdamW(ps, lr=0.3, weight_decay=0.0))
        assert np.allclose(final, 3.0, atol=1e-2)

    def test_weight_decay_shrinks(self):
        x = Tensor(np.array([5.0]), requires_grad=True)
        opt = AdamW([x], lr=0.1, weight_decay=0.5)
        x.grad = np.array([0.0], dtype=np.float32)
        before = float(x.data[0])
        opt.step()
        assert float(x.data[0]) < before


class TestClipGradNorm:
    def test_clips_large(self):
        x = Tensor(np.ones(4), requires_grad=True)
        x.grad = np.full(4, 10.0)
        pre = clip_grad_norm([x], max_norm=1.0)
        assert pre == pytest.approx(20.0)
        assert np.linalg.norm(x.grad) == pytest.approx(1.0, abs=1e-5)

    def test_leaves_small(self):
        x = Tensor(np.ones(4), requires_grad=True)
        x.grad = np.full(4, 0.01)
        clip_grad_norm([x], max_norm=1.0)
        assert np.allclose(x.grad, 0.01)

    def test_empty_ok(self):
        assert clip_grad_norm([], max_norm=1.0) == 0.0
