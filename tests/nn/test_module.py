"""Module base-class behaviour: discovery, state dicts, modes."""

import numpy as np
import pytest

from repro.nn.layers import Linear, Sequential
from repro.nn.module import Module, Parameter


class Leaf(Module):
    def __init__(self):
        super().__init__()
        self.w = Parameter(np.ones((2, 2)))

    def forward(self, x):
        return x


class Tree(Module):
    def __init__(self):
        super().__init__()
        self.left = Leaf()
        self.items = [Leaf(), Leaf()]
        self.bias = Parameter(np.zeros(3))

    def forward(self, x):
        return x


class TestDiscovery:
    def test_named_parameters_nested(self):
        names = dict(Tree().named_parameters())
        assert set(names) == {"left.w", "items.0.w", "items.1.w", "bias"}

    def test_parameters_list(self):
        assert len(Tree().parameters()) == 4

    def test_num_parameters(self):
        assert Tree().num_parameters() == 4 + 4 + 4 + 3

    def test_modules_iterates_children(self):
        mods = list(Tree().modules())
        assert len(mods) == 4  # root + left + 2 list items


class TestStateDict:
    def test_roundtrip(self, rng):
        a, b = Tree(), Tree()
        for p in a.parameters():
            p.data = rng.standard_normal(p.shape).astype(np.float32)
        b.load_state_dict(a.state_dict())
        for (na, pa), (nb, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert na == nb
            assert np.allclose(pa.data, pb.data)

    def test_state_dict_is_a_copy(self):
        m = Leaf()
        state = m.state_dict()
        state["w"][:] = 99.0
        assert not np.allclose(m.w.data, 99.0)

    def test_strict_missing_raises(self):
        m = Tree()
        state = m.state_dict()
        del state["bias"]
        with pytest.raises(KeyError):
            m.load_state_dict(state)

    def test_strict_unexpected_raises(self):
        m = Leaf()
        state = m.state_dict()
        state["ghost"] = np.zeros(1)
        with pytest.raises(KeyError):
            m.load_state_dict(state)

    def test_non_strict_partial(self):
        m = Tree()
        m.load_state_dict({"bias": np.full(3, 5.0)}, strict=False)
        assert np.allclose(m.bias.data, 5.0)

    def test_shape_mismatch_raises(self):
        m = Leaf()
        with pytest.raises(ValueError):
            m.load_state_dict({"w": np.zeros((3, 3))})


class TestModes:
    def test_train_eval_propagates(self):
        m = Tree()
        m.eval()
        assert all(not sub.training for sub in m.modules())
        m.train()
        assert all(sub.training for sub in m.modules())

    def test_zero_grad(self):
        m = Leaf()
        m.w.grad = np.ones((2, 2))
        m.zero_grad()
        assert m.w.grad is None


class TestSequentialIntegration:
    def test_sequential_params_discovered(self, rng):
        seq = Sequential(Linear(3, 4, rng=rng), Linear(4, 2, rng=rng))
        assert len(seq.parameters()) == 4
        assert len(seq) == 2
        assert isinstance(seq[0], Linear)

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module().forward()
