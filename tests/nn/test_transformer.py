"""SwiGLU and DecoderBlock tests."""

import numpy as np

from repro.nn.rope import RotaryEmbedding
from repro.nn.tensor import Tensor
from repro.nn.transformer import DecoderBlock, SwiGLU


class TestSwiGLU:
    def test_shape(self, rng):
        mlp = SwiGLU(8, 16, rng=rng)
        assert mlp(Tensor(rng.standard_normal((2, 3, 8)))).shape == (2, 3, 8)

    def test_zero_input_gives_zero(self, rng):
        mlp = SwiGLU(8, 16, rng=rng)
        out = mlp(Tensor(np.zeros((1, 1, 8)))).data
        assert np.allclose(out, 0.0, atol=1e-6)

    def test_param_count(self, rng):
        mlp = SwiGLU(8, 16, rng=rng)
        assert mlp.num_parameters() == 8 * 16 * 3


class TestDecoderBlock:
    def test_forward_and_kv(self, rng):
        rope = RotaryEmbedding(8)
        block = DecoderBlock(32, 4, 64, rope=rope, rng=rng)
        x = Tensor(rng.standard_normal((2, 5, 32)))
        h, k, v = block(x, positions=np.arange(5))
        assert h.shape == (2, 5, 32)
        assert k.shape == (2, 4, 5, 8)

    def test_residual_path(self, rng):
        """Output stays close to input when sublayer weights are zeroed."""
        rope = RotaryEmbedding(8)
        block = DecoderBlock(32, 4, 64, rope=rope, rng=rng)
        block.attn.wo.weight.data[:] = 0.0
        block.mlp.down.weight.data[:] = 0.0
        x = Tensor(rng.standard_normal((1, 4, 32)))
        h, _, _ = block(x, positions=np.arange(4))
        assert np.allclose(h.data, x.data, atol=1e-6)

    def test_cache_equivalence(self, rng):
        rope = RotaryEmbedding(8)
        block = DecoderBlock(32, 4, 64, rope=rope, rng=rng)
        x = Tensor(rng.standard_normal((1, 6, 32)))
        full, _, _ = block(x, positions=np.arange(6))
        h1, k1, v1 = block(x[:, :3, :], positions=np.arange(3))
        h2, _, _ = block(
            x[:, 3:, :], positions=np.arange(3, 6),
            past_kv=(k1.data, v1.data), key_positions=np.arange(3),
        )
        assert np.abs(full.data[:, 3:, :] - h2.data).max() < 1e-4

    def test_gradients_flow_through_block(self, rng):
        rope = RotaryEmbedding(8)
        block = DecoderBlock(32, 4, 64, rope=rope, rng=rng)
        x = Tensor(rng.standard_normal((1, 4, 32)), requires_grad=True)
        h, _, _ = block(x, positions=np.arange(4))
        (h * h).sum().backward()
        assert x.grad is not None
        assert all(p.grad is not None for p in block.parameters())
