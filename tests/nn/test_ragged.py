"""Ragged packing helpers, packing-stability contract, ragged attention.

``TestPackingStability`` pins the empirical BLAS properties the packed
serving paths depend on (see the ``repro.nn.ragged`` module docstring):
row stability under M >= 2 packing, the M == 1 gemv divergence that
forbids packing lone rows, and the lockstep ``(B, 1, K)`` identity that
the draft path uses instead.  If any of these ever fails on a new BLAS,
the packed engine paths must be re-audited before trusting token
identity.
"""

import numpy as np
import pytest

from repro.nn.attention import MultiHeadAttention, causal_mask, ragged_attend
from repro.nn.ragged import (
    cu_seqlens,
    pack_rows,
    ragged_blocked,
    row_extents,
    tree_blocked,
    unpack_rows,
)
from repro.nn.tensor import Tensor


class TestCuSeqlens:
    def test_offsets(self):
        cu = cu_seqlens([3, 1, 4])
        assert cu.dtype == np.int64
        assert cu.tolist() == [0, 3, 4, 8]

    def test_empty_batch(self):
        assert cu_seqlens([]).tolist() == [0]

    def test_row_extents(self):
        assert row_extents(cu_seqlens([2, 5])) == [(0, 2), (2, 7)]


class TestPackUnpack:
    def test_roundtrip(self, rng):
        rows = [rng.standard_normal((1, n, 4)) for n in (3, 1, 5)]
        packed = pack_rows(rows)
        assert isinstance(packed, Tensor)
        assert packed.shape == (1, 9, 4)
        views = unpack_rows(packed.data, cu_seqlens([3, 1, 5]))
        for row, view in zip(rows, views):
            assert np.array_equal(row, view)

    def test_unpack_is_zero_copy(self, rng):
        packed = rng.standard_normal((1, 6, 2))
        views = unpack_rows(packed, cu_seqlens([2, 4]))
        assert all(v.base is not None for v in views)

    def test_single_row_passthrough(self, rng):
        row = Tensor(rng.standard_normal((1, 4, 2)))
        assert pack_rows([row]) is row


class TestRaggedBlocked:
    def test_cross_request_pairs_blocked(self):
        blocked = ragged_blocked(
            [np.arange(2), np.arange(3)], [np.arange(2), np.arange(3)]
        )
        assert blocked.shape == (5, 5)
        assert blocked[:2, 2:].all() and blocked[2:, :2].all()

    def test_diagonal_blocks_are_causal(self):
        blocked = ragged_blocked(
            [np.arange(2), np.arange(3)], [np.arange(2), np.arange(3)]
        )
        assert np.array_equal(blocked[:2, :2], causal_mask(np.arange(2), np.arange(2)))
        assert np.array_equal(blocked[2:, 2:], causal_mask(np.arange(3), np.arange(3)))

    def test_ragged_key_rows(self):
        # decode-style: 1 query over 4 past keys per request
        blocked = ragged_blocked(
            [np.array([3]), np.array([3])], [np.arange(4), np.arange(4)]
        )
        assert not blocked[0, :4].any()
        assert blocked[0, 4:].all()

    def test_arity_mismatch(self):
        with pytest.raises(ValueError):
            ragged_blocked([np.arange(2)], [np.arange(2), np.arange(2)])


class TestTreeBlocked:
    def test_chain_is_strict_upper_triangle(self):
        # A linear chain admits every earlier feed row -> exactly the
        # causal mask of a contiguous verify feed.
        blocked = tree_blocked([-1, 0, 1, 2])
        assert np.array_equal(blocked, np.triu(np.ones((5, 5), dtype=bool), k=1))

    def test_branching_example(self):
        #         anchor
        #        /      \
        #      n0        n2
        #      |
        #      n1
        blocked = tree_blocked([-1, 0, -1])
        # Every row sees itself and the anchor.
        assert not blocked.diagonal().any()
        assert not blocked[:, 0].any()
        # n1 (feed row 2) sees its parent n0 but not sibling branch n2.
        assert not blocked[2, 1] and blocked[2, 3]
        # n2 (feed row 3) is a fresh branch off the anchor: blocked from n0/n1.
        assert blocked[3, 1] and blocked[3, 2]
        # The anchor row never looks forward into the tree.
        assert blocked[0, 1:].all()

    def test_single_node(self):
        assert np.array_equal(
            tree_blocked([-1]), np.array([[False, True], [False, False]])
        )

    def test_rejects_non_dfs_parents(self):
        with pytest.raises(ValueError):
            tree_blocked([-1, 1])       # parent must precede node
        with pytest.raises(ValueError):
            tree_blocked([0])           # node 0 cannot have itself as parent
        with pytest.raises(ValueError):
            tree_blocked([-2])          # below the anchor sentinel

    def test_ragged_blocked_ors_tree_into_trailing_columns(self):
        # Request: 2 committed keys + a 3-row feed [anchor, n0, n1(sibling)].
        q_pos = np.array([2, 3, 3])     # siblings share absolute positions
        k_pos = np.array([0, 1, 2, 3, 3])
        parents = [-1, -1]
        blocked = ragged_blocked([q_pos], [k_pos], [parents])
        expected = causal_mask(q_pos, k_pos)
        expected[:, 2:] |= tree_blocked(parents)
        assert np.array_equal(blocked, expected)
        # The causal rule alone would let the siblings see each other
        # (equal positions); the tree mask is what separates them.
        assert blocked[1, 4] and blocked[2, 3]
        # Committed context stays visible to every feed row.
        assert not blocked[:, :2].any()

    def test_tree_arity_and_length_validation(self):
        with pytest.raises(ValueError):    # one parents row per request
            ragged_blocked([np.arange(3)], [np.arange(3)], [[-1], [-1]])
        with pytest.raises(ValueError):    # parents imply 3 feed rows, got 2
            ragged_blocked([np.arange(2)], [np.arange(2)], [[-1, 0]])
        with pytest.raises(ValueError):    # feed larger than the key row
            ragged_blocked([np.arange(3)], [np.arange(2)], [[-1, 0]])

    def test_mixed_tree_and_causal_requests(self):
        blocked = ragged_blocked(
            [np.array([1, 2, 2]), np.arange(2)],
            [np.array([0, 1, 2, 2]), np.arange(2)],
            [[-1, -1], None],
        )
        plain = ragged_blocked([np.arange(2)], [np.arange(2)])
        assert np.array_equal(blocked[3:, 4:], plain)


class TestPackingStability:
    """Empirical BLAS contract behind bitwise-exact packing (float32)."""

    @pytest.mark.parametrize("k", [16, 64, 256])
    def test_rows_stable_under_packing(self, rng, k):
        # row r of (M, K) @ (K, N) is bitwise independent of M for M >= 2
        w = rng.standard_normal((k, 32)).astype(np.float32)
        x = rng.standard_normal((8, k)).astype(np.float32)
        full = x @ w
        for m in range(2, 9):
            assert np.array_equal((x[:m] @ w)[:m], full[:m]), f"M={m} K={k}"

    def test_lone_row_takes_gemv_kernel(self, rng):
        # the M == 1 product (gemv) diverges bitwise from the same row
        # inside an M >= 2 product (gemm) once K is large; this is WHY
        # single-token draft steps must never be packed into one matrix
        k = 256
        w = rng.standard_normal((k, 32)).astype(np.float32)
        x = rng.standard_normal((4, k)).astype(np.float32)
        gemv = x[:1] @ w
        gemm_row = (x @ w)[:1]
        assert np.allclose(gemv, gemm_row)
        assert not np.array_equal(gemv, gemm_row), (
            "gemv == gemm bitwise: the lockstep draft path is then "
            "unnecessary but not incorrect — re-audit before relying on it"
        )

    @pytest.mark.parametrize("k", [64, 256])
    def test_lockstep_matches_solo_gemv(self, rng, k):
        # np.matmul((B, 1, K), (K, N)) loops the batch axis, so each
        # slice is bitwise equal to its solo (1, K) @ (K, N) call
        w = rng.standard_normal((k, 32)).astype(np.float32)
        x = rng.standard_normal((5, 1, k)).astype(np.float32)
        lockstep = np.matmul(x, w)
        for b in range(5):
            assert np.array_equal(lockstep[b], x[b] @ w), f"B-slice {b} K={k}"


class TestRaggedAttend:
    def make(self, rng, dim=24, heads=4):
        return MultiHeadAttention(dim, heads, rng=rng)

    def _qkv(self, attn, rng, lens, n_heads=4, head_dim=6):
        qs, ks, vs = [], [], []
        for n in lens:
            qs.append(rng.standard_normal((1, n_heads, n, head_dim)).astype(np.float32))
            ks.append(Tensor(rng.standard_normal((1, n_heads, n, head_dim)).astype(np.float32)))
            vs.append(Tensor(rng.standard_normal((1, n_heads, n, head_dim)).astype(np.float32)))
        q = Tensor(np.concatenate(qs, axis=2))
        return q, ks, vs

    def test_segment_path_matches_solo(self, rng):
        attn = self.make(rng)
        lens = [3, 1, 4]
        q, ks, vs = self._qkv(attn, rng, lens)
        cu = cu_seqlens(lens)
        blocked = [causal_mask(np.arange(n), np.arange(n)) for n in lens]
        out = ragged_attend(q, cu, ks, vs, blocked)
        for (start, end), k, v, mask in zip(row_extents(cu), ks, vs, blocked):
            solo = MultiHeadAttention.attend(
                q[:, :, start:end, :], k, v, blocked=mask
            )
            assert np.array_equal(out.data[:, :, start:end, :], solo.data)

    def test_fused_path_is_bitwise_exact(self, rng):
        # fused=True builds the masks internally but still attends per
        # segment, so it is bitwise identical to the segment path (and
        # therefore to solo attention) — the tree-verification contract.
        attn = self.make(rng)
        lens = [3, 2]
        q, ks, vs = self._qkv(attn, rng, lens)
        cu = cu_seqlens(lens)
        positions = [np.arange(n) for n in lens]
        blocked = [causal_mask(p, p) for p in positions]
        exact = ragged_attend(q, cu, ks, vs, blocked)
        fused = ragged_attend(
            q, cu, ks, vs, fused=True,
            query_positions=positions, key_positions=positions,
        )
        assert np.array_equal(exact.data, fused.data)

    def test_fused_tree_matches_explicit_masks(self, rng):
        # A tree-verification feed [anchor, n0, n1] over 2 committed keys:
        # fused mask building == hand-built causal-plus-tree segment masks.
        attn = self.make(rng)
        parents = [-1, -1]
        q_pos = [np.array([2, 3, 3]), np.arange(2)]
        k_pos = [np.array([0, 1, 2, 3, 3]), np.arange(2)]
        qs = rng.standard_normal((1, 4, 3, 6)).astype(np.float32)
        q = Tensor(np.concatenate(
            [qs, rng.standard_normal((1, 4, 2, 6)).astype(np.float32)], axis=2
        ))
        ks = [Tensor(rng.standard_normal((1, 4, n, 6)).astype(np.float32)) for n in (5, 2)]
        vs = [Tensor(rng.standard_normal((1, 4, n, 6)).astype(np.float32)) for n in (5, 2)]
        cu = cu_seqlens([3, 2])
        tree_mask = causal_mask(q_pos[0], k_pos[0])
        tree_mask[:, 2:] |= tree_blocked(parents)
        explicit = ragged_attend(
            q, cu, ks, vs, [tree_mask, causal_mask(q_pos[1], k_pos[1])]
        )
        fused = ragged_attend(
            q, cu, ks, vs, fused=True,
            query_positions=q_pos, key_positions=k_pos,
            tree_parent_rows=[parents, None],
        )
        assert np.array_equal(explicit.data, fused.data)

    def test_b1_reduces_to_plain_attend(self, rng):
        attn = self.make(rng)
        q, ks, vs = self._qkv(attn, rng, [4])
        mask = causal_mask(np.arange(4), np.arange(4))
        out = ragged_attend(q, cu_seqlens([4]), ks, vs, [mask])
        solo = MultiHeadAttention.attend(q, ks[0], vs[0], blocked=mask)
        assert np.array_equal(out.data, solo.data)

    def test_arity_mismatch(self, rng):
        q, ks, vs = self._qkv(self.make(rng), rng, [2, 2])
        with pytest.raises(ValueError):
            ragged_attend(q, cu_seqlens([2, 2]), ks[:1], vs)

    def test_fused_requires_positions(self, rng):
        q, ks, vs = self._qkv(self.make(rng), rng, [2, 2])
        with pytest.raises(ValueError):
            ragged_attend(q, cu_seqlens([2, 2]), ks, vs, fused=True)
