"""Multi-head attention: masks, KV-cache equivalence, shapes."""

import numpy as np
import pytest

from repro.nn.attention import MultiHeadAttention, causal_mask, merge_heads, split_heads
from repro.nn.rope import RotaryEmbedding
from repro.nn.tensor import Tensor


class TestCausalMask:
    def test_lower_triangular(self):
        blocked = causal_mask(np.arange(4), np.arange(4))
        assert np.array_equal(blocked, np.triu(np.ones((4, 4), bool), k=1))

    def test_offset_queries(self):
        blocked = causal_mask(np.array([3, 4]), np.arange(5))
        assert not blocked[0, :4].any()
        assert blocked[0, 4]
        assert not blocked[1].any()

    def test_nothing_visible_for_future_keys(self):
        blocked = causal_mask(np.array([0]), np.array([5, 6]))
        assert blocked.all()


class TestHeadReshape:
    def test_split_merge_roundtrip(self, rng):
        x = Tensor(rng.standard_normal((2, 5, 12)))
        assert np.allclose(merge_heads(split_heads(x, 3)).data, x.data)

    def test_split_rejects_bad_heads(self, rng):
        with pytest.raises(ValueError):
            split_heads(Tensor(rng.standard_normal((1, 2, 10))), 3)


class TestMultiHeadAttention:
    def make(self, rng, dim=24, heads=4):
        rope = RotaryEmbedding(dim // heads)
        return MultiHeadAttention(dim, heads, rope=rope, rng=rng)

    def test_bad_dim_heads(self, rng):
        with pytest.raises(ValueError):
            MultiHeadAttention(10, 3, rng=rng)

    def test_output_shape_and_kv(self, rng):
        attn = self.make(rng)
        x = Tensor(rng.standard_normal((2, 6, 24)))
        out, k, v = attn(x, positions=np.arange(6))
        assert out.shape == (2, 6, 24)
        assert k.shape == (2, 4, 6, 6)
        assert v.shape == (2, 4, 6, 6)

    def test_cache_equivalence(self, rng):
        """Incremental decoding must equal one full forward pass."""
        attn = self.make(rng)
        x = Tensor(rng.standard_normal((1, 8, 24)))
        full, _, _ = attn(x, positions=np.arange(8))
        h1, k1, v1 = attn(x[:, :5, :], positions=np.arange(5))
        h2, _, _ = attn(
            x[:, 5:, :],
            positions=np.arange(5, 8),
            past_kv=(k1.data, v1.data),
            key_positions=np.arange(5),
        )
        assert np.abs(full.data[:, 5:, :] - h2.data).max() < 1e-4

    def test_token_by_token_equivalence(self, rng):
        attn = self.make(rng)
        x = Tensor(rng.standard_normal((1, 5, 24)))
        full, _, _ = attn(x, positions=np.arange(5))
        ks, vs = None, None
        for t in range(5):
            out, k, v = attn(
                x[:, t : t + 1, :],
                positions=np.array([t]),
                past_kv=(ks, vs) if ks is not None else None,
                key_positions=np.arange(t) if ks is not None else None,
            )
            ks = k.data if ks is None else np.concatenate([ks, k.data], axis=2)
            vs = v.data if vs is None else np.concatenate([vs, v.data], axis=2)
            assert np.abs(full.data[:, t, :] - out.data[:, 0, :]).max() < 1e-4

    def test_causality(self, rng):
        """Perturbing a future token must not change earlier outputs."""
        attn = self.make(rng)
        x0 = rng.standard_normal((1, 6, 24)).astype(np.float32)
        x1 = x0.copy()
        x1[0, 5] += 10.0
        out0, _, _ = attn(Tensor(x0), positions=np.arange(6))
        out1, _, _ = attn(Tensor(x1), positions=np.arange(6))
        assert np.allclose(out0.data[:, :5], out1.data[:, :5], atol=1e-5)

    def test_extra_blocked_mask(self, rng):
        """Blocking all past keys makes each token attend only to itself."""
        attn = self.make(rng)
        x = Tensor(rng.standard_normal((1, 4, 24)))
        full_block = ~np.eye(4, dtype=bool)
        out_self, _, _ = attn(x, positions=np.arange(4), extra_blocked=full_block)
        # Compare against per-token isolated attention.
        for t in range(4):
            solo, _, _ = attn(x[:, t : t + 1, :], positions=np.array([t]))
            assert np.abs(solo.data[0, 0] - out_self.data[0, t]).max() < 1e-4

    def test_attend_uniform_when_keys_equal(self, rng):
        q = Tensor(rng.standard_normal((1, 1, 1, 4)))
        k = Tensor(np.zeros((1, 1, 3, 4), dtype=np.float32))
        v = Tensor(rng.standard_normal((1, 1, 3, 4)))
        out = MultiHeadAttention.attend(q, k, v)
        assert np.allclose(out.data[0, 0, 0], v.data[0, 0].mean(axis=0), atol=1e-5)

    def test_gradients_reach_all_projections(self, rng):
        attn = self.make(rng)
        x = Tensor(rng.standard_normal((1, 4, 24)))
        out, _, _ = attn(x, positions=np.arange(4))
        out.sum().backward()
        for layer in (attn.wq, attn.wk, attn.wv, attn.wo):
            assert layer.weight.grad is not None
