"""Image renderer tests."""

import numpy as np
import pytest

from repro.data.images import ImageRenderer, _shape_mask
from repro.data.scenes import COLORS, SHAPES, Scene, SceneObject


def one_object_scene(shape="circle", color="red", size="large", position="center"):
    return Scene(objects=(SceneObject(shape, color, size, position),))


class TestRenderer:
    def test_shape_and_range(self):
        renderer = ImageRenderer(36)
        img = renderer.render(one_object_scene())
        assert img.shape == (36, 36, 3)
        assert img.dtype == np.float32
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_image_size_divisible_by_three(self):
        with pytest.raises(ValueError):
            ImageRenderer(32)

    def test_deterministic(self):
        r = ImageRenderer(36)
        scene = one_object_scene()
        assert np.array_equal(r.render(scene), r.render(scene))

    def test_object_color_present_in_cell(self):
        r = ImageRenderer(36)
        img = r.render(one_object_scene(color="blue", position="top left"))
        tile = img[:12, :12]
        blue = np.asarray(COLORS["blue"], dtype=np.float32)
        assert (np.abs(tile - blue).sum(axis=-1) < 1e-5).any()

    def test_empty_cells_are_background(self):
        r = ImageRenderer(36)
        img = r.render(one_object_scene(position="top left"))
        # bottom-right cell untouched
        assert np.allclose(img[24:, 24:], img[35, 35])

    def test_size_changes_pixel_count(self):
        r = ImageRenderer(36)
        small = r.render(one_object_scene(size="small"))
        large = r.render(one_object_scene(size="large"))
        red = np.asarray(COLORS["red"], dtype=np.float32)
        count = lambda img: int((np.abs(img - red).sum(axis=-1) < 1e-5).sum())
        assert count(large) > count(small) > 0

    def test_all_shapes_render_distinctly(self):
        r = ImageRenderer(36)
        images = {}
        for shape in SHAPES:
            images[shape] = r.render(one_object_scene(shape=shape))
        shapes = list(SHAPES)
        for i, a in enumerate(shapes):
            for b in shapes[i + 1 :]:
                assert not np.array_equal(images[a], images[b]), (a, b)

    def test_multiple_objects(self):
        scene = Scene(
            objects=(
                SceneObject("circle", "red", "small", "top left"),
                SceneObject("square", "blue", "large", "bottom right"),
            )
        )
        img = ImageRenderer(36).render(scene)
        red = np.asarray(COLORS["red"], dtype=np.float32)
        blue = np.asarray(COLORS["blue"], dtype=np.float32)
        assert (np.abs(img[:12, :12] - red).sum(axis=-1) < 1e-5).any()
        assert (np.abs(img[24:, 24:] - blue).sum(axis=-1) < 1e-5).any()

    def test_radius_unknown_size(self):
        with pytest.raises(ValueError):
            ImageRenderer(36).radius_for("enormous")


class TestShapeMasks:
    @pytest.mark.parametrize("shape", SHAPES)
    def test_mask_nonempty_and_bounded(self, shape):
        mask = _shape_mask(shape, 12, 4.0)
        assert mask.shape == (12, 12)
        assert mask.any()
        assert not mask.all()

    def test_unknown_shape(self):
        with pytest.raises(ValueError):
            _shape_mask("hexagon", 12, 4.0)

    def test_circle_symmetric(self):
        mask = _shape_mask("circle", 13, 4.0)
        assert np.array_equal(mask, mask.T)
        assert np.array_equal(mask, mask[::-1, ::-1])
