"""Language generator tests: responses must be faithful to the scene."""

import numpy as np
import pytest

from repro.data.language import (
    NUMBER_WORDS,
    caption_sample,
    conversation_sample,
    detail_sample,
    reasoning_sample,
    scienceqa_sample,
)
from repro.data.scenes import Scene, SceneObject, sample_scene


def fixed_scene():
    return Scene(
        objects=(
            SceneObject("circle", "red", "small", "top left"),
            SceneObject("square", "blue", "large", "bottom right"),
        )
    )


class TestCaption:
    def test_mentions_every_object(self):
        prompt, response = caption_sample(fixed_scene(), np.random.default_rng(0))
        assert "red circle" in response
        assert "blue square" in response
        assert "top left" in response
        assert "bottom right" in response

    def test_deterministic_given_rng(self):
        a = caption_sample(fixed_scene(), np.random.default_rng(3))
        b = caption_sample(fixed_scene(), np.random.default_rng(3))
        assert a == b


class TestDetail:
    def test_counts_objects(self):
        _, response = detail_sample(fixed_scene(), np.random.default_rng(0))
        assert "two objects" in response
        assert response.count("there is") == 2

    def test_singular_object(self):
        scene = Scene(objects=(SceneObject("star", "cyan", "small", "center"),))
        _, response = detail_sample(scene, np.random.default_rng(0))
        assert "one object." in response


class TestConversation:
    def test_color_question_answer_consistent(self):
        gen = np.random.default_rng(0)
        for _ in range(20):
            scene = sample_scene(gen)
            prompt, response = conversation_sample(scene, gen)
            # Find the queried shape and check the answer matches the scene.
            for obj in scene:
                if f"the {obj.shape}" in prompt:
                    if "what color" in prompt:
                        assert obj.color in response
                    elif "where is" in prompt:
                        assert obj.position in response
                    elif "how big" in prompt:
                        assert obj.size in response


class TestReasoning:
    def test_count_answer_correct(self):
        gen = np.random.default_rng(1)
        for _ in range(30):
            scene = sample_scene(gen)
            prompt, response = reasoning_sample(scene, gen)
            if "how many" in prompt:
                assert NUMBER_WORDS[len(scene)] in response

    def test_spatial_answer_correct(self):
        gen = np.random.default_rng(2)
        seen_spatial = False
        for _ in range(60):
            scene = sample_scene(gen, min_objects=2, max_objects=3)
            prompt, response = reasoning_sample(scene, gen)
            if "to the left of" in prompt:
                seen_spatial = True
                words = prompt.split()
                a_shape = words[words.index("the") + 1]
                # answer must be yes/no and mentions both positions
                assert response.endswith("yes.") or response.endswith("no.")
        assert seen_spatial


class TestScienceQA:
    def test_answer_letter_is_correct(self):
        gen = np.random.default_rng(3)
        for _ in range(40):
            scene = sample_scene(gen)
            prompt, response = scienceqa_sample(scene, gen)
            assert "question:" in prompt
            assert "choices:" in prompt
            assert "the answer is" in response
            letter = response.rstrip(".").split()[-1]
            assert letter in ("a", "b")
            if "how many objects" in prompt:
                # Extract the choice the letter points at and compare.
                after = prompt.split("choices:")[1]
                choice_a = after.split("a.")[1].split("b.")[0].strip()
                choice_b = after.split("b.")[1].strip()
                chosen = choice_a if letter == "a" else choice_b
                assert chosen == NUMBER_WORDS[len(scene)]

    def test_color_variant_correct(self):
        gen = np.random.default_rng(4)
        seen = False
        for _ in range(60):
            scene = sample_scene(gen, min_objects=2, max_objects=3)
            prompt, response = scienceqa_sample(scene, gen)
            if "which object is" in prompt:
                seen = True
                assert response.rstrip(".").endswith("a")  # construction puts truth at a
        assert seen
