"""Collation and packing tests."""

import numpy as np
import pytest

from repro.data.dataloader import (
    IGNORE_INDEX,
    collate_multimodal,
    iter_batches,
    pack_documents,
)
from repro.data.tasks import make_dataset


class TestCollate:
    def test_shapes(self, tokenizer):
        ds = make_dataset("llava-bench-sim", 4)
        batch = collate_multimodal(ds.samples, tokenizer)
        assert batch.images.shape[0] == 4
        assert batch.text_ids.shape == batch.labels.shape
        assert batch.batch_size == 4
        assert batch.seq_len == batch.text_ids.shape[1]

    def test_empty_raises(self, tokenizer):
        with pytest.raises(ValueError):
            collate_multimodal([], tokenizer)

    def test_labels_align_next_token(self, tokenizer):
        ds = make_dataset("coco-sim", 2)
        batch = collate_multimodal(ds.samples, tokenizer)
        for b in range(2):
            p = batch.prompt_lengths[b]
            row = batch.text_ids[b]
            # Position p-1 (last prompt token) predicts the first response token.
            assert batch.labels[b, p - 1] == row[p]
            # Prompt interior carries no labels.
            assert (batch.labels[b, : p - 1] == IGNORE_INDEX).all()

    def test_labels_cover_until_eos(self, tokenizer):
        ds = make_dataset("coco-sim", 1)
        batch = collate_multimodal(ds.samples, tokenizer)
        row = batch.text_ids[0]
        eos = tokenizer.vocab.eos_id
        eos_pos = int(np.where(row == eos)[0][0])
        assert batch.labels[0, eos_pos - 1] == eos
        assert (batch.labels[0, eos_pos:] == IGNORE_INDEX).all()

    def test_padding_uses_pad_id(self, tokenizer):
        ds = make_dataset("llava-bench-sim", 6)
        batch = collate_multimodal(ds.samples, tokenizer)
        lengths = [
            len(tokenizer.encode(s.prompt)) + len(tokenizer.encode(s.response)) + 3
            for s in ds.samples
        ]
        assert batch.seq_len == max(lengths) - 1 or batch.seq_len == max(lengths)
        pad = tokenizer.vocab.pad_id
        shortest = int(np.argmin(lengths))
        assert (batch.text_ids[shortest] == pad).any()

    def test_loss_on_prompt_flag(self, tokenizer):
        ds = make_dataset("coco-sim", 1)
        batch = collate_multimodal(ds.samples, tokenizer, loss_on_prompt=True)
        assert batch.labels[0, 0] != IGNORE_INDEX


class TestPackDocuments:
    def test_shapes(self, tokenizer):
        rows = pack_documents(["the circle is red."] * 50, tokenizer, seq_len=16)
        assert rows.shape[1] == 17
        assert rows.dtype == np.int64

    def test_stream_continuity(self, tokenizer):
        rows = pack_documents(["the circle is red."] * 50, tokenizer, seq_len=8)
        flat = rows.reshape(-1)
        bos, eos = tokenizer.vocab.bos_id, tokenizer.vocab.eos_id
        assert (flat == bos).sum() > 0
        assert (flat == eos).sum() > 0

    def test_too_small_corpus_raises(self, tokenizer):
        with pytest.raises(ValueError):
            pack_documents(["hi"], tokenizer, seq_len=512)

    def test_bad_seq_len(self, tokenizer):
        with pytest.raises(ValueError):
            pack_documents(["a b c"], tokenizer, seq_len=1)


class TestIterBatches:
    def test_covers_all_items(self, rng):
        items = list(range(10))
        seen = [x for batch in iter_batches(items, 3, rng) for x in batch]
        assert sorted(seen) == items

    def test_batch_sizes(self, rng):
        sizes = [len(b) for b in iter_batches(list(range(10)), 4, rng)]
        assert sizes == [4, 4, 2]

    def test_no_shuffle_preserves_order(self, rng):
        batches = list(iter_batches(list(range(6)), 2, rng, shuffle=False))
        assert batches == [[0, 1], [2, 3], [4, 5]]

    def test_bad_batch_size(self, rng):
        with pytest.raises(ValueError):
            list(iter_batches([1], 0, rng))
