"""Scene-graph tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.scenes import (
    COLORS,
    GRID_POSITIONS,
    SHAPES,
    SIZES,
    Scene,
    SceneObject,
    sample_scene,
)


class TestSceneObject:
    def test_valid(self):
        obj = SceneObject("circle", "red", "small", "top left")
        assert obj.cell == (0, 0)
        assert obj.phrase() == "a small red circle"

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(shape="blob", color="red", size="small", position="top"),
            dict(shape="circle", color="mauve", size="small", position="top"),
            dict(shape="circle", color="red", size="medium", position="top"),
            dict(shape="circle", color="red", size="small", position="nowhere"),
        ],
    )
    def test_invalid_attribute_raises(self, kwargs):
        with pytest.raises(ValueError):
            SceneObject(**kwargs)

    def test_all_positions_have_cells(self):
        for name, cell in GRID_POSITIONS:
            obj = SceneObject("circle", "red", "small", name)
            assert obj.cell == cell


class TestScene:
    def test_requires_objects(self):
        with pytest.raises(ValueError):
            Scene(objects=())

    def test_rejects_cell_collision(self):
        a = SceneObject("circle", "red", "small", "top")
        b = SceneObject("square", "blue", "large", "top")
        with pytest.raises(ValueError):
            Scene(objects=(a, b))

    def test_queries(self):
        a = SceneObject("circle", "red", "small", "top left")
        b = SceneObject("square", "red", "large", "bottom right")
        scene = Scene(objects=(a, b))
        assert scene.by_shape("circle") == [a]
        assert scene.by_color("red") == [a, b]
        assert scene.unique_shapes() == ["circle", "square"]
        assert scene.left_of(a, b)
        assert scene.above(a, b)

    def test_len_iter(self):
        a = SceneObject("circle", "red", "small", "top")
        scene = Scene(objects=(a,))
        assert len(scene) == 1
        assert list(scene) == [a]


class TestSampling:
    def test_deterministic(self):
        a = sample_scene(np.random.default_rng(5))
        b = sample_scene(np.random.default_rng(5))
        assert a == b

    def test_respects_bounds(self):
        gen = np.random.default_rng(0)
        for _ in range(50):
            scene = sample_scene(gen, min_objects=2, max_objects=3)
            assert 2 <= len(scene) <= 3

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            sample_scene(np.random.default_rng(0), min_objects=0, max_objects=2)
        with pytest.raises(ValueError):
            sample_scene(np.random.default_rng(0), min_objects=3, max_objects=2)

    def test_shapes_unique_within_scene(self):
        gen = np.random.default_rng(1)
        for _ in range(50):
            scene = sample_scene(gen)
            shapes = [o.shape for o in scene]
            assert len(set(shapes)) == len(shapes)


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 100000))
def test_sampled_scene_invariants(seed):
    scene = sample_scene(np.random.default_rng(seed))
    cells = [o.cell for o in scene]
    assert len(set(cells)) == len(cells)
    for obj in scene:
        assert obj.shape in SHAPES
        assert obj.color in COLORS
        assert obj.size in SIZES
