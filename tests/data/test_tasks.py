"""Task dataset tests."""

import numpy as np
import pytest

from repro.data.tasks import DATASET_NAMES, MultimodalSample, make_dataset


class TestMakeDataset:
    def test_names(self):
        assert set(DATASET_NAMES) == {"coco-sim", "llava-bench-sim", "scienceqa-sim"}

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_dataset("imagenet", 4)

    def test_bad_size(self):
        with pytest.raises(ValueError):
            make_dataset("coco-sim", 0)

    def test_deterministic(self):
        a = make_dataset("coco-sim", 5, seed=3)
        b = make_dataset("coco-sim", 5, seed=3)
        for sa, sb in zip(a, b):
            assert sa.prompt == sb.prompt
            assert sa.response == sb.response
            assert np.array_equal(sa.image, sb.image)

    def test_seed_changes_content(self):
        a = make_dataset("coco-sim", 5, seed=0)
        b = make_dataset("coco-sim", 5, seed=1)
        assert any(sa.response != sb.response for sa, sb in zip(a, b))

    def test_coco_all_captions(self):
        ds = make_dataset("coco-sim", 6)
        assert all(s.task == "caption" for s in ds)

    def test_llava_bench_mixes_tasks(self):
        ds = make_dataset("llava-bench-sim", 9)
        assert {s.task for s in ds} == {"conversation", "detail", "reasoning"}

    def test_scienceqa_tasks(self):
        ds = make_dataset("scienceqa-sim", 4)
        assert all(s.task == "scienceqa" for s in ds)

    def test_image_matches_scene(self):
        from repro.data.images import DEFAULT_IMAGE_SIZE, ImageRenderer
        ds = make_dataset("coco-sim", 3, seed=7)
        r = ImageRenderer(DEFAULT_IMAGE_SIZE)
        for s in ds:
            assert np.array_equal(s.image, r.render(s.scene))

    def test_subset(self):
        ds = make_dataset("coco-sim", 6)
        sub = ds.subset(2)
        assert len(sub) == 2
        assert sub[0] is ds[0]

    def test_full_text(self):
        s = make_dataset("coco-sim", 1)[0]
        assert s.full_text() == f"{s.prompt} {s.response}"

    def test_image_size_parameter(self):
        ds = make_dataset("coco-sim", 1, image_size=12)
        assert ds[0].image.shape == (12, 12, 3)

    def test_all_text_in_vocabulary(self, tokenizer):
        for name in DATASET_NAMES:
            for s in make_dataset(name, 10, seed=42):
                tokenizer.assert_covers(s.full_text())
