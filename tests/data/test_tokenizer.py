"""Tokenizer and vocab tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TokenizerError
from repro.tokenizer import BOS, EOS, IMAGE, PAD, SPECIAL_TOKENS, UNK, Vocab, WordTokenizer


class TestVocab:
    def test_specials_come_first(self):
        v = Vocab(["cat", "dog"])
        assert [v.token_of(i) for i in range(5)] == SPECIAL_TOKENS

    def test_special_ids(self):
        v = Vocab([])
        assert v.pad_id == 0
        assert v.bos_id == 1
        assert v.eos_id == 2
        assert v.unk_id == 3
        assert v.image_id == 4

    def test_unknown_maps_to_unk(self):
        v = Vocab(["cat"])
        assert v.id_of("zebra") == v.unk_id

    def test_duplicates_ignored(self):
        v = Vocab(["cat", "cat", "dog"])
        assert len(v) == len(SPECIAL_TOKENS) + 2

    def test_token_of_out_of_range(self):
        with pytest.raises(TokenizerError):
            Vocab([]).token_of(99)

    def test_save_load_roundtrip(self, tmp_path):
        v = Vocab(["alpha", "beta"])
        v.save(tmp_path / "v.json")
        loaded = Vocab.load(tmp_path / "v.json")
        assert loaded.tokens() == v.tokens()

    def test_load_rejects_corrupt(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('["not", "special", "tokens", "x", "y"]')
        with pytest.raises(TokenizerError):
            Vocab.load(path)

    def test_contains(self):
        v = Vocab(["cat"])
        assert "cat" in v
        assert "<pad>" in v
        assert "dog" not in v


class TestWordTokenizer:
    def test_split_lowercases_and_punctuation(self):
        toks = WordTokenizer.split("The CAT sat, didn't it?")
        assert toks == ["the", "cat", "sat", ",", "didn't", "it", "?"]

    def test_roundtrip(self, tokenizer):
        text = "the circle is in the top left."
        ids = tokenizer.encode(text)
        assert tokenizer.decode(ids) == text

    def test_bos_eos_flags(self, tokenizer):
        ids = tokenizer.encode("the circle", add_bos=True, add_eos=True)
        assert ids[0] == tokenizer.vocab.bos_id
        assert ids[-1] == tokenizer.vocab.eos_id

    def test_decode_skips_specials(self, tokenizer):
        ids = tokenizer.encode("yes", add_bos=True, add_eos=True)
        assert tokenizer.decode(ids) == "yes"

    def test_decode_keeps_specials_when_asked(self, tokenizer):
        ids = tokenizer.encode("yes", add_eos=True)
        assert "<eos>" in tokenizer.decode(ids, skip_special=False)

    def test_encode_array_dtype(self, tokenizer):
        arr = tokenizer.encode_array("the circle")
        assert arr.dtype == np.int64

    def test_assert_covers_raises_on_oov(self, tokenizer):
        with pytest.raises(TokenizerError):
            tokenizer.assert_covers("the xylophone")

    def test_assert_covers_passes(self, tokenizer):
        tokenizer.assert_covers("the large red circle is in the center.")

    def test_save_load(self, tokenizer, tmp_path):
        tokenizer.save(tmp_path / "tok.json")
        loaded = WordTokenizer.load(tmp_path / "tok.json")
        text = "how many objects are in the image?"
        assert loaded.encode(text) == tokenizer.encode(text)

    def test_from_texts_covers_sources(self):
        tok = WordTokenizer.from_texts(["hello world", "world again"])
        assert "hello" in tok.vocab
        assert "again" in tok.vocab
        assert tok.vocab_size == 5 + 3

    def test_image_token_not_in_word_list(self):
        tok = WordTokenizer.from_texts(["a <image> b"])
        # <image> is a special; splitting recognises it as one token.
        assert tok.vocab.id_of("<image>") == tok.vocab.image_id


@settings(max_examples=30, deadline=None)
@given(
    words=st.lists(
        st.sampled_from(["red", "circle", "the", "is", "top", "left", "two", "?"]),
        min_size=1,
        max_size=12,
    )
)
def test_roundtrip_property(words, tokenizer):
    """Any sentence made of in-vocab words round-trips through encode/decode
    up to punctuation re-attachment."""
    text = " ".join(words)
    ids = tokenizer.encode(text)
    assert tokenizer.decode(ids).replace(" ?", "?") == text.replace(" ?", "?")
