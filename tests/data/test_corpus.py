"""Corpus generator tests."""

from repro.data.corpus import BASE_WORDS, build_reference_texts, text_only_corpus
from repro.tokenizer import WordTokenizer


class TestReferenceTexts:
    def test_first_text_covers_base_words(self):
        texts = build_reference_texts(n_scenes=1)
        first = set(texts[0].split())
        assert set(BASE_WORDS) <= first

    def test_deterministic(self):
        assert build_reference_texts(seed=1, n_scenes=5) == build_reference_texts(seed=1, n_scenes=5)

    def test_tokenizer_built_from_reference_covers_corpus(self):
        tok = WordTokenizer.from_texts(build_reference_texts(n_scenes=20))
        for doc in text_only_corpus(seed=9, n_documents=50):
            tok.assert_covers(doc)


class TestTextOnlyCorpus:
    def test_size(self):
        assert len(text_only_corpus(n_documents=17)) == 17

    def test_documents_are_prompt_response_pairs(self):
        docs = text_only_corpus(n_documents=10)
        # Captions / questions end with response sentences ending in '.'
        assert all(doc.strip().endswith(".") for doc in docs)

    def test_task_variety(self):
        docs = text_only_corpus(n_documents=10)
        assert any("?" in d for d in docs)          # questions present
        assert any("the image" in d for d in docs)  # image-description text present
