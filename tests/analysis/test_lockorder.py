"""Lock-order rule: cross-class inversion cycles and self-deadlocks."""

from __future__ import annotations

from repro.analysis.framework import run_rules
from repro.analysis.rules.lockorder import LockOrderRule


def test_bad_fixture_flags_inversion_and_reacquisition(load_fixture):
    project = load_fixture("lockorder")
    findings = [f for f in run_rules(project, [LockOrderRule()])
                if f.file.endswith("bad.py")]
    messages = [f.message for f in findings]
    inversions = [m for m in messages if "lock-order inversion" in m]
    assert inversions, messages
    assert any("Metrics" in m and "Queue" in m for m in inversions)
    reacquired = [m for m in messages if "re-entran" in m or "self-deadlock" in m]
    assert reacquired, messages
    assert any("Registry" in m for m in reacquired)


def test_ok_fixture_is_clean(load_fixture):
    """One global nesting order and unlocked helpers produce no findings."""
    project = load_fixture("lockorder")
    findings = [f for f in run_rules(project, [LockOrderRule()])
                if f.file.endswith("ok.py")]
    assert findings == []
