"""Shared helpers for the static-analysis tests: fixture tree loading."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import load_project

FIXTURES = Path(__file__).resolve().parent / "fixtures"
REPO_ROOT = Path(__file__).resolve().parent.parent.parent


@pytest.fixture()
def load_fixture():
    """Load ``fixtures/<sub>`` into a parsed :class:`Project`."""

    def _load(sub: str):
        path = FIXTURES / sub
        assert path.exists(), f"missing fixture tree {path}"
        return load_project([path])

    return _load
