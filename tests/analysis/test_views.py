"""View-mutation rule: taint pass over arena view API results."""

from __future__ import annotations

from repro.analysis.framework import run_rules
from repro.analysis.rules.views import ViewMutationRule


def test_bad_fixture_flags_every_write(load_fixture):
    project = load_fixture("views")
    findings = [f for f in run_rules(project, [ViewMutationRule()])
                if f.file.endswith("bad.py")]
    assert len(findings) == 4
    messages = " | ".join(f.message for f in findings)
    assert "in-place write into zero-copy view 'v'" in messages
    assert "augmented assignment" in messages
    assert "directly into an arena view API result" in messages
    assert "'p'" in messages  # the positions property alias


def test_ok_fixture_is_clean(load_fixture):
    """Reads, explicit .copy(), and rebinding clear the taint."""
    project = load_fixture("views")
    findings = [f for f in run_rules(project, [ViewMutationRule()])
                if f.file.endswith("ok.py")]
    assert findings == []
