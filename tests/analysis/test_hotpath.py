"""Hot-path allocation rule: forbidden allocators, exemptions, scoping."""

from __future__ import annotations

from repro.analysis.framework import run_rules
from repro.analysis.rules.hotpath import HotPathAllocationRule


def _rule() -> HotPathAllocationRule:
    return HotPathAllocationRule(
        hot_modules={"hot.engine"}, hot_prefixes=(), exempt={"hot.reference"}
    )


def test_hot_module_allocations_flagged(load_fixture):
    project = load_fixture("hotpath")
    findings = run_rules(project, [_rule()])
    assert all(f.file.endswith("engine.py") for f in findings)
    messages = " | ".join(f.message for f in findings)
    assert len(findings) == 3
    assert "np.concatenate" in messages
    assert "np.stack" in messages
    assert ".copy()" in messages


def test_exempt_and_cold_modules_untouched(load_fixture):
    """reference.py (executable spec) and cold.py (off-path) never flag."""
    project = load_fixture("hotpath")
    findings = run_rules(project, [_rule()])
    assert not any(f.file.endswith(("reference.py", "cold.py")) for f in findings)


def test_default_scope_matches_the_repo():
    """The shipped scope covers the real hot modules and exempts the spec."""
    rule = HotPathAllocationRule()
    assert "repro.core.engine" in rule.hot_modules
    assert "repro.utils.arena" in rule.hot_modules
    assert any("repro.decoding" in p for p in rule.hot_prefixes)
    assert "repro.core.reference" in rule.exempt
