"""Determinism-flow rule: nondeterministic sources reaching decode sinks."""

from __future__ import annotations

from repro.analysis.framework import run_rules
from repro.analysis.rules.taintflow import DeterminismFlowRule


def _rule():
    # Fixture modules are named taintflow.bad / taintflow.ok, so the sink
    # scope must cover them (the default scopes to repro.decoding/core).
    return DeterminismFlowRule(sink_prefixes=("taintflow.",),
                               clock_exempt=())


def test_bad_fixture_flags_sources_reaching_sinks(load_fixture):
    project = load_fixture("taintflow")
    findings = [f for f in run_rules(project, [_rule()])
                if f.file.endswith("bad.py")]
    messages = [f.message for f in findings]
    # Unseeded rng flows interprocedurally into decode()'s rng parameter.
    assert any("unseeded-rng" in m and "rng" in m and "decode" in m
               for m in messages), messages
    # The `rng if rng is not None else default_rng()` fallback on self.rng.
    assert any("unseeded-rng" in m and "Sampler.__init__" in m
               for m in messages), messages
    # Wall clock laundered into a seed slot.
    assert any("wall-clock" in m and "seed" in m for m in messages), messages


def test_ok_fixture_is_clean(load_fixture):
    """Seeded rngs and clock-as-data (not clock-as-seed) are fine."""
    project = load_fixture("taintflow")
    findings = [f for f in run_rules(project, [_rule()])
                if f.file.endswith("ok.py")]
    assert findings == []
