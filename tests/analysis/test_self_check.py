"""The linter's dogfood gate: the shipped tree is clean modulo the baseline.

This is the test that keeps the rules honest in both directions: a rule
that over-fires breaks it immediately, and a regression in ``src/`` (an
upward import, a stray ``np.concatenate`` on the hot path, a silent broad
except) breaks it just as fast.  The committed baseline must stay small
(<= 10 entries) and every entry must carry a real justification.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.analysis import Baseline
from repro.analysis.cli import main
from repro.analysis.framework import rule_ids

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
BASELINE = REPO_ROOT / "analysis_baseline.json"


def test_src_is_clean_modulo_baseline(monkeypatch, capsys):
    monkeypatch.chdir(REPO_ROOT)
    start = time.perf_counter()
    assert main(["src", "--baseline", str(BASELINE)]) == 0
    elapsed = time.perf_counter() - start
    out = capsys.readouterr().out
    assert "clean: 0 findings" in out
    assert "stale baseline entry" not in out
    assert "no justification" not in out
    assert "stale inline allow" not in out
    # CI budget: the whole-program check must stay interactive-fast.
    assert elapsed < 30.0, f"analysis took {elapsed:.1f}s, budget is 30s"


def test_whole_program_packs_are_registered():
    assert {"lock-order", "determinism-flow", "view-escape",
            "hotpath-reach"} <= set(rule_ids())


def test_baseline_is_small_and_fully_justified():
    baseline = Baseline.load(BASELINE)
    assert 0 < len(baseline) <= 10
    assert baseline.unjustified() == []
    payload = json.loads(BASELINE.read_text())
    for entry in payload["entries"]:
        # A justification is a sentence, not a token: forbid lazy entries.
        assert len(entry["justification"].split()) >= 5, entry
