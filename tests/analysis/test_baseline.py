"""Baseline mechanics: matching, justification gating, staleness."""

from __future__ import annotations

import json

from repro.analysis import Baseline, BaselineEntry, Finding, write_baseline


def _finding(snippet="x = bad()", file="pkg/mod.py", rule="determinism"):
    return Finding(file=file, line=3, rule_id=rule, message="m",
                   fix_hint="", snippet=snippet)


def test_justified_entry_suppresses_matching_finding():
    entry = BaselineEntry(rule="determinism", file="pkg/mod.py",
                          content="x = bad()", justification="known, accepted")
    baseline = Baseline([entry])
    assert baseline.suppresses(_finding())
    assert baseline.unused() == []


def test_matching_is_content_keyed_not_line_keyed():
    """A finding on any line suppresses as long as the source text matches."""
    entry = BaselineEntry(rule="determinism", file="pkg/mod.py",
                          content="x = bad()", justification="ok")
    moved = Finding(file="pkg/mod.py", line=99, rule_id="determinism",
                    message="m", fix_hint="", snippet="x = bad()")
    assert Baseline([entry]).suppresses(moved)


def test_unjustified_entry_never_applies():
    for justification in ("", "   ", "TODO: justify this suppression or fix the finding"):
        entry = BaselineEntry(rule="determinism", file="pkg/mod.py",
                              content="x = bad()", justification=justification)
        baseline = Baseline([entry])
        assert not baseline.suppresses(_finding())
        assert entry in baseline.unjustified()


def test_mismatches_do_not_suppress():
    entry = BaselineEntry(rule="determinism", file="pkg/mod.py",
                          content="x = bad()", justification="ok")
    baseline = Baseline([entry])
    assert not baseline.suppresses(_finding(rule="layering"))
    assert not baseline.suppresses(_finding(file="pkg/other.py"))
    assert not baseline.suppresses(_finding(snippet="y = bad()"))
    assert baseline.unused() == [entry]


def test_write_baseline_roundtrip_requires_human_edit(tmp_path):
    """A freshly written skeleton suppresses nothing until justified."""
    path = tmp_path / "bl.json"
    n = write_baseline([_finding()], path)
    assert n == 1
    loaded = Baseline.load(path)
    assert len(loaded) == 1
    assert not loaded.suppresses(_finding())  # TODO placeholder -> inert
    payload = json.loads(path.read_text())
    payload["entries"][0]["justification"] = "reviewed: fine"
    path.write_text(json.dumps(payload))
    assert Baseline.load(path).suppresses(_finding())


def test_load_missing_path_is_empty(tmp_path):
    baseline = Baseline.load(tmp_path / "absent.json")
    assert len(baseline) == 0
    assert not baseline.suppresses(_finding())
