"""Call-graph construction: resolution, dispatch, decorators, cycles."""

from __future__ import annotations

from textwrap import dedent

import pytest

from repro.analysis import load_project
from repro.analysis.callgraph import build_call_graph, call_graph_for


@pytest.fixture()
def graph_of(tmp_path):
    """Write ``name -> source`` modules, load them, build the graph.

    Each module is written as a package ``__init__.py`` so its dotted name
    is exactly the given name (module naming anchors at the topmost
    package, which would otherwise prepend the tmp directory).
    """

    def _build(**modules):
        for name, source in modules.items():
            pkg = tmp_path / name
            pkg.mkdir()
            (pkg / "__init__.py").write_text(dedent(source))
        return build_call_graph(load_project([tmp_path]))

    return _build


def _callee_names(graph, qname):
    return sorted({e.callee for e in graph.callees(qname)})


def test_module_function_resolution(graph_of):
    graph = graph_of(app="""
        def helper():
            return 1

        def entry():
            return helper()
    """)
    assert _callee_names(graph, "app.entry") == ["app.helper"]


def test_self_method_dispatch_and_attr_types(graph_of):
    """self.method() and self.attr.method() both resolve, via __init__ types."""
    graph = graph_of(app="""
        class Store:
            def get(self):
                return 1

        class Engine:
            def __init__(self):
                self.store = Store()

            def run(self):
                return self.helper() + self.store.get()

            def helper(self):
                return 2
    """)
    assert _callee_names(graph, "app.Engine.run") == [
        "app.Engine.helper", "app.Store.get"]


def test_cross_module_import_resolution(graph_of):
    graph = graph_of(
        util="""
            def work():
                return 1
        """,
        app="""
            from util import work

            def entry():
                return work()
        """,
    )
    assert _callee_names(graph, "app.entry") == ["util.work"]


def test_decorated_functions_keep_their_edges(graph_of):
    """Decorators are transparent: edges point at the decorated function."""
    graph = graph_of(app="""
        def traced(fn):
            return fn

        @traced
        def worker():
            return 1

        def entry():
            return worker()
    """)
    assert "app.worker" in _callee_names(graph, "app.entry")
    assert graph.functions["app.worker"].decorators == ("traced",)


def test_return_type_annotation_chains(graph_of):
    """reg().gauge().set() style chains resolve through return annotations."""
    graph = graph_of(app="""
        class Gauge:
            def set(self, v):
                pass

        class Registry:
            def gauge(self) -> "Gauge":
                return Gauge()

        def get_registry() -> "Registry":
            return Registry()

        def entry():
            get_registry().gauge().set(1)
    """)
    callees = _callee_names(graph, "app.entry")
    assert {"app.get_registry", "app.Registry.gauge", "app.Gauge.set"} <= set(callees)


def test_inheritance_resolves_through_mro(graph_of):
    graph = graph_of(app="""
        class Base:
            def shared(self):
                return 1

        class Child(Base):
            def run(self):
                return self.shared()
    """)
    assert _callee_names(graph, "app.Child.run") == ["app.Base.shared"]
    assert graph.resolve_method("app.Child", "shared") == "app.Base.shared"


def test_recursion_and_cycles_terminate(graph_of):
    graph = graph_of(app="""
        def ping():
            return pong()

        def pong():
            return ping()
    """)
    closure = graph.reachable(["app.ping"])
    assert set(closure) == {"app.ping", "app.pong"}
    assert closure["app.pong"] == ("app.ping", "app.pong")


def test_reachability_gives_shortest_witness_path(graph_of):
    graph = graph_of(app="""
        def c():
            return 1

        def b():
            return c()

        def a():
            return b() + c()
    """)
    closure = graph.reachable(["app.a"])
    assert closure["app.c"] == ("app.a", "app.c")  # direct, not via b


def test_nested_defs_do_not_leak_edges_to_parent(graph_of):
    """A nested def's calls belong to the nested function, not the parent."""
    graph = graph_of(app="""
        def leaf():
            return 1

        def parent():
            def inner():
                return leaf()
            return inner
    """)
    assert "app.leaf" not in _callee_names(graph, "app.parent")
    assert _callee_names(graph, "app.parent.inner") == ["app.leaf"]


def test_property_access_emits_call_edge(graph_of):
    graph = graph_of(app="""
        class Cache:
            @property
            def positions(self):
                return self._pos

            def __init__(self):
                self._pos = []

        def entry(cache: Cache):
            return cache.positions
    """)
    assert "app.Cache.positions" in _callee_names(graph, "app.entry")


def test_graph_is_memoized_on_project(tmp_path):
    (tmp_path / "m.py").write_text("def f():\n    return 1\n")
    project = load_project([tmp_path])
    assert call_graph_for(project) is call_graph_for(project)
