"""Lock-discipline rule: guarded classes write only under self._lock."""

from __future__ import annotations

from repro.analysis.framework import run_rules
from repro.analysis.rules.locks import LockDisciplineRule


def test_bad_fixture_flags_unguarded_writes(load_fixture):
    project = load_fixture("locks")
    findings = [f for f in run_rules(project, [LockDisciplineRule()])
                if f.file.endswith("bad.py")]
    messages = [f.message for f in findings]
    assert len(findings) == 2
    assert any("self._counts" in m and "Registry.reset" in m for m in messages)
    assert any("self._dirty" in m and "Registry.bump" in m for m in messages)


def test_ok_fixture_is_clean(load_fixture):
    """Guarded writes pass; classes without a _lock are out of scope."""
    project = load_fixture("locks")
    findings = [f for f in run_rules(project, [LockDisciplineRule()])
                if f.file.endswith("ok.py")]
    assert findings == []
