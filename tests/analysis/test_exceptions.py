"""Exception-discipline rule: bare/broad/swallowed handlers."""

from __future__ import annotations

from repro.analysis.framework import run_rules
from repro.analysis.rules.exceptions import ExceptionDisciplineRule


def test_bad_fixture_flags_all_three_shapes(load_fixture):
    project = load_fixture("exceptions")
    findings = [f for f in run_rules(project, [ExceptionDisciplineRule()])
                if f.file.endswith("bad.py")]
    messages = [f.message for f in findings]
    assert len(findings) == 3
    assert any("bare except" in m for m in messages)
    assert any("broad `except Exception`" in m for m in messages)
    assert any("swallowed CheckpointError" in m for m in messages)


def test_ok_fixture_is_clean(load_fixture):
    """Narrow types, structured logging, re-raise, quarantine all pass."""
    project = load_fixture("exceptions")
    findings = [f for f in run_rules(project, [ExceptionDisciplineRule()])
                if f.file.endswith("ok.py")]
    assert findings == []
