"""Seeded determinism-taint flows: nondeterminism reaching rng/seed slots."""

from __future__ import annotations

import time
from typing import Optional

import numpy as np


def _make_rng() -> np.random.Generator:
    """The taint source hides one call away from the sink."""
    return np.random.default_rng()


def decode(tokens, rng: np.random.Generator) -> list:
    return [rng.integers(0, 10) for _ in tokens]


def run(tokens) -> list:
    gen = _make_rng()
    return decode(tokens, gen)  # unseeded generator reaches the rng param


class Sampler:
    """The classic silent fallback: OS entropy when no rng is passed."""

    def __init__(self, rng: Optional[np.random.Generator] = None) -> None:
        self.rng = rng if rng is not None else np.random.default_rng()


def clocked_seed() -> float:
    seed = time.time()  # wall-clock value lands in a seed slot
    return seed
