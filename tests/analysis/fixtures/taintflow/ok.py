"""Clean determinism: explicit seeds everywhere, derived data untainted."""

from __future__ import annotations

import time
from typing import Optional

import numpy as np


def _make_rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)  # seeded: not a source


def decode(tokens, rng: np.random.Generator) -> list:
    return [rng.integers(0, 10) for _ in tokens]


def run(tokens, seed: int = 0) -> list:
    gen = _make_rng(seed)
    return decode(tokens, gen)


class Sampler:
    """Explicit-seed fallback instead of OS entropy."""

    def __init__(self, seed: int = 0,
                 rng: Optional[np.random.Generator] = None) -> None:
        self.rng = rng if rng is not None else np.random.default_rng(seed)


def timed(tokens) -> float:
    start = time.perf_counter()
    decode(tokens, np.random.default_rng(0))
    # a clock reading used as *data* (not a seed) is not a finding
    elapsed = time.perf_counter() - start
    return elapsed
