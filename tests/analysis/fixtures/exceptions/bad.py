"""Exception-discipline violations: bare, silent-broad, swallowed."""

from repro.errors import CheckpointError


def bare(work):
    try:
        work()
    except:
        pass


def silent_broad(work):
    try:
        return work()
    except Exception:
        return None


def swallowed(load):
    try:
        return load()
    except CheckpointError:
        pass
