"""Disciplined handlers: narrow, structurally logged, or re-raising."""

from repro.errors import CheckpointError
from repro.obs.logsetup import get_logger, log_exception

logger = get_logger(__name__)


def narrow(work):
    try:
        return work()
    except ValueError:
        return None


def logged_helper(work):
    try:
        return work()
    except Exception as exc:
        log_exception(logger, "work_failed", exc)
        return None


def logged_extra(work):
    try:
        return work()
    except Exception as exc:
        logger.warning("work failed", extra={"event": "work_failed", "error": str(exc)})
        return None


def logged_traceback(work):
    try:
        return work()
    except Exception:
        logger.exception("work failed")
        return None


def reraised(work, cleanup):
    try:
        return work()
    except Exception:
        cleanup()
        raise


def quarantined(load, quarantine):
    try:
        return load()
    except CheckpointError as exc:
        quarantine(exc)
        return None
