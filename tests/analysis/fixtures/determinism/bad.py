"""Every statement here violates the determinism contract."""

import random
import time

import numpy as np

np.random.seed(1234)
noise = np.random.rand(3)
pick = random.random
rng = np.random.default_rng(int(time.time()))
