"""Idiomatic seeded randomness: explicit Generators only."""

import numpy as np

rng = np.random.default_rng(0)
fallback = np.random.default_rng()
seq = np.random.SeedSequence(42)
child = np.random.Generator(np.random.PCG64(seq))
noise = rng.normal(size=3)
