"""Disciplined locking, plus an unguarded class that opts out entirely."""

import threading


class Registry:
    def __init__(self):
        self._lock = threading.Lock()
        self._counts = {}

    def reset(self):
        with self._lock:
            self._counts = {}

    def snapshot(self):
        with self._lock:
            return dict(self._counts)


class Plain:
    def __init__(self):
        self.value = 0

    def bump(self):
        self.value += 1
