"""Lock-discipline violation: a guarded class writing without the lock."""

import threading


class Registry:
    def __init__(self):
        self._lock = threading.Lock()
        self._counts = {}

    def reset(self):
        self._counts = {}

    def bump(self, key):
        with self._lock:
            self._counts[key] = self._counts.get(key, 0) + 1
        self._dirty = True
