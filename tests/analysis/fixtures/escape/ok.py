"""Clean view usage: consume before mutating, copy when it must outlive."""

from __future__ import annotations


def consume_first(table, idx, block, out):
    rows = table.gather_rows(idx)
    total = rows.sum()       # view consumed while still valid
    out.append(total)        # list append on another object: no invalidation
    table.append(block)
    rows = table.gather_rows(idx)  # re-fetched after the mutation
    return rows.mean()


def copied(table, idx, block):
    snap = table.gather_rows(idx).copy()  # explicit copy detaches from arena
    table.append(block)
    return snap


def fresh_return(table, idx):
    return table.gather_rows(idx)  # returning a *fresh* view is the API


class Holder:
    """Stores a copy, not the view itself."""

    def __init__(self, cache) -> None:
        self._cache = cache
        self.last = None

    def snapshot(self):
        self.last = self._cache.layer(0)[0].copy()
        return self.last
