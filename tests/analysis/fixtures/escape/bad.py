"""Seeded view-escape bugs: stale reads, self-stores, closure captures."""

from __future__ import annotations


def stale_read(table, idx, block):
    rows = table.gather_rows(idx)
    table.append(block)      # invalidates every outstanding view of table
    total = rows.sum()       # reads through the dangling alias
    return total


def stale_return(table, n):
    pos = table.positions
    table.rollback(n)
    return pos               # returns an invalidated view


class Holder:
    """Caches a view across calls: any later mutation silently corrupts it."""

    def __init__(self, cache) -> None:
        self._cache = cache

    def snapshot(self):
        self.last = self._cache.layer(0)  # view outlives the call frame
        return self.last


def deferred(cache):
    view = cache.layer(0)
    return lambda: view.sum()  # closure may run after the cache mutates
