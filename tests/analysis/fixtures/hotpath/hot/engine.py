"""Hot-path module: every allocation here must be flagged."""

import numpy as np


def grow(cache, block):
    cache = np.concatenate([cache, block], axis=2)
    stacked = np.stack([block, block])
    snapshot = cache.copy()
    return cache, stacked, snapshot
