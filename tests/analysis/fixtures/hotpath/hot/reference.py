"""Exempt executable-spec module: concatenate stays legal here."""

import numpy as np


def grow(cache, block):
    return np.concatenate([cache, block], axis=2)
