"""Module outside the zero-copy contract: allocations are fine."""

import numpy as np


def setup(parts):
    return np.concatenate(parts).copy()
