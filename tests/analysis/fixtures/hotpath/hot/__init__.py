"""Synthetic package for the hot-path allocation rule."""
