"""Clean locking: one global acquisition order, no re-entrant acquires."""

from __future__ import annotations

import threading


class Metrics:
    """Leaf lock: never calls out while holding it."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._values = {}

    def set(self, key: str, value: float) -> None:
        with self._lock:
            self._values[key] = value

    def snapshot(self) -> dict:
        with self._lock:
            return dict(self._values)


class Queue:
    """Nests Queue -> Metrics only; the reverse order never occurs."""

    def __init__(self, metrics: Metrics) -> None:
        self._lock = threading.Lock()
        self._depth = 0
        self._metrics = metrics

    def push(self) -> None:
        with self._lock:
            self._depth += 1
            self._metrics.set("depth", self._depth)

    def pop(self) -> None:
        with self._lock:
            self._depth -= 1
            depth = self._depth
        # compute under the lock, publish after: no nesting at all
        self._metrics.set("depth", depth)


class Registry:
    """Locked entry points share an unlocked helper instead of nesting."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._items = []

    def _add_unlocked(self, item) -> None:
        self._items.append(item)

    def add(self, item) -> None:
        with self._lock:
            self._add_unlocked(item)

    def add_many(self, items) -> None:
        with self._lock:
            for item in items:
                self._add_unlocked(item)
