"""Seeded lock-order hazards: an inversion cycle and a self-deadlock."""

from __future__ import annotations

import threading


class Metrics:
    """Holds its own lock; calls back into the queue while holding it."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._values = {}
        self._queue = None

    def attach(self, queue: "Queue") -> None:
        self._queue = queue

    def set(self, key: str, value: float) -> None:
        with self._lock:
            self._values[key] = value

    def snapshot(self) -> dict:
        with self._lock:
            # Metrics lock held -> Queue lock acquired (edge Metrics -> Queue)
            self._queue.refresh()
            return dict(self._values)


class Queue:
    """Acquires the metrics lock while holding its own: the opposite order."""

    def __init__(self, metrics: Metrics) -> None:
        self._lock = threading.Lock()
        self._depth = 0
        self._metrics = metrics

    def push(self) -> None:
        with self._lock:
            self._depth += 1
            # Queue lock held -> Metrics lock acquired (edge Queue -> Metrics)
            self._metrics.set("depth", self._depth)

    def refresh(self) -> None:
        with self._lock:
            self._depth = max(self._depth, 0)


class Registry:
    """Helper re-acquires the lock the caller already holds: self-deadlock."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._items = []

    def add(self, item) -> None:
        with self._lock:
            self._items.append(item)

    def add_many(self, items) -> None:
        with self._lock:
            for item in items:
                self.add(item)  # threading.Lock is not re-entrant
