"""Clean hot path: allocations exist, but only off the reachable set."""

from __future__ import annotations

import numpy as np


def offline_report(parts):
    """Allocates freely — never called from the decode entry point."""
    return np.concatenate(parts, axis=0)


def accumulate(buffer, part, cursor):
    n = part.shape[0]
    buffer[cursor:cursor + n] = part  # writes into preallocated storage
    return cursor + n


class Engine:
    """Entry point whose closure is allocation-free."""

    def step(self, buffer, parts):
        cursor = 0
        for part in parts:
            cursor = accumulate(buffer, part, cursor)
        return buffer[:cursor]
