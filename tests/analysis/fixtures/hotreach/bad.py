"""Seeded hot-path leak: the allocation hides in a helper module-side."""

from __future__ import annotations

import numpy as np


def assemble(parts):
    """Lexically innocent helper — no hot module tag anywhere near it."""
    return np.concatenate(parts, axis=0)


class Engine:
    """Entry point; the allocation is one resolved call away."""

    def step(self, parts):
        return assemble(parts)
