"""Half of an import cycle (alpha -> beta at load time)."""

from ring import beta


def a():
    return beta.b()
