"""Other half of the import cycle (beta -> alpha at load time)."""

from ring import alpha


def b():
    return alpha.a()
