"""Synthetic package with a two-module load-time import cycle."""
