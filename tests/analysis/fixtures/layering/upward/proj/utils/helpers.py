"""Foundation-layer module that illegally reaches up into serving."""

from proj.serving import api


def helper():
    return api.handle()
