"""Application-layer module (the illegal import's target)."""


def handle():
    return "ok"
