"""Synthetic package with one upward import (utils -> serving)."""
