"""Synthetic package whose imports all point down the contract."""
