"""Application-layer module importing downward (legal direction)."""

from proj.utils import helpers


def handle():
    return helpers.helper()
