"""Foundation-layer module with no project imports."""


def helper():
    return 1
