"""A function-level (lazy) upward import: sanctioned, not an edge."""


def late():
    from proj.serving import api
    return api.handle()
