"""Legal view usage: reads, explicit copies, and rebinding."""


def legal(cache):
    owned = cache.layer(0).copy()
    owned[0] = 1.0

    w = cache.layer(0)
    total = w.sum()

    w = w.copy()
    w[1] = 2.0
    return owned, total
