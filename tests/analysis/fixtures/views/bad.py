"""In-place writes through arena view APIs: all four must be flagged."""


def corrupt(cache, hybrid):
    v = cache.layer(0)
    v[0] = 1.0
    v += 2.0
    hybrid.gather(0)[0] = 3.0
    p = cache.positions
    p[0] = 5
