"""Hot-path reachability rule: allocations hiding behind resolved calls."""

from __future__ import annotations

from repro.analysis.framework import run_rules
from repro.analysis.rules.hotreach import HotPathReachRule


def _rule():
    # Entry points live in the fixture modules; disable the lexical-pack
    # overlap exclusion since the fixtures are outside repro.*.
    return HotPathReachRule(
        entry_patterns=("hotreach.bad.Engine.step", "hotreach.ok.Engine.step"),
        lexical_modules=set(),
        lexical_prefixes=(),
        exempt=set(),
    )


def test_bad_fixture_flags_allocation_behind_helper(load_fixture):
    project = load_fixture("hotreach")
    findings = [f for f in run_rules(project, [_rule()])
                if f.file.endswith("bad.py")]
    messages = [f.message for f in findings]
    assert any("np.concatenate" in m and "assemble" in m
               for m in messages), messages
    # The finding carries the witness path from the entry point.
    assert any("Engine.step" in m for m in messages), messages


def test_ok_fixture_is_clean(load_fixture):
    """Preallocated-buffer writes and unreachable allocators are fine."""
    project = load_fixture("hotreach")
    findings = [f for f in run_rules(project, [_rule()])
                if f.file.endswith("ok.py")]
    assert findings == []
