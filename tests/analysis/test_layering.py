"""Layering rule: upward imports and cycles rejected, legal trees clean."""

from __future__ import annotations

from repro.analysis.framework import run_rules
from repro.analysis.rules.layering import DEFAULT_LAYERS, LayeringRule

#: The fixture contract: utils at the bottom, serving at the top.
FIXTURE_LAYERS = (
    ("foundation", {"utils"}),
    ("application", {"serving", ""}),
)


def _rule() -> LayeringRule:
    return LayeringRule(layers=FIXTURE_LAYERS, root_package="proj")


def test_upward_import_rejected(load_fixture):
    """A synthetic ``utils -> serving`` import is an upward-import error."""
    project = load_fixture("layering/upward")
    findings = run_rules(project, [_rule()])
    assert len(findings) == 1
    f = findings[0]
    assert f.rule_id == "layering"
    assert "upward import" in f.message
    assert "proj.utils.helpers" in f.message and "proj.serving" in f.message
    assert f.file.endswith("utils/helpers.py")
    assert f.snippet == "from proj.serving import api"


def test_downward_and_lazy_imports_pass(load_fixture):
    """serving -> utils is legal; a function-level upward import is not an edge."""
    project = load_fixture("layering/ok")
    assert run_rules(project, [_rule()]) == []
    # The lazy import really was excluded from the graph, not just unflagged.
    assert all(e.src != "proj.utils.lazy" for e in project.imports)


def test_import_cycle_rejected(load_fixture):
    """A two-module load-time cycle yields exactly one cycle finding."""
    project = load_fixture("layering/cycle")
    findings = run_rules(project, [_rule()])
    assert len(findings) == 1
    f = findings[0]
    assert "import cycle" in f.message
    assert "ring.alpha" in f.message and "ring.beta" in f.message


def test_default_contract_matches_architecture_doc():
    """The shipped contract encodes docs/architecture.md's layering claims."""
    rule = LayeringRule()
    depth = {key: i for i, (_label, keys) in enumerate(DEFAULT_LAYERS) for key in keys}
    # "nn knows nothing above it" / "obs is leaf-free": both at the bottom.
    assert depth["nn"] == 0 and depth["obs"] == 0
    # "core depends on models/nn but not on serving".
    assert depth["models"] < depth["core"] < depth["serving"]
    # Every finding the rule could emit resolves through _layer_of.
    assert rule._layer_of("repro.core.engine") == (2, "method")
    assert rule._layer_of("repro.serving.scheduler") == (3, "application")
    assert rule._layer_of("repro") == (3, "application")
    assert rule._layer_of("some.other.package") is None
