"""Taint engine: propagation through locals, attrs, returns, and params."""

from __future__ import annotations

import ast
from textwrap import dedent

import pytest

from repro.analysis import load_project
from repro.analysis.callgraph import build_call_graph
from repro.analysis.dataflow import TaintSpec, run_taint


class _RngSpec(TaintSpec):
    """Minimal spec: argless ``make_taint()`` calls birth taint."""

    def source_label(self, node, func, graph):
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id == "make_taint" and not node.args):
            return "taint"
        return None


@pytest.fixture()
def taint_of(tmp_path):
    def _run(source):
        pkg = tmp_path / "app"
        pkg.mkdir()
        (pkg / "__init__.py").write_text(dedent(source))
        graph = build_call_graph(load_project([tmp_path]))
        return run_taint(graph, _RngSpec())

    return _run


def test_taint_flows_through_locals_and_returns(taint_of):
    analysis = taint_of("""
        def make_taint():
            pass

        def producer():
            value = make_taint()
            return value
    """)
    assert any(t.label == "taint" for t in analysis.returns["app.producer"])


def test_taint_flows_into_call_params_interprocedurally(taint_of):
    analysis = taint_of("""
        def make_taint():
            pass

        def sink(rng):
            return rng

        def producer():
            return make_taint()

        def entry():
            return sink(producer())
    """)
    assert any(t.label == "taint"
               for t in analysis.params[("app.sink", "rng")])
    events = [e for e in analysis.events
              if e.kind == "call-arg" and e.callee == "app.sink"]
    assert events and events[0].param == "rng"


def test_taint_stored_on_attrs_is_visible_project_wide(taint_of):
    analysis = taint_of("""
        def make_taint():
            pass

        class Holder:
            def __init__(self):
                self.rng = make_taint()

            def reader(self):
                return self.rng
    """)
    assert any(t.label == "taint"
               for t in analysis.attrs[("app.Holder", "rng")])
    assert any(t.label == "taint" for t in analysis.returns["app.Holder.reader"])


def test_derived_data_is_not_tainted(taint_of):
    """Method calls on tainted values and arithmetic launder the taint."""
    analysis = taint_of("""
        def make_taint():
            pass

        def consumer():
            rng = make_taint()
            sample = rng.normal()
            doubled = sample * 2
            return doubled
    """)
    assert "app.consumer" not in analysis.returns
    tainted_targets = {e.target for e in analysis.events if e.kind == "assign"}
    assert "sample" not in tainted_targets
    assert "doubled" not in tainted_targets


def test_rebinding_clears_local_taint(taint_of):
    analysis = taint_of("""
        def make_taint():
            pass

        def rebound():
            value = make_taint()
            value = 0
            return value
    """)
    assert "app.rebound" not in analysis.returns


def test_conditional_fallback_pattern_is_caught(taint_of):
    """The `x if x is not None else make_taint()` idiom carries taint."""
    analysis = taint_of("""
        def make_taint():
            pass

        class Sampler:
            def __init__(self, rng=None):
                self.rng = rng if rng is not None else make_taint()
    """)
    assert any(t.label == "taint"
               for t in analysis.attrs[("app.Sampler", "rng")])
