"""Inline suppressions and SARIF output: justified allows, stale notes."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.cli import main

BAD_LINE = "import random  # repro: allow[determinism] -- {reason}\n"


@pytest.fixture()
def workdir(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    return tmp_path


def test_justified_inline_allow_suppresses(workdir, capsys):
    (workdir / "mod.py").write_text(
        BAD_LINE.format(reason="legacy shim kept for the ablation harness"))
    assert main(["mod.py"]) == 0
    assert "clean: 0 findings" in capsys.readouterr().out


def test_reasonless_allow_is_itself_an_error(workdir, capsys):
    (workdir / "mod.py").write_text("import random  # repro: allow[determinism]\n")
    assert main(["mod.py"]) == 1
    out = capsys.readouterr().out
    # The original finding is NOT silenced, and the bare allow is flagged.
    assert "determinism" in out
    assert "inline-allow" in out


def test_standalone_allow_covers_next_line(workdir, capsys):
    (workdir / "mod.py").write_text(
        "# repro: allow[determinism] -- fixture exercising standalone allows\n"
        "import random\n")
    assert main(["mod.py"]) == 0
    assert "clean: 0 findings" in capsys.readouterr().out


def test_stale_allow_reported_but_not_fatal(workdir, capsys):
    (workdir / "mod.py").write_text(
        "VALUE = 1  # repro: allow[determinism] -- nothing fires here anymore\n")
    assert main(["mod.py"]) == 0
    assert "stale inline allow" in capsys.readouterr().out


def test_allow_for_other_rule_does_not_suppress(workdir, capsys):
    (workdir / "mod.py").write_text(
        BAD_LINE.format(reason="wrong rule id on purpose").replace(
            "allow[determinism]", "allow[layering]"))
    assert main(["mod.py"]) == 1
    assert "determinism" in capsys.readouterr().out


def test_allow_inside_string_literal_is_ignored(workdir, capsys):
    (workdir / "mod.py").write_text(
        'DOC = "# repro: allow[determinism] -- not a real comment"\n'
        "import random\n")
    assert main(["mod.py"]) == 1
    assert "determinism" in capsys.readouterr().out


def test_sarif_output_schema_and_suppressions(workdir, capsys):
    (workdir / "clean.py").write_text(
        BAD_LINE.format(reason="kept to exercise the SARIF suppression path"))
    (workdir / "dirty.py").write_text("import random\n")
    sarif_path = workdir / "out.sarif"
    assert main(["clean.py", "dirty.py", "--sarif", str(sarif_path)]) == 1
    capsys.readouterr()
    payload = json.loads(sarif_path.read_text())
    assert payload["version"] == "2.1.0"
    run = payload["runs"][0]
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert "determinism" in rule_ids
    results = run["results"]
    active = [r for r in results if not r.get("suppressions")]
    suppressed = [r for r in results if r.get("suppressions")]
    assert any(r["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
               == "dirty.py" for r in active)
    assert any(r["suppressions"][0]["kind"] == "external" for r in suppressed)


def test_sarif_format_to_stdout(workdir, capsys):
    (workdir / "dirty.py").write_text("import random\n")
    assert main(["dirty.py", "--format", "sarif"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == "2.1.0"
    assert payload["runs"][0]["results"]
