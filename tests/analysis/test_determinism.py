"""Determinism rule: global RNG, stdlib random, and wall-clock seeds."""

from __future__ import annotations

from repro.analysis.framework import run_rules
from repro.analysis.rules.determinism import DeterminismRule


def test_bad_fixture_flags_all_violations(load_fixture):
    project = load_fixture("determinism")
    findings = [f for f in run_rules(project, [DeterminismRule()])
                if f.file.endswith("bad.py")]
    messages = [f.message for f in findings]
    assert len(findings) == 4
    assert any("stdlib random" in m for m in messages)
    assert any("np.random.seed" in m for m in messages)
    assert any("np.random.rand" in m for m in messages)
    assert any("wall-clock" in m and "time.time" in m for m in messages)


def test_ok_fixture_is_clean(load_fixture):
    """Seeded/seedless default_rng, SeedSequence, Generator all stay legal."""
    project = load_fixture("determinism")
    findings = [f for f in run_rules(project, [DeterminismRule()])
                if f.file.endswith("ok.py")]
    assert findings == []
