"""View-escape rule: zero-copy views outliving the arena state they alias."""

from __future__ import annotations

from repro.analysis.framework import run_rules
from repro.analysis.rules.escape import ViewEscapeRule


def test_bad_fixture_flags_all_escape_shapes(load_fixture):
    project = load_fixture("escape")
    findings = [f for f in run_rules(project, [ViewEscapeRule()])
                if f.file.endswith("bad.py")]
    messages = [f.message for f in findings]
    assert any("stale view read" in m for m in messages), messages
    assert any("stale view returned" in m for m in messages), messages
    assert any("stored on self.last" in m for m in messages), messages
    assert any("closure" in m for m in messages), messages


def test_ok_fixture_is_clean(load_fixture):
    """Consume-before-mutate, .copy() detach, and fresh returns all pass."""
    project = load_fixture("escape")
    findings = [f for f in run_rules(project, [ViewEscapeRule()])
                if f.file.endswith("ok.py")]
    assert findings == []
