"""CLI behaviour: exit codes, JSON schema, baseline workflow, subcommands."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

BAD_SOURCE = "import random\n"
OK_SOURCE = "VALUE = 1\n"


@pytest.fixture()
def bad_file(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "bad.py").write_text(BAD_SOURCE)
    return "bad.py"


def test_findings_exit_one_with_text_report(bad_file, capsys):
    assert main([bad_file]) == 1
    out = capsys.readouterr().out
    assert "determinism" in out
    assert "bad.py:1" in out
    assert "hint:" in out


def test_clean_tree_exits_zero(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "ok.py").write_text(OK_SOURCE)
    assert main(["ok.py"]) == 0
    assert "clean: 0 findings" in capsys.readouterr().out


def test_json_format_schema(bad_file, capsys):
    assert main([bad_file, "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    assert payload["summary"]["errors"] >= 1
    assert set(payload["rules"]) >= {"determinism", "layering", "hotpath-alloc"}
    finding = payload["findings"][0]
    assert {"file", "line", "rule_id", "message", "severity", "snippet"} <= set(finding)


def test_output_artifact_written(bad_file, tmp_path, capsys):
    artifact = tmp_path / "results" / "findings.json"
    assert main([bad_file, "--output", str(artifact)]) == 1
    capsys.readouterr()
    payload = json.loads(artifact.read_text())
    assert payload["summary"]["errors"] >= 1


def test_baseline_workflow_end_to_end(bad_file, tmp_path, capsys):
    """write-baseline skeleton is inert; justified entries suppress."""
    bl = tmp_path / "bl.json"
    assert main([bad_file, "--write-baseline", str(bl)]) == 0
    # The TODO skeleton must not silence anything.
    assert main([bad_file, "--baseline", str(bl)]) == 1
    assert "no justification" in capsys.readouterr().out
    payload = json.loads(bl.read_text())
    for entry in payload["entries"]:
        entry["justification"] = "accepted: fixture for the CLI test"
    bl.write_text(json.dumps(payload))
    assert main([bad_file, "--baseline", str(bl)]) == 0
    assert "baselined" in capsys.readouterr().out


def test_default_baseline_picked_up_from_cwd(bad_file, tmp_path, capsys):
    bl = tmp_path / "analysis_baseline.json"
    main([bad_file, "--write-baseline", str(bl)])
    payload = json.loads(bl.read_text())
    for entry in payload["entries"]:
        entry["justification"] = "accepted: fixture"
    bl.write_text(json.dumps(payload))
    capsys.readouterr()
    assert main([bad_file]) == 0  # no --baseline flag needed


def test_stale_baseline_entry_reported(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "ok.py").write_text(OK_SOURCE)
    bl = tmp_path / "bl.json"
    bl.write_text(json.dumps({"version": 1, "entries": [{
        "rule": "determinism", "file": "gone.py",
        "content": "import random", "justification": "was real once",
    }]}))
    assert main(["ok.py", "--baseline", str(bl)]) == 0
    assert "stale baseline entry" in capsys.readouterr().out


def test_rule_selection_and_listing(bad_file, capsys):
    # Selecting a rule that cannot fire on the file -> clean.
    assert main([bad_file, "--rules", "lock-discipline"]) == 0
    capsys.readouterr()
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("layering", "determinism", "hotpath-alloc",
                    "view-mutation", "except-discipline", "lock-discipline"):
        assert rule_id in out


def test_unknown_rule_id_is_usage_error(bad_file, capsys):
    assert main([bad_file, "--rules", "nope"]) == 2
    assert "unknown rule id" in capsys.readouterr().err


def test_missing_path_is_usage_error(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    with pytest.raises(SystemExit) as exc:
        main(["does-not-exist"])
    assert exc.value.code == 2


def test_parse_error_surfaces_as_finding(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "broken.py").write_text("def f(:\n")
    assert main(["broken.py"]) == 1
    assert "parse-error" in capsys.readouterr().out


def test_docstrings_subcommand(monkeypatch, capsys):
    monkeypatch.chdir(REPO_ROOT)
    assert main(["docstrings"]) == 0
    assert "public defs documented" in capsys.readouterr().out


def test_docs_subcommand_links_only(monkeypatch, capsys):
    monkeypatch.chdir(REPO_ROOT)
    assert main(["docs", "--links-only"]) == 0
    assert "links ok" in capsys.readouterr().out
