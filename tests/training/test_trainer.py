"""Generic trainer and loss-function tests."""

import numpy as np
import pytest

from repro.data.dataloader import IGNORE_INDEX
from repro.errors import TrainingError
from repro.nn.tensor import Tensor
from repro.training.losses import masked_cross_entropy, masked_kl_divergence, response_mask
from repro.training.trainer import TrainConfig, TrainResult, run_training


class TestTrainConfig:
    def test_validation(self):
        with pytest.raises(TrainingError):
            TrainConfig(steps=0)
        with pytest.raises(TrainingError):
            TrainConfig(steps=10, batch_size=0)
        with pytest.raises(TrainingError):
            TrainConfig(steps=10, warmup_steps=10)


class TestRunTraining:
    def test_minimises_quadratic(self):
        x = Tensor(np.array([5.0]), requires_grad=True)

        def loss_fn(step, gen):
            return ((x - 2.0) ** 2).sum()

        result = run_training([x], loss_fn, TrainConfig(steps=150, batch_size=1, lr=0.1, warmup_steps=5), np.random.default_rng(0))
        assert abs(x.data[0] - 2.0) < 0.05
        assert len(result.losses) == 150
        assert result.final_loss < result.losses[0]

    def test_diverged_loss_raises(self):
        x = Tensor(np.array([1.0]), requires_grad=True)

        def loss_fn(step, gen):
            return (x * float("nan")).sum()

        with pytest.raises(TrainingError):
            run_training([x], loss_fn, TrainConfig(steps=5, batch_size=1, lr=0.1, warmup_steps=1), np.random.default_rng(0))

    def test_final_loss_requires_steps(self):
        with pytest.raises(TrainingError):
            TrainResult().final_loss


class TestLosses:
    def test_response_mask(self):
        labels = np.array([[1, IGNORE_INDEX, 3]])
        assert np.array_equal(response_mask(labels), [[True, False, True]])

    def test_masked_cross_entropy_ignores(self, rng):
        logits = Tensor(rng.standard_normal((1, 3, 5)))
        labels = np.array([[2, IGNORE_INDEX, 1]])
        loss = masked_cross_entropy(logits, labels)
        ref = masked_cross_entropy(logits[:, [0, 2], :], np.array([[2, 1]]))
        assert loss.item() == pytest.approx(ref.item(), abs=1e-5)

    def test_masked_kl_zero_identical(self, rng):
        logits = rng.standard_normal((2, 3, 4))
        kl = masked_kl_divergence(logits, Tensor(logits.copy(), requires_grad=True))
        assert abs(kl.item()) < 1e-6

    def test_masked_kl_respects_mask(self, rng):
        teacher = rng.standard_normal((1, 2, 4))
        student_data = teacher.copy()
        student_data[0, 1, 0] += 5.0  # only position 1 differs
        student = Tensor(student_data, requires_grad=True)
        masked = masked_kl_divergence(teacher, student, mask=np.array([[True, False]]))
        assert abs(masked.item()) < 1e-6
        unmasked = masked_kl_divergence(teacher, student)
        assert unmasked.item() > 0.01

    def test_masked_kl_empty_mask_raises(self, rng):
        with pytest.raises(ValueError):
            masked_kl_divergence(
                rng.standard_normal((1, 2, 3)),
                Tensor(rng.standard_normal((1, 2, 3))),
                mask=np.zeros((1, 2), dtype=bool),
            )
