"""Training-pipeline tests on tiny models: each stage reduces its loss."""

import numpy as np
import pytest

from repro.core.draft_head import AASDDraftHead, DraftHeadConfig
from repro.data.corpus import text_only_corpus
from repro.data.tasks import make_dataset
from repro.errors import TrainingError
from repro.models.config import LlamaConfig, LlavaConfig, VisionConfig, get_config
from repro.models.llama import MiniLlama
from repro.models.llava import MiniLlava
from repro.training import (
    DraftTrainConfig,
    TrainConfig,
    distill_text_draft,
    finetune_llava_draft,
    finetune_multimodal_staged,
    finetune_target,
    finetune_text_draft,
    generate_distillation_data,
    pretrain_lm,
    train_draft_head,
)


def tiny_llama(vocab, rng, dim=16):
    return MiniLlama(LlamaConfig(vocab_size=vocab, dim=dim, n_layers=1, n_heads=2, mlp_hidden=32), rng=rng)


def tiny_llava(vocab, rng):
    return MiniLlava(
        LlavaConfig(
            llama=LlamaConfig(vocab_size=vocab, dim=16, n_layers=1, n_heads=2, mlp_hidden=32),
            vision=VisionConfig(image_size=48, patch_size=16, dim=8, n_layers=1, n_heads=2, mlp_hidden=16),
        ),
        rng=rng,
    )


FAST = TrainConfig(steps=25, batch_size=4, lr=3e-3, warmup_steps=3, seed=0)


@pytest.fixture(scope="module")
def samples():
    return make_dataset("llava-bench-sim", 16, seed=77).samples


class TestPretrain:
    def test_loss_decreases(self, tokenizer, rng):
        model = tiny_llama(tokenizer.vocab_size, rng)
        result = pretrain_lm(model, tokenizer, text_only_corpus(n_documents=40), FAST, seq_len=24)
        assert result.final_loss < result.losses[0]


class TestFinetune:
    def test_target_finetune(self, tokenizer, rng, samples):
        model = tiny_llava(tokenizer.vocab_size, rng)
        result = finetune_target(model, tokenizer, samples, FAST)
        assert result.final_loss < result.losses[0]

    def test_staged_finetune_freezes_backbone_in_stage1(self, tokenizer, rng, samples):
        model = tiny_llava(tokenizer.vocab_size, rng)
        before = model.llama.embed.weight.data.copy()
        align = TrainConfig(steps=6, batch_size=4, lr=3e-3, warmup_steps=1, seed=0)
        joint = TrainConfig(steps=2, batch_size=4, lr=0.0 + 1e-9, warmup_steps=1, seed=0)
        # Run only the align stage meaningfully; joint lr ~ 0 so backbone
        # stays (numerically) put unless stage 1 touched it.
        finetune_multimodal_staged(model, tokenizer, samples, align, joint)
        assert np.allclose(model.llama.embed.weight.data, before, atol=1e-5)

    def test_text_draft_finetune(self, tokenizer, rng, samples):
        model = tiny_llama(tokenizer.vocab_size, rng)
        result = finetune_text_draft(model, tokenizer, samples, FAST)
        assert result.final_loss < result.losses[0]

    def test_llava_draft_finetune(self, tokenizer, rng, samples):
        model = tiny_llava(tokenizer.vocab_size, rng)
        result = finetune_llava_draft(model, tokenizer, samples, FAST)
        assert result.final_loss < result.losses[0]


class TestDistill:
    def test_generate_distillation_data(self, tokenizer, rng, samples):
        target = tiny_llava(tokenizer.vocab_size, rng)
        data = generate_distillation_data(target, tokenizer, samples[:4], max_new_tokens=8)
        assert len(data) == 4
        for orig, dist in zip(samples, data):
            assert dist.prompt == orig.prompt
            assert np.array_equal(dist.image, orig.image)
            assert dist.response  # never empty

    def test_distill_text_draft_runs(self, tokenizer, rng, samples):
        target = tiny_llava(tokenizer.vocab_size, rng)
        draft = tiny_llama(tokenizer.vocab_size, rng)
        result = distill_text_draft(draft, target, tokenizer, samples[:6], FAST, max_new_tokens=8)
        assert len(result.losses) == FAST.steps


class TestDraftHeadTraining:
    def test_config_validation(self):
        with pytest.raises(TrainingError):
            DraftTrainConfig(steps=10, warmup_steps=1, gamma_train=0)
        with pytest.raises(TrainingError):
            DraftTrainConfig(steps=10, warmup_steps=1, kl_weight=-1.0)

    def test_empty_samples_raises(self, tokenizer, rng):
        target = tiny_llava(tokenizer.vocab_size, rng)
        head = AASDDraftHead(
            DraftHeadConfig(
                vocab_size=tokenizer.vocab_size, dim=16, n_heads=2,
                n_vision_tokens=9, k_compressed=3,
            ),
            rng=rng,
        )
        with pytest.raises(TrainingError):
            train_draft_head(head, target, tokenizer, [], DraftTrainConfig(steps=2, warmup_steps=1))

    def test_loss_decreases(self, tokenizer, rng, samples):
        target = tiny_llava(tokenizer.vocab_size, rng)
        head = AASDDraftHead(
            DraftHeadConfig(
                vocab_size=tokenizer.vocab_size, dim=16, n_heads=2, mlp_hidden=24,
                n_vision_tokens=9, k_compressed=3,
            ),
            rng=rng,
        )
        head.init_from_target(target.llama)
        cfg = DraftTrainConfig(steps=30, batch_size=4, lr=3e-3, warmup_steps=3, seed=0,
                               gamma_train=3, kl_weight=0.5)
        result = train_draft_head(head, target, tokenizer, samples, cfg)
        assert result.final_loss < result.losses[0]

    def test_no_target_kv_variant_trains(self, tokenizer, rng, samples):
        target = tiny_llava(tokenizer.vocab_size, rng)
        head = AASDDraftHead(
            DraftHeadConfig(
                vocab_size=tokenizer.vocab_size, dim=16, n_heads=2, mlp_hidden=24,
                n_vision_tokens=9, k_compressed=3, use_target_kv=False,
            ),
            rng=rng,
        )
        cfg = DraftTrainConfig(steps=10, batch_size=4, lr=3e-3, warmup_steps=2, seed=0)
        result = train_draft_head(head, target, tokenizer, samples, cfg)
        assert len(result.losses) == 10

    def test_projector_receives_gradients(self, tokenizer, rng, samples):
        """The KV projector must train jointly with the head."""
        target = tiny_llava(tokenizer.vocab_size, rng)
        head = AASDDraftHead(
            DraftHeadConfig(
                vocab_size=tokenizer.vocab_size, dim=16, n_heads=2, mlp_hidden=24,
                n_vision_tokens=9, k_compressed=3,
            ),
            rng=rng,
        )
        before = head.projector.w_k.data.copy()
        cfg = DraftTrainConfig(steps=10, batch_size=4, lr=5e-3, warmup_steps=2, seed=0)
        train_draft_head(head, target, tokenizer, samples, cfg)
        assert not np.allclose(head.projector.w_k.data, before)
