"""Quality-evaluation and ascii-art tests."""

import numpy as np
import pytest

from repro.data import ImageRenderer, image_to_ascii, make_dataset, sample_scene, scene_summary
from repro.errors import DecodingError
from repro.eval.quality import evaluate_quality, image_grounding_score
from repro.models.config import LlamaConfig, LlavaConfig, VisionConfig
from repro.models.llava import MiniLlava


@pytest.fixture(scope="module")
def tiny_target(tokenizer):
    return MiniLlava(
        LlavaConfig(
            llama=LlamaConfig(vocab_size=tokenizer.vocab_size, dim=16, n_layers=1, n_heads=2, mlp_hidden=24),
            vision=VisionConfig(image_size=48, patch_size=16, dim=8, n_layers=1, n_heads=2, mlp_hidden=16),
        ),
        rng=np.random.default_rng(0),
    )


class TestEvaluateQuality:
    def test_report_fields(self, tiny_target, tokenizer):
        samples = make_dataset("coco-sim", 4, seed=1).samples
        report = evaluate_quality(tiny_target, tokenizer, samples, max_new_tokens=8)
        assert 0.0 <= report.token_accuracy <= 1.0
        assert 0.0 <= report.exact_match <= 1.0
        assert report.n_samples == 4
        assert "token accuracy" in str(report)

    def test_untrained_model_scores_low(self, tiny_target, tokenizer):
        samples = make_dataset("coco-sim", 4, seed=1).samples
        report = evaluate_quality(tiny_target, tokenizer, samples, max_new_tokens=8)
        assert report.exact_match < 0.5  # random weights can't match templates

    def test_empty_raises(self, tiny_target, tokenizer):
        with pytest.raises(DecodingError):
            evaluate_quality(tiny_target, tokenizer, [])


class TestGroundingScore:
    def test_range(self, tiny_target, tokenizer):
        samples = make_dataset("coco-sim", 3, seed=1).samples
        score = image_grounding_score(tiny_target, tokenizer, samples, max_new_tokens=6)
        assert 0.0 <= score <= 1.0

    def test_needs_two_samples(self, tiny_target, tokenizer):
        samples = make_dataset("coco-sim", 1, seed=1).samples
        with pytest.raises(DecodingError):
            image_grounding_score(tiny_target, tokenizer, samples)


class TestAsciiArt:
    def test_shapes_visible(self):
        scene = sample_scene(np.random.default_rng(0), min_objects=2, max_objects=3)
        art = image_to_ascii(ImageRenderer().render(scene))
        # Every object's color initial appears somewhere.
        for obj in scene:
            assert obj.color[0] in art

    def test_empty_background_blank(self):
        import numpy as np
        blank = np.full((48, 48, 3), 0.06, dtype=np.float32)
        art = image_to_ascii(blank)
        assert set(art) <= {" ", "\n"}

    def test_scene_summary(self):
        scene = sample_scene(np.random.default_rng(1))
        summary = scene_summary(scene)
        for obj in scene:
            assert obj.shape in summary
            assert obj.position in summary
