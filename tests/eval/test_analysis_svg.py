"""Tests for the analysis utilities and the SVG chart writer."""

import numpy as np
import pytest

from repro.decoding.metrics import BlockRecord, DecodeRecord
from repro.errors import DecodingError
from repro.eval.analysis import (
    acceptance_by_position,
    block_length_histogram,
    per_task_breakdown,
)
from repro.eval.svg import grouped_bar_chart, save_svg


def record_with_blocks(blocks):
    return DecodeRecord(
        token_ids=[1] * 8,
        sim_time_ms=10.0,
        blocks=[BlockRecord(n, a, a + 1) for n, a in blocks],
    )


class TestAcceptanceByPosition:
    def test_monotone_non_increasing(self):
        records = [record_with_blocks([(3, 3), (3, 1), (3, 0), (3, 2)])]
        pa = acceptance_by_position(records)
        assert pa.gamma == 3
        assert all(a >= b for a, b in zip(pa.rates, pa.rates[1:]))

    def test_exact_values(self):
        records = [record_with_blocks([(2, 2), (2, 1), (2, 0), (2, 1)])]
        pa = acceptance_by_position(records)
        # position 0 accepted in 3/4 blocks; position 1 in 1/4.
        assert pa.rates[0] == pytest.approx(0.75)
        assert pa.rates[1] == pytest.approx(0.25)
        assert pa.counts.tolist() == [4, 4]

    def test_mixed_depths(self):
        records = [record_with_blocks([(2, 2), (4, 3)])]
        pa = acceptance_by_position(records)
        assert pa.gamma == 4
        assert pa.counts.tolist() == [2, 2, 1, 1]

    def test_empty_raises(self):
        with pytest.raises(DecodingError):
            acceptance_by_position([DecodeRecord()])


class TestBlockHistogram:
    def test_counts(self):
        records = [record_with_blocks([(3, 0), (3, 0), (3, 2)])]
        assert block_length_histogram(records) == {0: 2, 2: 1}


class TestPerTaskBreakdown:
    def test_groups_by_task(self, tokenizer):
        from repro.data.tasks import make_dataset
        from repro.decoding import AutoregressiveDecoder, CostModel, get_profile
        from repro.models.config import LlamaConfig, LlavaConfig, VisionConfig
        from repro.models.llava import MiniLlava
        from repro.core import AASDDraftHead, AASDEngine, AASDEngineConfig, DraftHeadConfig

        gen = np.random.default_rng(0)
        target = MiniLlava(
            LlavaConfig(
                llama=LlamaConfig(vocab_size=tokenizer.vocab_size, dim=16, n_layers=1, n_heads=2, mlp_hidden=24),
                vision=VisionConfig(image_size=48, patch_size=16, dim=8, n_layers=1, n_heads=2, mlp_hidden=16),
            ),
            rng=gen,
        )
        head = AASDDraftHead(
            DraftHeadConfig(
                vocab_size=tokenizer.vocab_size, dim=16, n_heads=2, mlp_hidden=24,
                n_vision_tokens=9, k_compressed=3,
            ),
            rng=gen,
        )
        cm = CostModel(get_profile("sim-7b"))
        engine = AASDEngine(target, head, tokenizer, cm, AASDEngineConfig(gamma=2, max_new_tokens=10))
        baseline = AutoregressiveDecoder(target, tokenizer, cm, max_new_tokens=10)
        samples = make_dataset("llava-bench-sim", 6, seed=3).samples
        out = per_task_breakdown(engine, baseline, samples)
        assert set(out) == {"conversation", "detail", "reasoning"}
        for row in out.values():
            assert set(row) == {"omega", "alpha", "tau", "delta"}


class TestSvg:
    def test_valid_structure(self):
        svg = grouped_bar_chart(
            "demo", ["g1", "g2"], {"a": [1.0, 2.0], "b": [0.5, 1.5]}, y_label="omega"
        )
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert svg.count("<rect") >= 5  # background + 4 bars + legend
        assert "demo" in svg

    def test_escapes_markup(self):
        svg = grouped_bar_chart("a < b & c", ["x"], {"s": [1.0]})
        assert "a &lt; b &amp; c" in svg

    def test_series_length_mismatch(self):
        with pytest.raises(ValueError):
            grouped_bar_chart("t", ["a", "b"], {"s": [1.0]})

    def test_save(self, tmp_path):
        svg = grouped_bar_chart("t", ["x"], {"s": [1.0]})
        path = save_svg(svg, tmp_path / "charts" / "t.svg")
        assert path.exists()
        assert path.read_text().startswith("<svg")

    def test_zero_values_ok(self):
        svg = grouped_bar_chart("t", ["x"], {"s": [0.0]})
        assert "<svg" in svg
