"""Eval-harness component tests (renderers, reporting, reference data)."""

import pytest

from repro.eval.figures import render_bars, render_figure3, render_figure4
from repro.eval.paper_reference import PAPER_TABLE1, PAPER_TABLE2, TABLE1_ROWS
from repro.eval.reporting import load_results, results_to_json, save_results
from repro.eval.tables import render_comparison, render_table1, render_table2


@pytest.fixture()
def fake_table1():
    return {
        key: {"omega": 1.5, "alpha": 0.5, "tau": 2.0, "delta": 50.0}
        for key in PAPER_TABLE1
    }


class TestPaperReference:
    def test_table1_complete(self):
        # 2 targets x 2 gammas x 5 rows
        assert len(PAPER_TABLE1) == 20
        for metrics in PAPER_TABLE1.values():
            assert set(metrics) == {"omega", "alpha", "tau", "delta"}

    def test_table2_complete(self):
        assert len(PAPER_TABLE2) == 8

    def test_ours_beats_baselines_in_paper(self):
        for target in ("sim-7b", "sim-13b"):
            for gamma in (3, 5):
                ours = PAPER_TABLE1[(target, gamma, "Ours")]
                for row in TABLE1_ROWS[:-1]:
                    base = PAPER_TABLE1[(target, gamma, row)]
                    assert ours["omega"] > base["omega"]
                    assert ours["alpha"] > base["alpha"]

    def test_projector_helps_in_paper(self):
        for target in ("sim-7b", "sim-13b"):
            for gamma in (3, 5):
                assert (
                    PAPER_TABLE2[(target, gamma, "w/")]["omega"]
                    > PAPER_TABLE2[(target, gamma, "w/o")]["omega"]
                )


class TestTableRendering:
    def test_table1_contains_rows_and_reference(self, fake_table1):
        text = render_table1(fake_table1)
        assert "Ours" in text
        assert "FT-LLaMA" in text
        assert "2.02" in text  # paper reference value shown
        assert "1.50" in text  # measured value shown

    def test_table2_renders(self):
        measured = {
            key: {"omega": 1.0, "alpha": 0.4, "tau": 2.0, "delta": 40.0}
            for key in PAPER_TABLE2
        }
        text = render_table2(measured)
        assert "w/o" in text and "w/" in text

    def test_missing_rows_skipped(self):
        text = render_comparison("T", {}, PAPER_TABLE1, list(PAPER_TABLE1))
        assert "FT-LLaMA" not in text


class TestFigureRendering:
    def test_render_bars(self):
        text = render_bars("demo", {"a": 1.0, "b": 2.0}, unit="x")
        assert "a" in text and "b" in text
        assert text.count("#") > 0
        # longer bar for larger value
        line_a = [l for l in text.splitlines() if l.strip().startswith("a")][0]
        line_b = [l for l in text.splitlines() if l.strip().startswith("b")][0]
        assert line_b.count("#") > line_a.count("#")

    def test_figure3(self):
        measured = {
            ("sim-7b", 3, "w/ target kv"): {"omega": 2.0, "alpha": 0.6, "tau": 2.7, "delta": 60.0},
            ("sim-7b", 3, "w/o target kv"): {"omega": 1.2, "alpha": 0.3, "tau": 1.5, "delta": 35.0},
        }
        text = render_figure3(measured, targets=("sim-7b",), gammas=(3,))
        assert "w/ target kv" in text
        assert "2.00x" in text

    def test_figure4(self):
        measured = {
            ("sim-7b", 3, "full kv"): {"omega": 2, "alpha": 0.6, "tau": 2.7, "delta": 60},
            ("sim-7b", 3, "no image kv"): {"omega": 1.8, "alpha": 0.5, "tau": 2.3, "delta": 55},
            ("sim-7b", 3, "no text kv"): {"omega": 1.1, "alpha": 0.2, "tau": 1.2, "delta": 30},
        }
        text = render_figure4(measured, targets=("sim-7b",))
        assert "block efficiency" in text
        assert "no text kv" in text

    def test_empty_series(self):
        assert render_figure3({}, targets=("sim-7b",)) == ""


class TestReporting:
    def test_json_roundtrip(self, tmp_path, fake_table1):
        save_results(fake_table1, tmp_path / "t1", rendered="hello")
        loaded = load_results(tmp_path / "t1")
        assert loaded == fake_table1
        assert (tmp_path / "t1.txt").read_text().startswith("hello")

    def test_json_keys_flat(self, fake_table1):
        payload = results_to_json(fake_table1)
        assert "sim-7b|3|Ours" in payload
