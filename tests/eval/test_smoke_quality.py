"""Training-effectiveness checks on the smoke zoo.

Smoke budgets are tiny, so these assert *relative* improvements (trained
beats untrained), not absolute quality.
"""

import numpy as np
import pytest

from repro.eval.quality import evaluate_quality, image_grounding_score
from repro.models.llava import MiniLlava


@pytest.fixture(scope="module")
def eval_samples(smoke_zoo):
    return smoke_zoo.eval_dataset("coco-sim", 6).samples


def test_trained_target_beats_random_init(smoke_zoo, eval_samples):
    tok = smoke_zoo.tokenizer()
    trained = smoke_zoo.target("sim-7b")
    random_model = MiniLlava(trained.config, rng=np.random.default_rng(999))
    trained_report = evaluate_quality(trained, tok, eval_samples, max_new_tokens=24)
    random_report = evaluate_quality(random_model, tok, eval_samples, max_new_tokens=24)
    assert trained_report.token_accuracy > random_report.token_accuracy + 0.2


def test_aasd_head_beats_untrained_on_acceptance(smoke_zoo):
    from repro.core import AASDDraftHead, AASDEngine, AASDEngineConfig
    from repro.decoding import AutoregressiveDecoder, CostModel, aggregate_metrics, get_profile

    tok = smoke_zoo.tokenizer()
    target = smoke_zoo.target("sim-7b")
    trained_head = smoke_zoo.aasd_head("sim-7b")
    untrained_head = AASDDraftHead(trained_head.config, rng=np.random.default_rng(3))
    untrained_head.init_from_target(target.llama)

    cm = CostModel(get_profile("sim-7b"))
    samples = smoke_zoo.eval_dataset("llava-bench-sim", 4).samples
    baseline = AutoregressiveDecoder(target, tok, cm, max_new_tokens=24)
    ar = [baseline.decode(s) for s in samples]

    def alpha(head):
        engine = AASDEngine(target, head, tok, cm, AASDEngineConfig(gamma=3, max_new_tokens=24))
        return aggregate_metrics([engine.decode(s) for s in samples], ar).acceptance_rate

    assert alpha(trained_head) > alpha(untrained_head)
