"""CLI wiring tests for ``python -m repro.eval`` (experiments stubbed)."""

import sys

import pytest

import repro.eval.__main__ as cli


@pytest.fixture()
def fake_results():
    return {
        ("sim-7b", 3, "w/ target kv"): {"omega": 2.0, "alpha": 0.6, "tau": 2.7, "delta": 60.0},
        ("sim-7b", 3, "w/o target kv"): {"omega": 1.2, "alpha": 0.3, "tau": 1.5, "delta": 35.0},
    }


class TestFigureSvgHelper:
    def test_figure3_svg(self, fake_results):
        svg = cli._figure_svg("figure3", fake_results)
        assert svg.startswith("<svg")
        assert "Figure 3" in svg

    def test_figure4_svg(self):
        results = {
            ("sim-7b", 3, "full kv"): {"omega": 2, "alpha": 0.6, "tau": 2.7, "delta": 60},
            ("sim-7b", 3, "no image kv"): {"omega": 1.8, "alpha": 0.5, "tau": 2.3, "delta": 55},
            ("sim-7b", 3, "no text kv"): {"omega": 1.1, "alpha": 0.2, "tau": 1.2, "delta": 30},
        }
        svg = cli._figure_svg("figure4", results)
        assert "Figure 4" in svg


class TestMain:
    def test_runs_stubbed_experiment(self, tmp_path, monkeypatch, fake_results):
        calls = {}

        def fake_experiment(zoo, config):
            calls["config"] = config
            return fake_results

        monkeypatch.setitem(cli.EXPERIMENTS, "figure3", fake_experiment)
        monkeypatch.setattr(cli, "ModelZoo", lambda profile: object())
        monkeypatch.setattr(
            sys, "argv",
            ["repro.eval", "figure3", "--samples", "4", "--out", str(tmp_path)],
        )
        cli.main()
        assert calls["config"].samples_per_dataset == 4
        assert (tmp_path / "figure3.json").exists()
        assert (tmp_path / "figure3.txt").exists()
        assert (tmp_path / "figure3.svg").exists()

    def test_rejects_unknown_experiment(self, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["repro.eval", "table9"])
        with pytest.raises(SystemExit):
            cli.main()
