"""Integration tests on the smoke-profile zoo: caching, runner, experiments.

The smoke zoo trains tiny-budget artifacts on first use and caches them on
disk, so only the first session pays the (~1 min) cost.
"""

import numpy as np
import pytest

from repro.decoding import AutoregressiveDecoder
from repro.errors import ConfigError
from repro.eval import EvalConfig, ExperimentRunner, build_aasd_engine, build_row_decoder
from repro.eval.experiments import run_figure4, run_table1
from repro.zoo import PROFILE_SMOKE, ModelZoo


@pytest.fixture(scope="module")
def runner(smoke_zoo):
    return ExperimentRunner(smoke_zoo, EvalConfig(samples_per_dataset=3, max_new_tokens=24))


class TestZoo:
    def test_tokenizer_cached(self, smoke_zoo):
        assert smoke_zoo.tokenizer() is smoke_zoo.tokenizer()
        assert (smoke_zoo.cache_dir / "vocab.json").exists()

    def test_unknown_target(self, smoke_zoo):
        with pytest.raises(ConfigError):
            smoke_zoo.target("sim-3b")

    def test_unknown_variant(self, smoke_zoo):
        with pytest.raises(ConfigError):
            smoke_zoo.text_draft("xx", "sim-7b")

    def test_target_cached_on_disk_and_memo(self, smoke_zoo):
        model = smoke_zoo.target("sim-7b")
        assert smoke_zoo.target("sim-7b") is model
        assert (smoke_zoo.cache_dir / "target-sim-7b.npz").exists()

    def test_second_zoo_loads_same_weights(self, smoke_zoo):
        model = smoke_zoo.target("sim-7b")
        other = ModelZoo(PROFILE_SMOKE, verbose=False).target("sim-7b")
        a = dict(model.named_parameters())
        b = dict(other.named_parameters())
        for name in a:
            assert np.allclose(a[name].data, b[name].data), name

    def test_train_pool_deterministic_and_mixed(self, smoke_zoo):
        pool = smoke_zoo.train_pool()
        assert len(pool) == PROFILE_SMOKE.train_pool_size // 3 * 3
        tasks = {s.task for s in pool}
        assert "caption" in tasks and "scienceqa" in tasks

    def test_eval_disjoint_from_train(self, smoke_zoo):
        eval_ds = smoke_zoo.eval_dataset("coco-sim", 5)
        train_prompompts = {s.response for s in smoke_zoo.train_pool()}
        # responses may coincide by chance; require not all identical
        overlap = sum(s.response in train_prompompts for s in eval_ds)
        assert overlap < len(eval_ds)

    def test_aasd_head_variants_distinct_keys(self, smoke_zoo):
        smoke_zoo.aasd_head("sim-7b")
        smoke_zoo.aasd_head("sim-7b", use_kv_projector=False)
        assert (smoke_zoo.cache_dir / "aasd-sim-7b.npz").exists()
        assert (smoke_zoo.cache_dir / "aasd-sim-7b-noproj.npz").exists()


class TestRunner:
    def test_ar_records_cached(self, runner):
        a = runner.ar_records("sim-7b", "coco-sim")
        b = runner.ar_records("sim-7b", "coco-sim")
        assert a is b
        assert len(a) == 3

    def test_evaluate_aasd_reports_all_datasets(self, runner, smoke_zoo):
        engine = build_aasd_engine(
            smoke_zoo, "sim-7b", gamma=3, cost_model=runner.cost_model("sim-7b"),
            max_new_tokens=24,
        )
        report = runner.evaluate(engine, "sim-7b")
        assert set(report.per_dataset) == {"coco-sim", "llava-bench-sim", "scienceqa-sim"}
        row = report.row()
        assert row["omega"] > 0
        assert 0 <= row["alpha"] <= 1

    def test_lossless_check(self, runner, smoke_zoo):
        engine = build_aasd_engine(
            smoke_zoo, "sim-7b", gamma=3, cost_model=runner.cost_model("sim-7b"),
            max_new_tokens=24,
        )
        assert runner.check_lossless(engine, "sim-7b", n=2)

    def test_row_decoder_labels(self, runner, smoke_zoo):
        cm = runner.cost_model("sim-7b")
        for row in ("FT-LLaMA", "FT-LLaVA", "Ours"):
            decoder = build_row_decoder(row, smoke_zoo, "sim-7b", 3, cm, max_new_tokens=24)
            rec = decoder.decode(runner.dataset("coco-sim")[0])
            assert rec.n_tokens >= 1

    def test_unknown_row_rejected(self, runner, smoke_zoo):
        with pytest.raises(ConfigError):
            build_row_decoder("GPT-5", smoke_zoo, "sim-7b", 3, runner.cost_model("sim-7b"))


class TestExperimentsSmoke:
    def test_table1_subset(self, smoke_zoo):
        config = EvalConfig(samples_per_dataset=2, max_new_tokens=16)
        results = run_table1(
            smoke_zoo, config, targets=("sim-7b",), gammas=(3,), rows=("FT-LLaMA", "Ours")
        )
        assert set(results) == {("sim-7b", 3, "FT-LLaMA"), ("sim-7b", 3, "Ours")}
        for metrics in results.values():
            assert metrics["omega"] > 0

    def test_figure4_shape(self, smoke_zoo):
        config = EvalConfig(samples_per_dataset=2, max_new_tokens=16)
        results = run_figure4(smoke_zoo, config, targets=("sim-7b",), gammas=(3,))
        labels = {key[2] for key in results}
        assert labels == {"full kv", "no image kv", "no text kv"}
