"""Cross-stack property-based tests (hypothesis).

These exercise the end-to-end invariants the library is built on, across
randomly drawn model weights, gammas, and inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.draft_head import AASDDraftHead, DraftHeadConfig
from repro.core.engine import AASDEngine, AASDEngineConfig
from repro.data.tasks import make_dataset
from repro.decoding.autoregressive import AutoregressiveDecoder
from repro.decoding.cost_model import CostModel, get_profile
from repro.decoding.sampling import SamplerConfig, logits_to_probs, speculative_verify
from repro.decoding.speculative import LlamaTextDraft, SpeculativeDecoder
from repro.models.config import LlamaConfig, LlavaConfig, VisionConfig
from repro.models.kv_cache import KVCache
from repro.models.llama import MiniLlama
from repro.models.llava import MiniLlava


def make_world(tokenizer, seed):
    gen = np.random.default_rng(seed)
    vocab = tokenizer.vocab_size
    target = MiniLlava(
        LlavaConfig(
            llama=LlamaConfig(vocab_size=vocab, dim=16, n_layers=1, n_heads=2, mlp_hidden=24),
            vision=VisionConfig(image_size=48, patch_size=16, dim=8, n_layers=1, n_heads=2, mlp_hidden=16),
        ),
        rng=gen,
    )
    return target, gen


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 1000), gamma=st.integers(1, 5))
def test_sd_lossless_for_random_weights(seed, gamma, tokenizer):
    """Greedy SD equals AR for arbitrary target/draft weights and gamma."""
    target, gen = make_world(tokenizer, seed)
    draft = MiniLlama(
        LlamaConfig(vocab_size=tokenizer.vocab_size, dim=16, n_layers=1, n_heads=2, mlp_hidden=24),
        rng=gen,
    )
    cm = CostModel(get_profile("sim-7b"))
    sample = make_dataset("llava-bench-sim", 1, seed=seed)[0]
    ar = AutoregressiveDecoder(target, tokenizer, cm, max_new_tokens=12).decode(sample)
    sd = SpeculativeDecoder(
        target, LlamaTextDraft(draft), tokenizer, cm, gamma=gamma, max_new_tokens=12
    ).decode(sample)
    assert sd.token_ids == ar.token_ids


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 1000), gamma=st.integers(1, 4))
def test_aasd_lossless_for_random_weights(seed, gamma, tokenizer):
    target, gen = make_world(tokenizer, seed)
    head = AASDDraftHead(
        DraftHeadConfig(
            vocab_size=tokenizer.vocab_size, dim=16, n_heads=2, mlp_hidden=24,
            n_vision_tokens=target.n_vision_tokens, k_compressed=3,
        ),
        rng=gen,
    )
    cm = CostModel(get_profile("sim-7b"))
    sample = make_dataset("coco-sim", 1, seed=seed)[0]
    ar = AutoregressiveDecoder(target, tokenizer, cm, max_new_tokens=12).decode(sample)
    sd = AASDEngine(
        target, head, tokenizer, cm, AASDEngineConfig(gamma=gamma, max_new_tokens=12)
    ).decode(sample)
    assert sd.token_ids == ar.token_ids


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 100000), gamma=st.integers(1, 6))
def test_verify_outcome_invariants(seed, gamma):
    """speculative_verify: accepted is a prefix of the drafts; counts hold."""
    gen = np.random.default_rng(seed)
    vocab = 12
    draft_tokens = [int(t) for t in gen.integers(0, vocab, size=gamma)]
    draft_probs = gen.dirichlet(np.ones(vocab), size=gamma)
    target_logits = gen.standard_normal((gamma + 1, vocab))
    cfg = SamplerConfig(greedy=bool(gen.integers(2)))
    out = speculative_verify(draft_tokens, draft_probs, target_logits, cfg, gen)
    assert list(out.accepted) == draft_tokens[: out.n_accepted]
    assert out.tokens_emitted == out.n_accepted + 1
    assert out.all_accepted == (out.n_accepted == gamma)
    assert 0 <= out.next_token < vocab


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 100000),
    temperature=st.floats(0.2, 3.0),
    top_k=st.integers(0, 10),
    top_p=st.floats(0.3, 1.0),
)
def test_logits_to_probs_always_distribution(seed, temperature, top_k, top_p):
    gen = np.random.default_rng(seed)
    logits = gen.standard_normal(10) * 5
    cfg = SamplerConfig(greedy=False, temperature=temperature, top_k=top_k, top_p=top_p)
    probs = logits_to_probs(logits, cfg)
    assert probs.sum() == pytest.approx(1.0, abs=1e-9)
    assert (probs >= 0).all()
    # argmax survives every filtering scheme
    assert probs[np.argmax(logits)] > 0


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10000),
    appends=st.lists(st.integers(1, 4), min_size=1, max_size=5),
)
def test_kv_cache_append_truncate_roundtrip(seed, appends):
    """Appending then truncating back yields the original arrays."""
    gen = np.random.default_rng(seed)
    cache = KVCache(2)
    first = appends[0]
    for layer in range(2):
        cache.append(layer, gen.standard_normal((1, 2, first, 4)), gen.standard_normal((1, 2, first, 4)))
    cache.extend_positions(np.arange(first))
    snapshot = [cache.layer(i)[0].copy() for i in range(2)]

    total = first
    for n in appends[1:]:
        for layer in range(2):
            cache.append(layer, gen.standard_normal((1, 2, n, 4)), gen.standard_normal((1, 2, n, 4)))
        cache.extend_positions(np.arange(total, total + n))
        total += n

    cache.truncate(first)
    for i in range(2):
        assert np.array_equal(cache.layer(i)[0], snapshot[i])
    assert np.array_equal(cache.positions, np.arange(first))
