"""Fixtures for serving tests: a tiny AASD world plus engine factories.

Untrained models are fine here — batching correctness (token identity,
isolation, deadlines) is structural, exactly like the losslessness
properties in ``tests/robustness``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AASDDraftHead, AASDEngine, AASDEngineConfig, DraftHeadConfig
from repro.data.tasks import make_dataset
from repro.decoding import CostModel, get_profile
from repro.models.config import LlamaConfig, LlavaConfig, VisionConfig
from repro.models.llava import MiniLlava

MAX_NEW_TOKENS = 20


@pytest.fixture(scope="module")
def world(tokenizer):
    gen = np.random.default_rng(0)
    vocab = tokenizer.vocab_size
    target = MiniLlava(
        LlavaConfig(
            llama=LlamaConfig(vocab_size=vocab, dim=16, n_layers=1, n_heads=2, mlp_hidden=24),
            vision=VisionConfig(image_size=48, patch_size=16, dim=8, n_layers=1,
                                n_heads=2, mlp_hidden=16),
        ),
        rng=gen,
    )
    head = AASDDraftHead(
        DraftHeadConfig(
            vocab_size=vocab, dim=16, n_heads=2, mlp_hidden=24,
            n_vision_tokens=9, k_compressed=3,
        ),
        rng=gen,
    )
    cm = CostModel(get_profile("sim-7b"))
    samples = make_dataset("coco-sim", 8, seed=4).samples
    return dict(target=target, head=head, cm=cm, samples=samples, tokenizer=tokenizer)


@pytest.fixture(scope="module")
def sequential_records(world):
    """Per-sample records from plain sequential ``decode`` (the oracle)."""
    engine = AASDEngine(
        world["target"], world["head"], world["tokenizer"], world["cm"],
        AASDEngineConfig(gamma=3, max_new_tokens=MAX_NEW_TOKENS),
        rng=np.random.default_rng(7),
    )
    return [engine.decode(s) for s in world["samples"]]


@pytest.fixture()
def make_engine(world):
    """Factory for fresh engines over the shared world (seeded, greedy)."""

    def build(head=None, tracer=None, **overrides) -> AASDEngine:
        config = AASDEngineConfig(
            gamma=overrides.pop("gamma", 3),
            max_new_tokens=overrides.pop("max_new_tokens", MAX_NEW_TOKENS),
            **overrides,
        )
        return AASDEngine(
            world["target"],
            head if head is not None else world["head"],
            world["tokenizer"],
            world["cm"],
            config,
            rng=np.random.default_rng(7),
            tracer=tracer,
        )

    return build
