"""Continuous-batching scheduler: equivalence, deadlines, isolation, pricing."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.errors import AdmissionError
from repro.obs.metrics import get_registry
from repro.obs.tracing import Tracer
from repro.robustness import FaultyDraftHead
from repro.serving import (
    STATUS_COMPLETED,
    STATUS_FAILED,
    STATUS_TIMEOUT,
    ContinuousBatchingScheduler,
    ServeRequest,
    ServingConfig,
    serve_requests,
)


class TestEmptyAndIdle:
    def test_empty_request_list(self, make_engine):
        report = serve_requests(make_engine(), [])
        assert report.results == ()
        assert report.n_rounds == 0
        assert report.total_sim_ms == 0.0
        assert report.total_tokens == 0

    def test_run_round_on_empty_queue_is_noop(self, make_engine):
        scheduler = ContinuousBatchingScheduler(make_engine())
        assert scheduler.idle
        assert scheduler.run_round() is False
        assert scheduler.n_rounds == 0


class TestBatchedSequentialEquivalence:
    def test_tokens_and_records_identical_under_greedy(
        self, make_engine, world, sequential_records
    ):
        report = serve_requests(
            make_engine(), world["samples"], ServingConfig(max_batch_size=4)
        )
        assert report.count(STATUS_COMPLETED) == len(world["samples"])
        for result, solo in zip(report.results, sequential_records):
            assert result.record.token_ids == solo.token_ids
            assert result.record.text == solo.text
            # per-request attribution stays solo-priced: same sim charge,
            # same block structure as a sequential decode of that sample
            assert result.record.sim_time_ms == pytest.approx(solo.sim_time_ms)
            assert len(result.record.blocks) == len(solo.blocks)

    def test_batch_of_one_costs_exactly_sequential(
        self, make_engine, world, sequential_records
    ):
        samples = world["samples"][:3]
        report = serve_requests(
            make_engine(), samples, ServingConfig(max_batch_size=1)
        )
        sequential_ms = sum(r.sim_time_ms for r in sequential_records[:3])
        assert report.total_sim_ms == pytest.approx(sequential_ms)
        assert report.max_batch_occupancy == 1

    def test_batching_beats_sequential_on_server_clock(
        self, make_engine, world, sequential_records
    ):
        report = serve_requests(
            make_engine(), world["samples"], ServingConfig(max_batch_size=8)
        )
        sequential_ms = sum(r.sim_time_ms for r in sequential_records)
        assert report.total_sim_ms < 0.6 * sequential_ms
        assert report.max_batch_occupancy == 8


class TestDeadlines:
    def test_deadline_expiry_mid_batch_keeps_partial_output(self, make_engine, world):
        samples = world["samples"][:3]
        requests = [
            ServeRequest(request_id=f"r{i}", sample=s) for i, s in enumerate(samples)
        ]
        # tight budget: enough for prefill + a round or two, not the full decode
        requests[1] = dataclasses.replace(requests[1], deadline_ms=150.0)
        report = serve_requests(make_engine(), requests)
        by_id = {r.request_id: r for r in report.results}
        timed_out = by_id["r1"]
        assert timed_out.status == STATUS_TIMEOUT
        assert timed_out.record is not None
        assert 0 < timed_out.record.n_tokens < report.results[0].record.n_tokens
        # the rest of the batch was not disturbed
        assert by_id["r0"].status == STATUS_COMPLETED
        assert by_id["r2"].status == STATUS_COMPLETED

    def test_deadline_expiry_while_queued_never_starts(self, make_engine, world):
        samples = world["samples"][:3]
        requests = [ServeRequest(request_id="head", sample=samples[0])]
        requests.append(
            ServeRequest(request_id="starved", sample=samples[1], deadline_ms=50.0)
        )
        report = serve_requests(
            make_engine(), requests, ServingConfig(max_batch_size=1)
        )
        by_id = {r.request_id: r for r in report.results}
        starved = by_id["starved"]
        assert starved.status == STATUS_TIMEOUT
        assert starved.record is None          # expired before admission
        assert starved.started_ms is None
        assert by_id["head"].status == STATUS_COMPLETED


class TestFaultIsolation:
    def test_failing_request_does_not_stall_batch(
        self, make_engine, world, sequential_records
    ):
        # fail_steps=[0]: the very first draft-head call in the batch —
        # deterministically the first admitted request — raises hard, and
        # with fallback disabled the exception escapes engine.step.
        faulty = FaultyDraftHead(world["head"], mode="raise", fail_steps=[0])
        engine = make_engine(head=faulty, fallback_on_fault=False)
        samples = world["samples"][:4]
        report = serve_requests(engine, samples, ServingConfig(max_batch_size=4))
        statuses = [r.status for r in report.results]
        assert statuses == [STATUS_FAILED, STATUS_COMPLETED, STATUS_COMPLETED,
                            STATUS_COMPLETED]
        assert "step failed" in report.results[0].error
        # healthy requests still decode token-identically to sequential
        for result, solo in zip(report.results[1:], sequential_records[1:4]):
            assert result.record.token_ids == solo.token_ids

    def test_faulting_request_degrades_alone(self, make_engine, world, sequential_records):
        # default fallback: same fault, but the engine degrades the session
        # in place — it completes, merely marked degraded, others untouched.
        faulty = FaultyDraftHead(world["head"], mode="nan-logits", fail_steps=[0])
        engine = make_engine(head=faulty)
        samples = world["samples"][:4]
        report = serve_requests(engine, samples, ServingConfig(max_batch_size=4))
        assert report.count(STATUS_COMPLETED) == 4
        assert report.results[0].record.degraded
        assert report.results[0].record.n_draft_faults == 1
        for result in report.results[1:]:
            assert not result.record.degraded
        # losslessness holds even for the degraded request
        for result, solo in zip(report.results, sequential_records[:4]):
            assert result.record.token_ids == solo.token_ids

    def test_prefill_failure_is_isolated(self, make_engine, world):
        # a malformed image makes the target's prefill raise for this
        # request only
        bad = dataclasses.replace(
            world["samples"][0], image=np.zeros((8, 8, 3), dtype=np.float32)
        )
        requests = [
            ServeRequest(request_id="bad", sample=bad),
            ServeRequest(request_id="good", sample=world["samples"][1]),
        ]
        report = serve_requests(make_engine(), requests)
        by_id = {r.request_id: r for r in report.results}
        assert by_id["bad"].status == STATUS_FAILED
        assert "prefill failed" in by_id["bad"].error
        assert by_id["good"].status == STATUS_COMPLETED


class TestCompatibilityAndBackpressure:
    def test_batches_never_mix_gammas(self, make_engine, world):
        scheduler = ContinuousBatchingScheduler(
            make_engine(), ServingConfig(max_batch_size=4)
        )
        for i, gamma in enumerate([2, 5, 2, 5]):
            scheduler.submit(
                ServeRequest(request_id=f"r{i}", sample=world["samples"][i], gamma=gamma)
            )
        scheduler.run_round()
        gammas = {e.session.gamma_controller.gamma for e in scheduler._active}
        assert gammas == {2}
        scheduler.run_until_idle(max_rounds=200)
        assert scheduler.idle

    def test_submit_raises_when_queue_full(self, make_engine, world):
        scheduler = ContinuousBatchingScheduler(
            make_engine(), ServingConfig(max_batch_size=1, max_queue_depth=2)
        )
        scheduler.submit(ServeRequest(request_id="r0", sample=world["samples"][0]))
        scheduler.submit(ServeRequest(request_id="r1", sample=world["samples"][1]))
        with pytest.raises(AdmissionError):
            scheduler.submit(ServeRequest(request_id="r2", sample=world["samples"][2]))

    def test_facade_drains_past_backpressure(self, make_engine, world):
        # more requests than the queue holds: the facade interleaves rounds
        # with submissions instead of rejecting
        report = serve_requests(
            make_engine(), world["samples"],
            ServingConfig(max_batch_size=2, max_queue_depth=2),
        )
        assert report.count(STATUS_COMPLETED) == len(world["samples"])


class TestObservability:
    def test_counters_gauges_and_schedule_spans(self, make_engine, world):
        registry = get_registry()
        tracer = Tracer(enabled=True, registry=registry)
        completed_before = registry.counter("serving.requests_completed_total").value
        rounds_before = registry.counter("serving.rounds_total").value

        report = serve_requests(
            make_engine(tracer=tracer), world["samples"][:4],
            ServingConfig(max_batch_size=4),
        )
        assert report.count(STATUS_COMPLETED) == 4

        completed = registry.counter("serving.requests_completed_total").value
        assert completed - completed_before == 4
        rounds = registry.counter("serving.rounds_total").value
        assert rounds - rounds_before == report.n_rounds
        assert registry.gauge("serving.queue_depth").value == 0
        assert registry.gauge("serving.batch_occupancy").value >= 1

        names = {s.name for s in tracer.spans}
        assert {"schedule", "request", "prefill"} <= names
        schedule_spans = [s for s in tracer.spans if s.name == "schedule"]
        assert len(schedule_spans) == report.n_rounds
        # every round's batched charge is attributed to its schedule span
        assert sum(s.sim_ms for s in schedule_spans) == pytest.approx(
            report.total_sim_ms
        )
        # request spans carry the request id for per-request drill-down
        request_spans = [s for s in tracer.spans if s.name == "request"]
        assert all("request_id" in s.attrs for s in request_spans)
        hist = registry.get("span_ms.schedule")
        assert hist is not None and hist.count >= report.n_rounds

    def test_report_summary_is_flat_and_complete(self, make_engine, world):
        report = serve_requests(make_engine(), world["samples"][:2])
        summary = report.summary()
        assert summary["n_requests"] == 2
        assert summary["completed"] == 2
        assert summary["total_tokens"] == report.total_tokens
        assert summary["tokens_per_s"] == pytest.approx(report.tokens_per_s)

    def test_report_acceptance_fields(self, make_engine, world):
        report = serve_requests(make_engine(), world["samples"][:3])
        records = [r.record for r in report.results if r.record is not None]
        forwards = sum(r.n_target_forwards for r in records)
        assert report.accepted_per_target_forward == pytest.approx(
            sum(r.n_tokens for r in records) / forwards
        )
        assert report.block_efficiency_p95 >= report.block_efficiency_p50 >= 1.0
        summary = report.summary()
        for key in ("accepted_per_target_forward", "block_efficiency_p50",
                    "block_efficiency_p95"):
            assert summary[key] == getattr(report, key)


class TestTreeServing:
    """Tree-speculation rounds under the continuous-batching scheduler."""

    def _tree_engine(self, make_engine, **overrides):
        return make_engine(
            tree_speculation=True, tree_max_branch=2, tree_max_nodes=6,
            gamma=overrides.pop("gamma", 4), **overrides,
        )

    def test_tree_rounds_lossless(self, make_engine, world, sequential_records):
        # greedy tree speculation is lossless, so served tokens must match
        # the sequential linear-engine oracle exactly
        report = serve_requests(
            self._tree_engine(make_engine), world["samples"][:4],
            ServingConfig(max_batch_size=4),
        )
        assert report.count(STATUS_COMPLETED) == 4
        for result, solo in zip(report.results, sequential_records):
            assert result.record.token_ids == solo.token_ids
        assert report.accepted_per_target_forward >= 1.0

    def test_rejected_branches_billed_exactly_once(self, make_engine, world,
                                                   monkeypatch):
        """Double-billing regression: the round's verify charge is exactly
        the batched tree-verify price of the fed node counts — rejected
        branches are billed once by the forward that fed them and never
        again at rollback."""
        engine = self._tree_engine(make_engine)
        cm = engine.cost_model
        calls = []
        orig = cm.batched_tree_verify
        monkeypatch.setattr(
            cm, "batched_tree_verify",
            lambda feeds: calls.append(tuple(feeds)) or orig(feeds),
        )
        scheduler = ContinuousBatchingScheduler(
            engine, ServingConfig(max_batch_size=4)
        )
        report = serve_requests(engine, world["samples"][:4], scheduler=scheduler)
        assert report.count(STATUS_COMPLETED) == 4
        assert calls, "tree rounds must price through batched_tree_verify"
        # feeds are node counts (anchor + drafted nodes), never gamma * B,
        # and never depend on how many nodes were later accepted
        for feeds in calls:
            assert all(2 <= f <= 1 + engine.config.tree_max_nodes for f in feeds)
        expected = sum(orig(list(feeds)) for feeds in calls)
        assert scheduler.clock.by_category["verify"] == pytest.approx(expected)
