"""Serving-tier resilience: retry, circuit breaker, shedding, deadlines.

Unit tests pin the policy state machines in isolation; the integration
tests drive the continuous-batching scheduler over the tiny world from
``conftest`` and check the headline guarantees — retried outputs are
token-identical to a clean run, a forced-fallback batch stays lossless,
and every policy action reconciles with the metrics registry.
"""

from __future__ import annotations

import logging

import pytest

from repro.errors import ServingError
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.robustness import FaultyDraftHead
from repro.serving import (
    STATUS_COMPLETED,
    STATUS_FAILED,
    STATUS_REJECTED,
    STATUS_TIMEOUT,
    AdmissionQueue,
    BreakerConfig,
    CircuitBreaker,
    ContinuousBatchingScheduler,
    ResilienceConfig,
    RetryPolicy,
    ServeRequest,
    ServingConfig,
    ShedConfig,
    serve_requests,
)
from repro.serving.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    SHED_REJECT_OVER_DEADLINE,
)

MAX_NEW_TOKENS = 20   # matches the conftest world


@pytest.fixture()
def registry():
    """Fresh process registry for exact counter assertions."""
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    yield fresh
    set_registry(previous)


@pytest.fixture()
def propagating_logs():
    """Let ``repro`` records reach caplog's root handler.

    ``configure_logging`` (run by earlier CLI tests in the full suite)
    sets ``propagate = False`` on the tree root, which would hide the
    structured records from caplog.
    """
    logger = logging.getLogger("repro")
    previous = logger.propagate
    logger.propagate = True
    yield
    logger.propagate = previous


# ---------------------------------------------------------------------------
class TestRetryPolicy:
    def test_backoff_is_deterministic_and_jittered(self):
        policy = RetryPolicy(base_backoff_ms=20.0, jitter_ms=5.0, seed=3)
        a = policy.backoff_ms("r1", 0)
        assert a == policy.backoff_ms("r1", 0)
        assert 20.0 <= a < 25.0
        # distinct requests de-synchronize
        assert a != policy.backoff_ms("r2", 0)

    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(max_retries=10, base_backoff_ms=100.0,
                             backoff_multiplier=2.0, max_backoff_ms=300.0,
                             jitter_ms=0.0)
        assert policy.backoff_ms("r", 0) == 100.0
        assert policy.backoff_ms("r", 1) == 200.0
        assert policy.backoff_ms("r", 2) == 300.0
        assert policy.backoff_ms("r", 5) == 300.0   # capped

    @pytest.mark.parametrize("kwargs", [
        dict(max_retries=0),
        dict(base_backoff_ms=-1.0),
        dict(jitter_ms=-0.1),
        dict(backoff_multiplier=0.5),
    ])
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ServingError):
            RetryPolicy(**kwargs)


class TestBreakerConfig:
    def test_hysteresis_ordering_enforced(self):
        with pytest.raises(ServingError):
            BreakerConfig(open_below_acceptance=0.4, reclose_above_acceptance=0.2)

    @pytest.mark.parametrize("kwargs", [
        dict(window=0),
        dict(cooldown_rounds=0),
        dict(probe_rounds=0),
        dict(min_drafted=0),
        dict(open_above_fault_rate=-1.0),
    ])
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ServingError):
            BreakerConfig(**kwargs)


class TestCircuitBreaker:
    def _breaker(self, **kwargs):
        defaults = dict(window=2, min_drafted=4, open_below_acceptance=0.25,
                       open_above_fault_rate=2.0, cooldown_rounds=2,
                       probe_rounds=2, reclose_above_acceptance=0.5)
        defaults.update(kwargs)
        return CircuitBreaker(BreakerConfig(**defaults))

    def test_opens_on_fault_rate(self, registry):
        breaker = self._breaker()
        breaker.observe_round(n_drafted=4, n_accepted=4, n_faults=2)
        assert breaker.state == BREAKER_CLOSED    # window not full yet
        breaker.observe_round(n_drafted=4, n_accepted=4, n_faults=2)
        assert breaker.state == BREAKER_OPEN
        assert breaker.force_fallback

    def test_opens_on_low_acceptance_once_enough_drafted(self, registry):
        breaker = self._breaker()
        breaker.observe_round(n_drafted=4, n_accepted=0, n_faults=0)
        breaker.observe_round(n_drafted=4, n_accepted=0, n_faults=0)
        assert breaker.state == BREAKER_OPEN

    def test_low_acceptance_needs_min_drafted(self, registry):
        breaker = self._breaker(min_drafted=100)
        for _ in range(6):
            breaker.observe_round(n_drafted=4, n_accepted=0, n_faults=0)
        assert breaker.state == BREAKER_CLOSED

    def test_cooldown_then_half_open_then_reclose(self, registry):
        breaker = self._breaker()
        breaker.observe_round(4, 0, 2)
        breaker.observe_round(4, 0, 2)
        assert breaker.state == BREAKER_OPEN
        breaker.observe_round(0, 0, 0)            # cooldown round 1
        assert breaker.state == BREAKER_OPEN
        breaker.observe_round(0, 0, 0)            # cooldown round 2
        assert breaker.state == BREAKER_HALF_OPEN
        # idle rounds prove nothing and are not probes
        breaker.observe_round(0, 0, 0)
        assert breaker.state == BREAKER_HALF_OPEN
        breaker.observe_round(4, 3, 0)            # probe 1: healthy
        breaker.observe_round(4, 3, 0)            # probe 2: healthy
        assert breaker.state == BREAKER_CLOSED
        states = [(src, dst) for _, src, dst in breaker.transitions]
        assert states == [
            (BREAKER_CLOSED, BREAKER_OPEN),
            (BREAKER_OPEN, BREAKER_HALF_OPEN),
            (BREAKER_HALF_OPEN, BREAKER_CLOSED),
        ]

    def test_probe_fault_reopens_immediately(self, registry):
        breaker = self._breaker()
        breaker.observe_round(4, 0, 2)
        breaker.observe_round(4, 0, 2)
        breaker.observe_round(0, 0, 0)
        breaker.observe_round(0, 0, 0)
        assert breaker.state == BREAKER_HALF_OPEN
        breaker.observe_round(4, 4, 1)            # probe faults
        assert breaker.state == BREAKER_OPEN

    def test_weak_probes_reopen_with_hysteresis(self, registry):
        # acceptance 0.375 clears the open bar (0.25) but not the
        # re-close bar (0.5): hysteresis keeps the breaker open.
        breaker = self._breaker()
        breaker.observe_round(4, 0, 2)
        breaker.observe_round(4, 0, 2)
        breaker.observe_round(0, 0, 0)
        breaker.observe_round(0, 0, 0)
        breaker.observe_round(4, 1, 0)
        breaker.observe_round(4, 2, 0)
        assert breaker.state == BREAKER_OPEN

    def test_transitions_publish_to_registry(self, registry):
        breaker = self._breaker()
        assert registry.get("resilience.breaker_state").value == 0
        breaker.observe_round(4, 0, 2)
        breaker.observe_round(4, 0, 2)
        assert registry.get("resilience.breaker_state").value == 2
        assert registry.get("resilience.breaker_transitions_total").value == 1
        assert registry.get("resilience.breaker_opened_total").value == 1


class TestShedConfig:
    def test_invalid_policy_rejected(self):
        with pytest.raises(ServingError):
            ShedConfig(max_queue_ms=100.0, policy="drop-everything")
        with pytest.raises(ServingError):
            ShedConfig(max_queue_ms=0.0)
        with pytest.raises(ServingError):
            ShedConfig(max_queue_ms=10.0, shed_target_depth=-1)


# ---------------------------------------------------------------------------
class TestQueueResilienceOps:
    def _queue_with(self, samples, ids, **request_kw):
        queue = AdmissionQueue(max_depth=8)
        handles = [queue.submit(ServeRequest(request_id=rid, sample=samples[0],
                                             **request_kw), now_ms=0.0)
                   for rid in ids]
        return queue, handles

    def test_requeue_goes_to_front_and_is_capacity_exempt(self, world):
        queue, handles = self._queue_with(world["samples"],
                                          [f"r{i}" for i in range(8)])
        retry = queue.pop_ready(1)[0]
        assert queue.free == 1
        queue.pop_ready(7)          # drain, then refill to capacity
        for i in range(8, 16):
            queue.submit(ServeRequest(request_id=f"r{i}", sample=world["samples"][0]),
                         now_ms=0.0)
        queue.requeue(retry)        # full queue must still accept a retry
        assert queue.depth == 9
        assert queue.pop_ready(1)[0] is retry   # and it goes to the front

    def test_oldest_wait_tracks_head_of_queue(self, world):
        queue = AdmissionQueue(max_depth=4)
        assert queue.oldest_wait_ms(now_ms=50.0) is None
        queue.submit(ServeRequest(request_id="a", sample=world["samples"][0]),
                     now_ms=10.0)
        queue.submit(ServeRequest(request_id="b", sample=world["samples"][0]),
                     now_ms=40.0)
        assert queue.oldest_wait_ms(now_ms=50.0) == 40.0
        queue.pop_ready(1)
        assert queue.oldest_wait_ms(now_ms=50.0) == 10.0

    def test_shed_newest_drains_tail_to_target(self, world):
        queue, _ = self._queue_with(world["samples"], [f"r{i}" for i in range(6)])
        shed = queue.shed_newest(2)
        assert [h.request_id for h in shed] == ["r5", "r4", "r3", "r2"]
        assert queue.depth == 2
        with pytest.raises(ServingError):
            queue.shed_newest(-1)

    def test_shed_over_deadline_spares_deadline_less(self, world):
        queue = AdmissionQueue(max_depth=8)
        sample = world["samples"][0]
        queue.submit(ServeRequest(request_id="doomed", sample=sample,
                                  deadline_ms=50.0), now_ms=0.0)
        queue.submit(ServeRequest(request_id="roomy", sample=sample,
                                  deadline_ms=5000.0), now_ms=0.0)
        queue.submit(ServeRequest(request_id="forever", sample=sample), now_ms=0.0)
        shed = queue.shed_over_deadline(now_ms=20.0, horizon_ms=100.0)
        assert [h.request_id for h in shed] == ["doomed"]
        assert queue.depth == 2


# ---------------------------------------------------------------------------
def _resilient_config(**overrides):
    resilience = overrides.pop("resilience", ResilienceConfig(retry=RetryPolicy()))
    return ServingConfig(max_batch_size=overrides.pop("max_batch_size", 4),
                         resilience=resilience, **overrides)


class TestRetryIntegration:
    def test_transient_fault_retried_token_identical(
            self, world, make_engine, sequential_records, registry):
        # Every request crashes its draft once (at request-local step 2);
        # the retry must complete it with the clean run's exact tokens.
        head = FaultyDraftHead(world["head"], mode="raise", transient=True,
                               per_request=True, fail_steps=[2])
        engine = make_engine(head=head, fallback_on_fault=False)
        samples = world["samples"][:4]
        scheduler = ContinuousBatchingScheduler(engine, _resilient_config())
        report = serve_requests(engine, samples, scheduler=scheduler)

        assert report.count(STATUS_COMPLETED) == len(samples)
        assert report.n_retries == len(samples)
        for result, solo in zip(report.results, sequential_records):
            assert result.record.token_ids == solo.token_ids, result.request_id
        assert registry.get("resilience.retries_total").value == report.n_retries
        assert registry.get("resilience.pending_retries").value == 0

    def test_persistent_fault_fails_without_retry(self, world, make_engine):
        head = FaultyDraftHead(world["head"], mode="raise", transient=False,
                               per_request=True, fail_steps=[0])
        engine = make_engine(head=head, fallback_on_fault=False)
        report = serve_requests(engine, world["samples"][:2],
                                _resilient_config())
        assert report.count(STATUS_FAILED) == 2
        assert report.n_retries == 0

    def test_retry_budget_exhausted_fails(self, world, make_engine):
        # Faulting every request-local step burns the whole budget.
        head = FaultyDraftHead(world["head"], mode="raise", transient=True,
                               per_request=True, fail_every=1)
        engine = make_engine(head=head, fallback_on_fault=False)
        policy = RetryPolicy(max_retries=2)
        report = serve_requests(
            engine, world["samples"][:1],
            _resilient_config(resilience=ResilienceConfig(retry=policy)))
        assert report.count(STATUS_FAILED) == 1
        assert report.n_retries == policy.max_retries

    def test_no_retry_scheduled_past_deadline(self, world, make_engine):
        head = FaultyDraftHead(world["head"], mode="raise", transient=True,
                               per_request=True, fail_steps=[0])
        engine = make_engine(head=head, fallback_on_fault=False)
        policy = RetryPolicy(base_backoff_ms=10_000.0)
        request = ServeRequest(request_id="tight", sample=world["samples"][0],
                               deadline_ms=500.0)
        report = serve_requests(
            engine, [request],
            _resilient_config(resilience=ResilienceConfig(retry=policy)))
        # The backoff would land past the deadline, so the fault is terminal.
        assert report.results[0].status == STATUS_FAILED
        assert report.n_retries == 0

    def test_retry_logged_with_request_id_and_count(
            self, world, make_engine, caplog, propagating_logs):
        head = FaultyDraftHead(world["head"], mode="raise", transient=True,
                               per_request=True, fail_steps=[1])
        engine = make_engine(head=head, fallback_on_fault=False)
        with caplog.at_level(logging.WARNING, logger="repro"):
            serve_requests(engine, world["samples"][:1], _resilient_config())
        retry_logs = [r for r in caplog.records
                      if getattr(r, "event", "") == "request_retry"]
        assert retry_logs, "expected a structured request_retry log"
        assert retry_logs[0].request_id == "req-000"
        assert retry_logs[0].retry_count == 1

    def test_terminal_failure_logged_with_retry_count(
            self, world, make_engine, caplog, propagating_logs):
        head = FaultyDraftHead(world["head"], mode="raise", transient=False,
                               per_request=True, fail_steps=[1])
        engine = make_engine(head=head, fallback_on_fault=False)
        with caplog.at_level(logging.WARNING, logger="repro"):
            serve_requests(engine, world["samples"][:1], _resilient_config())
        failures = [r for r in caplog.records
                    if getattr(r, "event", "") == "step_failed"]
        assert failures and failures[0].request_id == "req-000"
        assert failures[0].retry_count == 0


class TestBreakerIntegration:
    def test_breaker_opens_and_batch_stays_lossless(
            self, world, make_engine, sequential_records, registry):
        # Every draft step spikes; the engine absorbs each fault in place
        # (fallback_on_fault) while the breaker learns speculation is
        # useless and flips the batch target-only.  Degraded decoding is
        # AR-identical, so outputs still match the clean oracle exactly.
        head = FaultyDraftHead(world["head"], mode="latency", fail_every=1)
        engine = make_engine(head=head, fallback_on_fault=True,
                             max_draft_faults=10_000)
        breaker_cfg = BreakerConfig(window=2, open_above_fault_rate=1.0,
                                    cooldown_rounds=2, probe_rounds=2)
        config = _resilient_config(
            resilience=ResilienceConfig(breaker=breaker_cfg))
        scheduler = ContinuousBatchingScheduler(engine, config)
        samples = world["samples"][:4]
        report = serve_requests(engine, samples, scheduler=scheduler)

        assert report.count(STATUS_COMPLETED) == len(samples)
        for result, solo in zip(report.results, sequential_records):
            assert result.record.token_ids == solo.token_ids, result.request_id
        assert report.breaker_transitions
        first = report.breaker_transitions[0]
        assert (first[1], first[2]) == (BREAKER_CLOSED, BREAKER_OPEN)
        # exact reconciliation with the registry
        assert (registry.get("resilience.breaker_transitions_total").value
                == len(report.breaker_transitions))

    def test_healthy_run_never_transitions(self, world, make_engine, registry):
        engine = make_engine()
        # Fault-only breaker: the untrained head's acceptance is naturally
        # low, so the acceptance bar is disabled for this liveness check.
        breaker_cfg = BreakerConfig(open_below_acceptance=0.0,
                                    reclose_above_acceptance=0.0)
        config = _resilient_config(
            resilience=ResilienceConfig(breaker=breaker_cfg))
        report = serve_requests(engine, world["samples"][:3], config)
        assert report.count(STATUS_COMPLETED) == 3
        assert report.breaker_transitions == ()
        assert registry.get("resilience.breaker_state").value == 0


class TestShedIntegration:
    def test_reject_newest_sheds_under_pressure(self, world, make_engine):
        engine = make_engine()
        shed = ShedConfig(max_queue_ms=200.0, shed_target_depth=1)
        config = ServingConfig(
            max_batch_size=1, max_queue_depth=4,
            resilience=ResilienceConfig(shed=shed))
        report = serve_requests(engine, world["samples"], config)
        assert report.n_shed > 0
        assert report.count(STATUS_REJECTED) >= report.n_shed
        rejected = [r for r in report.results if r.status == STATUS_REJECTED]
        assert any("shed under queue pressure" in (r.error or "")
                   for r in rejected)
        # everything still resolves terminally
        assert len(report.results) == len(world["samples"])

    def test_reject_over_deadline_spares_deadline_less(self, world, make_engine):
        engine = make_engine()
        shed = ShedConfig(max_queue_ms=100.0, policy=SHED_REJECT_OVER_DEADLINE)
        config = ServingConfig(
            max_batch_size=1, max_queue_depth=8,
            resilience=ResilienceConfig(shed=shed))
        requests = []
        for i, sample in enumerate(world["samples"]):
            deadline = 150.0 if i % 2 else None
            requests.append(ServeRequest(request_id=f"r{i}", sample=sample,
                                         deadline_ms=deadline))
        report = serve_requests(engine, requests, config)
        shed_ids = {r.request_id for r in report.results
                    if r.status == STATUS_REJECTED}
        # only deadline-carrying requests are ever shed by this policy
        assert all(int(rid[1:]) % 2 for rid in shed_ids)


class TestDeadlineInRound:
    def test_mid_round_expiry_keeps_partial_output(
            self, world, make_engine, sequential_records):
        engine = make_engine()
        request = ServeRequest(request_id="tight", sample=world["samples"][0],
                               deadline_ms=30.0)
        report = serve_requests(engine, [request], _resilient_config())
        result = report.results[0]
        assert result.status == STATUS_TIMEOUT
        tokens = list(result.record.token_ids)
        assert len(tokens) < MAX_NEW_TOKENS
        oracle = list(sequential_records[0].token_ids)
        assert tokens == oracle[: len(tokens)]

    def test_legacy_config_unchanged_without_resilience(
            self, world, make_engine, sequential_records):
        engine = make_engine()
        report = serve_requests(engine, world["samples"][:4],
                                ServingConfig(max_batch_size=4))
        assert report.count(STATUS_COMPLETED) == 4
        assert report.n_retries == 0 and report.n_shed == 0
        assert report.breaker_transitions == ()
        for result, solo in zip(report.results, sequential_records):
            assert result.record.token_ids == solo.token_ids


class TestFacade:
    def test_mismatched_scheduler_rejected(self, world, make_engine):
        engine_a, engine_b = make_engine(), make_engine()
        scheduler = ContinuousBatchingScheduler(engine_a, ServingConfig())
        with pytest.raises(ServingError):
            serve_requests(engine_b, world["samples"][:1], scheduler=scheduler)
