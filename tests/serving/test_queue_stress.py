"""Concurrent-producer stress on admission control.

The admission queue is the only scheduler surface that may be hit from
other threads (an online frontend racing the serving loop), so these
tests hammer it with producer threads and assert the backpressure
contract stays exact: no handle is lost, none resolves twice, and
``AdmissionError`` fires precisely when the queue is at capacity.
"""

from __future__ import annotations

import threading

import pytest

from repro.data.tasks import make_dataset
from repro.errors import AdmissionError
from repro.serving import (
    AdmissionQueue,
    ContinuousBatchingScheduler,
    ServeRequest,
    ServingConfig,
)

TERMINAL = {"completed", "timeout", "rejected", "failed"}


@pytest.fixture(scope="module")
def sample():
    return make_dataset("coco-sim", 1, seed=0).samples[0]


def _producer(submit, sample, prefix, n, accepted, errors, barrier):
    barrier.wait()
    for i in range(n):
        request = ServeRequest(request_id=f"{prefix}-{i:03d}", sample=sample)
        try:
            accepted.append(submit(request))
        except AdmissionError:
            errors.append(request.request_id)


class TestConcurrentAdmission:
    N_THREADS = 4
    PER_THREAD = 8

    def _race(self, submit, sample, max_depth):
        accepted, errors = [], []
        barrier = threading.Barrier(self.N_THREADS)
        threads = [
            threading.Thread(
                target=_producer,
                args=(submit, sample, f"t{t}", self.PER_THREAD,
                      accepted, errors, barrier),
            )
            for t in range(self.N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return accepted, errors

    def test_admission_error_exactly_at_capacity(self, sample):
        # No consumer: the queue must admit exactly max_depth requests and
        # refuse the rest, with no submission lost in between.
        queue = AdmissionQueue(max_depth=8)
        submit = lambda request: queue.submit(request, now_ms=0.0)
        accepted, errors = self._race(submit, sample, max_depth=8)

        assert len(accepted) == 8
        assert len(errors) == self.N_THREADS * self.PER_THREAD - 8
        assert queue.depth == 8 and queue.free == 0
        with pytest.raises(AdmissionError):
            queue.submit(ServeRequest(request_id="late", sample=sample), now_ms=0.0)
        # every admitted handle is distinct and still queued
        queued = queue.pop_ready(16)
        assert {h.request_id for h in queued} == {h.request_id for h in accepted}

    def test_producers_race_draining_scheduler(self, world, make_engine):
        # Threads submit while the main thread drains rounds; afterwards
        # every admitted handle must have resolved exactly once.
        engine = make_engine()
        scheduler = ContinuousBatchingScheduler(
            engine, ServingConfig(max_batch_size=4, max_queue_depth=8))
        accepted, errors = self._race(scheduler.submit, world["samples"][0],
                                      max_depth=8)
        scheduler.run_until_idle(max_rounds=10_000)

        assert scheduler.idle and scheduler.n_active == 0
        # no lost handles: all accepted resolved, and accepted + refused
        # accounts for every submission attempt
        assert len(accepted) + len(errors) == self.N_THREADS * self.PER_THREAD
        assert len({h.request_id for h in accepted}) == len(accepted)
        for handle in accepted:
            assert handle.done
            result = handle.result(timeout=0)   # resolved exactly once
            assert result.status in TERMINAL
            assert result.record is not None
