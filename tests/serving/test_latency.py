"""Request-level latency digests (TTFT / TPOT / E2E) on the server clock."""

from __future__ import annotations

import pytest

from repro.obs.summarize import render_summary, summarize_spans
from repro.obs.tracing import Tracer
from repro.serving import ContinuousBatchingScheduler, ServingConfig, serve_requests


def _serve(make_engine, samples, **config):
    engine = make_engine()
    scheduler = ContinuousBatchingScheduler(
        engine, ServingConfig(**config) if config else None
    )
    report = serve_requests(engine, samples, scheduler=scheduler)
    return report, scheduler


class TestLatencyDigests:
    def test_report_carries_all_three_digests(self, make_engine, world):
        report, scheduler = _serve(make_engine, world["samples"],
                                   max_batch_size=4)
        completed = report.count("completed")
        assert completed == len(world["samples"])
        for metric in ("ttft_ms", "tpot_ms", "e2e_ms"):
            digest = report.latency_ms[metric]
            assert digest["count"] == completed
            assert 0.0 < digest["p50"] <= digest["p95"] <= digest["p99"]
            assert digest["p50"] == pytest.approx(
                sorted(scheduler.latency_samples[metric])[completed // 2],
                rel=0.5,
            )
        # The first token lands well before the request retires.
        assert report.latency_ms["ttft_ms"]["p50"] < report.latency_ms["e2e_ms"]["p50"]

    def test_summary_exposes_percentile_keys(self, make_engine, world):
        report, _ = _serve(make_engine, world["samples"][:3])
        summary = report.summary()
        for key in ("ttft_ms_p50", "tpot_ms_p95", "e2e_ms_p99"):
            assert key in summary and summary[key] > 0.0

    def test_e2e_matches_result_timestamps(self, make_engine, world):
        report, scheduler = _serve(make_engine, world["samples"],
                                   max_batch_size=4)
        from_results = sorted(
            r.finished_ms - r.submitted_ms for r in report.results
        )
        assert from_results == pytest.approx(
            sorted(scheduler.latency_samples["e2e_ms"])
        )

    def test_single_request_identity(self, make_engine, world):
        # One request, so the three samples belong to the same request
        # and must satisfy e2e = ttft + tpot * (n_tokens - 1) exactly.
        report, scheduler = _serve(make_engine, world["samples"][:1])
        (result,) = report.results
        n_tokens = result.record.n_tokens
        assert n_tokens > 1
        ttft = scheduler.latency_samples["ttft_ms"][0]
        tpot = scheduler.latency_samples["tpot_ms"][0]
        e2e = scheduler.latency_samples["e2e_ms"][0]
        assert 0.0 < ttft <= e2e
        assert e2e == pytest.approx(ttft + tpot * (n_tokens - 1))

    def test_registry_histograms_fed(self, make_engine, world):
        from repro.obs.metrics import get_registry

        get_registry().reset()
        report, _ = _serve(make_engine, world["samples"][:3])
        snapshot = get_registry().snapshot()
        for metric in ("ttft_ms", "tpot_ms", "e2e_ms"):
            hist = snapshot[f"serving.{metric}"]
            assert hist["count"] == report.count("completed")
            assert hist["p95"] is not None


class TestLatencySpans:
    def test_request_latency_spans_exported(self, make_engine, world):
        tracer = Tracer(enabled=True)
        engine = make_engine(tracer=tracer)
        report = serve_requests(engine, world["samples"][:4],
                                ServingConfig(max_batch_size=2))
        spans = [s for s in tracer.spans if s.name == "request_latency"]
        assert len(spans) == len(report.results)
        assert {s.attrs["request_id"] for s in spans} == {
            r.request_id for r in report.results
        }
        for span in spans:
            assert span.attrs["e2e_ms"] > 0.0

    def test_summarize_renders_latency_section(self, make_engine, world):
        tracer = Tracer(enabled=True)
        engine = make_engine(tracer=tracer)
        serve_requests(engine, world["samples"][:4],
                       ServingConfig(max_batch_size=2))
        summary = summarize_spans(tracer.spans)
        assert summary.latency_ms["e2e_ms"]["count"] == 4
        rendered = render_summary(summary)
        assert "request latency" in rendered
        assert "p95" in rendered
        # request_latency bookkeeping spans stay out of the phase table.
        assert "request_latency" not in summary.phases


class TestWallClockTtft:
    def test_decode_record_stamps_ttft(self, make_engine, world):
        record = make_engine().decode(world["samples"][0])
        assert 0.0 < record.ttft_wall_s <= record.wall_time_s
