"""Request types and admission queue: validation, backpressure, expiry."""

from __future__ import annotations

import pytest

from repro.data.tasks import make_dataset
from repro.errors import AdmissionError, ServingError
from repro.serving import AdmissionQueue, ServeRequest, ServeResult
from repro.serving.request import (
    STATUS_COMPLETED,
    STATUS_REJECTED,
    ServeHandle,
    expiry_ms,
)


@pytest.fixture(scope="module")
def sample():
    return make_dataset("coco-sim", 1, seed=0).samples[0]


class TestServeRequest:
    def test_valid_defaults(self, sample):
        req = ServeRequest(request_id="r1", sample=sample)
        assert req.max_new_tokens is None
        assert req.deadline_ms is None
        assert req.gamma is None

    @pytest.mark.parametrize("kwargs", [
        dict(request_id=""),
        dict(max_new_tokens=0),
        dict(max_new_tokens=-3),
        dict(deadline_ms=0.0),
        dict(gamma=0),
    ])
    def test_invalid_fields_rejected(self, sample, kwargs):
        fields = dict(request_id="r1", sample=sample)
        fields.update(kwargs)
        with pytest.raises(ServingError):
            ServeRequest(**fields)


class TestServeResult:
    def test_unknown_status_rejected(self):
        with pytest.raises(ServingError):
            ServeResult(request_id="r1", status="exploded")

    def test_latency_properties(self):
        result = ServeResult(
            request_id="r1", status=STATUS_COMPLETED,
            submitted_ms=10.0, started_ms=40.0, finished_ms=100.0,
        )
        assert result.ok
        assert result.queue_ms == 30.0
        assert result.service_ms == 60.0

    def test_never_started_has_no_latencies(self):
        result = ServeResult(request_id="r1", status=STATUS_REJECTED, submitted_ms=5.0)
        assert not result.ok
        assert result.queue_ms is None
        assert result.service_ms is None


class TestServeHandle:
    def test_resolves_once(self, sample):
        handle = ServeHandle(ServeRequest(request_id="r1", sample=sample), submitted_ms=0.0)
        assert not handle.done
        result = ServeResult(request_id="r1", status=STATUS_COMPLETED)
        handle.resolve(result)
        assert handle.done
        assert handle.result() is result
        with pytest.raises(ServingError):
            handle.resolve(result)

    def test_result_times_out_when_pending(self, sample):
        handle = ServeHandle(ServeRequest(request_id="r1", sample=sample), submitted_ms=0.0)
        with pytest.raises(ServingError):
            handle.result(timeout=0.01)

    def test_expiry_is_submission_plus_deadline(self, sample):
        request = ServeRequest(request_id="r1", sample=sample, deadline_ms=50.0)
        assert expiry_ms(ServeHandle(request, submitted_ms=100.0)) == 150.0
        no_deadline = ServeRequest(request_id="r2", sample=sample)
        assert expiry_ms(ServeHandle(no_deadline, submitted_ms=100.0)) is None


class TestAdmissionQueue:
    def _req(self, sample, rid, **kw):
        return ServeRequest(request_id=rid, sample=sample, **kw)

    def test_fifo_and_depth(self, sample):
        queue = AdmissionQueue(max_depth=4)
        for i in range(3):
            queue.submit(self._req(sample, f"r{i}"), now_ms=0.0)
        assert queue.depth == 3
        assert queue.free == 1
        taken = queue.pop_ready(2)
        assert [h.request_id for h in taken] == ["r0", "r1"]
        assert queue.depth == 1

    def test_full_queue_raises_admission_error(self, sample):
        queue = AdmissionQueue(max_depth=2)
        queue.submit(self._req(sample, "r0"), now_ms=0.0)
        queue.submit(self._req(sample, "r1"), now_ms=0.0)
        with pytest.raises(AdmissionError):
            queue.submit(self._req(sample, "r2"), now_ms=0.0)

    def test_duplicate_id_refused(self, sample):
        queue = AdmissionQueue(max_depth=4)
        queue.submit(self._req(sample, "r0"), now_ms=0.0)
        with pytest.raises(AdmissionError):
            queue.submit(self._req(sample, "r0"), now_ms=0.0)

    def test_predicate_skips_without_reordering(self, sample):
        queue = AdmissionQueue(max_depth=8)
        for i, gamma in enumerate([3, 5, 3, 5]):
            queue.submit(self._req(sample, f"r{i}", gamma=gamma), now_ms=0.0)
        taken = queue.pop_ready(4, predicate=lambda h: h.request.gamma == 5)
        assert [h.request_id for h in taken] == ["r1", "r3"]
        # the incompatible ones stayed queued, still in order
        rest = queue.pop_ready(4)
        assert [h.request_id for h in rest] == ["r0", "r2"]

    def test_expire_removes_overdue_only(self, sample):
        queue = AdmissionQueue(max_depth=8)
        queue.submit(self._req(sample, "tight", deadline_ms=10.0), now_ms=0.0)
        queue.submit(self._req(sample, "loose", deadline_ms=1000.0), now_ms=0.0)
        queue.submit(self._req(sample, "none"), now_ms=0.0)
        expired = queue.expire(now_ms=50.0)
        assert [h.request_id for h in expired] == ["tight"]
        assert queue.depth == 2

    def test_invalid_depth_rejected(self):
        with pytest.raises(ServingError):
            AdmissionQueue(max_depth=0)
