"""KVCache behaviour: append, truncate, segments."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.models.kv_cache import KVCache, Segments


def fill(cache: KVCache, n_tokens: int, n_heads=2, head_dim=4):
    for layer in range(cache.n_layers):
        cache.append(
            layer,
            np.random.default_rng(layer).standard_normal((1, n_heads, n_tokens, head_dim)),
            np.random.default_rng(layer + 10).standard_normal((1, n_heads, n_tokens, head_dim)),
        )
    cache.extend_positions(np.arange(cache.seq_len - n_tokens, cache.seq_len))


class TestBasics:
    def test_bad_layer_count(self):
        with pytest.raises(ValueError):
            KVCache(0)

    def test_empty_state(self):
        cache = KVCache(2)
        assert cache.seq_len == 0
        assert cache.next_position() == 0
        with pytest.raises(ShapeError):
            cache.layer(0)
        with pytest.raises(ShapeError):
            cache.batch_size

    def test_append_and_grow(self):
        cache = KVCache(2)
        fill(cache, 4)
        fill(cache, 3)
        assert cache.seq_len == 7
        assert cache.batch_size == 1
        assert cache.next_position() == 7
        k, v = cache.last_layer()
        assert k.shape == (1, 2, 7, 4)

    def test_positions_tracked(self):
        cache = KVCache(1)
        fill(cache, 5)
        assert np.array_equal(cache.positions, np.arange(5))

    def test_shape_mismatch_kv(self):
        cache = KVCache(1)
        with pytest.raises(ShapeError):
            cache.append(0, np.zeros((1, 2, 3, 4)), np.zeros((1, 2, 3, 5)))

    def test_incompatible_append(self):
        cache = KVCache(1)
        fill(cache, 2)
        with pytest.raises(ShapeError):
            cache.append(0, np.zeros((1, 3, 1, 4)), np.zeros((1, 3, 1, 4)))


class TestTruncate:
    def test_truncates_all_layers(self):
        cache = KVCache(3)
        fill(cache, 6)
        cache.truncate(4)
        assert cache.seq_len == 4
        assert len(cache.positions) == 4
        for layer in range(3):
            assert cache.layer(layer)[0].shape[2] == 4

    def test_truncate_noop(self):
        cache = KVCache(1)
        fill(cache, 3)
        cache.truncate(3)
        assert cache.seq_len == 3

    def test_truncate_beyond_raises(self):
        cache = KVCache(1)
        fill(cache, 3)
        with pytest.raises(ShapeError):
            cache.truncate(5)

    def test_truncate_into_prefix_raises(self):
        cache = KVCache(1)
        fill(cache, 6)
        cache.set_segments(n_vision=4, n_prompt=2)
        with pytest.raises(ShapeError):
            cache.truncate(5)


class TestSegments:
    def test_segment_bookkeeping(self):
        cache = KVCache(1)
        fill(cache, 10)
        cache.set_segments(n_vision=6, n_prompt=3)
        seg = cache.segments
        assert seg.vision == (0, 6)
        assert seg.prompt == (6, 9)
        assert seg.n_vision == 6
        assert seg.n_prompt == 3
        assert seg.prefix_len == 9

    def test_segments_dataclass(self):
        seg = Segments(vision=(0, 4), prompt=(4, 7))
        assert seg.n_vision == 4
        assert seg.prefix_len == 7


class TestClone:
    def test_clone_independent(self):
        cache = KVCache(2)
        fill(cache, 4)
        cache.set_segments(2, 2)
        other = cache.clone()
        other.truncate(4)
        fill(other, 1)
        assert cache.seq_len == 4
        assert other.seq_len == 5
        assert other.segments == cache.segments

    def test_clone_is_copy_on_write(self):
        """clone() shares storage until a side writes — no eager deep copy."""
        cache = KVCache(2)
        fill(cache, 4)
        copied_before = cache.arena_stats().bytes_copied
        other = cache.clone()
        # Taking the snapshot moves no array data on either side.
        assert cache.arena_stats().bytes_copied == copied_before
        assert other.arena_stats().bytes_copied == 0
        k_orig, _ = cache.layer(0)
        k_fork, _ = other.layer(0)
        assert k_fork.base is k_orig.base    # same underlying buffer
        # First write on the clone detaches it (pays the copy), and the
        # original is untouched.
        fill(other, 1)
        assert other.arena_stats().bytes_copied > 0
        assert other.layer(0)[0].base is not cache.layer(0)[0].base
        np.testing.assert_array_equal(cache.layer(0)[0], k_fork[:, :, :4, :])

    def test_original_can_mutate_without_touching_clone(self):
        cache = KVCache(1)
        fill(cache, 5)
        snapshot = cache.clone()
        frozen = snapshot.layer(0)[0].copy()
        cache.truncate(2)
        fill(cache, 2)
        assert snapshot.seq_len == 5
        np.testing.assert_array_equal(snapshot.layer(0)[0], frozen)

    def test_clone_of_empty_cache(self):
        cache = KVCache(2)
        other = cache.clone()
        assert other.seq_len == 0
        fill(other, 2)
        assert other.seq_len == 2
        assert cache.seq_len == 0
