"""MiniLlama tests: forward paths, cache equivalence, tied head."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.models.config import LlamaConfig
from repro.models.llama import MiniLlama


@pytest.fixture()
def model(rng):
    return MiniLlama(LlamaConfig(vocab_size=30, dim=24, n_layers=2, n_heads=2, mlp_hidden=48), rng=rng)


class TestForward:
    def test_logits_shape(self, model, rng):
        ids = rng.integers(0, 30, size=(2, 7))
        out = model.forward(ids)
        assert out.logits.shape == (2, 7, 30)
        assert out.hidden.shape == (2, 7, 24)
        assert len(out.new_kv) == 2

    def test_1d_input_promoted(self, model):
        out = model.forward(np.array([1, 2, 3]))
        assert out.logits.shape == (1, 3, 30)

    def test_tied_lm_head(self, model):
        """Logits are hidden @ embedding^T (no separate head weights)."""
        names = [n for n, _ in model.named_parameters()]
        assert not any("lm_head" in n for n in names)

    def test_positions_length_mismatch(self, model, rng):
        x = model.embed_tokens(np.array([[1, 2, 3]]))
        with pytest.raises(ShapeError):
            model.forward_embeds(x, np.arange(5))

    def test_last_layer_kv_accessor(self, model):
        out = model.forward(np.array([[1, 2]]))
        k, v = out.last_layer_kv
        assert k.shape == (1, 2, 2, 12)


class TestCacheDecoding:
    def test_incremental_matches_full(self, model, rng):
        ids = rng.integers(0, 30, size=(1, 9))
        full = model.forward(ids)
        cache = model.new_cache()
        model.forward(ids[:, :5], cache=cache)
        out = model.forward(ids[:, 5:], cache=cache)
        assert np.abs(full.logits.data[:, 5:, :] - out.logits.data).max() < 1e-3
        assert cache.seq_len == 9

    def test_token_by_token_matches_full(self, model, rng):
        ids = rng.integers(0, 30, size=(1, 6))
        full = model.forward(ids)
        cache = model.new_cache()
        for t in range(6):
            out = model.forward(ids[:, t : t + 1], cache=cache)
            assert np.abs(full.logits.data[:, t, :] - out.logits.data[:, 0, :]).max() < 1e-3

    def test_update_cache_false_leaves_cache(self, model, rng):
        ids = rng.integers(0, 30, size=(1, 4))
        cache = model.new_cache()
        model.forward(ids, cache=cache)
        length = cache.seq_len
        model.forward(np.array([[1]]), cache=cache, update_cache=False)
        assert cache.seq_len == length

    def test_positions_default_continue_from_cache(self, model, rng):
        cache = model.new_cache()
        model.forward(np.array([[1, 2, 3]]), cache=cache)
        model.forward(np.array([[4]]), cache=cache)
        assert np.array_equal(cache.positions, np.arange(4))


class TestTraining:
    def test_can_overfit_sequence(self, rng):
        model = MiniLlama(LlamaConfig(vocab_size=12, dim=16, n_layers=1, n_heads=2, mlp_hidden=32), rng=rng)
        from repro.nn import functional as F
        from repro.nn.optim import Adam
        ids = np.array([[1, 2, 3, 4, 5, 6]])
        opt = Adam(model.parameters(), lr=5e-3)
        for _ in range(150):
            opt.zero_grad()
            out = model.forward(ids[:, :-1])
            loss = F.cross_entropy(out.logits, ids[:, 1:])
            loss.backward()
            opt.step()
        assert loss.item() < 0.05
