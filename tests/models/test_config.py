"""Model config validation and registry tests."""

import pytest

from repro.errors import ConfigError
from repro.models.config import (
    LlamaConfig,
    LlavaConfig,
    MODEL_REGISTRY,
    VisionConfig,
    get_config,
)


class TestLlamaConfig:
    def test_head_dim(self):
        cfg = LlamaConfig(vocab_size=100, dim=96, n_heads=6)
        assert cfg.head_dim == 16

    def test_rejects_indivisible(self):
        with pytest.raises(ConfigError):
            LlamaConfig(vocab_size=100, dim=100, n_heads=7)

    def test_rejects_odd_head_dim(self):
        with pytest.raises(ConfigError):
            LlamaConfig(vocab_size=100, dim=10, n_heads=2)  # head_dim 5 odd

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            LlamaConfig(vocab_size=0, dim=8, n_heads=2)


class TestVisionConfig:
    def test_patch_counts(self):
        cfg = VisionConfig(image_size=36, patch_size=6)
        assert cfg.n_patches == 36
        assert cfg.patch_dim == 6 * 6 * 3

    def test_rejects_indivisible_patches(self):
        with pytest.raises(ConfigError):
            VisionConfig(image_size=36, patch_size=7)

    def test_rejects_bad_heads(self):
        with pytest.raises(ConfigError):
            VisionConfig(dim=50, n_heads=3)


class TestLlavaConfig:
    def test_vision_token_count(self):
        cfg = LlavaConfig(llama=LlamaConfig(vocab_size=10))
        assert cfg.n_vision_tokens == cfg.vision.n_patches

    def test_dict_roundtrip(self):
        cfg = LlavaConfig(llama=LlamaConfig(vocab_size=42))
        again = LlavaConfig.from_dict(cfg.to_dict())
        assert again == cfg


class TestRegistry:
    def test_known_names(self):
        assert set(MODEL_REGISTRY) == {"sim-7b", "sim-13b", "sim-112m", "sim-112m-llava"}

    def test_unknown_raises(self):
        with pytest.raises(ConfigError):
            get_config("sim-70b", 100)

    def test_13b_larger_than_7b(self):
        a = get_config("sim-7b", 100)
        b = get_config("sim-13b", 100)
        assert b.llama.dim > a.llama.dim
        assert b.llama.n_layers > a.llama.n_layers

    def test_draft_much_smaller(self):
        target = get_config("sim-7b", 100)
        draft = get_config("sim-112m", 100)
        assert draft.dim < target.llama.dim
        assert draft.n_layers < target.llama.n_layers

    def test_vocab_size_propagates(self):
        cfg = get_config("sim-7b", 123)
        assert cfg.llama.vocab_size == 123
