"""Vision encoder tests."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.models.config import VisionConfig
from repro.models.vision import VisionEncoder, patchify


class TestPatchify:
    def test_shapes(self, rng):
        imgs = rng.random((2, 12, 12, 3)).astype(np.float32)
        patches = patchify(imgs, 6)
        assert patches.shape == (2, 4, 108)

    def test_single_image_promoted(self, rng):
        patches = patchify(rng.random((12, 12, 3)), 6)
        assert patches.shape == (1, 4, 108)

    def test_content_preserved(self):
        img = np.arange(12 * 12 * 3, dtype=np.float32).reshape(1, 12, 12, 3)
        patches = patchify(img, 6)
        # First patch must equal the top-left 6x6 block, row-major.
        expected = img[0, :6, :6, :].reshape(-1)
        assert np.array_equal(patches[0, 0], expected)

    def test_indivisible_raises(self, rng):
        with pytest.raises(ShapeError):
            patchify(rng.random((10, 10, 3)), 3)


class TestVisionEncoder:
    def make(self, rng):
        return VisionEncoder(
            VisionConfig(image_size=12, patch_size=6, dim=16, n_layers=1, n_heads=2, mlp_hidden=32),
            rng=rng,
        )

    def test_output_shape(self, rng):
        enc = self.make(rng)
        out = enc(rng.random((3, 12, 12, 3)).astype(np.float32))
        assert out.shape == (3, 4, 16)

    def test_deterministic(self, rng):
        enc = self.make(rng)
        img = np.random.default_rng(1).random((1, 12, 12, 3)).astype(np.float32)
        assert np.array_equal(enc(img).data, enc(img).data)

    def test_different_images_different_features(self, rng):
        enc = self.make(rng)
        a = enc(np.zeros((1, 12, 12, 3), dtype=np.float32)).data
        b = enc(np.ones((1, 12, 12, 3), dtype=np.float32)).data
        assert not np.allclose(a, b)

    def test_position_embedding_breaks_symmetry(self, rng):
        """Identical patches still yield distinct tokens (positional info)."""
        enc = self.make(rng)
        out = enc(np.full((1, 12, 12, 3), 0.5, dtype=np.float32)).data
        assert not np.allclose(out[0, 0], out[0, 1])

    def test_wrong_size_raises(self, rng):
        enc = self.make(rng)
        with pytest.raises(ShapeError):
            enc(np.zeros((1, 18, 18, 3), dtype=np.float32))

    def test_gradients_flow(self, rng):
        enc = self.make(rng)
        out = enc(rng.random((1, 12, 12, 3)).astype(np.float32))
        (out * out).sum().backward()
        assert all(p.grad is not None for p in enc.parameters())
