"""Greedy generation helper tests (uninstrumented path)."""

import numpy as np
import pytest

from repro.models.config import LlamaConfig, LlavaConfig, VisionConfig
from repro.models.generation import GenerationLimits, greedy_generate, greedy_generate_text_only
from repro.models.llama import MiniLlama
from repro.models.llava import MiniLlava


@pytest.fixture()
def llava(rng):
    cfg = LlavaConfig(
        llama=LlamaConfig(vocab_size=20, dim=16, n_layers=1, n_heads=2, mlp_hidden=32),
        vision=VisionConfig(image_size=12, patch_size=6, dim=8, n_layers=1, n_heads=2, mlp_hidden=16),
    )
    return MiniLlava(cfg, rng=rng)


class TestGreedyGenerate:
    def test_respects_max_tokens(self, llava, rng):
        img = rng.random((12, 12, 3)).astype(np.float32)
        out = greedy_generate(llava, img, np.array([1, 2]), GenerationLimits(max_new_tokens=5))
        assert len(out) <= 5

    def test_stops_at_eos(self, llava, rng):
        img = rng.random((12, 12, 3)).astype(np.float32)
        out = greedy_generate(
            llava, img, np.array([1, 2]), GenerationLimits(max_new_tokens=30, eos_id=None)
        )
        assert len(out) == 30  # without eos runs to the cap

    def test_deterministic(self, llava, rng):
        img = rng.random((12, 12, 3)).astype(np.float32)
        limits = GenerationLimits(max_new_tokens=8)
        a = greedy_generate(llava, img, np.array([1]), limits)
        b = greedy_generate(llava, img, np.array([1]), limits)
        assert a == b

    def test_text_only_variant(self, rng):
        lm = MiniLlama(LlamaConfig(vocab_size=15, dim=16, n_layers=1, n_heads=2, mlp_hidden=32), rng=rng)
        out = greedy_generate_text_only(lm, np.array([1, 2, 3]), GenerationLimits(max_new_tokens=6))
        assert len(out) == 6
        assert all(0 <= t < 15 for t in out)

    def test_eos_included_in_output(self, llava, rng):
        """When eos is generated it is the last returned token."""
        img = rng.random((12, 12, 3)).astype(np.float32)
        # Find the argmax-favoured token and use it as the eos to force a stop.
        first = greedy_generate(llava, img, np.array([1]), GenerationLimits(max_new_tokens=1))[0]
        out = greedy_generate(
            llava, img, np.array([1]), GenerationLimits(max_new_tokens=10, eos_id=first)
        )
        assert out[-1] == first
        assert len(out) == 1
