"""MiniLlava tests: multimodal forward paths and cache consistency."""

import numpy as np
import pytest

from repro.models.config import LlamaConfig, LlavaConfig, VisionConfig
from repro.models.llava import MiniLlava


@pytest.fixture()
def model(rng):
    cfg = LlavaConfig(
        llama=LlamaConfig(vocab_size=40, dim=24, n_layers=2, n_heads=2, mlp_hidden=48),
        vision=VisionConfig(image_size=12, patch_size=6, dim=16, n_layers=1, n_heads=2, mlp_hidden=32),
        connector_hidden=20,
    )
    return MiniLlava(cfg, rng=rng)


@pytest.fixture()
def image(rng):
    return rng.random((1, 12, 12, 3)).astype(np.float32)


class TestStructure:
    def test_parameter_namespaces(self, model):
        names = [n for n, _ in model.named_parameters()]
        assert any(n.startswith("vision.") for n in names)
        assert any(n.startswith("connector.") for n in names)
        assert any(n.startswith("llama.") for n in names)

    def test_state_dict_roundtrip(self, model, rng):
        other = MiniLlava(model.config, rng=np.random.default_rng(123))
        other.load_state_dict(model.state_dict())
        for (na, pa), (_, pb) in zip(model.named_parameters(), other.named_parameters()):
            assert np.allclose(pa.data, pb.data), na

    def test_state_dict_strict(self, model):
        state = model.state_dict()
        state.pop(next(iter(state)))
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_n_vision_tokens(self, model):
        assert model.n_vision_tokens == 4


class TestForwardPaths:
    def test_prefill_shapes_and_segments(self, model, image):
        ids = np.array([[1, 5, 7]])
        cache, logits = model.prefill(image, ids)
        assert logits.shape == (1, 40)
        assert cache.seq_len == 4 + 3
        assert cache.segments.n_vision == 4
        assert cache.segments.n_prompt == 3

    def test_prefill_accepts_1d_ids(self, model, image):
        cache, _ = model.prefill(image, np.array([1, 2]))
        assert cache.seq_len == 6

    def test_decode_extends_cache(self, model, image):
        cache, _ = model.prefill(image, np.array([[1, 2]]))
        out = model.decode(np.array([[3]]), cache)
        assert out.logits.shape == (1, 1, 40)
        assert cache.seq_len == 7

    def test_prefill_decode_matches_full_forward(self, model, image, rng):
        prompt = np.array([1, 4, 6])
        extra = np.array([9, 2])
        full_ids = np.concatenate([prompt, extra])
        full = model.forward_train(image, full_ids[None])
        cache, _ = model.prefill(image, prompt[None])
        out1 = model.decode(np.array([[9]]), cache)
        out2 = model.decode(np.array([[2]]), cache)
        nv = model.n_vision_tokens
        assert np.abs(full.logits.data[0, nv + 3] - out1.logits.data[0, -1]).max() < 1e-3
        assert np.abs(full.logits.data[0, nv + 4] - out2.logits.data[0, -1]).max() < 1e-3

    def test_batch_mismatch_raises(self, model, rng):
        from repro.errors import ShapeError
        imgs = rng.random((2, 12, 12, 3)).astype(np.float32)
        with pytest.raises(ShapeError):
            model.build_input_embeds(imgs, np.array([[1, 2], [1, 2], [1, 2]]))

    def test_text_slice(self, model, image):
        out = model.forward_train(image, np.array([[1, 2, 3]]))
        assert model.text_slice(out.logits).shape == (1, 3, 40)

    def test_image_affects_logits(self, model, rng):
        ids = np.array([[1, 2]])
        a = model.forward_train(np.zeros((1, 12, 12, 3), dtype=np.float32), ids)
        b = model.forward_train(np.ones((1, 12, 12, 3), dtype=np.float32), ids)
        assert not np.allclose(a.logits.data, b.logits.data)


class TestModes:
    def test_train_eval(self, model):
        model.eval()
        assert not model.vision.training
        assert not model.llama.training
        model.train()
        assert model.connector.training
