"""Decoder integration tests on small random models.

Losslessness of greedy speculative decoding holds for *any* target/draft
weights, so these tests use tiny untrained models and real datasets.
"""

import numpy as np
import pytest

from repro.core.draft_head import AASDDraftHead, DraftHeadConfig
from repro.core.engine import AASDEngine, AASDEngineConfig
from repro.data.tasks import make_dataset
from repro.decoding.autoregressive import AutoregressiveDecoder
from repro.decoding.base import encode_prompt, trim_at_eos
from repro.decoding.cost_model import CostModel, get_profile
from repro.decoding.sampling import SamplerConfig
from repro.decoding.speculative import LlamaTextDraft, LlavaDraft, SpeculativeDecoder
from repro.errors import DecodingError
from repro.models.config import LlamaConfig, LlavaConfig, VisionConfig
from repro.models.llama import MiniLlama
from repro.models.llava import MiniLlava


@pytest.fixture(scope="module")
def world(tokenizer):
    """Tiny random target + drafts + dataset, shared across this module."""
    rng = np.random.default_rng(0)
    vocab = tokenizer.vocab_size
    target = MiniLlava(
        LlavaConfig(
            llama=LlamaConfig(vocab_size=vocab, dim=24, n_layers=2, n_heads=2, mlp_hidden=48),
            vision=VisionConfig(image_size=48, patch_size=8, dim=16, n_layers=1, n_heads=2, mlp_hidden=32),
        ),
        rng=rng,
    )
    text_draft = MiniLlama(
        LlamaConfig(vocab_size=vocab, dim=16, n_layers=1, n_heads=2, mlp_hidden=32), rng=rng
    )
    llava_draft = MiniLlava(
        LlavaConfig(
            llama=LlamaConfig(vocab_size=vocab, dim=16, n_layers=1, n_heads=2, mlp_hidden=32),
            vision=VisionConfig(image_size=48, patch_size=16, dim=8, n_layers=1, n_heads=2, mlp_hidden=16),
        ),
        rng=rng,
    )
    head = AASDDraftHead(
        DraftHeadConfig(
            vocab_size=vocab, dim=24, n_heads=2, mlp_hidden=32,
            n_vision_tokens=36, k_compressed=8,
        ),
        rng=rng,
    )
    head.init_from_target(target.llama)
    dataset = make_dataset("coco-sim", 3, seed=11)
    cm = CostModel(get_profile("sim-7b"))
    return dict(
        target=target, text_draft=text_draft, llava_draft=llava_draft,
        head=head, dataset=dataset, cm=cm, tokenizer=tokenizer,
    )


class TestBaseHelpers:
    def test_encode_prompt_prepends_bos(self, world):
        ids = encode_prompt(world["tokenizer"], world["dataset"][0])
        assert ids[0] == world["tokenizer"].vocab.bos_id

    def test_trim_at_eos(self):
        assert trim_at_eos([5, 2, 7], eos_id=2) == [5, 2]
        assert trim_at_eos([5, 7], eos_id=2) == [5, 7]


class TestAutoregressive:
    def test_record_contents(self, world):
        ar = AutoregressiveDecoder(world["target"], world["tokenizer"], world["cm"], max_new_tokens=12)
        rec = ar.decode(world["dataset"][0])
        assert 1 <= rec.n_tokens <= 12
        assert rec.sim_time_ms > 0
        assert rec.n_target_forwards == rec.n_tokens  # prefill + N-1 steps
        assert rec.text == world["tokenizer"].decode(rec.token_ids)

    def test_deterministic(self, world):
        ar = AutoregressiveDecoder(world["target"], world["tokenizer"], world["cm"], max_new_tokens=10)
        a = ar.decode(world["dataset"][0])
        b = ar.decode(world["dataset"][0])
        assert a.token_ids == b.token_ids

    def test_name(self, world):
        ar = AutoregressiveDecoder(world["target"], world["tokenizer"], world["cm"])
        assert ar.name == "autoregressive"


class TestSpeculativeLossless:
    @pytest.mark.parametrize("gamma", [1, 2, 3, 5])
    def test_text_draft_lossless(self, world, gamma):
        ar = AutoregressiveDecoder(world["target"], world["tokenizer"], world["cm"], max_new_tokens=16)
        sd = SpeculativeDecoder(
            world["target"], LlamaTextDraft(world["text_draft"]),
            world["tokenizer"], world["cm"], gamma=gamma, max_new_tokens=16,
        )
        for sample in world["dataset"]:
            assert sd.decode(sample).token_ids == ar.decode(sample).token_ids

    def test_llava_draft_lossless(self, world):
        ar = AutoregressiveDecoder(world["target"], world["tokenizer"], world["cm"], max_new_tokens=16)
        sd = SpeculativeDecoder(
            world["target"], LlavaDraft(world["llava_draft"]),
            world["tokenizer"], world["cm"], gamma=3, max_new_tokens=16,
        )
        for sample in world["dataset"]:
            assert sd.decode(sample).token_ids == ar.decode(sample).token_ids

    def test_blocks_recorded(self, world):
        sd = SpeculativeDecoder(
            world["target"], LlamaTextDraft(world["text_draft"]),
            world["tokenizer"], world["cm"], gamma=3, max_new_tokens=16,
        )
        rec = sd.decode(world["dataset"][0])
        assert rec.blocks
        assert all(b.n_draft == 3 for b in rec.blocks)
        assert all(0 <= b.n_accepted <= 3 for b in rec.blocks)
        # Emitted tokens across blocks equal the generated count (first
        # token came from prefill; the last block may be trimmed by eos/cap).
        emitted = sum(b.n_emitted for b in rec.blocks)
        assert emitted >= rec.n_tokens - 1

    def test_gamma_validation(self, world):
        with pytest.raises(DecodingError):
            SpeculativeDecoder(
                world["target"], LlamaTextDraft(world["text_draft"]),
                world["tokenizer"], world["cm"], gamma=0,
            )

    def test_name_includes_draft(self, world):
        sd = SpeculativeDecoder(
            world["target"], LlamaTextDraft(world["text_draft"], "ft-llama"),
            world["tokenizer"], world["cm"],
        )
        assert "ft-llama" in sd.name


class TestAASDEngineLossless:
    @pytest.mark.parametrize("gamma", [1, 3, 5])
    def test_lossless(self, world, gamma):
        ar = AutoregressiveDecoder(world["target"], world["tokenizer"], world["cm"], max_new_tokens=16)
        engine = AASDEngine(
            world["target"], world["head"], world["tokenizer"], world["cm"],
            AASDEngineConfig(gamma=gamma, max_new_tokens=16),
        )
        for sample in world["dataset"]:
            assert engine.decode(sample).token_ids == ar.decode(sample).token_ids

    @pytest.mark.parametrize(
        "flags",
        [dict(disable_image_kv=True), dict(disable_text_kv=True),
         dict(disable_image_kv=True, disable_text_kv=True)],
    )
    def test_ablation_flags_still_lossless(self, world, flags):
        """Masking draft context hurts acceptance, never correctness."""
        ar = AutoregressiveDecoder(world["target"], world["tokenizer"], world["cm"], max_new_tokens=12)
        engine = AASDEngine(
            world["target"], world["head"], world["tokenizer"], world["cm"],
            AASDEngineConfig(gamma=3, max_new_tokens=12, **flags),
        )
        sample = world["dataset"][0]
        assert engine.decode(sample).token_ids == ar.decode(sample).token_ids

    def test_no_target_kv_variant_runs(self, world):
        head = AASDDraftHead(
            DraftHeadConfig(
                vocab_size=world["tokenizer"].vocab_size, dim=24, n_heads=2,
                mlp_hidden=32, n_vision_tokens=36, k_compressed=8, use_target_kv=False,
            ),
            rng=np.random.default_rng(5),
        )
        ar = AutoregressiveDecoder(world["target"], world["tokenizer"], world["cm"], max_new_tokens=12)
        engine = AASDEngine(
            world["target"], head, world["tokenizer"], world["cm"],
            AASDEngineConfig(gamma=3, max_new_tokens=12),
        )
        sample = world["dataset"][0]
        assert engine.decode(sample).token_ids == ar.decode(sample).token_ids

    def test_vision_token_mismatch_rejected(self, world):
        head = AASDDraftHead(
            DraftHeadConfig(
                vocab_size=world["tokenizer"].vocab_size, dim=24, n_heads=2,
                mlp_hidden=32, n_vision_tokens=9, k_compressed=4,
            ),
            rng=np.random.default_rng(5),
        )
        with pytest.raises(DecodingError):
            AASDEngine(
                world["target"], head, world["tokenizer"], world["cm"],
                AASDEngineConfig(gamma=3),
            )

    def test_sampled_decoding_preserves_quality_contract(self, world):
        """With sampling, SD output need not equal the AR stream, but it
        must stay inside the vocabulary and respect the token cap."""
        engine = AASDEngine(
            world["target"], world["head"], world["tokenizer"], world["cm"],
            AASDEngineConfig(gamma=3, max_new_tokens=10),
            sampler_config=SamplerConfig(greedy=False, temperature=1.0),
            rng=np.random.default_rng(3),
        )
        rec = engine.decode(world["dataset"][0])
        assert 1 <= rec.n_tokens <= 10
        assert all(0 <= t < world["tokenizer"].vocab_size for t in rec.token_ids)

    def test_sim_time_accumulates(self, world):
        engine = AASDEngine(
            world["target"], world["head"], world["tokenizer"], world["cm"],
            AASDEngineConfig(gamma=3, max_new_tokens=12),
        )
        rec = engine.decode(world["dataset"][0])
        assert rec.sim_time_ms > world["cm"].target_prefill()
        assert rec.n_target_forwards >= 1
