"""Adaptive speculation-depth controller tests."""

import numpy as np
import pytest

from repro.decoding.adaptive import AdaptiveGamma, FixedGamma
from repro.errors import DecodingError


class TestFixedGamma:
    def test_constant(self):
        ctrl = FixedGamma(4)
        for _ in range(5):
            assert ctrl.next_gamma() == 4
            ctrl.update(2, 4)

    def test_rejects_bad_gamma(self):
        with pytest.raises(DecodingError):
            FixedGamma(0)

    def test_repr(self):
        assert "4" in repr(FixedGamma(4))


class TestAdaptiveGamma:
    def test_validation(self):
        with pytest.raises(DecodingError):
            AdaptiveGamma(initial_gamma=0)
        with pytest.raises(DecodingError):
            AdaptiveGamma(initial_gamma=5, max_gamma=3)
        with pytest.raises(DecodingError):
            AdaptiveGamma(raise_threshold=0.3, lower_threshold=0.5)
        with pytest.raises(DecodingError):
            AdaptiveGamma(smoothing=1.0)

    def test_grows_under_full_acceptance(self):
        ctrl = AdaptiveGamma(initial_gamma=2, max_gamma=6)
        for _ in range(20):
            gamma = ctrl.next_gamma()
            ctrl.update(gamma, gamma)
        assert ctrl.next_gamma() == 6

    def test_shrinks_under_rejection(self):
        ctrl = AdaptiveGamma(initial_gamma=5, min_gamma=1, max_gamma=6)
        for _ in range(20):
            gamma = ctrl.next_gamma()
            ctrl.update(0, gamma)
        assert ctrl.next_gamma() == 1

    def test_respects_bounds(self):
        ctrl = AdaptiveGamma(initial_gamma=3, min_gamma=2, max_gamma=4)
        for outcome in (1.0, 0.0, 1.0, 0.0) * 10:
            gamma = ctrl.next_gamma()
            assert 2 <= gamma <= 4
            ctrl.update(int(outcome * gamma), gamma)

    def test_reset_restores_initial(self):
        ctrl = AdaptiveGamma(initial_gamma=3, max_gamma=8)
        for _ in range(10):
            ctrl.update(ctrl.next_gamma(), ctrl.next_gamma())
        assert ctrl.next_gamma() != 3 or ctrl.acceptance_estimate != 0.5
        ctrl.reset()
        assert ctrl.next_gamma() == 3
        assert ctrl.acceptance_estimate == 0.5

    def test_update_rejects_bad_gamma(self):
        with pytest.raises(DecodingError):
            AdaptiveGamma().update(0, 0)

    def test_ewma_moves_towards_rate(self):
        ctrl = AdaptiveGamma(smoothing=0.5)
        ctrl.update(3, 3)
        assert ctrl.acceptance_estimate == pytest.approx(0.75)


class TestControllerInDecoders:
    def test_adaptive_sd_still_lossless(self, tokenizer):
        from repro.data.tasks import make_dataset
        from repro.decoding import (
            AutoregressiveDecoder,
            CostModel,
            LlamaTextDraft,
            SpeculativeDecoder,
            get_profile,
        )
        from repro.models.config import LlamaConfig, LlavaConfig, VisionConfig
        from repro.models.llama import MiniLlama
        from repro.models.llava import MiniLlava

        gen = np.random.default_rng(0)
        target = MiniLlava(
            LlavaConfig(
                llama=LlamaConfig(vocab_size=tokenizer.vocab_size, dim=16, n_layers=1, n_heads=2, mlp_hidden=24),
                vision=VisionConfig(image_size=48, patch_size=16, dim=8, n_layers=1, n_heads=2, mlp_hidden=16),
            ),
            rng=gen,
        )
        draft = MiniLlama(
            LlamaConfig(vocab_size=tokenizer.vocab_size, dim=16, n_layers=1, n_heads=2, mlp_hidden=24),
            rng=gen,
        )
        cm = CostModel(get_profile("sim-7b"))
        sample = make_dataset("coco-sim", 1, seed=5)[0]
        ar = AutoregressiveDecoder(target, tokenizer, cm, max_new_tokens=14).decode(sample)
        sd = SpeculativeDecoder(
            target, LlamaTextDraft(draft), tokenizer, cm,
            gamma=3, max_new_tokens=14,
            gamma_controller=AdaptiveGamma(initial_gamma=2, max_gamma=5),
        ).decode(sample)
        assert sd.token_ids == ar.token_ids
        # adaptive blocks may have varying depth
        depths = {b.n_draft for b in sd.blocks}
        assert all(1 <= d <= 5 for d in depths)
