"""Sampling and speculative-verify tests, including the losslessness
property of speculative sampling (Leviathan et al., 2023)."""

import numpy as np
import pytest

from repro.decoding.sampling import (
    Sampler,
    SamplerConfig,
    logits_to_probs,
    speculative_verify,
)
from repro.errors import DecodingError


class TestSamplerConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(DecodingError):
            SamplerConfig(temperature=0.0)
        with pytest.raises(DecodingError):
            SamplerConfig(top_k=-1)
        with pytest.raises(DecodingError):
            SamplerConfig(top_p=0.0)
        with pytest.raises(DecodingError):
            SamplerConfig(top_p=1.5)


class TestLogitsToProbs:
    def test_greedy_one_hot(self, rng):
        logits = rng.standard_normal(10)
        probs = logits_to_probs(logits, SamplerConfig(greedy=True))
        assert probs.sum() == 1.0
        assert probs[np.argmax(logits)] == 1.0

    def test_temperature_sharpens(self, rng):
        logits = rng.standard_normal(10)
        hot = logits_to_probs(logits, SamplerConfig(greedy=False, temperature=2.0))
        cold = logits_to_probs(logits, SamplerConfig(greedy=False, temperature=0.25))
        assert cold.max() > hot.max()

    def test_top_k_zeroes_tail(self, rng):
        logits = rng.standard_normal(10)
        probs = logits_to_probs(logits, SamplerConfig(greedy=False, top_k=3))
        assert (probs > 0).sum() == 3
        assert probs.sum() == pytest.approx(1.0)

    def test_top_p_keeps_smallest_covering_set(self):
        logits = np.log(np.array([0.5, 0.3, 0.15, 0.05]))
        probs = logits_to_probs(logits, SamplerConfig(greedy=False, top_p=0.7))
        assert (probs > 0).sum() == 2
        assert probs.sum() == pytest.approx(1.0)

    def test_top_p_one_keeps_all(self, rng):
        logits = rng.standard_normal(6)
        probs = logits_to_probs(logits, SamplerConfig(greedy=False, top_p=1.0))
        assert (probs > 0).all()


class TestSampler:
    def test_greedy_deterministic(self, rng):
        sampler = Sampler(SamplerConfig(greedy=True), rng=rng)
        logits = np.array([0.0, 5.0, 1.0])
        assert sampler.sample(logits) == 1

    def test_sampling_respects_distribution(self):
        sampler = Sampler(SamplerConfig(greedy=False), rng=np.random.default_rng(0))
        logits = np.log(np.array([0.8, 0.2]))
        draws = [sampler.sample(logits) for _ in range(2000)]
        assert np.mean(np.asarray(draws) == 0) == pytest.approx(0.8, abs=0.05)


class TestGreedyVerify:
    def make_logits(self, argmaxes, vocab=10):
        rows = np.zeros((len(argmaxes), vocab))
        for i, a in enumerate(argmaxes):
            rows[i, a] = 5.0
        return rows

    def test_full_acceptance_emits_bonus(self, rng):
        cfg = SamplerConfig(greedy=True)
        draft = [3, 4, 5]
        target = self.make_logits([3, 4, 5, 6])
        out = speculative_verify(draft, np.zeros((3, 10)), target, cfg, rng)
        assert out.accepted == (3, 4, 5)
        assert out.next_token == 6
        assert out.all_accepted
        assert out.tokens_emitted == 4

    def test_first_mismatch_truncates(self, rng):
        cfg = SamplerConfig(greedy=True)
        draft = [3, 9, 5]
        target = self.make_logits([3, 4, 5, 6])
        out = speculative_verify(draft, np.zeros((3, 10)), target, cfg, rng)
        assert out.accepted == (3,)
        assert out.next_token == 4
        assert not out.all_accepted
        assert out.tokens_emitted == 2

    def test_zero_acceptance(self, rng):
        cfg = SamplerConfig(greedy=True)
        out = speculative_verify(
            [9], np.zeros((1, 10)), self.make_logits([0, 1]), cfg, rng
        )
        assert out.accepted == ()
        assert out.n_accepted == 0
        assert out.next_token == 0

    def test_row_count_validation(self, rng):
        cfg = SamplerConfig(greedy=True)
        with pytest.raises(DecodingError):
            speculative_verify([1, 2], np.zeros((2, 10)), self.make_logits([1, 2]), cfg, rng)
        with pytest.raises(DecodingError):
            speculative_verify([1], np.zeros((2, 10)), self.make_logits([1, 2]), cfg, rng)


class TestSpeculativeSamplingLossless:
    def test_marginal_matches_target(self):
        """One-position speculative sampling must reproduce the target
        distribution exactly, whatever the draft distribution is."""
        gen = np.random.default_rng(7)
        vocab = 5
        target_logits = gen.standard_normal(vocab) * 1.5
        draft_probs = gen.dirichlet(np.ones(vocab))
        cfg = SamplerConfig(greedy=False)
        target_probs = logits_to_probs(target_logits, cfg)

        counts = np.zeros(vocab)
        trials = 6000
        for _ in range(trials):
            draft_token = int(gen.choice(vocab, p=draft_probs))
            out = speculative_verify(
                [draft_token],
                draft_probs[None, :],
                np.stack([target_logits, target_logits]),
                cfg,
                gen,
            )
            emitted = out.accepted[0] if out.accepted else out.next_token
            counts[emitted] += 1
        empirical = counts / trials
        assert np.abs(empirical - target_probs).max() < 0.03

    def test_identical_distributions_accept_almost_always(self):
        gen = np.random.default_rng(1)
        vocab = 4
        logits = gen.standard_normal(vocab)
        cfg = SamplerConfig(greedy=False)
        probs = logits_to_probs(logits, cfg)
        accepted = 0
        for _ in range(500):
            token = int(gen.choice(vocab, p=probs))
            out = speculative_verify([token], probs[None], np.stack([logits, logits]), cfg, gen)
            accepted += out.n_accepted
        assert accepted == 500


class TestSamplerSeedPlumbing:
    """Regression: the default Sampler RNG is derived, never OS entropy."""

    def test_default_samplers_are_identical_across_constructions(self):
        cfg = SamplerConfig(greedy=False, temperature=1.3)
        logits = np.random.default_rng(7).standard_normal((50, 32))
        a = [Sampler(cfg).sample(row) for row in logits]
        b = [Sampler(cfg).sample(row) for row in logits]
        assert a == b

    def test_same_seed_same_stream_different_seed_diverges(self):
        logits = np.random.default_rng(11).standard_normal((200, 64))
        draws = {}
        for seed in (0, 0, 1):
            sampler = Sampler(SamplerConfig(greedy=False, seed=seed))
            draws.setdefault(seed, []).append(
                [sampler.sample(row) for row in logits])
        assert draws[0][0] == draws[0][1]
        assert draws[0][0] != draws[1][0]

    def test_explicit_rng_still_wins(self):
        cfg = SamplerConfig(greedy=False)
        logits = np.random.default_rng(3).standard_normal((20, 16))
        a = Sampler(cfg, rng=np.random.default_rng(42))
        b = Sampler(cfg, rng=np.random.default_rng(42))
        assert [a.sample(r) for r in logits] == [b.sample(r) for r in logits]
