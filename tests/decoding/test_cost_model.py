"""Cost model tests: profiles, calibration identities, validation."""

import pytest
from dataclasses import replace

from repro.decoding.cost_model import PROFILES, CostModel, CostProfile, get_profile
from repro.errors import ConfigError


class TestProfiles:
    def test_known_profiles(self):
        assert set(PROFILES) == {"sim-7b", "sim-13b"}

    def test_unknown_profile(self):
        with pytest.raises(ConfigError):
            get_profile("sim-1t")

    def test_calibrated_ar_speed(self):
        """Profiles encode the paper's implied AR decode speeds."""
        assert 1000.0 / get_profile("sim-7b").target_step_ms == pytest.approx(31.5)
        assert 1000.0 / get_profile("sim-13b").target_step_ms == pytest.approx(31.7)

    def test_validation_rejects_negative(self):
        bad = replace(get_profile("sim-7b"), draft_step_frac=-0.1)
        with pytest.raises(ConfigError):
            CostModel(bad)

    def test_validation_rejects_zero_step(self):
        bad = replace(get_profile("sim-7b"), target_step_ms=0.0)
        with pytest.raises(ConfigError):
            CostModel(bad)


class TestCostModel:
    @pytest.fixture()
    def cm(self):
        return CostModel(get_profile("sim-7b"))

    def test_verify_cheaper_than_sequential(self, cm):
        """Parallel verification of gamma tokens must beat gamma AR steps."""
        for gamma in (2, 3, 5, 8):
            assert cm.target_verify(gamma) < gamma * cm.target_step()

    def test_verify_monotonic_in_tokens(self, cm):
        costs = [cm.target_verify(g) for g in range(1, 8)]
        assert all(a < b for a, b in zip(costs, costs[1:]))

    def test_verify_needs_tokens(self, cm):
        with pytest.raises(ConfigError):
            cm.target_verify(0)

    def test_draft_step_cheaper_than_target(self, cm):
        assert cm.draft_step() < cm.target_step()

    def test_aasd_step_grows_with_kv(self, cm):
        short = cm.aasd_step(kv_len=40)
        long = cm.aasd_step(kv_len=120)
        assert long > short

    def test_aasd_reference_kv_flat_region(self, cm):
        ref = cm.profile.aasd_reference_kv
        assert cm.aasd_step(0) == cm.aasd_step(ref)

    def test_aasd_step_rejects_negative(self, cm):
        with pytest.raises(ConfigError):
            cm.aasd_step(-1)

    def test_draft_sync_zero_tokens_free(self, cm):
        assert cm.draft_sync(0) == 0.0

    def test_block_cost_identity(self, cm):
        """The calibration identity used in DESIGN.md: with tau ~ 2.72 and
        gamma = 3, omega lands near the paper's 2.0x."""
        gamma, tau = 3, 2.72
        block = gamma * cm.aasd_step(50) + cm.target_verify(gamma + 1)
        omega = tau * cm.target_step() / block
        assert 1.7 < omega < 2.3

    def test_13b_step_slower_than_7b(self):
        assert (
            get_profile("sim-13b").target_step_ms
            < get_profile("sim-7b").target_step_ms * 1.01
        )


class TestTreeVerify:
    @pytest.fixture()
    def cm(self):
        return CostModel(get_profile("sim-7b"))

    def test_prices_tree_node_count_like_linear_rows(self, cm):
        """A chain of depth gamma costs exactly target_verify(gamma + 1):
        the billed quantity is fed rows, not gamma * branch."""
        for rows in (2, 4, 8, 13):
            assert cm.tree_verify(rows) == cm.target_verify(rows)

    def test_rejects_empty_feed(self, cm):
        with pytest.raises(ConfigError):
            cm.tree_verify(0)

    def test_monotonic_in_nodes(self, cm):
        costs = [cm.tree_verify(n) for n in range(1, 10)]
        assert all(a < b for a, b in zip(costs, costs[1:]))

    def test_batched_reduces_to_solo_at_b1(self, cm):
        for rows in (2, 5, 9):
            assert cm.batched_tree_verify([rows]) == cm.tree_verify(rows)

    def test_batched_matches_batched_verify(self, cm):
        """Tree rounds reuse the packed-verify pricing row-for-row, so a
        packed round of trees bills each fed node exactly once."""
        feeds = [3, 7, 2]
        assert cm.batched_tree_verify(feeds) == cm.batched_verify(feeds)
