"""Cost-accounting identities of the decoders.

The simulated-time metrics are only as good as the charging discipline, so
these tests recompute expected charges from the cost model and the recorded
block structure.
"""

import numpy as np
import pytest

from repro.core import AASDDraftHead, AASDEngine, AASDEngineConfig, DraftHeadConfig
from repro.data.tasks import make_dataset
from repro.decoding import (
    AutoregressiveDecoder,
    CostModel,
    LlamaTextDraft,
    SpeculativeDecoder,
    get_profile,
)
from repro.models.config import LlamaConfig, LlavaConfig, VisionConfig
from repro.models.llama import MiniLlama
from repro.models.llava import MiniLlava


@pytest.fixture(scope="module")
def setup(tokenizer):
    gen = np.random.default_rng(0)
    vocab = tokenizer.vocab_size
    target = MiniLlava(
        LlavaConfig(
            llama=LlamaConfig(vocab_size=vocab, dim=16, n_layers=1, n_heads=2, mlp_hidden=24),
            vision=VisionConfig(image_size=48, patch_size=16, dim=8, n_layers=1, n_heads=2, mlp_hidden=16),
        ),
        rng=gen,
    )
    draft = MiniLlama(
        LlamaConfig(vocab_size=vocab, dim=16, n_layers=1, n_heads=2, mlp_hidden=24), rng=gen
    )
    head = AASDDraftHead(
        DraftHeadConfig(
            vocab_size=vocab, dim=16, n_heads=2, mlp_hidden=24,
            n_vision_tokens=9, k_compressed=3,
        ),
        rng=gen,
    )
    cm = CostModel(get_profile("sim-7b"))
    sample = make_dataset("coco-sim", 1, seed=4)[0]
    return dict(target=target, draft=draft, head=head, cm=cm,
                sample=sample, tokenizer=tokenizer)


class TestAutoregressiveAccounting:
    def test_exact_charge(self, setup):
        cm = setup["cm"]
        ar = AutoregressiveDecoder(
            setup["target"], setup["tokenizer"], cm, max_new_tokens=11
        )
        rec = ar.decode(setup["sample"])
        expected = cm.target_prefill() + (rec.n_tokens - 1) * cm.target_step()
        assert rec.sim_time_ms == pytest.approx(expected)
        assert rec.n_target_forwards == rec.n_tokens


class TestSpeculativeAccounting:
    def test_forward_counts(self, setup):
        sd = SpeculativeDecoder(
            setup["target"], LlamaTextDraft(setup["draft"]),
            setup["tokenizer"], setup["cm"], gamma=3, max_new_tokens=12,
        )
        rec = sd.decode(setup["sample"])
        # One target forward per verify block plus the prefill.
        assert rec.n_target_forwards == len(rec.blocks) + 1

    def test_charge_decomposition(self, setup):
        cm = setup["cm"]
        gamma = 3
        sd = SpeculativeDecoder(
            setup["target"], LlamaTextDraft(setup["draft"]),
            setup["tokenizer"], cm, gamma=gamma, max_new_tokens=12,
        )
        rec = sd.decode(setup["sample"])
        n_blocks = len(rec.blocks)
        n_full = sum(1 for b in rec.blocks if b.n_accepted == b.n_draft)
        expected = (
            cm.target_prefill()
            + cm.draft_prefill()
            + n_blocks * (gamma * cm.draft_step() + cm.target_verify(gamma + 1))
            + n_full * cm.draft_step()  # cache-sync forward on full acceptance
        )
        assert rec.sim_time_ms == pytest.approx(expected)


class TestAASDAccounting:
    def test_forward_counts_and_bounds(self, setup):
        cm = setup["cm"]
        gamma = 3
        engine = AASDEngine(
            setup["target"], setup["head"], setup["tokenizer"], cm,
            AASDEngineConfig(gamma=gamma, max_new_tokens=12),
        )
        rec = engine.decode(setup["sample"])
        assert rec.n_target_forwards == len(rec.blocks) + 1

        n_blocks = len(rec.blocks)
        fixed = cm.target_prefill() + cm.projector() + n_blocks * cm.target_verify(gamma + 1)
        # Draft steps attend to a KV whose length grows within a generation;
        # bound it by the shortest and longest possible spans.
        min_step = cm.aasd_step(0)
        max_step = cm.aasd_step(10_000)
        assert fixed + n_blocks * gamma * min_step <= rec.sim_time_ms
        assert rec.sim_time_ms <= fixed + n_blocks * gamma * max_step

    def test_termination_contract(self, setup):
        engine = AASDEngine(
            setup["target"], setup["head"], setup["tokenizer"], setup["cm"],
            AASDEngineConfig(gamma=4, max_new_tokens=9),
        )
        rec = engine.decode(setup["sample"])
        eos = setup["tokenizer"].vocab.eos_id
        assert rec.token_ids[-1] == eos or rec.n_tokens == 9
        assert eos not in rec.token_ids[:-1]
