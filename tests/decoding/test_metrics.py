"""Metric aggregation tests (omega, alpha, tau, delta)."""

import pytest

from repro.decoding.metrics import BlockRecord, DecodeRecord, aggregate_metrics
from repro.errors import DecodingError


def record(tokens, sim_ms, blocks=(), wall=0.0):
    return DecodeRecord(
        token_ids=list(range(tokens)),
        sim_time_ms=sim_ms,
        wall_time_s=wall,
        blocks=list(blocks),
    )


class TestBlockRecord:
    def test_valid(self):
        b = BlockRecord(n_draft=3, n_accepted=2, n_emitted=3)
        assert b.n_accepted == 2

    def test_invalid_acceptance(self):
        with pytest.raises(DecodingError):
            BlockRecord(n_draft=3, n_accepted=4, n_emitted=5)
        with pytest.raises(DecodingError):
            BlockRecord(n_draft=3, n_accepted=-1, n_emitted=0)


class TestAggregate:
    def test_walltime_speedup(self):
        blocks = [BlockRecord(3, 3, 4)]
        sd = [record(8, sim_ms=100.0, blocks=blocks)]
        ar = [record(8, sim_ms=250.0)]
        report = aggregate_metrics(sd, ar)
        assert report.walltime_speedup == pytest.approx(2.5)

    def test_acceptance_rate_is_block_mean(self):
        blocks = [BlockRecord(4, 4, 5), BlockRecord(4, 0, 1)]
        sd = [record(6, 10.0, blocks)]
        ar = [record(6, 10.0)]
        report = aggregate_metrics(sd, ar)
        assert report.acceptance_rate == pytest.approx(0.5)

    def test_block_efficiency_mean_emitted(self):
        blocks = [BlockRecord(3, 3, 4), BlockRecord(3, 1, 2)]
        sd = [record(6, 10.0, blocks)]
        ar = [record(6, 10.0)]
        assert aggregate_metrics(sd, ar).block_efficiency == pytest.approx(3.0)

    def test_decoding_speed_tokens_per_second(self):
        blocks = [BlockRecord(3, 2, 3)]
        sd = [record(10, sim_ms=500.0, blocks=blocks)]
        ar = [record(10, sim_ms=1000.0)]
        report = aggregate_metrics(sd, ar)
        assert report.decoding_speed == pytest.approx(20.0)
        assert report.ar_decoding_speed == pytest.approx(10.0)

    def test_multiple_samples_pool_blocks(self):
        sd = [
            record(4, 50.0, [BlockRecord(2, 2, 3)]),
            record(4, 50.0, [BlockRecord(2, 0, 1)]),
        ]
        ar = [record(4, 100.0), record(4, 100.0)]
        report = aggregate_metrics(sd, ar)
        assert report.acceptance_rate == pytest.approx(0.5)
        assert report.n_samples == 2
        assert report.n_tokens_sd == 8

    def test_row_keys(self):
        sd = [record(4, 50.0, [BlockRecord(2, 1, 2)])]
        ar = [record(4, 100.0)]
        row = aggregate_metrics(sd, ar).row()
        assert set(row) == {"omega", "alpha", "tau", "delta"}

    def test_wall_speedup_nan_when_unmeasured(self):
        sd = [record(4, 50.0, [BlockRecord(2, 1, 2)])]
        ar = [record(4, 100.0)]
        report = aggregate_metrics(sd, ar)
        assert report.wall_speedup_raw != report.wall_speedup_raw  # NaN

    def test_mismatched_lengths_raise(self):
        with pytest.raises(DecodingError):
            aggregate_metrics([record(1, 1.0, [BlockRecord(1, 0, 1)])], [])

    def test_empty_raises(self):
        with pytest.raises(DecodingError):
            aggregate_metrics([], [])

    def test_no_blocks_raises(self):
        with pytest.raises(DecodingError):
            aggregate_metrics([record(1, 1.0)], [record(1, 1.0)])
