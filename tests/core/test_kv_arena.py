"""Unit tests for the KV arena storage layer (``repro.core.kv_arena``).

Covers the arena contract directly (growth, truncate, cached views,
copy-on-write forks, stats accounting) plus the zero-copy regression
guarantees for the two caches built on top: ``KVCache.layer`` and
``HybridKVCache.gather`` must return *views* — the same objects across
repeated calls, invalidated only by mutation.
"""

import numpy as np
import pytest

from repro.core.hybrid_cache import SEGMENT_TEXT, SEGMENT_VISION, HybridKVCache
from repro.core.kv_arena import MIN_CAPACITY, Arena, ArenaStats, combined_stats
from repro.errors import ShapeError
from repro.models.kv_cache import KVCache


def _tokens(n, h=2, dh=4, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((1, h, n, dh)).astype(np.float32)


def _arena(stats=None):
    return Arena((1, 2, 0, 4), axis=2, dtype=np.float32, stats=stats)


class TestArena:
    def test_append_and_view(self):
        a = _arena()
        x = _tokens(3)
        a.append(x)
        assert len(a) == 3
        np.testing.assert_array_equal(a.view(), x)

    def test_append_validates_off_axis_shape(self):
        a = _arena()
        a.append(_tokens(1))
        with pytest.raises(ShapeError):
            a.append(np.zeros((1, 3, 1, 4), dtype=np.float32))
        with pytest.raises(ShapeError):
            a.append(np.zeros((1, 2, 4), dtype=np.float32))

    def test_growth_is_amortized_doubling(self):
        stats = ArenaStats()
        a = _arena(stats)
        for _ in range(MIN_CAPACITY + 1):
            a.append(_tokens(1))
        assert a.capacity >= MIN_CAPACITY * 2
        assert stats.grow_events >= 1
        # Doubling: growth count is logarithmic, not linear, in appends.
        assert stats.grow_events <= 8

    def test_truncate_is_pointer_only(self):
        a = _arena()
        a.append(_tokens(6))
        buf_before = a.view().base
        a.truncate(2)
        assert len(a) == 2
        assert a.view().base is buf_before
        with pytest.raises(ShapeError):
            a.truncate(3)    # cannot grow via truncate
        with pytest.raises(ShapeError):
            a.truncate(-1)

    def test_append_after_truncate_overwrites(self):
        a = _arena()
        a.append(_tokens(4, seed=1))
        a.truncate(2)
        fresh = _tokens(3, seed=2)
        a.append(fresh)
        assert len(a) == 5
        np.testing.assert_array_equal(a.view()[:, :, 2:, :], fresh)

    def test_view_is_cached_until_mutation(self):
        a = _arena()
        a.append(_tokens(2))
        v1 = a.view()
        assert a.view() is v1            # identity-stable between mutations
        assert v1.base is not None       # a view into the arena buffer, not a copy
        a.append(_tokens(1))
        assert a.view() is not v1        # append invalidates
        v2 = a.view()
        a.truncate(1)
        assert a.view() is not v2        # truncate invalidates

    def test_fork_shares_until_owner_appends_past_watermark(self):
        a = _arena()
        a.append(_tokens(3, seed=3))
        fork = a.fork()
        np.testing.assert_array_equal(fork.view(), a.view())
        snapshot = fork.view().copy()
        # Owner appends into shared slack beyond the fork's watermark:
        # legal in place, invisible to the fork.
        a.append(_tokens(2, seed=4))
        assert len(fork) == 3
        np.testing.assert_array_equal(fork.view(), snapshot)

    def test_fork_write_detaches(self):
        a = _arena()
        a.append(_tokens(3, seed=5))
        fork = a.fork()
        fork.append(_tokens(1, seed=6))    # fork must copy out, not clobber
        a.append(_tokens(1, seed=7))
        assert len(a) == len(fork) == 4
        assert not np.array_equal(a.view(), fork.view())
        np.testing.assert_array_equal(a.view()[:, :, :3, :], fork.view()[:, :, :3, :])

    def test_owner_rollback_below_watermark_relocates(self):
        a = _arena()
        a.append(_tokens(4, seed=8))
        fork = a.fork()
        snapshot = fork.view().copy()
        a.truncate(2)
        a.append(_tokens(2, seed=9))       # would overwrite fork's view in place
        np.testing.assert_array_equal(fork.view(), snapshot)

    def test_stats_accounting(self):
        stats = ArenaStats()
        a = _arena(stats)
        x = _tokens(2)
        a.append(x)
        assert stats.bytes_copied >= x.nbytes
        assert stats.peak_tokens == 2
        a.truncate(0)
        assert stats.peak_tokens == 2      # peak is monotone

    def test_combined_stats(self):
        kv = KVCache(n_layers=1)
        kv.append(0, _tokens(2), _tokens(2))
        hybrid = HybridKVCache(n_heads=2, head_dim=4)
        hybrid.append_draft(_tokens(1), _tokens(1), np.array([0]))
        total = combined_stats(kv, hybrid, None, object())
        assert total.bytes_copied == (
            kv.arena_stats().bytes_copied + hybrid.arena_stats().bytes_copied
        )
        assert total.peak_tokens == max(
            kv.arena_stats().peak_tokens, hybrid.arena_stats().peak_tokens
        )


class TestKVCacheViews:
    """Regression: ``layer``/``positions`` are views, not copies."""

    def test_layer_returns_cached_views(self):
        cache = KVCache(n_layers=2)
        for layer in range(2):
            cache.append(layer, _tokens(3), _tokens(3))
        cache.extend_positions(np.arange(3))
        k1, v1 = cache.layer(1)
        k2, v2 = cache.layer(1)
        assert k1 is k2 and v1 is v2     # no per-call allocation
        assert k1.base is not None       # aliases arena storage
        assert cache.positions is cache.positions

    def test_mutation_invalidates_views(self):
        cache = KVCache(n_layers=1)
        cache.append(0, _tokens(3), _tokens(3))
        k1, _ = cache.layer(0)
        cache.append(0, _tokens(1), _tokens(1))
        k2, _ = cache.layer(0)
        assert k2 is not k1
        assert k2.shape[2] == 4
        cache.truncate(2)
        k3, _ = cache.layer(0)
        assert k3 is not k2
        assert k3.shape[2] == 2


class TestHybridGatherViews:
    """Regression: ``gather`` is zero-copy with a memoized blocked row."""

    @staticmethod
    def _cache():
        cache = HybridKVCache(n_heads=2, head_dim=4)
        cache.append_context(_tokens(2), _tokens(2), np.arange(2), SEGMENT_VISION)
        cache.append_context(_tokens(3), _tokens(3), np.arange(2, 5), SEGMENT_TEXT)
        return cache

    def test_gather_returns_cached_views(self):
        cache = self._cache()
        first = cache.gather()
        second = cache.gather()
        for a, b in zip(first, second):
            assert a is b
        assert first[0].base is not None

    def test_blocked_row_memoized_per_ablation(self):
        cache = self._cache()
        plain = cache.gather()[3]
        no_img = cache.gather(disable_image_kv=True)[3]
        assert cache.gather(disable_image_kv=True)[3] is no_img
        assert no_img is not plain
        assert no_img[:2].all() and not no_img[2:].any()

    def test_mutation_invalidates_gather(self):
        cache = self._cache()
        k1 = cache.gather()[0]
        blocked1 = cache.gather(disable_text_kv=True)[3]
        cache.append_draft(_tokens(1), _tokens(1), np.array([5]))
        k2, _, _, blocked2 = cache.gather(disable_text_kv=True)
        assert k2 is not k1
        assert blocked2 is not blocked1
        assert k2.shape[2] == 6
        assert not blocked2[5]           # draft entries never blocked
        cache.clear_draft()
        assert cache.gather()[0].shape[2] == 5
