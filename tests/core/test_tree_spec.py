"""Tree-structured speculation: drafting, single-forward verify, commit.

Pins the tentpole contracts of ``repro.decoding.tree`` + the engine's
tree path:

* ``TreeDraft`` serialization invariants and the greedy acceptance walk,
* verification is ONE target forward per round (counted on the model),
* greedy token identity with the autoregressive baseline (losslessness),
* branch-factor-1 trees are bitwise identical to the linear speculative
  path — tokens, simulated time, and forward counts,
* batched tree stepping matches solo tree stepping bitwise,
* the ``tree_ready`` gate (greedy-only, ``supports_tree`` heads only),
* pointer-only commit keeps the target cache exactly in sync.

The world uses dim=96 like the ragged-serving tests: the gemv/gemm
K-reduction divergence only appears at K >= 64, so a smaller world could
hide packing bugs in the tree feeds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AASDDraftHead, AASDEngine, AASDEngineConfig, DraftHeadConfig
from repro.data.tasks import make_dataset
from repro.decoding import AutoregressiveDecoder, CostModel, get_profile
from repro.decoding.adaptive import FixedGamma
from repro.decoding.sampling import SamplerConfig
from repro.decoding.tree import TreeDraft, accept_tree, tree_extra_blocked
from repro.errors import DecodingError
from repro.nn.ragged import tree_blocked
from repro.robustness.faults import FaultyDraftHead

MAX_NEW_TOKENS = 20
N_SAMPLES = 3


@pytest.fixture(scope="module")
def world(tokenizer):
    gen = np.random.default_rng(0)
    vocab = tokenizer.vocab_size
    from repro.models.config import LlamaConfig, LlavaConfig, VisionConfig
    from repro.models.llava import MiniLlava

    target = MiniLlava(
        LlavaConfig(
            llama=LlamaConfig(vocab_size=vocab, dim=96, n_layers=2, n_heads=6,
                              mlp_hidden=128),
            vision=VisionConfig(image_size=48, patch_size=16, dim=32, n_layers=1,
                                n_heads=2, mlp_hidden=48),
        ),
        rng=gen,
    )
    head = AASDDraftHead(
        DraftHeadConfig(
            vocab_size=vocab, dim=96, n_heads=6, mlp_hidden=128,
            n_vision_tokens=9, k_compressed=3,
        ),
        rng=gen,
    )
    cm = CostModel(get_profile("sim-7b"))
    samples = make_dataset("coco-sim", N_SAMPLES, seed=4).samples
    return dict(target=target, head=head, cm=cm, samples=samples, tokenizer=tokenizer)


def _engine(world, seed=7, head=None, **overrides):
    sampler_config = overrides.pop("sampler_config", None)
    return AASDEngine(
        world["target"],
        head if head is not None else world["head"],
        world["tokenizer"], world["cm"],
        AASDEngineConfig(
            gamma=overrides.pop("gamma", 4),
            max_new_tokens=overrides.pop("max_new_tokens", MAX_NEW_TOKENS),
            **overrides,
        ),
        rng=np.random.default_rng(seed),
        sampler_config=sampler_config,
    )


def _tree_engine(world, **overrides):
    overrides.setdefault("tree_speculation", True)
    overrides.setdefault("tree_max_branch", 2)
    overrides.setdefault("tree_max_nodes", 6)
    return _engine(world, **overrides)


def _run(engine, sample, gamma_controller=None):
    session = engine.begin(sample, gamma_controller=gamma_controller)
    while not session.finished:
        engine.step(session)
    return session


class TestTreeDraftUnit:
    def test_chain_properties(self):
        tree = TreeDraft(tokens=(5, 7, 9), parents=(-1, 0, 1), depths=(1, 2, 3))
        assert tree.is_chain and tree.n_nodes == 3 and tree.max_depth == 3
        assert tree.feed_positions(10).tolist() == [10, 11, 12, 13]

    def test_branching_children_rank_order(self):
        #   anchor -> n0 -> n1
        #         \-> n2
        tree = TreeDraft(tokens=(1, 2, 3), parents=(-1, 0, -1), depths=(1, 2, 1))
        assert not tree.is_chain
        assert tree.children() == {-1: [0, 2], 0: [1]}
        # siblings n0 and n2 share the anchor's successor position
        assert tree.feed_positions(4).tolist() == [4, 5, 6, 5]

    def test_serialization_validation(self):
        with pytest.raises(DecodingError):    # arrays disagree
            TreeDraft(tokens=(1,), parents=(-1, 0), depths=(1, 2))
        with pytest.raises(DecodingError):    # parent not before node
            TreeDraft(tokens=(1, 2), parents=(-1, 1), depths=(1, 2))
        with pytest.raises(DecodingError):    # depth inconsistent with parent
            TreeDraft(tokens=(1, 2), parents=(-1, 0), depths=(1, 3))


class TestAcceptTree:
    CFG = SamplerConfig(greedy=True)

    def _logits(self, rows, vocab=8):
        """Logits whose argmax per row is ``rows[i]``."""
        out = np.zeros((len(rows), vocab), dtype=np.float32)
        for i, tok in enumerate(rows):
            out[i, tok] = 5.0
        return out

    def test_chain_full_accept_with_bonus(self):
        tree = TreeDraft(tokens=(3, 4), parents=(-1, 0), depths=(1, 2))
        out = accept_tree(tree, self._logits([3, 4, 6]), self.CFG)
        assert out.path == (0, 1) and out.accepted == (3, 4)
        assert out.next_token == 6 and out.tokens_emitted == 3

    def test_sibling_rescues_rejected_branch(self):
        # anchor's children: n0 (token 3, rank 0) and n2 (token 5);
        # the target prefers 5, so the walk descends the second branch.
        tree = TreeDraft(tokens=(3, 4, 5), parents=(-1, 0, -1), depths=(1, 2, 1))
        out = accept_tree(tree, self._logits([5, 0, 0, 7]), self.CFG)
        assert out.path == (2,) and out.accepted == (5,)
        assert out.next_token == 7    # row 3 = continuation of node 2

    def test_no_match_emits_correction(self):
        tree = TreeDraft(tokens=(3,), parents=(-1,), depths=(1,))
        out = accept_tree(tree, self._logits([6, 1]), self.CFG)
        assert out.path == () and out.n_accepted == 0 and out.next_token == 6

    def test_rejects_non_greedy_config(self):
        tree = TreeDraft(tokens=(3,), parents=(-1,), depths=(1,))
        with pytest.raises(DecodingError):
            accept_tree(tree, self._logits([3, 1]),
                        SamplerConfig(greedy=False, temperature=1.0))

    def test_rejects_misshapen_logits(self):
        tree = TreeDraft(tokens=(3, 4), parents=(-1, 0), depths=(1, 2))
        with pytest.raises(DecodingError):
            accept_tree(tree, self._logits([3, 4]), self.CFG)   # needs 3 rows


class TestTreeExtraBlocked:
    def test_layout(self):
        parents = [-1, 0, -1]
        extra = tree_extra_blocked(parents, n_cache=5)
        assert extra.shape == (4, 9)
        assert not extra[:, :5].any()                    # context stays open
        assert np.array_equal(extra[:, 5:], tree_blocked(parents))

    def test_chain_is_causal_noop(self):
        # For a chain the feed part equals the strict upper triangle the
        # causal rule already imposes, so OR-ing it in changes nothing.
        extra = tree_extra_blocked([-1, 0], n_cache=3)
        assert np.array_equal(extra[:, 3:], np.triu(np.ones((3, 3), bool), k=1))


class TestSingleForwardPerRound:
    def test_solo_verify_is_one_decode_call(self, world, monkeypatch):
        engine = _tree_engine(world)
        assert engine.tree_ready
        session = engine.begin(world["samples"][0])
        calls = []
        original = engine.target.decode
        monkeypatch.setattr(
            engine.target, "decode",
            lambda *a, **kw: calls.append(1) or original(*a, **kw),
        )
        report = engine.step(session)
        assert report.kind == "verify" and report.tree
        assert len(calls) == 1, "tree verification must be a single target forward"
        # feed = anchor + nodes; leaves are never expanded, so there are
        # fewer draft forwards (kv_lens entries) than fed rows.
        assert 2 <= report.feed_size <= 1 + engine.config.tree_max_nodes
        assert len(report.draft_kv_lens) < report.feed_size

    def test_batched_verify_is_one_packed_call(self, world, monkeypatch):
        engine = _tree_engine(world)
        sessions = engine.begin_batch(list(world["samples"]))
        calls = {"decode": 0, "decode_batch": 0}
        orig_decode, orig_batch = engine.target.decode, engine.target.decode_batch
        monkeypatch.setattr(
            engine.target, "decode",
            lambda *a, **kw: calls.__setitem__("decode", calls["decode"] + 1)
            or orig_decode(*a, **kw),
        )
        monkeypatch.setattr(
            engine.target, "decode_batch",
            lambda *a, **kw: calls.__setitem__("decode_batch", calls["decode_batch"] + 1)
            or orig_batch(*a, **kw),
        )
        reports = engine.step_batch(sessions)
        assert all(r.tree for r in reports)
        assert calls["decode_batch"] == 1 and calls["decode"] == 0

    def test_forward_accounting(self, world):
        session = _run(_tree_engine(world), world["samples"][0])
        record = session.record
        # one prefill + one verify per block (no faults in this world)
        assert record.n_target_forwards == 1 + len(record.blocks)
        assert record.n_draft_faults == 0


class TestLosslessness:
    def test_tree_matches_greedy_ar(self, world):
        ar = AutoregressiveDecoder(
            world["target"], world["tokenizer"], world["cm"],
            max_new_tokens=MAX_NEW_TOKENS,
        )
        engine = _tree_engine(world)
        for sample in world["samples"]:
            assert engine.decode(sample).token_ids == ar.decode(sample).token_ids

    def test_wider_trees_still_lossless(self, world):
        ar = AutoregressiveDecoder(
            world["target"], world["tokenizer"], world["cm"],
            max_new_tokens=MAX_NEW_TOKENS,
        )
        engine = _tree_engine(world, tree_max_branch=3, tree_max_nodes=10,
                              tree_entropy_scale=0.5, gamma=5)
        for sample in world["samples"]:
            assert engine.decode(sample).token_ids == ar.decode(sample).token_ids


class TestBranch1Identity:
    def test_bitwise_identical_to_linear_path(self, world):
        for sample in world["samples"]:
            linear_session = _run(_engine(world), sample)
            tree_session = _run(_tree_engine(world, tree_max_branch=1), sample)
            linear, tree = linear_session.record, tree_session.record
            assert list(tree_session.committed) == list(linear_session.committed)
            assert tree.sim_time_ms == linear.sim_time_ms   # exact float equality
            assert tree.n_target_forwards == linear.n_target_forwards
            assert [(b.n_draft, b.n_accepted, b.n_emitted) for b in tree.blocks] == [
                (b.n_draft, b.n_accepted, b.n_emitted) for b in linear.blocks
            ]


class TestBatchedTree:
    def test_batched_matches_solo_bitwise(self, world):
        solo_engine = _tree_engine(world)
        solo = [_run(solo_engine, s) for s in world["samples"]]
        engine = _tree_engine(world)
        sessions = engine.begin_batch(list(world["samples"]))
        for outcome in sessions:
            assert not isinstance(outcome, Exception), outcome
        while any(not s.finished for s in sessions):
            engine.step_batch([s for s in sessions if not s.finished])
        for batched, reference in zip(sessions, solo):
            assert list(batched.committed) == list(reference.committed)
            assert batched.record.sim_time_ms == reference.record.sim_time_ms


class TestTreeGate:
    def test_ready_when_greedy_and_supported(self, world):
        assert _tree_engine(world).tree_ready
        assert not _engine(world).tree_ready    # tree_speculation off

    def test_non_greedy_disables_tree(self, world):
        engine = _tree_engine(
            world, sampler_config=SamplerConfig(greedy=False, temperature=1.0)
        )
        assert not engine.tree_ready

    def test_faulty_wrapper_disables_tree(self, world):
        wrapped = FaultyDraftHead(world["head"], mode="nan-logits", fail_every=10**6)
        engine = _tree_engine(world, head=wrapped)
        assert wrapped.supports_tree is False
        assert not engine.tree_ready
        # and the linear fallback path still decodes losslessly
        ar = AutoregressiveDecoder(
            world["target"], world["tokenizer"], world["cm"],
            max_new_tokens=MAX_NEW_TOKENS,
        )
        sample = world["samples"][0]
        assert engine.decode(sample).token_ids == ar.decode(sample).token_ids

    def test_config_validation(self):
        for bad in (
            dict(tree_max_branch=0),
            dict(tree_max_nodes=0),
            dict(tree_entropy_scale=0.0),
        ):
            with pytest.raises(DecodingError):
                AASDEngineConfig(gamma=3, tree_speculation=True, **bad)


class TestCommitState:
    def test_pointer_commit_tracks_committed_tokens(self, world):
        engine = _tree_engine(world)
        session = engine.begin(world["samples"][0])
        base = session.target_cache.seq_len - len(session.committed)
        while not session.finished:
            engine.step(session)
            assert session.target_cache.seq_len == base + len(session.committed)
        # cache positions are the contiguous committed range
        positions = session.target_cache.positions
        assert positions[-1] == positions[0] + session.target_cache.seq_len - 1

    def test_gamma_controller_sees_tree_depth(self, world):
        # FixedGamma keeps gamma constant; the adaptive update must still
        # be called with the tree's max depth (not node count) — pinned by
        # drafting with gamma=2 and checking no block drafts deeper.
        session = _run(_tree_engine(world, gamma=2), world["samples"][0],
                       gamma_controller=FixedGamma(2))
        for block in session.record.blocks:
            assert block.n_accepted <= block.n_draft
