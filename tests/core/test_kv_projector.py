"""KV Projector tests (paper Eq. 3)."""

import numpy as np
import pytest

from repro.core.kv_projector import KVProjector, _pooling_init
from repro.errors import ConfigError, ShapeError
from repro.nn.tensor import Tensor


class TestInit:
    def test_bad_k(self, rng):
        with pytest.raises(ConfigError):
            KVProjector(10, 0, rng=rng)
        with pytest.raises(ConfigError):
            KVProjector(10, 11, rng=rng)

    def test_pooling_init_rows_sum_to_one(self, rng):
        w = _pooling_init(4, 12, rng, noise=0.0)
        assert np.allclose(w.sum(axis=1), 1.0)
        # Block structure: each row covers a distinct contiguous span.
        assert np.allclose(w[0, :3], 1 / 3)
        assert np.allclose(w[0, 3:], 0.0)

    def test_compression_ratio(self, rng):
        proj = KVProjector(36, 8, rng=rng)
        assert proj.compression_ratio == pytest.approx(1 - 8 / 36)


class TestForward:
    def test_shapes(self, rng):
        proj = KVProjector(12, 4, rng=rng)
        k = rng.standard_normal((2, 3, 12, 8)).astype(np.float32)
        v = rng.standard_normal((2, 3, 12, 8)).astype(np.float32)
        k_c, v_c = proj(k, v)
        assert k_c.shape == (2, 3, 4, 8)
        assert v_c.shape == (2, 3, 4, 8)

    def test_wrong_length_raises(self, rng):
        proj = KVProjector(12, 4, rng=rng)
        with pytest.raises(ShapeError):
            proj(np.zeros((1, 2, 10, 8)), np.zeros((1, 2, 10, 8)))

    def test_noise_free_pooling_preserves_constant(self, rng):
        proj = KVProjector(12, 4, rng=rng)
        proj.w_k.data = _pooling_init(4, 12, rng, noise=0.0)
        k = np.full((1, 1, 12, 6), 2.5, dtype=np.float32)
        k_c, _ = proj(k, k)
        assert np.allclose(k_c.data, 2.5, atol=1e-5)

    def test_gradients_reach_projection_weights(self, rng):
        proj = KVProjector(12, 4, rng=rng)
        k = Tensor(rng.standard_normal((1, 2, 12, 8)))
        v = Tensor(rng.standard_normal((1, 2, 12, 8)))
        k_c, v_c = proj(k, v)
        (k_c.sum() + v_c.sum()).backward()
        assert proj.w_k.grad is not None
        assert proj.w_v.grad is not None

    def test_k_and_v_use_distinct_weights(self, rng):
        proj = KVProjector(12, 4, rng=rng)
        same = np.ones((1, 1, 12, 4), dtype=np.float32)
        k_c, v_c = proj(same, same)
        # Different noise in w_k / w_v leads to different compressions.
        assert not np.allclose(k_c.data, v_c.data)
