"""Hybrid KV cache tests: segments, masks, draft lifecycle."""

import numpy as np
import pytest

from repro.core.hybrid_cache import SEGMENT_TEXT, SEGMENT_VISION, HybridKVCache
from repro.errors import ShapeError


def kv(n, heads=2, dh=4, seed=0):
    gen = np.random.default_rng(seed)
    return (
        gen.standard_normal((1, heads, n, dh)).astype(np.float32),
        gen.standard_normal((1, heads, n, dh)).astype(np.float32),
    )


@pytest.fixture()
def cache():
    return HybridKVCache(n_heads=2, head_dim=4)


class TestAppend:
    def test_context_grows(self, cache):
        k, v = kv(3)
        cache.append_context(k, v, np.arange(3), SEGMENT_VISION)
        cache.append_context(*kv(2, seed=1), positions=np.array([10, 11]), segment=SEGMENT_TEXT)
        assert cache.context_len == 5
        assert cache.total_len == 5
        assert cache.segment_counts() == (3, 2)

    def test_draft_grows_and_clears(self, cache):
        cache.append_draft(*kv(2), positions=np.array([5, 6]))
        assert cache.draft_len == 2
        cache.clear_draft()
        assert cache.draft_len == 0
        assert cache.total_len == 0

    def test_bad_segment(self, cache):
        with pytest.raises(ShapeError):
            cache.append_context(*kv(1), positions=np.array([0]), segment=9)

    def test_shape_validation(self, cache):
        k, v = kv(2)
        with pytest.raises(ShapeError):
            cache.append_context(k, v[:, :, :1], np.arange(2), SEGMENT_TEXT)
        with pytest.raises(ShapeError):
            cache.append_context(k, v, np.arange(3), SEGMENT_TEXT)
        with pytest.raises(ShapeError):
            cache.append_context(
                np.zeros((1, 3, 2, 4)), np.zeros((1, 3, 2, 4)), np.arange(2), SEGMENT_TEXT
            )


class TestGather:
    def fill(self, cache):
        cache.append_context(*kv(3, seed=1), positions=np.arange(3), segment=SEGMENT_VISION)
        cache.append_context(*kv(2, seed=2), positions=np.array([3, 4]), segment=SEGMENT_TEXT)
        cache.append_draft(*kv(2, seed=3), positions=np.array([5, 6]))

    def test_concatenation_order(self, cache):
        self.fill(cache)
        k, v, pos, blocked = cache.gather()
        assert k.shape == (1, 2, 7, 4)
        assert np.array_equal(pos, [0, 1, 2, 3, 4, 5, 6])
        assert not blocked.any()

    def test_disable_image(self, cache):
        self.fill(cache)
        _, _, _, blocked = cache.gather(disable_image_kv=True)
        assert blocked[:3].all()
        assert not blocked[3:].any()

    def test_disable_text(self, cache):
        self.fill(cache)
        _, _, _, blocked = cache.gather(disable_text_kv=True)
        assert not blocked[:3].any()
        assert blocked[3:5].all()
        assert not blocked[5:].any()  # draft segment never blocked

    def test_disable_both(self, cache):
        self.fill(cache)
        _, _, _, blocked = cache.gather(disable_image_kv=True, disable_text_kv=True)
        assert blocked[:5].all()
        assert not blocked[5:].any()

    def test_empty_cache_gather(self, cache):
        k, v, pos, blocked = cache.gather()
        assert k.shape == (1, 2, 0, 4)
        assert pos.size == 0
