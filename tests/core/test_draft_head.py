"""AASD draft head: config validation and the train/inference alignment
property that is the paper's core claim."""

import numpy as np
import pytest

from repro.core.draft_head import AASDDraftHead, DraftHeadConfig
from repro.core.hybrid_cache import SEGMENT_TEXT, SEGMENT_VISION, HybridKVCache
from repro.errors import ConfigError, ShapeError
from repro.models.config import LlamaConfig
from repro.models.llama import MiniLlama
from repro.nn.tensor import no_grad


@pytest.fixture()
def config():
    return DraftHeadConfig(
        vocab_size=50, dim=24, n_heads=2, mlp_hidden=32,
        n_vision_tokens=6, k_compressed=3,
    )


@pytest.fixture()
def head(config, rng):
    return AASDDraftHead(config, rng=rng)


def fake_target_kv(rng, n_total, heads=2, dh=12):
    k = rng.standard_normal((1, heads, n_total, dh)).astype(np.float32)
    v = rng.standard_normal((1, heads, n_total, dh)).astype(np.float32)
    return k, v


class TestConfig:
    def test_for_target_matches_geometry(self):
        llama = LlamaConfig(vocab_size=77, dim=96, n_heads=6)
        cfg = DraftHeadConfig.for_target(llama, n_vision_tokens=36)
        assert cfg.dim == 96
        assert cfg.n_heads == 6
        assert cfg.vocab_size == 77
        assert cfg.head_dim == llama.head_dim

    def test_invalid_dim_heads(self):
        with pytest.raises(ConfigError):
            DraftHeadConfig(vocab_size=10, dim=10, n_heads=3)

    def test_invalid_k(self):
        with pytest.raises(ConfigError):
            DraftHeadConfig(vocab_size=10, dim=24, n_heads=2, n_vision_tokens=6, k_compressed=7)

    def test_projector_absent_when_disabled(self, rng):
        cfg = DraftHeadConfig(
            vocab_size=10, dim=24, n_heads=2, n_vision_tokens=6,
            use_kv_projector=False,
        )
        assert AASDDraftHead(cfg, rng=rng).projector is None

    def test_projector_absent_without_target_kv(self, rng):
        cfg = DraftHeadConfig(
            vocab_size=10, dim=24, n_heads=2, n_vision_tokens=6, k_compressed=3,
            use_target_kv=False,
        )
        assert AASDDraftHead(cfg, rng=rng).projector is None


class TestInitFromTarget:
    def test_copies_embedding(self, head, rng):
        llama = MiniLlama(LlamaConfig(vocab_size=50, dim=24, n_heads=2, n_layers=1, mlp_hidden=32), rng=rng)
        head.init_from_target(llama)
        assert np.array_equal(head.embed.weight.data, llama.embed.weight.data)

    def test_shape_mismatch_raises(self, head, rng):
        llama = MiniLlama(LlamaConfig(vocab_size=49, dim=24, n_heads=2, n_layers=1, mlp_hidden=32), rng=rng)
        with pytest.raises(ShapeError):
            head.init_from_target(llama)


class TestTrainInferenceAlignment:
    """T-D Attention training must reproduce inference states exactly."""

    @pytest.mark.parametrize("s", [1, 2, 3])
    def test_depth_s_alignment(self, head, rng, s):
        n_vis, t_text = 6, 7
        text_ids = rng.integers(0, 50, size=(1, t_text))
        k_full, v_full = fake_target_kv(rng, n_vis + t_text)
        k_vis, v_vis = k_full[:, :, :n_vis], v_full[:, :, :n_vis]
        k_txt, v_txt = k_full[:, :, n_vis:], v_full[:, :, n_vis:]
        i = 4  # query position to check (must satisfy i >= s-1)

        with no_grad():
            train_logits = head.forward_train(
                text_ids, k_txt, v_txt, k_vis, v_vis, s=s, position_offset=n_vis
            )
            hybrid = HybridKVCache(2, 12)
            kc, vc = head.compress_vision(k_vis, v_vis)
            hybrid.append_context(kc.data, vc.data, np.arange(kc.shape[2]), SEGMENT_VISION)
            n_ctx = i - s + 1
            hybrid.append_context(
                k_txt[:, :, :n_ctx], v_txt[:, :, :n_ctx], n_vis + np.arange(n_ctx), SEGMENT_TEXT
            )
            logits = None
            for step in range(s):
                tok = int(text_ids[0, i - s + 1 + step])
                logits = head.step(tok, n_vis + i - s + 1 + step, hybrid)
        assert np.abs(train_logits.data[0, i] - logits).max() < 1e-3

    def test_no_target_kv_variant_is_causal_lm(self, rng):
        cfg = DraftHeadConfig(vocab_size=50, dim=24, n_heads=2, use_target_kv=False, n_vision_tokens=6, k_compressed=3)
        head = AASDDraftHead(cfg, rng=rng)
        ids = rng.integers(0, 50, size=(1, 5))
        with no_grad():
            logits = head.forward_train(ids, None, None, None, None, position_offset=6)
            # inference: self-encode the first 4 tokens as context, step on token 4
            hybrid = HybridKVCache(2, 12)
            k, v = head.self_encode(ids[0, :4], 6 + np.arange(4))
            hybrid.append_context(k, v, 6 + np.arange(4), SEGMENT_TEXT)
            step_logits = head.step(int(ids[0, 4]), 10, hybrid)
        assert np.abs(logits.data[0, 4] - step_logits).max() < 1e-3

    def test_use_target_kv_requires_kv(self, head, rng):
        with pytest.raises(ShapeError):
            head.forward_train(np.array([[1, 2]]), None, None, None, None)

    def test_build_context_requires_target_kv_mode(self, rng):
        cfg = DraftHeadConfig(vocab_size=50, dim=24, n_heads=2, use_target_kv=False, n_vision_tokens=6, k_compressed=3)
        head = AASDDraftHead(cfg, rng=rng)
        with pytest.raises(ShapeError):
            head.build_context(None, HybridKVCache(2, 12))


class TestStep:
    def test_step_appends_draft_kv(self, head, rng):
        hybrid = HybridKVCache(2, 12)
        k_vis, v_vis = fake_target_kv(rng, 6)
        kc, vc = head.compress_vision(k_vis, v_vis)
        with no_grad():
            hybrid.append_context(kc.data, vc.data, np.arange(3), SEGMENT_VISION)
            head.step(5, 10, hybrid)
            head.step(7, 11, hybrid)
        assert hybrid.draft_len == 2

    def test_logits_shape(self, head, rng):
        hybrid = HybridKVCache(2, 12)
        with no_grad():
            k, v = head.self_encode(np.array([1, 2]), np.array([6, 7]))
            hybrid.append_context(k, v, np.array([6, 7]), SEGMENT_TEXT)
            logits = head.step(3, 8, hybrid)
        assert logits.shape == (50,)

    def test_compress_vision_passthrough_without_projector(self, rng):
        cfg = DraftHeadConfig(
            vocab_size=50, dim=24, n_heads=2, n_vision_tokens=6, use_kv_projector=False
        )
        head = AASDDraftHead(cfg, rng=rng)
        k, v = fake_target_kv(rng, 6)
        kc, vc = head.compress_vision(k, v)
        assert np.array_equal(kc.data, k)
        assert kc.shape[2] == 6


class TestTrainability:
    def test_loss_decreases(self, head, rng):
        """A few Adam steps on fixed data must reduce the CE loss."""
        from repro.nn import functional as F
        from repro.nn.optim import Adam
        n_vis, t = 6, 8
        text_ids = rng.integers(0, 50, size=(2, t))
        targets = rng.integers(0, 50, size=(2, t))
        k_full, v_full = fake_target_kv(rng, n_vis + t)
        args = (
            text_ids,
            np.repeat(k_full[:, :, n_vis:], 2, axis=0),
            np.repeat(v_full[:, :, n_vis:], 2, axis=0),
            np.repeat(k_full[:, :, :n_vis], 2, axis=0),
            np.repeat(v_full[:, :, :n_vis], 2, axis=0),
        )
        opt = Adam(head.parameters(), lr=5e-3)
        losses = []
        for _ in range(30):
            opt.zero_grad()
            logits = head.forward_train(*args, s=1, position_offset=n_vis)
            loss = F.cross_entropy(logits, targets)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0] * 0.5
