"""Decode equivalence: arena-backed storage is a pure perf change.

Greedy decoding — solo ``AASDEngine.decode`` and batched
``serve_requests`` — must emit **token-identical** output whether the
engine runs on the arena-backed caches (production) or on the
concatenate-based reference caches from ``repro.core.reference``
(the pre-arena implementations), given identical seeds.  This is the
ISSUE acceptance criterion that the storage rewrite changes cost, never
results.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.core.engine as engine_mod
import repro.models.llama as llama_mod
from repro.core import AASDDraftHead, AASDEngine, AASDEngineConfig, DraftHeadConfig
from repro.core.reference import ReferenceHybridKVCache, ReferenceKVCache
from repro.data.tasks import make_dataset
from repro.decoding import CostModel, get_profile
from repro.models.config import LlamaConfig, LlavaConfig, VisionConfig
from repro.models.llava import MiniLlava
from repro.serving import STATUS_COMPLETED, ServingConfig, serve_requests

MAX_NEW_TOKENS = 20
N_SAMPLES = 4


@pytest.fixture(scope="module")
def world(tokenizer):
    gen = np.random.default_rng(0)
    vocab = tokenizer.vocab_size
    target = MiniLlava(
        LlavaConfig(
            llama=LlamaConfig(vocab_size=vocab, dim=16, n_layers=1, n_heads=2, mlp_hidden=24),
            vision=VisionConfig(image_size=48, patch_size=16, dim=8, n_layers=1,
                                n_heads=2, mlp_hidden=16),
        ),
        rng=gen,
    )
    head = AASDDraftHead(
        DraftHeadConfig(
            vocab_size=vocab, dim=16, n_heads=2, mlp_hidden=24,
            n_vision_tokens=9, k_compressed=3,
        ),
        rng=gen,
    )
    cm = CostModel(get_profile("sim-7b"))
    samples = make_dataset("coco-sim", N_SAMPLES, seed=4).samples
    return dict(target=target, head=head, cm=cm, samples=samples, tokenizer=tokenizer)


def _engine(world, seed=7, gamma=3):
    return AASDEngine(
        world["target"], world["head"], world["tokenizer"], world["cm"],
        AASDEngineConfig(gamma=gamma, max_new_tokens=MAX_NEW_TOKENS),
        rng=np.random.default_rng(seed),
    )


def _with_reference_caches(monkeypatch):
    """Swap both KV stores for the pre-arena reference implementations."""
    monkeypatch.setattr(llama_mod, "KVCache", ReferenceKVCache)
    monkeypatch.setattr(engine_mod, "HybridKVCache", ReferenceHybridKVCache)


def test_solo_decode_token_identical(world, monkeypatch):
    arena_records = [_engine(world).decode(s) for s in world["samples"]]
    _with_reference_caches(monkeypatch)
    reference_records = [_engine(world).decode(s) for s in world["samples"]]
    for arena, reference in zip(arena_records, reference_records):
        assert arena.token_ids == reference.token_ids
        assert arena.text == reference.text
        assert arena.sim_time_ms == pytest.approx(reference.sim_time_ms)


def test_batched_serving_token_identical(world, monkeypatch):
    config = ServingConfig(max_batch_size=4)
    arena_report = serve_requests(_engine(world), world["samples"], config)
    _with_reference_caches(monkeypatch)
    reference_report = serve_requests(_engine(world), world["samples"], config)

    assert arena_report.count(STATUS_COMPLETED) == N_SAMPLES
    assert reference_report.count(STATUS_COMPLETED) == N_SAMPLES
    for arena, reference in zip(arena_report.results, reference_report.results):
        assert arena.record.token_ids == reference.record.token_ids, arena.request_id

    # The arena run accounts its copies; the reference caches are opaque
    # to the stats plumbing (no arena_stats), reporting zero.
    assert arena_report.peak_cache_tokens > 0
    assert reference_report.bytes_copied == 0


@pytest.mark.parametrize("gamma", [1, 5])
def test_gamma_variants_token_identical(world, monkeypatch, gamma):
    """Different block sizes stress different rollback/append patterns."""
    arena_record = _engine(world, gamma=gamma).decode(world["samples"][0])
    _with_reference_caches(monkeypatch)
    reference_record = _engine(world, gamma=gamma).decode(world["samples"][0])
    assert arena_record.token_ids == reference_record.token_ids
