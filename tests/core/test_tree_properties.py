"""Property-based (hypothesis) pins for tree speculation.

Across randomly drawn model weights, gammas, and fault cadences:

* a branch-factor-1 tree is **bitwise** identical to the linear
  speculative path — committed tokens, simulated time, target-forward
  counts, and per-block acceptance all match exactly,
* tree speculation stays lossless (greedy-AR token identity) even when
  the draft head is wrapped in a fault injector (which gates the engine
  back onto the linear fallback path),
* a tree-configured engine under ``force_fallback`` is AR-identical.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.draft_head import AASDDraftHead, DraftHeadConfig
from repro.core.engine import AASDEngine, AASDEngineConfig
from repro.data.tasks import make_dataset
from repro.decoding.autoregressive import AutoregressiveDecoder
from repro.decoding.cost_model import CostModel, get_profile
from repro.models.config import LlamaConfig, LlavaConfig, VisionConfig
from repro.models.llava import MiniLlava
from repro.robustness.faults import FaultyDraftHead

MAX_NEW_TOKENS = 10


def _world(tokenizer, seed):
    gen = np.random.default_rng(seed)
    vocab = tokenizer.vocab_size
    target = MiniLlava(
        LlavaConfig(
            llama=LlamaConfig(vocab_size=vocab, dim=16, n_layers=1, n_heads=2,
                              mlp_hidden=24),
            vision=VisionConfig(image_size=48, patch_size=16, dim=8, n_layers=1,
                                n_heads=2, mlp_hidden=16),
        ),
        rng=gen,
    )
    head = AASDDraftHead(
        DraftHeadConfig(
            vocab_size=vocab, dim=16, n_heads=2, mlp_hidden=24,
            n_vision_tokens=target.n_vision_tokens, k_compressed=3,
        ),
        rng=gen,
    )
    cm = CostModel(get_profile("sim-7b"))
    sample = make_dataset("coco-sim", 1, seed=seed)[0]
    return target, head, cm, sample


def _engine(tokenizer, target, head, cm, gamma, **tree_overrides):
    return AASDEngine(
        target, head, tokenizer, cm,
        AASDEngineConfig(gamma=gamma, max_new_tokens=MAX_NEW_TOKENS, **tree_overrides),
    )


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 1000), gamma=st.integers(1, 4))
def test_branch1_tree_bitwise_equals_linear(seed, gamma, tokenizer):
    target, head, cm, sample = _world(tokenizer, seed)
    linear = _engine(tokenizer, target, head, cm, gamma).decode(sample)
    tree = _engine(
        tokenizer, target, head, cm, gamma,
        tree_speculation=True, tree_max_branch=1, tree_max_nodes=gamma,
    ).decode(sample)
    assert tree.token_ids == linear.token_ids
    assert tree.sim_time_ms == linear.sim_time_ms   # exact float equality
    assert tree.n_target_forwards == linear.n_target_forwards
    assert [(b.n_draft, b.n_accepted, b.n_emitted) for b in tree.blocks] == [
        (b.n_draft, b.n_accepted, b.n_emitted) for b in linear.blocks
    ]


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 1000), gamma=st.integers(1, 4),
       fail_every=st.integers(2, 6))
def test_tree_config_lossless_under_faults(seed, gamma, fail_every, tokenizer):
    target, head, cm, sample = _world(tokenizer, seed)
    ar = AutoregressiveDecoder(target, tokenizer, cm,
                               max_new_tokens=MAX_NEW_TOKENS).decode(sample)
    faulty = FaultyDraftHead(head, mode="nan-logits", fail_every=fail_every)
    sd = _engine(
        tokenizer, target, faulty, cm, gamma,
        tree_speculation=True, tree_max_branch=2, tree_max_nodes=6,
    ).decode(sample)
    assert sd.token_ids == ar.token_ids


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 1000), gamma=st.integers(1, 4),
       branch=st.integers(1, 3))
def test_tree_lossless_and_fallback_ar_identical(seed, gamma, branch, tokenizer):
    target, head, cm, sample = _world(tokenizer, seed)
    ar = AutoregressiveDecoder(target, tokenizer, cm,
                               max_new_tokens=MAX_NEW_TOKENS).decode(sample)
    tree = _engine(
        tokenizer, target, head, cm, gamma,
        tree_speculation=True, tree_max_branch=branch, tree_max_nodes=6,
    ).decode(sample)
    assert tree.token_ids == ar.token_ids
    engine = _engine(
        tokenizer, target, head, cm, gamma,
        tree_speculation=True, tree_max_branch=branch, tree_max_nodes=6,
    )
    session = engine.begin(sample)
    while not session.finished:
        engine.step(session, force_fallback=True)
    engine.finish(session)
    assert session.record.token_ids == ar.token_ids
    assert not session.record.blocks    # speculation never ran
