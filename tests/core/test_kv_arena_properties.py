"""Property tests: arena-backed caches vs. the concatenate reference spec.

Random interleavings of append / truncate / rollback / clone / gather are
driven through the arena-backed :class:`~repro.models.kv_cache.KVCache`
and :class:`~repro.core.hybrid_cache.HybridKVCache` in lock-step with the
pre-arena reference implementations from ``repro.core.reference``; every
observable array must stay element-identical at every step.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hybrid_cache import SEGMENT_TEXT, SEGMENT_VISION, HybridKVCache
from repro.core.reference import ReferenceHybridKVCache, ReferenceKVCache
from repro.models.kv_cache import KVCache

N_LAYERS = 2
N_HEADS = 2
HEAD_DIM = 4

kv_ops = st.lists(
    st.one_of(
        st.tuples(st.just("append"), st.integers(1, 5)),
        st.tuples(st.just("truncate"), st.floats(0.0, 1.0)),
        st.tuples(st.just("clone_and_diverge"), st.integers(1, 3)),
    ),
    min_size=1,
    max_size=30,
)

hybrid_ops = st.lists(
    st.one_of(
        st.tuples(st.just("context"), st.integers(1, 5), st.booleans()),
        st.tuples(st.just("draft"), st.integers(1, 3), st.just(False)),
        st.tuples(st.just("clear"), st.just(0), st.just(False)),
        st.tuples(st.just("gather"), st.just(0), st.booleans()),
    ),
    min_size=1,
    max_size=30,
)


def _block(rng, n):
    k = rng.standard_normal((1, N_HEADS, n, HEAD_DIM)).astype(np.float32)
    v = rng.standard_normal((1, N_HEADS, n, HEAD_DIM)).astype(np.float32)
    return k, v


def _assert_kv_equal(arena: KVCache, ref: ReferenceKVCache):
    assert arena.seq_len == ref.seq_len
    np.testing.assert_array_equal(arena.positions, ref.positions)
    if ref.seq_len:
        for i in range(N_LAYERS):
            for a, b in zip(arena.layer(i), ref.layer(i)):
                np.testing.assert_array_equal(a, b)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), ops=kv_ops)
def test_kv_cache_matches_reference(seed, ops):
    rng = np.random.default_rng(seed)
    arena, ref = KVCache(N_LAYERS), ReferenceKVCache(N_LAYERS)
    forks = []
    pos = 0
    for op, arg in ops:
        if op == "append":
            k, v = _block(rng, arg)
            for layer in range(N_LAYERS):
                arena.append(layer, k, v)
                ref.append(layer, k, v)
            positions = np.arange(pos, pos + arg)
            arena.extend_positions(positions)
            ref.extend_positions(positions)
            pos += arg
        elif op == "truncate":
            new_len = int(round(arg * arena.seq_len))
            arena.truncate(new_len)
            ref.truncate(new_len)
            pos = arena.next_position()
        elif op == "clone_and_diverge" and arena.seq_len:
            # COW snapshot, then both sides keep mutating: the fork pair
            # must stay frozen while the originals move on.
            fork_a, fork_r = arena.clone(), ref.clone()
            k, v = _block(rng, arg)
            for layer in range(N_LAYERS):
                fork_a.append(layer, k, v)
                fork_r.append(layer, k, v)
            forks.append((fork_a, fork_r))
        _assert_kv_equal(arena, ref)
    for fork_a, fork_r in forks:
        _assert_kv_equal(fork_a, fork_r)


def _assert_hybrid_equal(arena: HybridKVCache, ref: ReferenceHybridKVCache,
                         disable_image=False, disable_text=False):
    assert arena.context_len == ref.context_len
    assert arena.draft_len == ref.draft_len
    assert arena.segment_counts() == ref.segment_counts()
    for a, b in zip(
        arena.gather(disable_image, disable_text),
        ref.gather(disable_image, disable_text),
    ):
        np.testing.assert_array_equal(a, b)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), ops=hybrid_ops)
def test_hybrid_cache_matches_reference(seed, ops):
    rng = np.random.default_rng(seed)
    arena = HybridKVCache(N_HEADS, HEAD_DIM)
    ref = ReferenceHybridKVCache(N_HEADS, HEAD_DIM)
    pos = 0
    for op, n, flag in ops:
        if op == "context":
            k, v = _block(rng, n)
            positions = np.arange(pos, pos + n)
            segment = SEGMENT_VISION if flag else SEGMENT_TEXT
            arena.append_context(k, v, positions, segment)
            ref.append_context(k, v, positions, segment)
            pos += n
        elif op == "draft":
            k, v = _block(rng, n)
            positions = np.arange(pos, pos + n)
            arena.append_draft(k, v, positions)
            ref.append_draft(k, v, positions)
            pos += n
        elif op == "clear":
            arena.clear_draft()
            ref.clear_draft()
            pos = arena.total_len
        _assert_hybrid_equal(arena, ref, disable_image=flag, disable_text=not flag)
    _assert_hybrid_equal(arena, ref)
    _assert_hybrid_equal(arena, ref, disable_image=True, disable_text=True)
