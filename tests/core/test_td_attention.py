"""Target-Draft Attention: masks, fused vs naive equivalence, gradients."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.td_attention import (
    naive_target_draft_attention,
    target_draft_attention,
    td_attention_masks,
)
from repro.errors import ShapeError
from repro.nn.tensor import Tensor


def random_inputs(rng, b=1, h=2, n=6, dh=4, n_static=3):
    mk = lambda *s: rng.standard_normal(s).astype(np.float32)
    return (
        mk(b, h, n, dh),      # q
        mk(b, h, n, dh),      # k_target
        mk(b, h, n, dh),      # v_target
        mk(b, h, n, dh),      # k_draft
        mk(b, h, n, dh),      # v_draft
        mk(b, h, n_static, dh),  # k_static
        mk(b, h, n_static, dh),  # v_static
    )


class TestMasks:
    def test_s1_base_case(self):
        """s=1: target history strictly before i, draft key exactly at i."""
        bt, bd = td_attention_masks(4, s=1)
        for i in range(4):
            assert not bt[i, :i].any()       # target j <= i-1 visible
            assert bt[i, i:].all()           # target j >= i blocked
            assert not bd[i, i]              # own key visible
            assert bd[i, :i].all()           # earlier draft keys blocked
            assert bd[i, i + 1 :].all()

    def test_general_s(self):
        n, s = 7, 3
        bt, bd = td_attention_masks(n, s)
        for i in range(n):
            for j in range(n):
                assert bt[i, j] == (j > i - s)
                assert bd[i, j] == (j <= i - s or j > i)

    def test_every_query_sees_at_least_one_key(self):
        for s in range(1, 5):
            bt, bd = td_attention_masks(6, s)
            visible = (~bt) | (~bd)
            assert visible.any(axis=1).all()

    def test_invalid_s(self):
        with pytest.raises(ShapeError):
            td_attention_masks(4, 0)


class TestEquivalence:
    @pytest.mark.parametrize("s", [1, 2, 3, 5])
    def test_fused_matches_naive(self, rng, s):
        q, kt, vt, kd, vd, ks, vs = random_inputs(rng, n=8)
        fused = target_draft_attention(
            Tensor(q), Tensor(kt), Tensor(vt), Tensor(kd), Tensor(vd),
            s=s, k_static=Tensor(ks), v_static=Tensor(vs),
        )
        naive = naive_target_draft_attention(q, kt, vt, kd, vd, s=s, k_static=ks, v_static=vs)
        assert np.abs(fused.data - naive).max() < 1e-5

    def test_without_static(self, rng):
        q, kt, vt, kd, vd, _, _ = random_inputs(rng)
        fused = target_draft_attention(Tensor(q), Tensor(kt), Tensor(vt), Tensor(kd), Tensor(vd), s=2)
        naive = naive_target_draft_attention(q, kt, vt, kd, vd, s=2)
        assert np.abs(fused.data - naive).max() < 1e-5

    def test_batched(self, rng):
        q, kt, vt, kd, vd, ks, vs = random_inputs(rng, b=3, n=5)
        fused = target_draft_attention(
            Tensor(q), Tensor(kt), Tensor(vt), Tensor(kd), Tensor(vd),
            s=1, k_static=Tensor(ks), v_static=Tensor(vs),
        )
        naive = naive_target_draft_attention(q, kt, vt, kd, vd, s=1, k_static=ks, v_static=vs)
        assert np.abs(fused.data - naive).max() < 1e-5


class TestSemantics:
    def test_first_position_sees_only_self_and_static(self, rng):
        """At i=0 with s=1 there is no target history: output must not
        change when target values are perturbed."""
        q, kt, vt, kd, vd, ks, vs = random_inputs(rng)
        base = target_draft_attention(
            Tensor(q), Tensor(kt), Tensor(vt), Tensor(kd), Tensor(vd),
            s=1, k_static=Tensor(ks), v_static=Tensor(vs),
        ).data
        vt2 = vt.copy()
        vt2[:, :, 0, :] += 100.0
        out = target_draft_attention(
            Tensor(q), Tensor(kt), Tensor(vt2), Tensor(kd), Tensor(vd),
            s=1, k_static=Tensor(ks), v_static=Tensor(vs),
        ).data
        assert np.allclose(base[:, :, 0, :], out[:, :, 0, :], atol=1e-5)

    def test_future_draft_keys_invisible(self, rng):
        q, kt, vt, kd, vd, _, _ = random_inputs(rng)
        base = target_draft_attention(Tensor(q), Tensor(kt), Tensor(vt), Tensor(kd), Tensor(vd), s=1).data
        vd2 = vd.copy()
        vd2[:, :, -1, :] += 100.0  # last draft value: only visible to query n-1
        out = target_draft_attention(Tensor(q), Tensor(kt), Tensor(vt), Tensor(kd), Tensor(vd2), s=1).data
        assert np.allclose(base[:, :, :-1, :], out[:, :, :-1, :], atol=1e-5)
        assert not np.allclose(base[:, :, -1, :], out[:, :, -1, :])

    def test_mismatched_lengths_raise(self, rng):
        q, kt, vt, kd, vd, _, _ = random_inputs(rng)
        with pytest.raises(ShapeError):
            target_draft_attention(
                Tensor(q), Tensor(kt[:, :, :3]), Tensor(vt[:, :, :3]), Tensor(kd), Tensor(vd)
            )

    def test_static_without_values_raises(self, rng):
        q, kt, vt, kd, vd, ks, _ = random_inputs(rng)
        with pytest.raises(ShapeError):
            target_draft_attention(
                Tensor(q), Tensor(kt), Tensor(vt), Tensor(kd), Tensor(vd),
                k_static=Tensor(ks),
            )

    def test_gradients_flow_to_all_inputs(self, rng):
        q, kt, vt, kd, vd, ks, vs = random_inputs(rng)
        tensors = [Tensor(a, requires_grad=True) for a in (q, kt, vt, kd, vd, ks, vs)]
        out = target_draft_attention(*tensors[:5], s=1, k_static=tensors[5], v_static=tensors[6])
        (out * out).sum().backward()
        # q, draft K/V, and static K/V must receive gradients; target history
        # also participates (from position s onwards).
        for t in tensors:
            assert t.grad is not None
            assert np.isfinite(t.grad).all()


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10000), n=st.integers(2, 10), s=st.integers(1, 4))
def test_equivalence_property(seed, n, s):
    gen = np.random.default_rng(seed)
    mk = lambda *sh: gen.standard_normal(sh).astype(np.float32)
    q, kt, vt, kd, vd = (mk(1, 2, n, 4) for _ in range(5))
    fused = target_draft_attention(Tensor(q), Tensor(kt), Tensor(vt), Tensor(kd), Tensor(vd), s=s)
    naive = naive_target_draft_attention(q, kt, vt, kd, vd, s=s)
    assert np.abs(fused.data - naive).max() < 1e-4
