"""Packed ragged-batch serving: token identity, gating, edge cases.

The packed engine paths (``begin_batch`` / ``step_batch``) promise
**bitwise** token identity with per-session stepping under greedy
decoding.  The world here uses dim=96 deliberately: the gemv/gemm
K-reduction divergence that makes naive packing lossy only appears at
K >= 64 (``tests/nn/test_ragged.py::TestPackingStability``), so a
small-dim world would pass even with a broken packing scheme.

Also pins: B == 1 and non-packable heads reduce to the solo path, the
``packed_ready`` gate (greedy only, ``supports_packed`` heads only),
per-request fault isolation in batched prefill, mixed per-session
gammas, reference-cache compatibility of the packed path, and rollback
visibility of packed draft blocks through a ``BlockTable`` view.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

import repro.core.engine as engine_mod
import repro.models.llama as llama_mod
from repro.core import AASDDraftHead, AASDEngine, AASDEngineConfig, DraftHeadConfig
from repro.core.kv_arena import BlockTable
from repro.core.reference import ReferenceHybridKVCache, ReferenceKVCache
from repro.data.tasks import make_dataset
from repro.decoding import CostModel, get_profile
from repro.decoding.adaptive import FixedGamma
from repro.decoding.sampling import SamplerConfig
from repro.errors import DecodingError
from repro.models.config import LlamaConfig, LlavaConfig, VisionConfig
from repro.models.llava import MiniLlava
from repro.robustness.faults import FaultyDraftHead

MAX_NEW_TOKENS = 24
N_SAMPLES = 6


@pytest.fixture(scope="module")
def world(tokenizer):
    gen = np.random.default_rng(0)
    vocab = tokenizer.vocab_size
    target = MiniLlava(
        LlavaConfig(
            llama=LlamaConfig(vocab_size=vocab, dim=96, n_layers=2, n_heads=6,
                              mlp_hidden=128),
            vision=VisionConfig(image_size=48, patch_size=16, dim=32, n_layers=1,
                                n_heads=2, mlp_hidden=48),
        ),
        rng=gen,
    )
    head = AASDDraftHead(
        DraftHeadConfig(
            vocab_size=vocab, dim=96, n_heads=6, mlp_hidden=128,
            n_vision_tokens=9, k_compressed=3,
        ),
        rng=gen,
    )
    cm = CostModel(get_profile("sim-7b"))
    samples = make_dataset("coco-sim", N_SAMPLES, seed=4).samples
    return dict(target=target, head=head, cm=cm, samples=samples, tokenizer=tokenizer)


def _engine(world, seed=7, head=None, **overrides):
    sampler_config = overrides.pop("sampler_config", None)
    return AASDEngine(
        world["target"],
        head if head is not None else world["head"],
        world["tokenizer"], world["cm"],
        AASDEngineConfig(
            gamma=overrides.pop("gamma", 3),
            max_new_tokens=overrides.pop("max_new_tokens", MAX_NEW_TOKENS),
            **overrides,
        ),
        rng=np.random.default_rng(seed),
        sampler_config=sampler_config,
    )


def _solo_tokens(world, samples, **overrides):
    engine = _engine(world, **overrides)
    out = []
    for sample in samples:
        session = engine.begin(sample)
        while not session.finished:
            engine.step(session)
        out.append(list(session.committed))
    return out


def _packed_tokens(world, samples, gamma_controllers=None, **overrides):
    engine = _engine(world, **overrides)
    assert engine.packed_ready
    sessions = engine.begin_batch(list(samples), gamma_controllers=gamma_controllers)
    for outcome in sessions:
        assert not isinstance(outcome, Exception), outcome
    while any(not s.finished for s in sessions):
        engine.step_batch([s for s in sessions if not s.finished])
    return [list(s.committed) for s in sessions]


class TestTokenIdentity:
    def test_packed_matches_solo_bitwise(self, world):
        assert _packed_tokens(world, world["samples"]) == _solo_tokens(
            world, world["samples"]
        )

    def test_finished_sessions_drop_out_mid_round(self, world):
        # budgets shrink the batch as short generations finish; the
        # remaining sessions' tokens must be unaffected by the shrink
        engine = _engine(world)
        budgets = [4 + 4 * i for i in range(len(world["samples"]))]
        sessions = engine.begin_batch(
            list(world["samples"]),
            max_new_tokens=budgets,
        )
        while any(not s.finished for s in sessions):
            engine.step_batch([s for s in sessions if not s.finished])
        solo = _solo_tokens(world, world["samples"])
        for session, budget, reference in zip(sessions, budgets, solo):
            assert list(session.committed) == reference[:budget]

    def test_mixed_gammas(self, world):
        gammas = [1, 2, 4, 3, 2, 5][: len(world["samples"])]
        packed = _packed_tokens(
            world, world["samples"],
            gamma_controllers=[FixedGamma(g) for g in gammas],
        )
        engine = _engine(world)
        for sample, gamma, reference in zip(world["samples"], gammas, packed):
            session = engine.begin(sample, gamma_controller=FixedGamma(gamma))
            while not session.finished:
                engine.step(session)
            assert list(session.committed) == reference

    def test_reference_cache_compat(self, world, monkeypatch):
        # the packed path builds caches through the same monkeypatchable
        # names as the solo path, so the pre-arena reference stores must
        # run packed and stay token-identical
        arena = _packed_tokens(world, world["samples"])
        monkeypatch.setattr(llama_mod, "KVCache", ReferenceKVCache)
        monkeypatch.setattr(engine_mod, "HybridKVCache", ReferenceHybridKVCache)
        assert _packed_tokens(world, world["samples"]) == arena


class TestSoloReduction:
    def test_batch_of_one_uses_solo_begin(self, world):
        engine = _engine(world)
        (packed,) = engine.begin_batch([world["samples"][0]])
        solo = _engine(world).begin(world["samples"][0])
        assert list(packed.committed) == list(solo.committed)
        report_packed = engine.step_batch([packed])[0]
        report_solo = _engine(world)
        # a singleton step_batch must behave exactly like step
        session = report_solo.begin(world["samples"][0])
        assert report_packed.kind == report_solo.step(session).kind
        assert list(packed.committed) == list(session.committed)

    def test_step_batch_rejects_finished_session(self, world):
        engine = _engine(world)
        sessions = engine.begin_batch(list(world["samples"][:2]))
        while not sessions[0].finished:
            engine.step_batch([s for s in sessions if not s.finished])
        with pytest.raises(DecodingError):
            engine.step_batch(sessions)


class TestPackedGate:
    def test_greedy_packable_head_is_ready(self, world):
        assert _engine(world).packed_ready

    def test_non_greedy_disables_packing(self, world):
        engine = _engine(
            world, sampler_config=SamplerConfig(greedy=False, temperature=1.0)
        )
        assert not engine.packed_ready

    def test_faulty_head_wrapper_disables_packing(self, world):
        wrapped = FaultyDraftHead(world["head"], mode="nan-logits", fail_every=1000)
        assert not _engine(world, head=wrapped).packed_ready
        # the gate must come from the wrapper itself, not delegation
        assert wrapped.supports_packed is False
        assert wrapped._head.supports_packed is True


class TestFaultIsolation:
    def test_bad_image_faults_only_its_request(self, world):
        bad = dataclasses.replace(
            world["samples"][0], image=np.zeros((8, 8, 3), dtype=np.float32)
        )
        engine = _engine(world)
        outcomes = engine.begin_batch([bad, world["samples"][1]])
        assert isinstance(outcomes[0], Exception)
        assert not isinstance(outcomes[1], Exception)
        solo = _solo_tokens(world, [world["samples"][1]])[0]
        session = outcomes[1]
        while not session.finished:
            engine.step_batch([session])
        assert list(session.committed) == solo


class TestBlockTableRollback:
    def test_packed_draft_rollback_visible_through_view(self, world):
        # speculate a draft block through the packed lockstep path, then
        # reject it: the pointer-decrement rollback must be visible
        # through a BlockTable built over the same hybrid caches
        engine = _engine(world)
        sessions = engine.begin_batch(list(world["samples"][:3]))
        table = BlockTable([s.hybrid for s in sessions])
        before = table.seq_lens()
        engine.step_batch(sessions)
        # every draft block was either committed (context grew) or rolled
        # back; in both cases no speculative entries may linger
        for hybrid, n_before in zip(table.caches, before):
            assert hybrid.draft_len == 0
            assert hybrid.total_len >= n_before
        assert table.seq_lens() == [h.total_len for h in table.caches]
        assert table.cu_seqlens().tolist() == np.cumsum(
            [0] + [h.total_len for h in table.caches]
        ).tolist()

    def test_layer_blocks_are_views(self, world):
        engine = _engine(world)
        sessions = engine.begin_batch(list(world["samples"][:2]))
        table = BlockTable([s.target_cache for s in sessions])
        keys, values = table.layer_blocks(0)
        assert len(keys) == len(values) == 2
        for cache, k in zip(table.caches, keys):
            layer_k, _ = cache.layer(0)
            assert np.shares_memory(np.asarray(k), np.asarray(layer_k))
