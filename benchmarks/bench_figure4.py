"""Regenerates **Figure 4**: is vision information really important?

Disables the image KV or the text KV segment of the hybrid cache at
inference and measures block efficiency.  The paper's finding: text KV is
essential (tau collapses without it) while image KV is a useful bonus.
"""

from __future__ import annotations

import pytest

from repro.eval import build_aasd_engine, grouped_bar_chart, save_svg, render_figure4, save_results
from .conftest import RESULTS_DIR, bench_targets

TARGETS = bench_targets()
GAMMA = 3
VARIANTS = (
    ("full kv", False, False),
    ("no image kv", True, False),
    ("no text kv", False, True),
)
_RESULTS = {}

CASES = [(t, GAMMA, label, ni, nt) for t in TARGETS for label, ni, nt in VARIANTS]


@pytest.mark.parametrize(
    "target,gamma,label,no_img,no_txt", CASES,
    ids=[f"{t}-{l.replace(' ', '-')}" for t, _, l, _, _ in CASES],
)
def test_figure4_bar(benchmark, runner, zoo, target, gamma, label, no_img, no_txt):
    engine = build_aasd_engine(
        zoo, target, gamma, runner.cost_model(target),
        max_new_tokens=runner.config.max_new_tokens,
        disable_image_kv=no_img,
        disable_text_kv=no_txt,
    )
    sample = runner.dataset("coco-sim")[0]
    benchmark.pedantic(lambda: engine.decode(sample), rounds=2, iterations=1)

    report = runner.evaluate(engine, target)
    _RESULTS[(target, gamma, label)] = report.row()
    benchmark.extra_info.update(report.row())


def test_figure4_summary(benchmark, runner):
    assert len(_RESULTS) == len(CASES)
    rendered = benchmark.pedantic(
        lambda: render_figure4(_RESULTS, targets=TARGETS, gammas=(GAMMA,)),
        rounds=1, iterations=1,
    )
    print("\n" + rendered)
    save_results(_RESULTS, RESULTS_DIR / "figure4", rendered=rendered)
    groups = sorted({(t, g) for t, g, _ in _RESULTS})
    series = {
        label: [_RESULTS.get((t, g, label), {}).get("tau", 0.0) for t, g in groups]
        for label in ('full kv', 'no image kv', 'no text kv')
    }
    save_svg(
        grouped_bar_chart(
            'Figure 4: vision vs text KV importance (block efficiency)',
            [f"{t} γ={g}" for t, g in groups],
            series,
            y_label="tau",
        ),
        RESULTS_DIR / "figure4.svg",
    )

    # Paper's finding: tau(full) >= tau(no image KV) >> tau(no text KV).
    for target in TARGETS:
        full = _RESULTS[(target, GAMMA, "full kv")]
        no_img = _RESULTS[(target, GAMMA, "no image kv")]
        no_txt = _RESULTS[(target, GAMMA, "no text kv")]
        assert full["tau"] >= no_img["tau"] * 0.999, target
        assert no_img["tau"] > no_txt["tau"], target
        assert full["tau"] - no_txt["tau"] > full["tau"] - no_img["tau"], target
