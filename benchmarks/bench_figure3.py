"""Regenerates **Figure 3**: ablation on the target model's KV cache.

The paper's bar chart compares walltime speedup with and without reusing
the target's KV in the speculating module; without it the head self-encodes
the context (and has no visual information at all).
"""

from __future__ import annotations

import pytest

from repro.eval import build_aasd_engine, grouped_bar_chart, save_svg, render_figure3, save_results
from .conftest import RESULTS_DIR, bench_targets

TARGETS = bench_targets()
GAMMAS = (3, 5)
_RESULTS = {}

CASES = [
    (t, g, label)
    for t in TARGETS
    for g in GAMMAS
    for label in ("w/o target kv", "w/ target kv")
]


@pytest.mark.parametrize(
    "target,gamma,label", CASES,
    ids=[f"{t}-g{g}-{'tkv' if 'w/ ' in l else 'notkv'}" for t, g, l in CASES],
)
def test_figure3_bar(benchmark, runner, zoo, target, gamma, label):
    engine = build_aasd_engine(
        zoo, target, gamma, runner.cost_model(target),
        max_new_tokens=runner.config.max_new_tokens,
        use_target_kv=(label == "w/ target kv"),
    )
    sample = runner.dataset("coco-sim")[0]
    benchmark.pedantic(lambda: engine.decode(sample), rounds=2, iterations=1)

    report = runner.evaluate(engine, target)
    _RESULTS[(target, gamma, label)] = report.row()
    benchmark.extra_info.update(report.row())


def test_figure3_summary(benchmark, runner):
    assert len(_RESULTS) == len(CASES)
    rendered = benchmark.pedantic(
        lambda: render_figure3(_RESULTS, targets=TARGETS, gammas=GAMMAS),
        rounds=1, iterations=1,
    )
    print("\n" + rendered)
    save_results(_RESULTS, RESULTS_DIR / "figure3", rendered=rendered)
    groups = sorted({(t, g) for t, g, _ in _RESULTS})
    series = {
        label: [_RESULTS.get((t, g, label), {}).get("omega", 0.0) for t, g in groups]
        for label in ('w/o target kv', 'w/ target kv')
    }
    save_svg(
        grouped_bar_chart(
            'Figure 3: ablation on target KV cache (walltime speedup)',
            [f"{t} γ={g}" for t, g in groups],
            series,
            y_label="omega",
        ),
        RESULTS_DIR / "figure3.svg",
    )

    # The figure's claim: reusing the target KV gives a clear walltime win.
    for target in TARGETS:
        for gamma in GAMMAS:
            with_kv = _RESULTS[(target, gamma, "w/ target kv")]
            without = _RESULTS[(target, gamma, "w/o target kv")]
            assert with_kv["omega"] > without["omega"], (target, gamma)
            assert with_kv["alpha"] > without["alpha"], (target, gamma)
