"""Chaos soak benchmark: availability per storm profile.

Runs the four canonical fault storms from :mod:`repro.robustness.chaos`
against a tiny untrained world (faults and scheduling are structural
properties, so training would only slow the soak down) and reports, per
storm: availability, retry/shed/breaker activity, and whether every
resilience invariant held.

Unlike the pytest-benchmark suites in this directory this is a plain
CLI — the chaos CI job runs ``python benchmarks/bench_chaos.py --quick``
and uploads the JSON report as an artifact, so availability regressions
show up as artifact diffs rather than red builds.

Usage::

    PYTHONPATH=src python benchmarks/bench_chaos.py [--quick] [--seed N]
        [--repeats N] [--out results/chaos]

Exit status is non-zero when any storm violates an invariant (the CI job
is ``continue-on-error``, so this marks the job without blocking merges).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core import AASDDraftHead, DraftHeadConfig
from repro.data.corpus import build_reference_texts
from repro.data.tasks import make_dataset
from repro.decoding import CostModel, get_profile
from repro.models.config import LlamaConfig, LlavaConfig, VisionConfig
from repro.models.llava import MiniLlava
from repro.robustness.chaos import ChaosWorld, default_profiles, run_chaos
from repro.tokenizer import WordTokenizer


def build_world(seed: int = 0) -> ChaosWorld:
    """The standard tiny chaos world (mirrors the serving test fixtures)."""
    gen = np.random.default_rng(seed)
    tokenizer = WordTokenizer.from_texts(build_reference_texts())
    vocab = tokenizer.vocab_size
    target = MiniLlava(
        LlavaConfig(
            llama=LlamaConfig(vocab_size=vocab, dim=16, n_layers=1,
                              n_heads=2, mlp_hidden=24),
            vision=VisionConfig(image_size=48, patch_size=16, dim=8,
                                n_layers=1, n_heads=2, mlp_hidden=16),
        ),
        rng=gen,
    )
    head = AASDDraftHead(
        DraftHeadConfig(vocab_size=vocab, dim=16, n_heads=2, mlp_hidden=24,
                        n_vision_tokens=9, k_compressed=3),
        rng=gen,
    )
    return ChaosWorld(
        target=target,
        head=head,
        tokenizer=tokenizer,
        cost_model=CostModel(get_profile("sim-7b")),
        samples=make_dataset("coco-sim", 8, seed=4).samples,
    )


def render(reports) -> str:
    """Human-readable soak table (one row per storm run)."""
    lines = [
        f"{'storm':>16} {'req':>4} {'ok':>4} {'avail':>7} {'retry':>6} "
        f"{'shed':>5} {'breaker':>8} {'sim_ms':>9} {'verdict':>8}",
    ]
    for report in reports:
        for storm in report.storms:
            lines.append(
                f"{storm.profile:>16} {storm.n_requests:>4} "
                f"{storm.n_completed:>4} {storm.availability:>6.0%} "
                f"{storm.n_retries:>6} {storm.n_shed:>5} "
                f"{len(storm.breaker_transitions):>8} {storm.sim_ms:>9.0f} "
                f"{'PASS' if storm.passed else 'FAIL':>8}"
            )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller storms (CI-sized soak)")
    parser.add_argument("--seed", type=int, default=0,
                        help="storm seed (world seed stays fixed)")
    parser.add_argument("--repeats", type=int, default=1,
                        help="soak repetitions; seeds advance per repeat")
    parser.add_argument("--out", type=Path, default=Path("results/chaos"),
                        help="directory for the JSON chaos report")
    args = parser.parse_args(argv)

    world = build_world()
    reports = []
    wall0 = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="chaos-soak-") as tmp:
        for repeat in range(args.repeats):
            profiles = default_profiles(quick=args.quick,
                                        seed=args.seed + repeat)
            reports.append(run_chaos(world, profiles=profiles,
                                     work_dir=Path(tmp)))
    wall_s = time.perf_counter() - wall0

    table = render(reports)
    print(table)

    payload = {
        "quick": args.quick,
        "seed": args.seed,
        "repeats": args.repeats,
        "wall_s": wall_s,
        "passed": all(report.passed for report in reports),
        "runs": [report.to_dict() for report in reports],
    }
    args.out.mkdir(parents=True, exist_ok=True)
    report_path = args.out / "CHAOS_report.json"
    report_path.write_text(json.dumps(payload, indent=2) + "\n")
    (args.out / "CHAOS_report.txt").write_text(table + "\n")
    print(f"\nwrote {report_path} (wall {wall_s:.1f}s)")
    return 0 if payload["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
