"""Kernel microbenchmarks supporting the paper's efficiency claims.

Not a table or figure in the paper, but quantifies Sec. 3.3's argument:
the fused Target-Draft Attention computes the same result as the literal
per-position construction at a fraction of the cost, and the KV projector
shrinks the per-step attention span.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.kv_projector import KVProjector
from repro.core.td_attention import naive_target_draft_attention, target_draft_attention
from repro.nn.tensor import Tensor, no_grad

B, H, N, DH, STATIC = 2, 6, 64, 16, 8


@pytest.fixture(scope="module")
def td_inputs():
    gen = np.random.default_rng(0)
    mk = lambda *s: gen.standard_normal(s).astype(np.float32)
    return dict(
        q=mk(B, H, N, DH), kt=mk(B, H, N, DH), vt=mk(B, H, N, DH),
        kd=mk(B, H, N, DH), vd=mk(B, H, N, DH),
        ks=mk(B, H, STATIC, DH), vs=mk(B, H, STATIC, DH),
    )


def test_td_attention_fused(benchmark, td_inputs):
    i = td_inputs

    def run():
        with no_grad():
            return target_draft_attention(
                Tensor(i["q"]), Tensor(i["kt"]), Tensor(i["vt"]),
                Tensor(i["kd"]), Tensor(i["vd"]), s=2,
                k_static=Tensor(i["ks"]), v_static=Tensor(i["vs"]),
            ).data

    out = benchmark(run)
    assert out.shape == (B, H, N, DH)


def test_td_attention_naive_reference(benchmark, td_inputs):
    i = td_inputs

    def run():
        return naive_target_draft_attention(
            i["q"], i["kt"], i["vt"], i["kd"], i["vd"], s=2,
            k_static=i["ks"], v_static=i["vs"],
        )

    out = benchmark(run)
    assert out.shape == (B, H, N, DH)


def test_kv_projector(benchmark):
    gen = np.random.default_rng(0)
    proj = KVProjector(36, 8, rng=gen)
    k = gen.standard_normal((1, 6, 36, 16)).astype(np.float32)
    v = gen.standard_normal((1, 6, 36, 16)).astype(np.float32)

    def run():
        with no_grad():
            kc, vc = proj(k, v)
        return kc.data

    out = benchmark(run)
    assert out.shape == (1, 6, 8, 16)


def test_draft_head_step(benchmark, zoo):
    """One speculating-module step against a realistic hybrid context."""
    from repro.core.hybrid_cache import SEGMENT_TEXT, SEGMENT_VISION, HybridKVCache

    head = zoo.aasd_head("sim-7b")
    target = zoo.target("sim-7b")
    tok = zoo.tokenizer()
    sample = zoo.eval_dataset("coco-sim", 1)[0]
    prompt = np.asarray([tok.vocab.bos_id] + tok.encode(sample.prompt))
    with no_grad():
        cache, _ = target.prefill(sample.image[None], prompt[None])

    def run():
        hybrid = HybridKVCache(head.config.n_heads, head.config.head_dim)
        with no_grad():
            head.build_context(cache, hybrid)
            return head.step(5, cache.seq_len, hybrid)

    out = benchmark(run)
    assert out.shape == (tok.vocab_size,)


def test_target_decode_step(benchmark, zoo):
    """One target AR step (the latency unit of the cost model)."""
    target = zoo.target("sim-7b")
    tok = zoo.tokenizer()
    sample = zoo.eval_dataset("coco-sim", 1)[0]
    prompt = np.asarray([tok.vocab.bos_id] + tok.encode(sample.prompt))
    with no_grad():
        cache, _ = target.prefill(sample.image[None], prompt[None])
    base_len = cache.seq_len

    def run():
        cache.truncate(base_len)
        with no_grad():
            out = target.decode(np.asarray([[5]]), cache)
        return out.logits.data

    out = benchmark(run)
    assert out.shape[-1] == tok.vocab_size
