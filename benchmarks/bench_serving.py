"""Serving throughput: aggregate tokens/s vs. concurrency (1 / 4 / 16 clients).

Each parametrized case serves the same request set through the
continuous-batching scheduler at one batch width and compares against the
sequential single-request baseline on the *server* simulated clock.  Two
claims are asserted:

* **losslessness** — batched greedy outputs are token-identical to
  sequential decoding per request at every concurrency (batching is a
  scheduling change, not a decoding change);
* **throughput** — aggregate tokens/s at concurrency 16 is at least 2x
  the sequential baseline (memory-bound batched pricing, see the
  "Batched serving" section of ``repro/decoding/cost_model.py``);
* **wall-clock scaling** — host ``wall_tok_per_s`` at concurrency 16 is
  at least 2.5x concurrency 1: the packed ragged-batch rounds
  (``docs/kernels.md``) must win on the *real* clock, not only on the
  simulated one.  Wall times are best-of-3 with engine construction
  hoisted out of the timed region — noise on a shared runner only ever
  *adds* time, so the per-side minimum is the robust estimator of the
  quiet-machine serving cost.  Quiet-machine scaling measures 2.9-3.4x
  (docs/performance.md has the floor analysis: the largest smoke
  target's fused-GEMM floor caps its ratio near 2.9x on this
  single-core runner), so the asserted 2.5x is a regression gate with
  noise headroom, not the headline number — reverting to per-request
  Python loops measures ~1.0x and fails it immediately.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.eval import build_aasd_engine, save_results
from repro.serving import STATUS_COMPLETED, ServingConfig, serve_requests

from .conftest import RESULTS_DIR, bench_targets

TARGETS = bench_targets()
CONCURRENCY = (1, 4, 16)
N_REQUESTS = 16
GAMMA = 3
WALL_PASSES = 3  # best-of-N wall timing; min is the noise-robust estimator
_RESULTS = {}
_SEQUENTIAL = {}

CASES = [(t, c) for t in TARGETS for c in CONCURRENCY]


def _requests(zoo):
    return list(zoo.eval_dataset("coco-sim", N_REQUESTS))


def _engine(zoo, runner, target):
    return build_aasd_engine(
        zoo, target, GAMMA, runner.cost_model(target),
        max_new_tokens=runner.config.max_new_tokens,
    )


@pytest.mark.parametrize("target", TARGETS)
def test_sequential_baseline(benchmark, zoo, runner, target):
    samples = _requests(zoo)

    def run():
        # One engine per pass, built before its timer starts: the wall
        # number is the serving cost, not construction cost.
        engines = [
            [_engine(zoo, runner, target) for _ in samples]
            for _ in range(WALL_PASSES)
        ]
        walls = []
        for pass_engines in engines:
            t0 = time.perf_counter()
            out = [eng.decode(s) for eng, s in zip(pass_engines, samples)]
            walls.append(time.perf_counter() - t0)
        return out, min(walls)

    records, wall_s = benchmark.pedantic(run, rounds=1, iterations=1)
    sim_ms = sum(r.sim_time_ms for r in records)
    tokens = sum(r.n_tokens for r in records)
    _SEQUENTIAL[target] = dict(
        records=records, sim_ms=sim_ms, tokens=tokens, wall_s=wall_s,
    )
    benchmark.extra_info.update(
        {
            "tokens": tokens,
            "sim_ms": sim_ms,
            "tok_per_s": tokens / (sim_ms / 1000.0),
            # End-to-end host throughput: unlike the simulated-clock number
            # this moves with real implementation cost (e.g. KV storage).
            "wall_tok_per_s": tokens / wall_s,
        }
    )


@pytest.mark.parametrize("target,concurrency", CASES,
                         ids=[f"{t}-c{c}" for t, c in CASES])
def test_serving_concurrency(benchmark, zoo, runner, target, concurrency):
    assert target in _SEQUENTIAL, "run the sequential baseline first"
    samples = _requests(zoo)

    def run():
        engines = [_engine(zoo, runner, target) for _ in range(WALL_PASSES)]
        walls = []
        for eng in engines:
            t0 = time.perf_counter()
            out = serve_requests(
                eng, samples, ServingConfig(max_batch_size=concurrency),
            )
            walls.append(time.perf_counter() - t0)
        return out, min(walls)

    report, wall_s = benchmark.pedantic(run, rounds=1, iterations=1)
    baseline = _SEQUENTIAL[target]

    assert report.count(STATUS_COMPLETED) == N_REQUESTS
    # Losslessness under batching: per-request greedy outputs identical to
    # sequential decoding at every concurrency.
    for result, solo in zip(report.results, baseline["records"]):
        assert result.record.token_ids == solo.token_ids, result.request_id

    speedup = baseline["sim_ms"] / report.total_sim_ms
    row = {
        "tok_per_s": report.tokens_per_s,
        "speedup": speedup,
        "sim_ms": report.total_sim_ms,
        "rounds": float(report.n_rounds),
        "max_occupancy": float(report.max_batch_occupancy),
        "wall_tok_per_s": report.total_tokens / wall_s,
        "bytes_copied": float(report.bytes_copied),
    }
    # Request-latency digests (server clock): TTFT / TPOT / E2E percentiles.
    for metric, digest in sorted(report.latency_ms.items()):
        for stat in ("p50", "p95", "p99"):
            row[f"{metric}_{stat}"] = digest[stat]
    _RESULTS[(target, concurrency, "serving")] = row
    benchmark.extra_info.update(row)


def test_serving_summary(runner):
    assert len(_RESULTS) == len(CASES), "run the full parametrized set first"
    lines = [
        f"serving throughput (gamma={GAMMA}, {N_REQUESTS} requests, "
        f"{runner.config.max_new_tokens} max tokens)",
        f"{'target':>10} {'conc':>5} {'tok/s':>9} {'speedup':>8} {'rounds':>7} "
        f"{'wall tok/s':>11} {'ttft p50':>9} {'e2e p95':>9}",
    ]
    for (target, concurrency, _), row in sorted(_RESULTS.items()):
        lines.append(
            f"{target:>10} {concurrency:>5} {row['tok_per_s']:>9.1f} "
            f"{row['speedup']:>8.2f} {int(row['rounds']):>7} "
            f"{row['wall_tok_per_s']:>11.1f} {row.get('ttft_ms_p50', 0.0):>9.1f} "
            f"{row.get('e2e_ms_p95', 0.0):>9.1f}"
        )
    rendered = "\n".join(lines)
    print("\n" + rendered)
    save_results(
        _RESULTS, RESULTS_DIR / "serving", rendered=rendered,
        config={
            "profile": os.environ.get("REPRO_BENCH_PROFILE", "full"),
            "targets": list(TARGETS),
            "concurrency": list(CONCURRENCY),
            "n_requests": N_REQUESTS,
            "gamma": GAMMA,
            "max_new_tokens": runner.config.max_new_tokens,
        },
    )

    for target in TARGETS:
        # concurrency 1 must price exactly like sequential decoding
        assert _RESULTS[(target, 1, "serving")]["speedup"] == pytest.approx(1.0)
        # monotone: wider batches never slow aggregate throughput
        assert (_RESULTS[(target, 4, "serving")]["tok_per_s"]
                >= _RESULTS[(target, 1, "serving")]["tok_per_s"])
        assert (_RESULTS[(target, 16, "serving")]["tok_per_s"]
                >= _RESULTS[(target, 4, "serving")]["tok_per_s"])
        # the headline acceptance criterion: >=2x aggregate tokens/s at 16
        assert _RESULTS[(target, 16, "serving")]["speedup"] >= 2.0, _RESULTS[(target, 16, "serving")]
        # real wall-clock scaling: packed ragged-batch rounds must beat
        # per-session execution on the host clock, not just the simulated
        # server clock (docs/kernels.md; docs/performance.md has the
        # before/after attribution and the GEMM-floor analysis behind
        # the 2.5x gate — quiet-machine scaling is 2.9-3.4x, a
        # per-request-loop regression is ~1.0x)
        wall_1 = _RESULTS[(target, 1, "serving")]["wall_tok_per_s"]
        wall_16 = _RESULTS[(target, 16, "serving")]["wall_tok_per_s"]
        assert wall_16 >= 2.5 * wall_1, (
            f"{target}: wall tok/s scaled only {wall_16 / wall_1:.2f}x "
            f"from c=1 ({wall_1:.1f}) to c=16 ({wall_16:.1f})"
        )
