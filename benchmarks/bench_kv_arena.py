"""KV arena storage vs. the concatenate baseline (append + rollback).

Two workloads, each run against the arena-backed cache and its
concatenate-on-every-append reference from ``repro.core.reference``:

* **kv_cache** — the target-model pattern: per verify block append
  ``gamma + 1`` tokens to every layer, read the last layer, then roll
  back the rejected suffix (``truncate``), repeated until the sequence
  reaches ``T`` tokens.  The reference pays O(T) reallocation per append
  *and* per truncate; the arena memcpys only new tokens and rolls back
  with a pointer decrement.
* **hybrid** — the speculating-module pattern: per block ``gamma`` draft
  steps (``gather`` + ``append_draft``), a final ``gather``, then
  ``clear_draft`` and a context append.  The reference rebuilds the full
  context with five concatenates on every ``gather``.

The summary test times both implementations itself (best-of-N
``perf_counter``) so the headline assertion — **arena >= 5x faster at
T >= 1024** — holds even under ``--benchmark-disable``; the
pytest-benchmark cases exist so the CI perf job's JSON artifact tracks
the same numbers over time.

Knobs: ``REPRO_BENCH_ARENA_TOKENS`` (default 1024; the acceptance bound
is only asserted at >= 1024).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.hybrid_cache import SEGMENT_TEXT, SEGMENT_VISION, HybridKVCache
from repro.core.reference import ReferenceHybridKVCache, ReferenceKVCache
from repro.eval import save_results
from repro.models.kv_cache import KVCache

from .conftest import RESULTS_DIR

T_TOKENS = max(int(os.environ.get("REPRO_BENCH_ARENA_TOKENS", "1024")), 8)
N_LAYERS = 2
N_HEADS = 16
HEAD_DIM = 128
GAMMA = 3
APPEND = GAMMA + 1      # tokens appended per verify block
ROLLBACK = 2            # rejected suffix rolled back per block
N_VISION = 8
MIN_SPEEDUP = 5.0

_RESULTS = {}
_BLOCKS = None


def _blocks():
    """Pregenerated per-block (k, v, positions) arrays, RNG outside timing."""
    global _BLOCKS
    if _BLOCKS is None:
        rng = np.random.default_rng(0)
        n_blocks = (T_TOKENS + APPEND - ROLLBACK - 1) // (APPEND - ROLLBACK)
        _BLOCKS = [
            (
                rng.standard_normal((1, N_HEADS, APPEND, HEAD_DIM)).astype(np.float32),
                rng.standard_normal((1, N_HEADS, APPEND, HEAD_DIM)).astype(np.float32),
                np.arange(i * APPEND, (i + 1) * APPEND, dtype=np.int64),
            )
            for i in range(n_blocks)
        ]
    return _BLOCKS


def run_kv_workload(cache_cls):
    """Append-read-rollback loop on a per-layer cache until T_TOKENS."""
    cache = cache_cls(N_LAYERS)
    for k, v, pos in _blocks():
        for layer in range(N_LAYERS):
            cache.append(layer, k, v)
        cache.extend_positions(pos)
        cache.last_layer()
        cache.truncate(cache.seq_len - ROLLBACK)
    return cache


def run_hybrid_workload(cache_cls):
    """Draft-gather-rollback loop on a hybrid cache until T_TOKENS context."""
    cache = cache_cls(N_HEADS, HEAD_DIM)
    blocks = _blocks()
    vis_k, vis_v, _ = blocks[0]
    vis = vis_k[:, :, :1, :], vis_v[:, :, :1, :]
    cache.append_context(
        np.repeat(vis[0], N_VISION, axis=2),
        np.repeat(vis[1], N_VISION, axis=2),
        np.arange(N_VISION, dtype=np.int64),
        SEGMENT_VISION,
    )
    for k, v, pos in blocks:
        for g in range(GAMMA):
            cache.gather()
            cache.append_draft(
                k[:, :, g : g + 1, :], v[:, :, g : g + 1, :], pos[g : g + 1]
            )
        cache.gather()
        cache.clear_draft()
        cache.append_context(
            k[:, :, :ROLLBACK, :], v[:, :, :ROLLBACK, :], pos[:ROLLBACK], SEGMENT_TEXT
        )
    return cache


WORKLOADS = {
    "kv_cache": (run_kv_workload, KVCache, ReferenceKVCache),
    "hybrid": (run_hybrid_workload, HybridKVCache, ReferenceHybridKVCache),
}


def _best_of(fn, rounds):
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_arena(benchmark, workload):
    run, arena_cls, _ = WORKLOADS[workload]
    cache = benchmark(lambda: run(arena_cls))
    stats = cache.arena_stats()
    benchmark.extra_info.update(
        {
            "tokens": T_TOKENS,
            "bytes_copied": stats.bytes_copied,
            "grow_events": stats.grow_events,
            "peak_tokens": stats.peak_tokens,
        }
    )


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_reference(benchmark, workload):
    run, _, reference_cls = WORKLOADS[workload]
    benchmark.pedantic(lambda: run(reference_cls), rounds=1, iterations=1)
    benchmark.extra_info.update({"tokens": T_TOKENS})


def test_speedup_summary():
    """The acceptance bound: arena >= 5x faster than concatenate at T >= 1024."""
    lines = [
        f"KV arena vs concatenate baseline (T={T_TOKENS}, "
        f"{N_LAYERS} layers, H={N_HEADS}, Dh={HEAD_DIM}, "
        f"append {APPEND} / rollback {ROLLBACK} per block)",
        f"{'workload':>10} {'arena ms':>10} {'naive ms':>10} {'speedup':>8}",
    ]
    for workload, (run, arena_cls, reference_cls) in sorted(WORKLOADS.items()):
        arena_end = run(arena_cls)
        naive_end = run(reference_cls)
        _assert_same_end_state(workload, arena_end, naive_end)
        arena_s = _best_of(lambda: run(arena_cls), rounds=3)
        naive_s = _best_of(lambda: run(reference_cls), rounds=2)
        speedup = naive_s / arena_s
        _RESULTS[("arena", GAMMA, workload)] = {
            "tokens": float(T_TOKENS),
            "arena_ms": arena_s * 1e3,
            "naive_ms": naive_s * 1e3,
            "speedup": speedup,
        }
        lines.append(
            f"{workload:>10} {arena_s * 1e3:>10.2f} {naive_s * 1e3:>10.2f} "
            f"{speedup:>8.1f}"
        )
    rendered = "\n".join(lines)
    print("\n" + rendered)
    save_results(
        _RESULTS, RESULTS_DIR / "kv_arena", rendered=rendered,
        config={
            "tokens": T_TOKENS,
            "n_layers": N_LAYERS,
            "n_heads": N_HEADS,
            "head_dim": HEAD_DIM,
            "gamma": GAMMA,
            "append": APPEND,
            "rollback": ROLLBACK,
        },
    )

    if T_TOKENS >= 1024:
        for key, row in _RESULTS.items():
            assert row["speedup"] >= MIN_SPEEDUP, (key, row)


def _assert_same_end_state(workload, arena_end, naive_end):
    """Both implementations must agree element-for-element after the run."""
    if workload == "kv_cache":
        assert arena_end.seq_len == naive_end.seq_len
        np.testing.assert_array_equal(arena_end.positions, naive_end.positions)
        for i in range(N_LAYERS):
            for a, b in zip(arena_end.layer(i), naive_end.layer(i)):
                np.testing.assert_array_equal(a, b)
    else:
        assert arena_end.total_len == naive_end.total_len
        assert arena_end.segment_counts() == naive_end.segment_counts()
        for a, b in zip(arena_end.gather(), naive_end.gather()):
            np.testing.assert_array_equal(a, b)
