"""Benchmark fixtures.

Environment knobs:

* ``REPRO_BENCH_PROFILE`` — zoo profile (``full`` default, ``smoke`` for CI),
* ``REPRO_BENCH_SAMPLES`` — samples per dataset (default 10),
* ``REPRO_BENCH_TOKENS`` — max new tokens (default 48),
* ``REPRO_BENCH_TARGETS`` — comma-separated target subset
  (default ``sim-7b,sim-13b``).

The first full-profile run trains the model zoo (tens of minutes); artifacts
are cached under ``.cache/zoo`` afterwards.  ``python scripts/build_zoo.py``
pre-builds them.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.eval import EvalConfig, ExperimentRunner
from repro.zoo import ModelZoo, PROFILE_FULL, PROFILE_SMOKE

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def bench_targets() -> tuple:
    """Target list for table/figure benches (REPRO_BENCH_TARGETS)."""
    raw = os.environ.get("REPRO_BENCH_TARGETS", "sim-7b,sim-13b")
    return tuple(name.strip() for name in raw.split(",") if name.strip())


def pytest_configure(config):
    RESULTS_DIR.mkdir(exist_ok=True)


@pytest.fixture(scope="session")
def zoo() -> ModelZoo:
    profile = os.environ.get("REPRO_BENCH_PROFILE", "full")
    return ModelZoo(PROFILE_SMOKE if profile == "smoke" else PROFILE_FULL, verbose=True)


@pytest.fixture(scope="session")
def eval_config() -> EvalConfig:
    return EvalConfig(
        samples_per_dataset=int(os.environ.get("REPRO_BENCH_SAMPLES", "10")),
        max_new_tokens=int(os.environ.get("REPRO_BENCH_TOKENS", "48")),
    )


@pytest.fixture(scope="session")
def runner(zoo, eval_config) -> ExperimentRunner:
    return ExperimentRunner(zoo, eval_config)
