"""Tree speculation vs the linear draft chain at equal draft depth.

One parametrized case per (target, mode): ``linear`` decodes with the
plain gamma-chain speculative path, ``tree`` with tree speculation
(branch 2, node budget ``gamma + 1``) at the same gamma.  The summary
test saves ``results/tree.json`` (gated by ``scripts/perf_gate.py``) and
asserts the tentpole claims in-process:

* **losslessness** — tree decoding is token-identical to greedy AR,
* **acceptance** — accepted tokens per target forward is strictly higher
  than the linear chain's at the same gamma: when the chain's argmax
  continuation is rejected, a sibling branch can still rescue the round,
* **compute** — the simulated decode time does not regress: the extra
  verify rows are priced (CostModel.tree_verify bills every fed node)
  yet the saved rounds more than pay for them.

Gamma is 7 here, deliberately above the smoke head's easy-acceptance
range: at gamma 3 the smoke draft head is accepted wholesale and a tree
has nothing to rescue, so the margin this gate protects only exists
where rejections actually happen.

The gate runs ``sim-7b`` only.  Measured across every knob sweep
(branch 2-3, node budgets gamma+1..gamma+3, entropy scales 0.3-1.0,
gammas 7-10, all three datasets): the smoke ``sim-13b`` draft head's
rank-2 candidate *never* matches the target at a rejection point, so
trees cannot change its acceptance and there is no margin to protect —
asserting one would gate on a property the model pair does not have.
"""

from __future__ import annotations

import pytest

from repro.core.engine import AASDEngineConfig
from repro.decoding.autoregressive import AutoregressiveDecoder
from repro.eval import build_aasd_engine, save_results

from .conftest import RESULTS_DIR

TARGETS = ("sim-7b",)
GAMMA = 7
BRANCH = 2
MAX_NODES = 8
N_SAMPLES = 8
NEW_TOKENS = 48
MODES = ("linear", "tree")
_RESULTS = {}
_AR_TOKENS = {}

CASES = [(t, m) for t in TARGETS for m in MODES]


def _samples(zoo):
    return list(zoo.eval_dataset("coco-sim", N_SAMPLES))


def _engine(zoo, runner, target, mode):
    config = AASDEngineConfig(
        gamma=GAMMA,
        max_new_tokens=NEW_TOKENS,
        tree_speculation=(mode == "tree"),
        tree_max_branch=BRANCH,
        tree_max_nodes=MAX_NODES,
    )
    return build_aasd_engine(
        zoo, target, GAMMA, runner.cost_model(target), config=config
    )


def _ar_tokens(zoo, runner, target):
    if target not in _AR_TOKENS:
        ar = AutoregressiveDecoder(
            zoo.target(target), zoo.tokenizer(), runner.cost_model(target),
            max_new_tokens=NEW_TOKENS,
        )
        _AR_TOKENS[target] = [ar.decode(s).token_ids for s in _samples(zoo)]
    return _AR_TOKENS[target]


@pytest.mark.parametrize("target,mode", CASES, ids=[f"{t}-{m}" for t, m in CASES])
def test_tree_cell(benchmark, zoo, runner, target, mode):
    samples = _samples(zoo)
    engine = _engine(zoo, runner, target, mode)
    if mode == "tree":
        assert engine.tree_ready

    records = benchmark.pedantic(
        lambda: [engine.decode(s) for s in samples], rounds=1, iterations=1
    )

    # Losslessness first: the throughput numbers mean nothing otherwise.
    for record, reference in zip(records, _ar_tokens(zoo, runner, target)):
        assert record.token_ids == reference, f"{mode} decode diverged from AR"

    tokens = sum(r.n_tokens for r in records)
    forwards = sum(r.n_target_forwards for r in records)
    sim_ms = sum(r.sim_time_ms for r in records)
    row = {
        "apf": tokens / forwards,
        "sim_ms": sim_ms,
        "tok_per_s": tokens / (sim_ms / 1000.0),
        "forwards": float(forwards),
    }
    _RESULTS[(target, GAMMA, mode)] = row
    benchmark.extra_info.update(row)


def test_tree_summary(benchmark, runner):
    assert len(_RESULTS) == len(CASES), "run the full parametrized set first"
    lines = [f"{'target':>10} {'mode':>8} {'apf':>7} {'fwd':>6} {'sim ms':>10} {'tok/s':>8}"]
    for (target, gamma, mode), row in sorted(_RESULTS.items()):
        lines.append(
            f"{target:>10} {mode:>8} {row['apf']:>7.3f} {row['forwards']:>6.0f} "
            f"{row['sim_ms']:>10.1f} {row['tok_per_s']:>8.1f}"
        )
    rendered = benchmark.pedantic(lambda: "\n".join(lines), rounds=1, iterations=1)
    print("\n" + rendered)
    save_results(
        _RESULTS, RESULTS_DIR / "tree", rendered=rendered,
        config={
            "gamma": GAMMA, "branch": BRANCH, "max_nodes": MAX_NODES,
            "n_samples": N_SAMPLES, "max_new_tokens": NEW_TOKENS,
            "targets": list(TARGETS),
        },
    )

    for target in TARGETS:
        tree = _RESULTS[(target, GAMMA, "tree")]
        linear = _RESULTS[(target, GAMMA, "linear")]
        # The headline: strictly more committed tokens per target forward.
        assert tree["apf"] > linear["apf"], (target, tree["apf"], linear["apf"])
        assert tree["forwards"] < linear["forwards"], target
        # And not at the cost of simulated decode time: the extra verify
        # rows are billed, but saved rounds more than pay for them.
        assert tree["sim_ms"] <= linear["sim_ms"], target
