"""Regenerates **Table 1**: AASD vs FT/DT-LLaMA and FT/DT-LLaVA drafts.

Each parametrized case evaluates one (target, gamma, draft) cell over the
three datasets against the shared autoregressive baseline; the summary test
renders the full measured-vs-paper table, saves it under ``results/`` and
asserts the paper's headline ordering (AASD wins every metric).
"""

from __future__ import annotations

import pytest

from repro.eval import TABLE1_ROWS, build_row_decoder, render_table1, save_results
from .conftest import RESULTS_DIR, bench_targets

TARGETS = bench_targets()
GAMMAS = (3, 5)
_RESULTS = {}

CASES = [(t, g, row) for t in TARGETS for g in GAMMAS for row in TABLE1_ROWS]


@pytest.mark.parametrize("target,gamma,row", CASES, ids=[f"{t}-g{g}-{r}" for t, g, r in CASES])
def test_table1_cell(benchmark, runner, zoo, target, gamma, row):
    decoder = build_row_decoder(
        row, zoo, target, gamma, runner.cost_model(target),
        max_new_tokens=runner.config.max_new_tokens,
    )
    sample = runner.dataset("coco-sim")[0]
    benchmark.pedantic(lambda: decoder.decode(sample), rounds=2, iterations=1)

    report = runner.evaluate(decoder, target)
    _RESULTS[(target, gamma, row)] = report.row()
    benchmark.extra_info.update(report.row())


def test_table1_summary(benchmark, runner):
    assert len(_RESULTS) == len(CASES), "run the full parametrized set first"
    rendered = benchmark.pedantic(
        lambda: render_table1(_RESULTS, targets=TARGETS), rounds=1, iterations=1
    )
    print("\n" + rendered)
    save_results(_RESULTS, RESULTS_DIR / "table1", rendered=rendered)

    # Paper's headline claims: AASD beats every independent-draft baseline
    # on every metric, for every target and gamma.
    for target in TARGETS:
        for gamma in GAMMAS:
            ours = _RESULTS[(target, gamma, "Ours")]
            for row in TABLE1_ROWS[:-1]:
                base = _RESULTS[(target, gamma, row)]
                assert ours["omega"] > base["omega"], (target, gamma, row)
                assert ours["alpha"] > base["alpha"], (target, gamma, row)
                assert ours["tau"] > base["tau"], (target, gamma, row)
                assert ours["delta"] > base["delta"], (target, gamma, row)
            # ~2x speedup territory.
            assert ours["omega"] > 1.6, (target, gamma, ours)
