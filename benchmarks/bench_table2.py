"""Regenerates **Table 2**: the Vision KV Projector ablation (w/ vs w/o)."""

from __future__ import annotations

import pytest

from repro.eval import build_aasd_engine, render_table2, save_results
from .conftest import RESULTS_DIR, bench_targets

TARGETS = bench_targets()
GAMMAS = (3, 5)
_RESULTS = {}

CASES = [
    (t, g, label) for t in TARGETS for g in GAMMAS for label in ("w/o", "w/")
]


@pytest.mark.parametrize(
    "target,gamma,label", CASES,
    ids=[f"{t}-g{g}-{'proj' if l == 'w/' else 'noproj'}" for t, g, l in CASES],
)
def test_table2_cell(benchmark, runner, zoo, target, gamma, label):
    engine = build_aasd_engine(
        zoo, target, gamma, runner.cost_model(target),
        max_new_tokens=runner.config.max_new_tokens,
        use_kv_projector=(label == "w/"),
    )
    sample = runner.dataset("coco-sim")[0]
    benchmark.pedantic(lambda: engine.decode(sample), rounds=2, iterations=1)

    report = runner.evaluate(engine, target)
    _RESULTS[(target, gamma, label)] = report.row()
    benchmark.extra_info.update(report.row())


def test_table2_summary(benchmark, runner):
    assert len(_RESULTS) == len(CASES)
    rendered = benchmark.pedantic(
        lambda: render_table2(_RESULTS, targets=TARGETS), rounds=1, iterations=1
    )
    print("\n" + rendered)
    save_results(_RESULTS, RESULTS_DIR / "table2", rendered=rendered)

    # Paper's Table 2 claim: the projector improves walltime speedup (it
    # removes the long uncompressed vision KV from every draft step).
    for target in TARGETS:
        for gamma in GAMMAS:
            with_proj = _RESULTS[(target, gamma, "w/")]
            without = _RESULTS[(target, gamma, "w/o")]
            assert with_proj["omega"] > without["omega"], (target, gamma)
            assert with_proj["delta"] > without["delta"], (target, gamma)
