"""Ablation: fixed speculation depth vs the adaptive-gamma extension.

Compares the paper's fixed gamma in {1..8} against the AIMD controller in
:mod:`repro.decoding.adaptive` on the AASD engine, reporting where the
fixed-depth sweet spot lies and whether adaptation tracks it.
"""

from __future__ import annotations

import pytest

from repro.core import AASDEngine, AASDEngineConfig
from repro.decoding import AdaptiveGamma
from repro.eval import render_bars, save_results
from .conftest import RESULTS_DIR

FIXED_GAMMAS = (1, 2, 3, 5, 8)
_RESULTS = {}


def _engine(zoo, runner, gamma, controller=None):
    return AASDEngine(
        zoo.target("sim-7b"),
        zoo.aasd_head("sim-7b"),
        zoo.tokenizer(),
        runner.cost_model("sim-7b"),
        AASDEngineConfig(gamma=gamma, max_new_tokens=runner.config.max_new_tokens),
        gamma_controller=controller,
    )


@pytest.mark.parametrize("gamma", FIXED_GAMMAS, ids=[f"fixed-g{g}" for g in FIXED_GAMMAS])
def test_fixed_gamma(benchmark, zoo, runner, gamma):
    engine = _engine(zoo, runner, gamma)
    sample = runner.dataset("coco-sim")[0]
    benchmark.pedantic(lambda: engine.decode(sample), rounds=2, iterations=1)
    report = runner.evaluate(engine, "sim-7b")
    _RESULTS[("sim-7b", gamma, f"fixed γ={gamma}")] = report.row()
    benchmark.extra_info.update(report.row())


def test_adaptive_gamma(benchmark, zoo, runner):
    engine = _engine(
        zoo, runner, gamma=3,
        controller=AdaptiveGamma(initial_gamma=3, min_gamma=1, max_gamma=8),
    )
    sample = runner.dataset("coco-sim")[0]
    benchmark.pedantic(lambda: engine.decode(sample), rounds=2, iterations=1)
    report = runner.evaluate(engine, "sim-7b")
    _RESULTS[("sim-7b", 0, "adaptive")] = report.row()
    benchmark.extra_info.update(report.row())


def test_gamma_ablation_summary(benchmark, runner):
    assert len(_RESULTS) == len(FIXED_GAMMAS) + 1
    series = {label: row["omega"] for (_, _, label), row in _RESULTS.items()}
    rendered = benchmark.pedantic(
        lambda: render_bars("Speculation depth ablation: walltime speedup", series, unit="x"),
        rounds=1, iterations=1,
    )
    print("\n" + rendered)
    save_results(_RESULTS, RESULTS_DIR / "ablation_gamma", rendered=rendered)
    adaptive = _RESULTS[("sim-7b", 0, "adaptive")]["omega"]
    worst_fixed = min(
        row["omega"] for key, row in _RESULTS.items() if key[2].startswith("fixed")
    )
    # Adaptation must never collapse below the worst fixed depth.
    assert adaptive > worst_fixed
