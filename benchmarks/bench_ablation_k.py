"""Ablation: sweep the KV Projector compression width k.

Not a table in the paper (which fixes k = 64 of 576, ~89% compression);
this bench sweeps k for our 36 vision tokens to locate the
quality/latency trade-off the paper's choice sits on.  Training a head per
k is expensive, so the sweep trains short-budget heads and reports the
acceptance/omega curve.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AASDDraftHead, AASDEngine, AASDEngineConfig, DraftHeadConfig
from repro.eval import render_bars, save_results
from repro.training import DraftTrainConfig, train_draft_head
from .conftest import RESULTS_DIR

K_VALUES = (2, 8, 36)
_RESULTS = {}
_HEAD_STEPS = 200  # short budget: the sweep compares k, not peak quality


@pytest.fixture(scope="module")
def sweep_setup(zoo, runner):
    return dict(
        target=zoo.target("sim-7b"),
        tokenizer=zoo.tokenizer(),
        pool=zoo.train_pool(),
        cm=runner.cost_model("sim-7b"),
    )


@pytest.mark.parametrize("k", K_VALUES, ids=[f"k{k}" for k in K_VALUES])
def test_k_sweep(benchmark, runner, sweep_setup, k):
    setup = sweep_setup
    target = setup["target"]
    head = AASDDraftHead(
        DraftHeadConfig.for_target(
            target.config.llama,
            n_vision_tokens=target.n_vision_tokens,
            k_compressed=k,
            use_kv_projector=(k < target.n_vision_tokens),
        ),
        rng=np.random.default_rng(k),
    )
    head.init_from_target(target.llama)
    train_draft_head(
        head, target, setup["tokenizer"], setup["pool"],
        DraftTrainConfig(
            steps=_HEAD_STEPS, batch_size=8, lr=2e-3, warmup_steps=20,
            gamma_train=5, kl_weight=0.5, seed=k,
        ),
    )
    engine = AASDEngine(
        target, head, setup["tokenizer"], setup["cm"],
        AASDEngineConfig(gamma=3, max_new_tokens=runner.config.max_new_tokens),
    )
    sample = runner.dataset("coco-sim")[0]
    benchmark.pedantic(lambda: engine.decode(sample), rounds=2, iterations=1)

    report = runner.evaluate(engine, "sim-7b")
    _RESULTS[("sim-7b", 3, f"k={k}")] = report.row()
    benchmark.extra_info.update(report.row())


def test_k_sweep_summary(benchmark, runner):
    assert len(_RESULTS) == len(K_VALUES)
    series = {label: row["omega"] for (_, _, label), row in sorted(_RESULTS.items())}
    rendered = benchmark.pedantic(
        lambda: render_bars("KV Projector width sweep: walltime speedup", series, unit="x"),
        rounds=1, iterations=1,
    )
    print("\n" + rendered)
    save_results(_RESULTS, RESULTS_DIR / "ablation_k", rendered=rendered)
    # Sanity: every width still beats 1x (speculation is never a loss here).
    for row in _RESULTS.values():
        assert row["omega"] > 1.0
