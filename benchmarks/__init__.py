"""Benchmark suite regenerating every table and figure of the AASD paper."""
