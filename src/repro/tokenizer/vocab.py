"""Vocabulary: bidirectional token <-> id mapping with special tokens."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List

from ..errors import TokenizerError

__all__ = ["Vocab", "SPECIAL_TOKENS", "PAD", "BOS", "EOS", "UNK", "IMAGE"]

PAD = "<pad>"
BOS = "<bos>"
EOS = "<eos>"
UNK = "<unk>"
IMAGE = "<image>"

#: Specials come first so their ids are stable across vocab rebuilds.
SPECIAL_TOKENS: List[str] = [PAD, BOS, EOS, UNK, IMAGE]


class Vocab:
    """Immutable token <-> id table.

    Ids 0..4 are always the special tokens in :data:`SPECIAL_TOKENS` order.
    """

    def __init__(self, tokens: Iterable[str]) -> None:
        self._id_to_token: List[str] = list(SPECIAL_TOKENS)
        seen = set(self._id_to_token)
        for tok in tokens:
            if tok in seen:
                continue
            seen.add(tok)
            self._id_to_token.append(tok)
        self._token_to_id: Dict[str, int] = {t: i for i, t in enumerate(self._id_to_token)}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def id_of(self, token: str) -> int:
        """Return the id for ``token``, falling back to ``<unk>``."""
        return self._token_to_id.get(token, self._token_to_id[UNK])

    def token_of(self, idx: int) -> str:
        if not 0 <= idx < len(self._id_to_token):
            raise TokenizerError(f"token id {idx} out of range [0, {len(self)})")
        return self._id_to_token[idx]

    @property
    def pad_id(self) -> int:
        return self._token_to_id[PAD]

    @property
    def bos_id(self) -> int:
        return self._token_to_id[BOS]

    @property
    def eos_id(self) -> int:
        return self._token_to_id[EOS]

    @property
    def unk_id(self) -> int:
        return self._token_to_id[UNK]

    @property
    def image_id(self) -> int:
        return self._token_to_id[IMAGE]

    def tokens(self) -> List[str]:
        return list(self._id_to_token)

    # ------------------------------------------------------------------
    def save(self, path: Path) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self._id_to_token, indent=0), encoding="utf-8")

    @classmethod
    def load(cls, path: Path) -> "Vocab":
        tokens = json.loads(Path(path).read_text(encoding="utf-8"))
        if tokens[: len(SPECIAL_TOKENS)] != SPECIAL_TOKENS:
            raise TokenizerError("vocab file does not start with the canonical special tokens")
        return cls(tokens[len(SPECIAL_TOKENS):])
