"""Word-level tokenizer and vocabulary for the synthetic language."""

from .tokenizer import WordTokenizer
from .vocab import BOS, EOS, IMAGE, PAD, SPECIAL_TOKENS, UNK, Vocab

__all__ = [
    "WordTokenizer",
    "Vocab",
    "SPECIAL_TOKENS",
    "PAD",
    "BOS",
    "EOS",
    "UNK",
    "IMAGE",
]
