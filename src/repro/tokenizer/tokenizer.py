"""Word-level tokenizer for the synthetic multimodal world.

The synthetic language generators emit lowercase words and a small set of
punctuation marks, so a word-level tokenizer is lossless here and keeps the
vocabulary tiny (~200 entries) — the analogue of the 32k-piece LLaMA
tokenizer for our scaled-down models.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterable, List, Sequence

import numpy as np

from ..errors import TokenizerError
from .vocab import IMAGE, Vocab

__all__ = ["WordTokenizer"]

_TOKEN_RE = re.compile(r"<image>|[a-z0-9']+|[.,:;?!]")


class WordTokenizer:
    """Tokenizes text into lowercase words / punctuation / ``<image>`` marks."""

    def __init__(self, vocab: Vocab) -> None:
        self.vocab = vocab

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_texts(cls, texts: Iterable[str]) -> "WordTokenizer":
        """Build a tokenizer whose vocab covers every word in ``texts``."""
        seen: List[str] = []
        seen_set = set()
        for text in texts:
            for tok in cls.split(text):
                if tok not in seen_set and tok != IMAGE:
                    seen_set.add(tok)
                    seen.append(tok)
        return cls(Vocab(sorted(seen)))

    @staticmethod
    def split(text: str) -> List[str]:
        """Split raw text into token strings."""
        return _TOKEN_RE.findall(text.lower())

    # ------------------------------------------------------------------
    # Encoding / decoding
    # ------------------------------------------------------------------
    def encode(
        self,
        text: str,
        add_bos: bool = False,
        add_eos: bool = False,
    ) -> List[int]:
        """Encode ``text`` to a list of token ids."""
        ids = [self.vocab.id_of(tok) for tok in self.split(text)]
        if add_bos:
            ids.insert(0, self.vocab.bos_id)
        if add_eos:
            ids.append(self.vocab.eos_id)
        return ids

    def encode_array(self, text: str, add_bos: bool = False, add_eos: bool = False) -> np.ndarray:
        return np.asarray(self.encode(text, add_bos=add_bos, add_eos=add_eos), dtype=np.int64)

    def decode(self, ids: Sequence[int], skip_special: bool = True) -> str:
        """Decode ids back to a readable string."""
        words: List[str] = []
        special = {self.vocab.pad_id, self.vocab.bos_id, self.vocab.eos_id}
        for idx in np.asarray(ids, dtype=np.int64).reshape(-1):
            idx = int(idx)
            if skip_special and idx in special:
                continue
            words.append(self.vocab.token_of(idx))
        out: List[str] = []
        for word in words:
            if word in {".", ",", ":", ";", "?", "!"} and out:
                out[-1] = out[-1] + word
            else:
                out.append(word)
        return " ".join(out)

    # ------------------------------------------------------------------
    @property
    def vocab_size(self) -> int:
        return len(self.vocab)

    def save(self, path: Path) -> None:
        self.vocab.save(path)

    @classmethod
    def load(cls, path: Path) -> "WordTokenizer":
        return cls(Vocab.load(path))

    def assert_covers(self, text: str) -> None:
        """Raise if ``text`` contains out-of-vocabulary words."""
        missing = [tok for tok in self.split(text) if tok not in self.vocab and tok != IMAGE]
        if missing:
            raise TokenizerError(f"out-of-vocabulary tokens: {sorted(set(missing))}")
