"""repro — reproduction of AASD (DAC 2025): aligned speculative decoding
for multimodal LLMs, with a full numpy substrate (autodiff framework,
MiniLlama/MiniLlava models, synthetic multimodal tasks) and a calibrated
benchmarking harness.

Quickstart
----------
>>> from repro.zoo import ModelZoo, PROFILE_SMOKE
>>> from repro.core import AASDEngine, AASDEngineConfig
>>> from repro.decoding import CostModel, get_profile
>>> zoo = ModelZoo(PROFILE_SMOKE)
>>> engine = AASDEngine(
...     zoo.target("sim-7b"), zoo.aasd_head("sim-7b"), zoo.tokenizer(),
...     CostModel(get_profile("sim-7b")), AASDEngineConfig(gamma=3))
>>> record = engine.decode(zoo.eval_dataset("coco-sim", 1)[0])
"""

from .version import __version__

__all__ = ["__version__"]
