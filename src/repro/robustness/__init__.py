"""Fault tolerance: deterministic fault injection and runtime guards.

``faults`` corrupts things on purpose (checkpoint truncation/byte flips,
NaN weights, failing draft heads) so tests can prove the stack degrades
instead of dying; ``guards`` holds the runtime validators the decode
engine uses to detect those faults in production.
"""

from .faults import (
    DraftFault,
    FaultyDraftHead,
    corrupt_checkpoint,
    flip_checkpoint_bytes,
    inject_nan_weights,
    truncate_checkpoint,
)
from .guards import all_finite, check_hybrid_cache, ensure_finite

__all__ = [
    "DraftFault",
    "FaultyDraftHead",
    "corrupt_checkpoint",
    "flip_checkpoint_bytes",
    "inject_nan_weights",
    "truncate_checkpoint",
    "all_finite",
    "check_hybrid_cache",
    "ensure_finite",
]
