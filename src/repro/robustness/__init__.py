"""Fault tolerance: deterministic fault injection and runtime guards.

``faults`` corrupts things on purpose (checkpoint truncation/byte flips,
NaN weights, failing draft heads) so tests can prove the stack degrades
instead of dying; ``guards`` holds the runtime validators the decode
engine uses to detect those faults in production; ``chaos`` drives the
serving layer under seeded fault storms and asserts the resilience
invariants (see ``docs/robustness.md``).
"""

from .faults import (
    ArenaPressureFault,
    DraftFault,
    FaultyDraftHead,
    LatencySpikeFault,
    NaNLogitsFault,
    corrupt_checkpoint,
    flip_checkpoint_bytes,
    inject_nan_weights,
    is_transient,
    truncate_checkpoint,
)
from .guards import all_finite, check_hybrid_cache, ensure_finite

__all__ = [
    "DraftFault",
    "LatencySpikeFault",
    "ArenaPressureFault",
    "NaNLogitsFault",
    "is_transient",
    "FaultyDraftHead",
    "corrupt_checkpoint",
    "flip_checkpoint_bytes",
    "inject_nan_weights",
    "truncate_checkpoint",
    "all_finite",
    "check_hybrid_cache",
    "ensure_finite",
]
