"""Chaos harness: seeded fault storms against the serving layer.

A *storm* is a deterministic fault schedule (draft crashes, latency
injection, queue floods, checkpoint corruption on reload) driven through
:func:`repro.serving.scheduler.serve_requests`, followed by a battery of
invariant checks:

* **liveness** — every submitted handle resolved to a terminal status and
  the scheduler drained completely (no hung sessions, empty queue, no
  pending backoffs);
* **losslessness** — every surviving output is token-identical to a
  fault-free sequential decode of the same request (completed requests
  match exactly, partial outputs are exact prefixes), which is the
  serving-tier extension of the engine's AR-identical fallback guarantee;
* **reconciliation** — retry / shed / breaker counters in the metrics
  registry agree exactly with the scheduler's own report, so dashboards
  can be trusted under failure;
* **no leaks** — all retired sessions folded their KV-arena accounting
  into the scheduler and none remain holding cache memory.

Each storm runs against a *fresh* :class:`~repro.obs.metrics.MetricsRegistry`
(the process registry is swapped in and restored afterwards), so the
reconciliation checks are exact rather than delta-based.

Everything is seeded: the afflicted request set, the fault step indices,
and the retry jitter all derive from the storm seed via SHA-256, so a
failing storm replays identically under a debugger.

Layering note: this module lives in the method layer but *drives* the
application-layer serving package, so every ``repro.serving`` import is
function-local (the sanctioned downward-only import direction is
preserved at module granularity).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.engine import AASDEngine, AASDEngineConfig
from ..errors import ChaosError, CheckpointError
from ..nn.serialization import load_state_dict, save_state_dict
from ..obs.metrics import MetricsRegistry, set_registry
from .faults import FaultyDraftHead, corrupt_checkpoint

__all__ = [
    "ChaosWorld",
    "StormProfile",
    "StormReport",
    "ChaosReport",
    "default_profiles",
    "clean_token_ids",
    "run_storm",
    "run_chaos",
    "assert_chaos",
]

#: Engine RNG seed used for both storm and oracle runs (greedy decoding
#: consumes no draws, but the seeds must still match for the guarantee to
#: be about determinism rather than luck).
ENGINE_SEED = 7

#: Speculation depth shared by storm and oracle engines.
GAMMA = 3


@dataclass
class ChaosWorld:
    """The model stack a storm runs against (a healthy baseline).

    ``samples`` are reused round-robin when a profile asks for more
    requests than there are samples; the oracle is computed per *sample*,
    so duplicated requests share their expected output.
    """

    target: object                  #: MiniLlava target model
    head: object                    #: healthy AASDDraftHead
    tokenizer: object               #: WordTokenizer
    cost_model: object              #: CostModel for simulated pricing
    samples: Sequence[object]       #: MultimodalSample pool
    max_new_tokens: int = 20        #: per-request generation budget


@dataclass(frozen=True)
class StormProfile:
    """One deterministic fault storm, fully described by plain values.

    The profile stays free of serving-layer types on purpose (layering:
    this module may only import :mod:`repro.serving` lazily); resilience
    policy objects are built from these scalars inside :func:`run_storm`.
    """

    name: str
    n_requests: int = 16
    seed: int = 0
    # -- draft-head fault injection ------------------------------------
    fault_mode: Optional[str] = None         #: FaultyDraftHead mode (None = healthy)
    request_fault_rate: Optional[float] = None  #: per-request storm schedule
    fault_transient: bool = True             #: transient flag for mode="raise"
    fail_every: Optional[int] = None         #: global schedule (every k-th step)
    fallback_on_fault: bool = True           #: engine-level degradation switch
    max_draft_faults: int = 3                #: engine target-only threshold
    # -- serving shape --------------------------------------------------
    max_batch_size: int = 4
    max_queue_depth: int = 64
    deadline_ms: Optional[float] = None      #: per-request relative deadline
    # -- resilience policies (scalars; objects built lazily) -----------
    use_retry: bool = False
    max_retries: int = 2
    base_backoff_ms: float = 20.0
    use_breaker: bool = False
    breaker_window: int = 4
    breaker_fault_rate: float = 1.0          #: open at >= this many faults/round
    breaker_cooldown: int = 3
    breaker_probes: int = 2
    shed_policy: Optional[str] = None        #: "reject-newest" / "reject-over-deadline"
    max_queue_ms: Optional[float] = None     #: shed pressure threshold
    # -- checkpoint corruption on reload -------------------------------
    corrupt_reload: Optional[str] = None     #: "truncate" / "byteflip" (None = skip)


@dataclass(frozen=True)
class StormReport:
    """Outcome of one storm: counts, availability, and invariant verdicts."""

    profile: str
    n_requests: int
    n_completed: int
    n_timeout: int
    n_rejected: int
    n_failed: int
    n_retries: int
    n_shed: int
    availability: float                      #: completed-within-deadline fraction
    sim_ms: float
    total_tokens: int
    token_identical: bool
    breaker_transitions: Tuple[Tuple[int, str, str], ...]
    checkpoint_error: Optional[str]          #: detected corruption (reload storms)
    violations: Tuple[str, ...]              #: empty = all invariants green

    @property
    def passed(self) -> bool:
        """True when every invariant held."""
        return not self.violations

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable dump (for the chaos CI artifact)."""
        return {
            "profile": self.profile,
            "n_requests": self.n_requests,
            "n_completed": self.n_completed,
            "n_timeout": self.n_timeout,
            "n_rejected": self.n_rejected,
            "n_failed": self.n_failed,
            "n_retries": self.n_retries,
            "n_shed": self.n_shed,
            "availability": self.availability,
            "sim_ms": self.sim_ms,
            "total_tokens": self.total_tokens,
            "token_identical": self.token_identical,
            "breaker_transitions": [list(t) for t in self.breaker_transitions],
            "checkpoint_error": self.checkpoint_error,
            "violations": list(self.violations),
            "passed": self.passed,
        }


@dataclass(frozen=True)
class ChaosReport:
    """Suite-level aggregate over all storms."""

    storms: Tuple[StormReport, ...]

    @property
    def passed(self) -> bool:
        """True when every storm passed every invariant."""
        return all(storm.passed for storm in self.storms)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable dump (for the chaos CI artifact)."""
        return {
            "passed": self.passed,
            "storms": [storm.to_dict() for storm in self.storms],
        }


def default_profiles(quick: bool = False, seed: int = 0) -> Tuple[StormProfile, ...]:
    """The four canonical storms (scaled down with ``quick=True``).

    1. ``transient-draft`` — 20% of requests crash their draft head with a
       *transient* fault and the engine-level fallback is off, so survival
       depends entirely on the scheduler's retry path.
    2. ``latency-spike``   — every draft step raises a latency fault; the
       circuit breaker must flip the batch target-only and keep flapping
       through half-open probes (the engine absorbs each fault in place).
    3. ``queue-flood``     — arrivals outpace a deliberately tiny batch and
       queue, deadlines are tight, and the shed policy must reject the
       overflow instead of letting everything time out.
    4. ``corrupt-reload``  — a corrupted head checkpoint must be *detected*
       at reload (surfacing as CheckpointError), after which serving
       proceeds on the healthy weights.
    """
    n = 8 if quick else 16
    return (
        StormProfile(
            name="transient-draft",
            n_requests=n,
            seed=seed,
            fault_mode="raise",
            request_fault_rate=0.2,
            fault_transient=True,
            fallback_on_fault=False,
            deadline_ms=40000.0,
            use_retry=True,
        ),
        StormProfile(
            name="latency-spike",
            n_requests=max(4, n // 2),
            seed=seed,
            fault_mode="latency",
            fail_every=1,
            fallback_on_fault=True,
            max_draft_faults=10_000,   # the breaker, not the engine, must react
            use_breaker=True,
        ),
        StormProfile(
            name="queue-flood",
            n_requests=n,
            seed=seed,
            max_batch_size=2,
            max_queue_depth=4,
            deadline_ms=2500.0,
            shed_policy="reject-newest",
            max_queue_ms=600.0,
        ),
        StormProfile(
            name="corrupt-reload",
            n_requests=max(4, n // 2),
            seed=seed,
            corrupt_reload="byteflip",
        ),
    )


# ---------------------------------------------------------------------------
def clean_token_ids(world: ChaosWorld) -> List[List[int]]:
    """Fault-free sequential oracle: expected tokens per world sample.

    Uses the same engine seed/gamma as every storm run, so any divergence
    a storm produces is attributable to the faults, not to configuration.
    """
    engine = AASDEngine(
        world.target, world.head, world.tokenizer, world.cost_model,
        AASDEngineConfig(gamma=GAMMA, max_new_tokens=world.max_new_tokens),
        rng=np.random.default_rng(ENGINE_SEED),
    )
    return [list(engine.decode(sample).token_ids) for sample in world.samples]


def _storm_head(world: ChaosWorld, profile: StormProfile):
    """The (possibly fault-wrapped) draft head for this storm."""
    if profile.fault_mode is None:
        return world.head
    return FaultyDraftHead(
        world.head,
        mode=profile.fault_mode,
        fail_every=profile.fail_every or 1,
        seed=profile.seed,
        request_fault_rate=profile.request_fault_rate,
        per_request=profile.request_fault_rate is not None,
        transient=profile.fault_transient,
    )


def _corrupt_reload(world: ChaosWorld, profile: StormProfile,
                    work_dir: Path) -> Optional[str]:
    """Save, corrupt, and reload the head checkpoint; return the detection.

    Returns the CheckpointError message (the *expected* outcome — silent
    corruption would be the failure) or None when the reload succeeded,
    which :func:`run_storm` records as an invariant violation.
    """
    path = work_dir / f"chaos-{profile.name}-head.npz"
    save_state_dict(path, world.head.state_dict(), meta={"storm": profile.name})
    corrupt_checkpoint(path, mode=profile.corrupt_reload, seed=profile.seed)
    try:
        load_state_dict(path, verify=True)
    except CheckpointError as exc:
        return str(exc)
    return None


def _check_identity(results, oracle_by_id: Dict[str, List[int]]) -> List[str]:
    """Losslessness: completed == oracle exactly, partial == oracle prefix."""
    violations: List[str] = []
    for result in results:
        if result.record is None:
            continue
        tokens = list(result.record.token_ids)
        expected = oracle_by_id[result.request_id]
        if result.status == "completed":
            if tokens != expected:
                violations.append(
                    f"{result.request_id}: completed output diverged from oracle"
                )
        elif tokens != expected[: len(tokens)]:
            violations.append(
                f"{result.request_id}: partial output is not an oracle prefix"
            )
    return violations


def _check_reconciliation(report, scheduler, registry: MetricsRegistry) -> List[str]:
    """Registry counters must agree exactly with the scheduler's report."""
    violations: List[str] = []

    def counter(name: str) -> float:
        instrument = registry.get(name)
        return instrument.value if instrument is not None else 0.0

    for status in ("completed", "timeout", "rejected", "failed"):
        observed = counter(f"serving.requests_{status}_total")
        expected = report.count(status)
        if observed != expected:
            violations.append(
                f"counter serving.requests_{status}_total={observed:g} "
                f"!= report {expected}"
            )
    if counter("resilience.retries_total") != report.n_retries:
        violations.append(
            f"counter resilience.retries_total={counter('resilience.retries_total'):g} "
            f"!= report {report.n_retries}"
        )
    if counter("resilience.requests_shed_total") != report.n_shed:
        violations.append(
            f"counter resilience.requests_shed_total="
            f"{counter('resilience.requests_shed_total'):g} != report {report.n_shed}"
        )
    transitions = report.breaker_transitions
    if counter("resilience.breaker_transitions_total") != len(transitions):
        violations.append(
            f"counter resilience.breaker_transitions_total="
            f"{counter('resilience.breaker_transitions_total'):g} "
            f"!= report {len(transitions)}"
        )
    n_opened = sum(1 for _, _, to in transitions if to == "open")
    n_closed = sum(1 for _, _, to in transitions if to == "closed")
    if counter("resilience.breaker_opened_total") != n_opened:
        violations.append("breaker opened counter does not match transitions")
    if counter("resilience.breaker_closed_total") != n_closed:
        violations.append("breaker closed counter does not match transitions")
    depth = registry.get("serving.queue_depth")
    if depth is not None and depth.value != 0:
        violations.append(f"queue_depth gauge left at {depth.value:g} after drain")
    del scheduler  # liveness/leak checks live in _check_drained
    return violations


def _check_drained(report, scheduler) -> List[str]:
    """Liveness + leak freedom once the facade returns."""
    violations: List[str] = []
    if not scheduler.idle:
        violations.append("scheduler not idle after serve_requests returned")
    if scheduler.n_active != 0:
        violations.append(f"{scheduler.n_active} sessions still hold KV arenas")
    if len(scheduler.queue) != 0:
        violations.append(f"{len(scheduler.queue)} handles still queued")
    n_started = sum(1 for r in report.results if r.started_ms is not None)
    if n_started and scheduler.memory.peak_tokens <= 0:
        violations.append("no KV-arena accounting folded back from retired sessions")
    return violations


def run_storm(profile: StormProfile, world: ChaosWorld,
              oracle: Optional[List[List[int]]] = None,
              work_dir: Optional[Path] = None) -> StormReport:
    """Run one storm and check every invariant; never raises on violation.

    ``oracle`` is the output of :func:`clean_token_ids` (recomputed when
    omitted).  ``work_dir`` is only needed by checkpoint-corruption
    storms.  The process metrics registry is swapped for a fresh one for
    the duration of the run and always restored.
    """
    # Lazy: serving is an application-layer package (see module docstring).
    from ..serving import (
        ContinuousBatchingScheduler,
        ServeRequest,
        ServingConfig,
        serve_requests,
    )
    from ..serving.resilience import (
        BreakerConfig,
        ResilienceConfig,
        RetryPolicy,
        ShedConfig,
    )

    if oracle is None:
        oracle = clean_token_ids(world)
    violations: List[str] = []

    checkpoint_error: Optional[str] = None
    if profile.corrupt_reload is not None:
        if work_dir is None:
            raise ChaosError(
                f"storm {profile.name!r} corrupts a checkpoint; pass work_dir"
            )
        checkpoint_error = _corrupt_reload(world, profile, Path(work_dir))
        if checkpoint_error is None:
            violations.append("corrupted checkpoint reloaded without detection")

    retry = (
        RetryPolicy(max_retries=profile.max_retries,
                    base_backoff_ms=profile.base_backoff_ms,
                    seed=profile.seed)
        if profile.use_retry else None
    )
    breaker = (
        BreakerConfig(window=profile.breaker_window,
                      open_above_fault_rate=profile.breaker_fault_rate,
                      cooldown_rounds=profile.breaker_cooldown,
                      probe_rounds=profile.breaker_probes)
        if profile.use_breaker else None
    )
    shed = (
        ShedConfig(max_queue_ms=profile.max_queue_ms, policy=profile.shed_policy)
        if profile.shed_policy is not None else None
    )
    resilience = (
        ResilienceConfig(retry=retry, breaker=breaker, shed=shed)
        if (retry or breaker or shed) else None
    )

    requests = [
        ServeRequest(
            request_id=f"{profile.name}-{i:03d}",
            sample=world.samples[i % len(world.samples)],
            deadline_ms=profile.deadline_ms,
        )
        for i in range(profile.n_requests)
    ]
    oracle_by_id = {
        request.request_id: oracle[i % len(world.samples)]
        for i, request in enumerate(requests)
    }

    registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        engine = AASDEngine(
            world.target, _storm_head(world, profile), world.tokenizer,
            world.cost_model,
            AASDEngineConfig(
                gamma=GAMMA,
                max_new_tokens=world.max_new_tokens,
                fallback_on_fault=profile.fallback_on_fault,
                max_draft_faults=profile.max_draft_faults,
            ),
            rng=np.random.default_rng(ENGINE_SEED),
        )
        config = ServingConfig(
            max_batch_size=profile.max_batch_size,
            max_queue_depth=profile.max_queue_depth,
            resilience=resilience,
        )
        scheduler = ContinuousBatchingScheduler(engine, config)
        report = serve_requests(engine, requests, config, scheduler=scheduler)
    finally:
        set_registry(previous)

    identity = _check_identity(report.results, oracle_by_id)
    violations.extend(identity)
    violations.extend(_check_drained(report, scheduler))
    violations.extend(_check_reconciliation(report, scheduler, registry))

    n_completed = report.count("completed")
    return StormReport(
        profile=profile.name,
        n_requests=profile.n_requests,
        n_completed=n_completed,
        n_timeout=report.count("timeout"),
        n_rejected=report.count("rejected"),
        n_failed=report.count("failed"),
        n_retries=report.n_retries,
        n_shed=report.n_shed,
        availability=n_completed / profile.n_requests if profile.n_requests else 1.0,
        sim_ms=report.total_sim_ms,
        total_tokens=report.total_tokens,
        token_identical=not identity,
        breaker_transitions=report.breaker_transitions,
        checkpoint_error=checkpoint_error,
        violations=tuple(violations),
    )


def run_chaos(world: ChaosWorld,
              profiles: Optional[Sequence[StormProfile]] = None,
              quick: bool = False,
              work_dir: Optional[Path] = None) -> ChaosReport:
    """Run a storm suite (default: the four canonical storms).

    The clean oracle is computed once and shared across storms.
    """
    if profiles is None:
        profiles = default_profiles(quick=quick)
    oracle = clean_token_ids(world)
    return ChaosReport(storms=tuple(
        run_storm(profile, world, oracle=oracle, work_dir=work_dir)
        for profile in profiles
    ))


def assert_chaos(report: ChaosReport) -> None:
    """Raise :class:`~repro.errors.ChaosError` listing every violation."""
    if report.passed:
        return
    lines = []
    for storm in report.storms:
        for violation in storm.violations:
            lines.append(f"[{storm.profile}] {violation}")
    raise ChaosError("chaos invariants violated:\n" + "\n".join(lines))
