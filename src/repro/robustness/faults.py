"""Deterministic fault injectors for checkpoints, weights, and draft heads.

Everything here is reproducible from an explicit seed — no wall-clock or
global RNG — so a test that provokes a fault provokes exactly the same
fault on every run.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from ..errors import ConfigError
from ..nn.module import Module

__all__ = [
    "truncate_checkpoint",
    "flip_checkpoint_bytes",
    "corrupt_checkpoint",
    "inject_nan_weights",
    "FaultyDraftHead",
    "DraftFault",
]


class DraftFault(RuntimeError):
    """The exception :class:`FaultyDraftHead` raises in ``raise`` mode."""


def truncate_checkpoint(path: Path, keep_fraction: float = 0.5) -> Path:
    """Truncate a file to ``keep_fraction`` of its bytes (crash-mid-write)."""
    path = Path(path)
    if not 0.0 <= keep_fraction < 1.0:
        raise ConfigError(f"keep_fraction must be in [0, 1), got {keep_fraction}")
    data = path.read_bytes()
    path.write_bytes(data[: int(len(data) * keep_fraction)])
    return path


def flip_checkpoint_bytes(path: Path, n_flips: int = 8, seed: int = 0) -> Path:
    """XOR-flip ``n_flips`` random bytes in place (silent bit-rot)."""
    path = Path(path)
    if n_flips <= 0:
        raise ConfigError(f"n_flips must be positive, got {n_flips}")
    data = bytearray(path.read_bytes())
    if not data:
        return path
    rng = np.random.default_rng(seed)
    for offset in rng.integers(0, len(data), size=n_flips):
        data[offset] ^= 0xFF
    path.write_bytes(bytes(data))
    return path


def corrupt_checkpoint(path: Path, mode: str = "truncate", seed: int = 0) -> Path:
    """Corrupt a checkpoint file with the named fault mode."""
    if mode == "truncate":
        return truncate_checkpoint(path)
    if mode == "byteflip":
        return flip_checkpoint_bytes(path, seed=seed)
    raise ConfigError(f"unknown corruption mode {mode!r}; use 'truncate' or 'byteflip'")


def inject_nan_weights(module: Module, fraction: float = 0.05, seed: int = 0) -> int:
    """Overwrite a deterministic subset of parameter entries with NaN.

    Returns the number of poisoned scalars.  ``fraction`` applies per
    parameter tensor (at least one element each once fraction > 0).
    """
    if not 0.0 < fraction <= 1.0:
        raise ConfigError(f"fraction must be in (0, 1], got {fraction}")
    rng = np.random.default_rng(seed)
    n_poisoned = 0
    for _, param in module.named_parameters():
        n = max(1, int(param.data.size * fraction))
        idx = rng.choice(param.data.size, size=n, replace=False)
        np.put(param.data, idx, np.nan)
        n_poisoned += n
    return n_poisoned


class FaultyDraftHead:
    """Wraps an :class:`~repro.core.draft_head.AASDDraftHead`, injecting
    faults into ``step`` on a deterministic schedule.

    Modes
    -----
    * ``"nan-logits"`` — return an all-NaN logits row,
    * ``"inf-logits"`` — return an all-``+inf`` logits row,
    * ``"raise"``      — raise :class:`DraftFault`,
    * ``"corrupt-cache"`` — run the real step, then append a NaN entry to
      the hybrid cache's draft segment (tests the cache-invariant guard).

    ``fail_steps`` pins faults to exact step indices; otherwise every
    ``fail_every``-th step starting at ``start_step`` faults.  All other
    attributes delegate to the wrapped head, so the engine cannot tell the
    difference until a fault fires.
    """

    MODES = ("nan-logits", "inf-logits", "raise", "corrupt-cache")

    def __init__(
        self,
        head,
        mode: str = "nan-logits",
        fail_every: int = 1,
        start_step: int = 0,
        fail_steps: Optional[Sequence[int]] = None,
    ) -> None:
        if mode not in self.MODES:
            raise ConfigError(f"unknown fault mode {mode!r}; choose from {self.MODES}")
        if fail_every <= 0:
            raise ConfigError(f"fail_every must be positive, got {fail_every}")
        self._head = head
        self.mode = mode
        self.fail_every = fail_every
        self.start_step = start_step
        self.fail_steps = frozenset(fail_steps) if fail_steps is not None else None
        self.n_steps = 0
        self.n_faults = 0

    def __getattr__(self, name: str):
        return getattr(self._head, name)

    def _should_fail(self, step_index: int) -> bool:
        if self.fail_steps is not None:
            return step_index in self.fail_steps
        if step_index < self.start_step:
            return False
        return (step_index - self.start_step) % self.fail_every == 0

    def step(self, token_id: int, position: int, hybrid, **kwargs) -> np.ndarray:
        step_index = self.n_steps
        self.n_steps += 1
        if not self._should_fail(step_index):
            return self._head.step(token_id, position, hybrid, **kwargs)
        self.n_faults += 1
        if self.mode == "raise":
            raise DraftFault(f"injected draft fault at step {step_index}")
        if self.mode == "corrupt-cache":
            logits = self._head.step(token_id, position, hybrid, **kwargs)
            cfg = self._head.config
            bad = np.full((1, cfg.n_heads, 1, cfg.head_dim), np.nan, dtype=np.float32)
            hybrid.append_draft(bad, bad, np.asarray([position + 1], dtype=np.int64))
            return logits
        fill = np.nan if self.mode == "nan-logits" else np.inf
        return np.full(self._head.config.vocab_size, fill, dtype=np.float64)
