"""Deterministic fault injectors for checkpoints, weights, and draft heads.

Everything here is reproducible from an explicit seed — no wall-clock or
global RNG — so a test that provokes a fault provokes exactly the same
fault on every run.

Fault taxonomy
--------------
The serving retry path (``repro.serving.resilience``) needs to know
whether a fault is worth retrying.  Every injected draft fault therefore
carries a ``transient`` flag, and the taxonomy distinguishes:

==================== ========== ==========================================
fault type           transient  real-world analogue
==================== ========== ==========================================
:class:`DraftFault`  caller-set generic draft-module crash
:class:`LatencySpikeFault` yes  a draft forward timing out under load
:class:`ArenaPressureFault` yes KV-arena allocation failing under memory
                                pressure (clears when sessions retire)
:class:`NaNLogitsFault` no      mid-decode NaN logits from bad weights
==================== ========== ==========================================

:func:`is_transient` is the canonical classifier: retry layers should call
it rather than inspecting exception types themselves.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Dict, FrozenSet, Optional, Sequence

import numpy as np

from ..errors import ConfigError
from ..nn.module import Module

__all__ = [
    "truncate_checkpoint",
    "flip_checkpoint_bytes",
    "corrupt_checkpoint",
    "inject_nan_weights",
    "FaultyDraftHead",
    "DraftFault",
    "LatencySpikeFault",
    "ArenaPressureFault",
    "NaNLogitsFault",
    "is_transient",
]


class DraftFault(RuntimeError):
    """A draft-module failure injected (or classified) on the decode path.

    ``transient`` is the retry hint: transient faults model conditions
    that clear on their own (timeouts, memory pressure), so a serving
    layer may re-run the request; persistent faults will recur and should
    fail fast or degrade to target-only decoding instead.
    """

    def __init__(self, message: str = "", transient: bool = False) -> None:
        super().__init__(message)
        self.transient = transient


class LatencySpikeFault(DraftFault):
    """A draft forward exceeded its latency budget (transient by default)."""

    def __init__(self, message: str = "", transient: bool = True) -> None:
        super().__init__(message, transient)


class ArenaPressureFault(DraftFault):
    """KV-arena growth failed under memory pressure (transient by default:
    pressure clears as batch-mates retire and release their arenas)."""

    def __init__(self, message: str = "", transient: bool = True) -> None:
        super().__init__(message, transient)


class NaNLogitsFault(DraftFault):
    """Mid-decode NaN logits (persistent by default: bad weights recur)."""

    def __init__(self, message: str = "", transient: bool = False) -> None:
        super().__init__(message, transient)


def is_transient(exc: BaseException) -> bool:
    """True when ``exc`` models a fault that may clear on retry.

    The canonical taxonomy classifier for retry layers: any
    :class:`DraftFault` answers from its own ``transient`` flag; every
    other exception type is treated as persistent (retrying a logic error
    just burns the retry budget).
    """
    if isinstance(exc, DraftFault):
        return exc.transient
    return False


def truncate_checkpoint(path: Path, keep_fraction: float = 0.5) -> Path:
    """Truncate a file to ``keep_fraction`` of its bytes (crash-mid-write)."""
    path = Path(path)
    if not 0.0 <= keep_fraction < 1.0:
        raise ConfigError(f"keep_fraction must be in [0, 1), got {keep_fraction}")
    data = path.read_bytes()
    path.write_bytes(data[: int(len(data) * keep_fraction)])
    return path


def flip_checkpoint_bytes(path: Path, n_flips: int = 8, seed: int = 0) -> Path:
    """XOR-flip ``n_flips`` random bytes in place (silent bit-rot)."""
    path = Path(path)
    if n_flips <= 0:
        raise ConfigError(f"n_flips must be positive, got {n_flips}")
    data = bytearray(path.read_bytes())
    if not data:
        return path
    rng = np.random.default_rng(seed)
    for offset in rng.integers(0, len(data), size=n_flips):
        data[offset] ^= 0xFF
    path.write_bytes(bytes(data))
    return path


def corrupt_checkpoint(path: Path, mode: str = "truncate", seed: int = 0) -> Path:
    """Corrupt a checkpoint file with the named fault mode."""
    if mode == "truncate":
        return truncate_checkpoint(path)
    if mode == "byteflip":
        return flip_checkpoint_bytes(path, seed=seed)
    raise ConfigError(f"unknown corruption mode {mode!r}; use 'truncate' or 'byteflip'")


def inject_nan_weights(module: Module, fraction: float = 0.05, seed: int = 0) -> int:
    """Overwrite a deterministic subset of parameter entries with NaN.

    Returns the number of poisoned scalars.  ``fraction`` applies per
    parameter tensor (at least one element each once fraction > 0).
    """
    if not 0.0 < fraction <= 1.0:
        raise ConfigError(f"fraction must be in (0, 1], got {fraction}")
    rng = np.random.default_rng(seed)
    n_poisoned = 0
    for _, param in module.named_parameters():
        n = max(1, int(param.data.size * fraction))
        idx = rng.choice(param.data.size, size=n, replace=False)
        np.put(param.data, idx, np.nan)
        n_poisoned += n
    return n_poisoned


def _hash_unit(seed: int, tag: str) -> float:
    """Deterministic uniform in [0, 1) from (seed, tag) — no RNG object.

    SHA-256 based like :func:`repro.utils.rng.seed_sequence`, so the value
    is stable across processes and runs (Python's ``hash`` is salted and
    must not be used for fault schedules).
    """
    digest = hashlib.sha256(f"{seed}:{tag}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") / float(1 << 64)


class FaultyDraftHead:
    """Wraps an :class:`~repro.core.draft_head.AASDDraftHead`, injecting
    faults into ``step`` on a deterministic schedule.

    Modes
    -----
    * ``"nan-logits"`` — return an all-NaN logits row,
    * ``"inf-logits"`` — return an all-``+inf`` logits row,
    * ``"raise"``      — raise :class:`DraftFault` (``transient=`` sets
      the taxonomy flag on the raised fault),
    * ``"latency"``    — raise :class:`LatencySpikeFault` (transient),
    * ``"arena-pressure"`` — raise :class:`ArenaPressureFault` (transient),
    * ``"corrupt-cache"`` — run the real step, then append a NaN entry to
      the hybrid cache's draft segment (tests the cache-invariant guard).

    Scheduling
    ----------
    By default faults fire on a *global* step counter: ``fail_steps`` pins
    faults to exact step indices, otherwise every ``fail_every``-th step
    starting at ``start_step`` faults.  That counter is order-dependent
    when requests interleave in a batch, so two chaos runs with different
    scheduling orders fault different requests.

    ``per_request=True`` keys the schedule per request id instead: each
    request gets its own monotone step counter (never reset, so a retried
    request continues at the index where its last attempt died and a
    one-shot fault is not replayed forever), and ``fail_steps`` /
    ``fail_every`` apply to that request-local index.  Requires the caller
    to thread ``request_id`` into :meth:`step`, which the AASD engine does
    for every session.

    ``request_fault_rate`` builds a *storm* schedule on top: each request
    is independently afflicted with probability ``request_fault_rate``
    (deterministic in ``seed`` and the request id via SHA-256, so the
    afflicted set is identical regardless of scheduling order), and an
    afflicted request faults at ``faults_per_request`` derived step
    indices within its first ``fault_horizon`` steps.

    All other attributes delegate to the wrapped head, so the engine
    cannot tell the difference until a fault fires.
    """

    MODES = ("nan-logits", "inf-logits", "raise", "latency", "arena-pressure",
             "corrupt-cache")

    #: The fault schedules hook per-request ``step`` calls, so the engine
    #: must not route this wrapper through the packed lockstep path (a
    #: class attribute, because ``__getattr__`` delegation would otherwise
    #: surface the wrapped head's ``True``).
    supports_packed = False

    #: Same reasoning for the tree path: ``draft_tree`` would bypass the
    #: intercepted ``step``, so the engine keeps the linear draft path
    #: (where fault injection works) for wrapped heads.
    supports_tree = False

    def __init__(
        self,
        head,
        mode: str = "nan-logits",
        fail_every: int = 1,
        start_step: int = 0,
        fail_steps: Optional[Sequence[int]] = None,
        *,
        per_request: bool = False,
        seed: int = 0,
        request_fault_rate: Optional[float] = None,
        faults_per_request: int = 1,
        fault_horizon: int = 10,
        transient: bool = False,
    ) -> None:
        if mode not in self.MODES:
            raise ConfigError(f"unknown fault mode {mode!r}; choose from {self.MODES}")
        if fail_every <= 0:
            raise ConfigError(f"fail_every must be positive, got {fail_every}")
        if request_fault_rate is not None and not 0.0 <= request_fault_rate <= 1.0:
            raise ConfigError(
                f"request_fault_rate must be in [0, 1], got {request_fault_rate}"
            )
        if faults_per_request <= 0:
            raise ConfigError(
                f"faults_per_request must be positive, got {faults_per_request}"
            )
        if fault_horizon <= 0:
            raise ConfigError(f"fault_horizon must be positive, got {fault_horizon}")
        self._head = head
        self.mode = mode
        self.fail_every = fail_every
        self.start_step = start_step
        self.fail_steps = frozenset(fail_steps) if fail_steps is not None else None
        self.per_request = per_request or request_fault_rate is not None
        self.seed = seed
        self.request_fault_rate = request_fault_rate
        self.faults_per_request = faults_per_request
        self.fault_horizon = fault_horizon
        self.transient = transient
        self.n_steps = 0
        self.n_faults = 0
        self.steps_by_request: Dict[str, int] = {}
        self.faults_by_request: Dict[str, int] = {}

    def __getattr__(self, name: str):
        return getattr(self._head, name)

    # ------------------------------------------------------------------
    def storm_steps(self, request_id: str) -> FrozenSet[int]:
        """The step indices at which ``request_id`` faults under a storm
        schedule (empty when the request is not afflicted).

        Derived purely from ``(seed, request_id)``, so chaos harnesses can
        predict the afflicted set without running anything.
        """
        if self.request_fault_rate is None:
            return frozenset()
        if _hash_unit(self.seed, f"afflict:{request_id}") >= self.request_fault_rate:
            return frozenset()
        return frozenset(
            int(_hash_unit(self.seed, f"step:{request_id}:{j}") * self.fault_horizon)
            for j in range(self.faults_per_request)
        )

    def _should_fail(self, step_index: int, request_id: Optional[str]) -> bool:
        if self.request_fault_rate is not None:
            return step_index in self.storm_steps(request_id or "")
        if self.fail_steps is not None:
            return step_index in self.fail_steps
        if step_index < self.start_step:
            return False
        return (step_index - self.start_step) % self.fail_every == 0

    def _next_index(self, request_id: Optional[str]) -> int:
        """Advance and return the schedule index for this step."""
        self.n_steps += 1
        if not self.per_request:
            return self.n_steps - 1
        key = request_id or ""
        index = self.steps_by_request.get(key, 0)
        self.steps_by_request[key] = index + 1
        return index

    def step(self, token_id: int, position: int, hybrid, **kwargs) -> np.ndarray:
        request_id = kwargs.get("request_id")
        step_index = self._next_index(request_id)
        if not self._should_fail(step_index, request_id):
            return self._head.step(token_id, position, hybrid, **kwargs)
        self.n_faults += 1
        key = request_id or ""
        self.faults_by_request[key] = self.faults_by_request.get(key, 0) + 1
        where = f"step {step_index}" + (f" of {request_id}" if request_id else "")
        if self.mode == "raise":
            raise DraftFault(f"injected draft fault at {where}",
                             transient=self.transient)
        if self.mode == "latency":
            raise LatencySpikeFault(f"injected latency spike at {where}")
        if self.mode == "arena-pressure":
            raise ArenaPressureFault(f"injected arena pressure at {where}")
        if self.mode == "corrupt-cache":
            logits = self._head.step(token_id, position, hybrid, **kwargs)
            cfg = self._head.config
            bad = np.full((1, cfg.n_heads, 1, cfg.head_dim), np.nan, dtype=np.float32)
            hybrid.append_draft(bad, bad, np.asarray([position + 1], dtype=np.int64))
            return logits
        fill = np.nan if self.mode == "nan-logits" else np.inf
        return np.full(self._head.config.vocab_size, fill, dtype=np.float64)
