"""Runtime invariant validators for the graceful-degradation decode path.

All checks raise :class:`~repro.errors.GuardViolation` — the engine treats
that as a recoverable draft fault (skip the block, or disable speculation)
rather than a crash.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..errors import GuardViolation

if TYPE_CHECKING:  # imported lazily to avoid a cycle with repro.core.engine
    from ..core.hybrid_cache import HybridKVCache

__all__ = ["all_finite", "ensure_finite", "check_hybrid_cache"]


def all_finite(array: np.ndarray) -> bool:
    """True when every element of ``array`` is finite (no NaN/Inf)."""
    return bool(np.isfinite(np.asarray(array)).all())


def ensure_finite(array: np.ndarray, name: str = "array") -> np.ndarray:
    """Return ``array`` unchanged, or raise :class:`GuardViolation`."""
    array = np.asarray(array)
    if not np.isfinite(array).all():
        n_bad = int((~np.isfinite(array)).sum())
        raise GuardViolation(
            f"{name} contains {n_bad} non-finite value(s) "
            f"(shape {array.shape})"
        )
    return array


def check_hybrid_cache(cache: "HybridKVCache") -> None:
    """Validate the hybrid KV cache's structural and numeric invariants.

    Checks (via the public API only): K/V shape agreement, position-row
    alignment, segment bookkeeping consistency, non-negative positions,
    and finiteness of every cached entry.
    """
    k, v, positions, blocked = cache.gather()
    if k.shape != v.shape:
        raise GuardViolation(f"hybrid cache K/V shape mismatch: {k.shape} vs {v.shape}")
    total = cache.context_len + cache.draft_len
    if k.shape[2] != total:
        raise GuardViolation(
            f"hybrid cache length mismatch: K holds {k.shape[2]} entries, "
            f"bookkeeping says {total}"
        )
    if positions.shape != (total,):
        raise GuardViolation(
            f"hybrid cache positions shape {positions.shape} != ({total},)"
        )
    if blocked.shape != (total,):
        raise GuardViolation(
            f"hybrid cache blocked-mask shape {blocked.shape} != ({total},)"
        )
    if total and int(positions.min()) < 0:
        raise GuardViolation("hybrid cache contains negative key positions")
    n_vision, n_text = cache.segment_counts()
    if n_vision + n_text != cache.context_len:
        raise GuardViolation(
            f"hybrid cache segment counts ({n_vision} vision + {n_text} text) "
            f"do not sum to context length {cache.context_len}"
        )
    ensure_finite(k, "hybrid cache K")
    ensure_finite(v, "hybrid cache V")
