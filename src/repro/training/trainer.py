"""Generic training-loop scaffolding shared by every trainer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from ..errors import TrainingError
from ..nn.optim import Adam, clip_grad_norm
from ..nn.schedule import Schedule, warmup_cosine
from ..nn.tensor import Tensor
from ..obs.logsetup import get_logger
from ..obs.tracing import get_tracer

__all__ = ["TrainConfig", "TrainResult", "run_training"]

logger = get_logger(__name__)


@dataclass(frozen=True)
class TrainConfig:
    """Hyperparameters shared by all trainers."""

    steps: int = 300
    batch_size: int = 8
    lr: float = 3e-3
    warmup_steps: int = 20
    clip_norm: float = 1.0
    seed: int = 0
    log_every: int = 0   # 0 = silent

    def __post_init__(self) -> None:
        if self.steps <= 0 or self.batch_size <= 0:
            raise TrainingError("steps and batch_size must be positive")
        if self.warmup_steps >= self.steps:
            raise TrainingError("warmup_steps must be smaller than steps")


@dataclass
class TrainResult:
    """Loss curve and summary of one training run."""

    losses: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        if not self.losses:
            raise TrainingError("no training steps were run")
        tail = self.losses[-10:]
        return float(np.mean(tail))


def run_training(
    parameters,
    loss_fn: Callable[[int, np.random.Generator], Tensor],
    config: TrainConfig,
    rng: np.random.Generator,
    schedule: Optional[Schedule] = None,
) -> TrainResult:
    """Drive ``steps`` optimisation steps of ``loss_fn``.

    ``loss_fn(step, rng)`` builds a fresh batch and returns a scalar loss
    tensor; this helper owns the optimizer, LR schedule, clipping and
    divergence checks.
    """
    parameters = list(parameters)
    optimizer = Adam(parameters, lr=config.lr)
    if schedule is None:
        schedule = warmup_cosine(config.lr, config.warmup_steps, config.steps, min_lr=config.lr * 0.1)

    tracer = get_tracer()
    result = TrainResult()
    with tracer.span("train", steps=config.steps, batch_size=config.batch_size) as run_sp:
        for step in range(config.steps):
            with tracer.span("train_step") as sp:
                optimizer.lr = schedule(step)
                optimizer.zero_grad()
                loss = loss_fn(step, rng)
                value = loss.item()
                if not np.isfinite(value):
                    raise TrainingError(f"loss diverged to {value} at step {step}")
                loss.backward()
                if config.clip_norm > 0:
                    clip_grad_norm(parameters, config.clip_norm)
                optimizer.step()
                result.losses.append(value)
                sp.set_attr("loss", value)
            if config.log_every and step % config.log_every == 0:
                logger.info(
                    "step %5d  loss %.4f  lr %.2e",
                    step,
                    value,
                    optimizer.lr,
                    extra={"event": "train_step", "step": step, "loss": value,
                           "lr": optimizer.lr},
                )
        run_sp.set_attr("final_loss", result.losses[-1] if result.losses else None)
    return result
