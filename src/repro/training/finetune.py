"""Instruction finetuning: the target MLLM and the draft baselines.

Three entry points sharing one loop:

* :func:`finetune_target` — trains MiniLlava end to end on image-grounded
  prompt/response pairs (loss on the response region only),
* :func:`finetune_llava_draft` — same objective for the tiny LLaVA draft,
* :func:`finetune_text_draft` — the language-only draft, trained on the
  *text* of the same pairs without ever seeing an image (Gagrani et al.'s
  language-only-draft recipe).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..data.dataloader import IGNORE_INDEX, collate_multimodal
from ..data.tasks import MultimodalSample
from ..models.llama import MiniLlama
from ..models.llava import MiniLlava
from ..nn.tensor import Tensor
from ..tokenizer import WordTokenizer
from ..utils.rng import derive
from .losses import masked_cross_entropy
from .trainer import TrainConfig, TrainResult, run_training

__all__ = [
    "finetune_target",
    "finetune_multimodal_staged",
    "finetune_llava_draft",
    "finetune_text_draft",
]


def _sample_batch(samples: Sequence[MultimodalSample], size: int, gen: np.random.Generator):
    idx = gen.integers(0, len(samples), size=min(size, len(samples)))
    return [samples[int(i)] for i in idx]


def _multimodal_loss(model: MiniLlava, batch) -> Tensor:
    out = model.forward_train(batch.images, batch.text_ids)
    text_logits = model.text_slice(out.logits)
    return masked_cross_entropy(text_logits, batch.labels)


def finetune_target(
    model: MiniLlava,
    tokenizer: WordTokenizer,
    samples: Sequence[MultimodalSample],
    config: TrainConfig,
) -> TrainResult:
    """Train the target MLLM on image-grounded instruction data."""
    rng = derive(config.seed, "finetune-target")

    def loss_fn(step: int, gen: np.random.Generator) -> Tensor:
        batch = collate_multimodal(
            _sample_batch(samples, config.batch_size, gen), tokenizer
        )
        return _multimodal_loss(model, batch)

    return run_training(model.parameters(), loss_fn, config, rng)


def finetune_multimodal_staged(
    model: MiniLlava,
    tokenizer: WordTokenizer,
    samples: Sequence[MultimodalSample],
    align_config: TrainConfig,
    joint_config: TrainConfig,
) -> List[TrainResult]:
    """LLaVA's two-stage visual instruction tuning.

    Stage 1 (*feature alignment*): freeze the LM backbone and train only the
    vision encoder and connector, so visual features are forced to carry the
    image information (otherwise the language prior wins and the model learns
    to ignore the image — the classic MLLM training failure).
    Stage 2 (*joint finetune*): unfreeze everything.

    The LM backbone is expected to be language-pretrained already (see
    :func:`repro.training.pretrain.pretrain_lm`).
    """
    results: List[TrainResult] = []
    rng_align = derive(align_config.seed, "staged-align")

    def align_loss(step: int, gen: np.random.Generator) -> Tensor:
        batch = collate_multimodal(
            _sample_batch(samples, align_config.batch_size, gen), tokenizer
        )
        return _multimodal_loss(model, batch)

    align_params = [*model.vision.parameters(), *model.connector.parameters()]
    results.append(run_training(align_params, align_loss, align_config, rng_align))

    rng_joint = derive(joint_config.seed, "staged-joint")

    def joint_loss(step: int, gen: np.random.Generator) -> Tensor:
        batch = collate_multimodal(
            _sample_batch(samples, joint_config.batch_size, gen), tokenizer
        )
        return _multimodal_loss(model, batch)

    results.append(run_training(model.parameters(), joint_loss, joint_config, rng_joint))
    return results


def finetune_llava_draft(
    model: MiniLlava,
    tokenizer: WordTokenizer,
    samples: Sequence[MultimodalSample],
    config: TrainConfig,
) -> TrainResult:
    """Train the tiny multimodal draft (same objective, smaller model)."""
    rng = derive(config.seed, "finetune-llava-draft")

    def loss_fn(step: int, gen: np.random.Generator) -> Tensor:
        batch = collate_multimodal(
            _sample_batch(samples, config.batch_size, gen), tokenizer
        )
        return _multimodal_loss(model, batch)

    return run_training(model.parameters(), loss_fn, config, rng)


def _encode_text_rows(
    samples: Sequence[MultimodalSample], tokenizer: WordTokenizer
) -> List[np.ndarray]:
    rows = []
    for s in samples:
        prompt = [tokenizer.vocab.bos_id] + tokenizer.encode(s.prompt)
        response = tokenizer.encode(s.response) + [tokenizer.vocab.eos_id]
        rows.append((np.asarray(prompt + response, dtype=np.int64), len(prompt)))
    return rows


def finetune_text_draft(
    model: MiniLlama,
    tokenizer: WordTokenizer,
    samples: Sequence[MultimodalSample],
    config: TrainConfig,
) -> TrainResult:
    """Train the language-only draft on the text of the pairs (no images)."""
    rng = derive(config.seed, "finetune-text-draft")
    rows = _encode_text_rows(samples, tokenizer)
    pad = tokenizer.vocab.pad_id

    def loss_fn(step: int, gen: np.random.Generator) -> Tensor:
        idx = gen.integers(0, len(rows), size=min(config.batch_size, len(rows)))
        chosen = [rows[int(i)] for i in idx]
        max_len = max(len(r) for r, _ in chosen)
        ids = np.full((len(chosen), max_len), pad, dtype=np.int64)
        labels = np.full((len(chosen), max_len), IGNORE_INDEX, dtype=np.int64)
        for b, (row, p_len) in enumerate(chosen):
            ids[b, : len(row)] = row
            for t in range(p_len - 1, len(row) - 1):
                labels[b, t] = row[t + 1]
        out = model.forward(ids)
        return masked_cross_entropy(out.logits, labels)

    return run_training(model.parameters(), loss_fn, config, rng)
