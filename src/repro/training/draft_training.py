"""Aligned training of the AASD speculating module (paper Sec. 3.3).

Each step: run the frozen target teacher-forced over a batch, harvest its
last-layer KV (split into vision and text slices) and its output logits,
then train the draft head through Target-Draft Attention with a randomly
sampled draft depth ``s in 1..gamma_train`` — covering every attention
pattern the head will face at inference.  The loss is response-region cross
entropy plus a KL term against the target distribution; gradients reach the
head *and* the KV projector jointly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.draft_head import AASDDraftHead
from ..data.dataloader import IGNORE_INDEX, collate_multimodal
from ..data.tasks import MultimodalSample
from ..errors import TrainingError
from ..models.llava import MiniLlava
from ..nn.tensor import Tensor, no_grad
from ..tokenizer import WordTokenizer
from ..utils.rng import derive
from .losses import masked_cross_entropy, masked_kl_divergence, response_mask
from .trainer import TrainConfig, TrainResult, run_training

__all__ = ["DraftTrainConfig", "train_draft_head"]


@dataclass(frozen=True)
class DraftTrainConfig(TrainConfig):
    """TrainConfig plus the AASD-specific knobs."""

    gamma_train: int = 5    # draft depths sampled uniformly from 1..gamma_train
    kl_weight: float = 0.5  # weight of the distillation KL term

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.gamma_train < 1:
            raise TrainingError(f"gamma_train must be >= 1, got {self.gamma_train}")
        if self.kl_weight < 0:
            raise TrainingError(f"kl_weight must be >= 0, got {self.kl_weight}")


def train_draft_head(
    head: AASDDraftHead,
    target: MiniLlava,
    tokenizer: WordTokenizer,
    samples: Sequence[MultimodalSample],
    config: DraftTrainConfig,
) -> TrainResult:
    """Train ``head`` (and its projector) against a frozen ``target``."""
    if not samples:
        raise TrainingError("no training samples provided")
    rng = derive(config.seed, "draft-head")
    n_vis = target.n_vision_tokens
    target.eval()

    def loss_fn(step: int, gen: np.random.Generator) -> Tensor:
        idx = gen.integers(0, len(samples), size=min(config.batch_size, len(samples)))
        batch = collate_multimodal([samples[int(i)] for i in idx], tokenizer)

        with no_grad():
            out = target.forward_train(batch.images, batch.text_ids)
        k_full, v_full = out.last_layer_kv
        k_full, v_full = k_full.data, v_full.data
        teacher_logits = out.logits.data[:, n_vis:, :]

        if head.config.use_target_kv:
            k_vis, v_vis = k_full[:, :, :n_vis, :], v_full[:, :, :n_vis, :]
            k_txt, v_txt = k_full[:, :, n_vis:, :], v_full[:, :, n_vis:, :]
        else:
            k_vis = v_vis = k_txt = v_txt = None

        s = int(gen.integers(1, config.gamma_train + 1))
        logits = head.forward_train(
            batch.text_ids, k_txt, v_txt, k_vis, v_vis, s=s, position_offset=n_vis
        )

        # Acceptance is agreement with the *target*, not with ground truth:
        # supervise on the teacher's own greedy predictions (its mistakes
        # included), restricted to the response region.
        teacher_argmax = teacher_logits.argmax(axis=-1)
        mask = response_mask(batch.labels)
        ce_labels = np.where(mask, teacher_argmax, IGNORE_INDEX)
        loss = masked_cross_entropy(logits, ce_labels)
        if config.kl_weight > 0:
            loss = loss + config.kl_weight * masked_kl_divergence(
                teacher_logits, logits, mask=mask
            )
        return loss

    return run_training(head.parameters(), loss_fn, config, rng)
