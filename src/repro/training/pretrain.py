"""Causal-LM pretraining on the text-only corpus (RedPajama stand-in).

Used to initialise the small LLaMA draft baselines before instruction
finetuning or distillation, mirroring the paper's pipeline of pretraining a
112M LLaMA-2 on RedPajama-Data-1T-Sample.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..data.dataloader import pack_documents
from ..models.llama import MiniLlama
from ..nn import functional as F
from ..tokenizer import WordTokenizer
from ..utils.rng import derive
from .trainer import TrainConfig, TrainResult, run_training

__all__ = ["pretrain_lm"]


def pretrain_lm(
    model: MiniLlama,
    tokenizer: WordTokenizer,
    documents: Sequence[str],
    config: TrainConfig,
    seq_len: int = 48,
) -> TrainResult:
    """Next-token pretraining over packed documents."""
    rows = pack_documents(documents, tokenizer, seq_len=seq_len)
    rng = derive(config.seed, "pretrain")

    def loss_fn(step: int, gen: np.random.Generator):
        idx = gen.integers(0, rows.shape[0], size=min(config.batch_size, rows.shape[0]))
        batch = rows[idx]
        inputs, targets = batch[:, :-1], batch[:, 1:]
        out = model.forward(inputs)
        return F.cross_entropy(out.logits, targets)

    return run_training(model.parameters(), loss_fn, config, rng)
