"""Training pipelines: pretrain, finetune, distill, AASD draft training."""

from .distill import distill_llava_draft, distill_text_draft, generate_distillation_data
from .draft_training import DraftTrainConfig, train_draft_head
from .finetune import (
    finetune_llava_draft,
    finetune_multimodal_staged,
    finetune_target,
    finetune_text_draft,
)
from .losses import masked_cross_entropy, masked_kl_divergence, response_mask
from .pretrain import pretrain_lm
from .trainer import TrainConfig, TrainResult, run_training

__all__ = [
    "TrainConfig",
    "TrainResult",
    "run_training",
    "pretrain_lm",
    "finetune_target",
    "finetune_multimodal_staged",
    "finetune_llava_draft",
    "finetune_text_draft",
    "generate_distillation_data",
    "distill_text_draft",
    "distill_llava_draft",
    "DraftTrainConfig",
    "train_draft_head",
    "masked_cross_entropy",
    "masked_kl_divergence",
    "response_mask",
]
