"""Sequence-level knowledge distillation (Kim & Rush, 2016).

The DT-* baselines are trained on the *target model's own greedy outputs*
instead of ground-truth responses: first generate a distillation corpus,
then finetune the draft on it with the usual objectives.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Sequence

import numpy as np

from ..data.tasks import MultimodalSample
from ..models.generation import GenerationLimits, greedy_generate
from ..models.llava import MiniLlava
from ..tokenizer import WordTokenizer
from .finetune import finetune_llava_draft, finetune_text_draft
from .trainer import TrainConfig, TrainResult

__all__ = ["generate_distillation_data", "distill_text_draft", "distill_llava_draft"]


def generate_distillation_data(
    target: MiniLlava,
    tokenizer: WordTokenizer,
    samples: Sequence[MultimodalSample],
    max_new_tokens: int = 64,
) -> List[MultimodalSample]:
    """Replace each sample's response with the target's greedy output."""
    limits = GenerationLimits(max_new_tokens=max_new_tokens, eos_id=tokenizer.vocab.eos_id)
    distilled: List[MultimodalSample] = []
    for s in samples:
        prompt_ids = np.asarray(
            [tokenizer.vocab.bos_id] + tokenizer.encode(s.prompt), dtype=np.int64
        )
        generated = greedy_generate(target, s.image, prompt_ids, limits)
        text = tokenizer.decode(generated)
        if not text.strip():
            # Degenerate generation: keep the ground-truth response rather
            # than training the draft on empty strings.
            text = s.response
        distilled.append(
            MultimodalSample(
                image=s.image, prompt=s.prompt, response=text, task=s.task, scene=s.scene
            )
        )
    return distilled


def distill_text_draft(
    model,
    target: MiniLlava,
    tokenizer: WordTokenizer,
    samples: Sequence[MultimodalSample],
    config: TrainConfig,
    max_new_tokens: int = 64,
) -> TrainResult:
    """Seq-level distillation of the language-only draft."""
    data = generate_distillation_data(target, tokenizer, samples, max_new_tokens)
    return finetune_text_draft(model, tokenizer, data, replace(config, seed=config.seed + 1))


def distill_llava_draft(
    model: MiniLlava,
    target: MiniLlava,
    tokenizer: WordTokenizer,
    samples: Sequence[MultimodalSample],
    config: TrainConfig,
    max_new_tokens: int = 64,
) -> TrainResult:
    """Seq-level distillation of the tiny multimodal draft."""
    data = generate_distillation_data(target, tokenizer, samples, max_new_tokens)
    return finetune_llava_draft(model, tokenizer, data, replace(config, seed=config.seed + 1))
