"""Loss functions for target training, draft finetuning and distillation."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..data.dataloader import IGNORE_INDEX
from ..nn import functional as F
from ..nn.tensor import Tensor

__all__ = ["masked_cross_entropy", "masked_kl_divergence", "response_mask"]


def response_mask(labels: np.ndarray) -> np.ndarray:
    """Boolean mask of positions that carry a supervised label."""
    return np.asarray(labels) != IGNORE_INDEX


def masked_cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Cross entropy over positions where ``labels != IGNORE_INDEX``."""
    return F.cross_entropy(logits, labels, ignore_index=IGNORE_INDEX)


def masked_kl_divergence(
    teacher_logits: np.ndarray,
    student_logits: Tensor,
    mask: Optional[np.ndarray] = None,
) -> Tensor:
    """Mean KL(teacher || student) restricted to masked positions.

    ``teacher_logits`` is plain numpy (no gradient to the teacher); the mean
    is over unmasked positions only.
    """
    teacher = Tensor(np.asarray(teacher_logits))
    teacher_p = F.softmax(teacher, axis=-1)
    teacher_logp = F.log_softmax(teacher, axis=-1)
    student_logp = F.log_softmax(student_logits, axis=-1)
    per_pos = (teacher_p * (teacher_logp - student_logp)).sum(axis=-1)
    if mask is None:
        return per_pos.mean()
    mask = np.asarray(mask, dtype=bool)
    count = float(mask.sum())
    if count == 0:
        raise ValueError("masked_kl_divergence: empty mask")
    return per_pos.masked_fill(~mask, 0.0).sum() * (1.0 / count)
