"""Continuous-batching serving layer over :class:`~repro.core.engine.AASDEngine`.

The subsystem has three parts (see ``docs/serving.md``):

* :mod:`~repro.serving.request` — the request/response types
  (:class:`ServeRequest`, :class:`ServeResult`, :class:`ServeHandle`);
* :mod:`~repro.serving.queue` — bounded FIFO admission control
  (:class:`AdmissionQueue`, raising
  :class:`~repro.errors.AdmissionError` on overload);
* :mod:`~repro.serving.scheduler` — the continuous-batching round loop
  (:class:`ContinuousBatchingScheduler`) and the synchronous
  :func:`serve_requests` facade for offline throughput runs;
* :mod:`~repro.serving.resilience` — retry / circuit-breaker / shedding
  policies (:class:`ResilienceConfig`), wired into the scheduler via
  ``ServingConfig(resilience=...)``.
"""

from .queue import AdmissionQueue
from .request import (
    STATUS_COMPLETED,
    STATUS_FAILED,
    STATUS_REJECTED,
    STATUS_TIMEOUT,
    ServeHandle,
    ServeRequest,
    ServeResult,
)
from .resilience import (
    BreakerConfig,
    CircuitBreaker,
    ResilienceConfig,
    RetryPolicy,
    ShedConfig,
)
from .scheduler import (
    ContinuousBatchingScheduler,
    ServingConfig,
    ServingReport,
    serve_requests,
)

__all__ = [
    "ServeRequest",
    "ServeResult",
    "ServeHandle",
    "STATUS_COMPLETED",
    "STATUS_TIMEOUT",
    "STATUS_REJECTED",
    "STATUS_FAILED",
    "AdmissionQueue",
    "ServingConfig",
    "ServingReport",
    "ContinuousBatchingScheduler",
    "serve_requests",
    "RetryPolicy",
    "BreakerConfig",
    "CircuitBreaker",
    "ShedConfig",
    "ResilienceConfig",
]
