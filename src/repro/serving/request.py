"""Request/response types of the serving layer.

A :class:`ServeRequest` is one user generation job; submitting it to the
scheduler yields a :class:`ServeHandle`, which resolves to a
:class:`ServeResult` once the request leaves the system.  All timestamps
are *server simulated-clock* milliseconds (see :mod:`repro.serving.scheduler`),
so queueing and service latency compose with the cost-model decode times.

A request ends in exactly one of four states:

========== =============================================================
status     meaning
========== =============================================================
completed  decoded to eos / token budget; ``record`` holds the output
timeout    deadline passed (queued or mid-batch); partial ``record``
rejected   refused at admission (queue full or invalid request)
failed     an exception escaped decode; other requests were unaffected
========== =============================================================
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional

from ..data.tasks import MultimodalSample
from ..decoding.metrics import DecodeRecord
from ..errors import ServingError

__all__ = [
    "ServeRequest",
    "ServeResult",
    "ServeHandle",
    "STATUS_COMPLETED",
    "STATUS_TIMEOUT",
    "STATUS_REJECTED",
    "STATUS_FAILED",
]

STATUS_COMPLETED = "completed"
STATUS_TIMEOUT = "timeout"
STATUS_REJECTED = "rejected"
STATUS_FAILED = "failed"

#: All terminal request states, for validation.
_STATUSES = (STATUS_COMPLETED, STATUS_TIMEOUT, STATUS_REJECTED, STATUS_FAILED)


@dataclass(frozen=True)
class ServeRequest:
    """One generation job as submitted by a client.

    ``gamma`` pins the speculation depth for this request; the scheduler
    only batches requests with the same effective depth together (see
    "Batch compatibility" in :mod:`repro.serving.scheduler`).  ``None``
    means "use the engine's configured depth".  ``deadline_ms`` is a
    relative budget: the request times out once the server clock advances
    that far past its submission.
    """

    request_id: str                          #: caller-chosen unique id
    sample: MultimodalSample                 #: image + prompt to decode
    max_new_tokens: Optional[int] = None     #: per-request budget override
    deadline_ms: Optional[float] = None      #: relative deadline (server sim ms)
    gamma: Optional[int] = None              #: per-request speculation depth

    def __post_init__(self) -> None:
        """Validate the per-request overrides."""
        if not self.request_id:
            raise ServingError("request_id must be non-empty")
        if self.max_new_tokens is not None and self.max_new_tokens <= 0:
            raise ServingError(
                f"max_new_tokens must be positive, got {self.max_new_tokens}"
            )
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ServingError(f"deadline_ms must be positive, got {self.deadline_ms}")
        if self.gamma is not None and self.gamma <= 0:
            raise ServingError(f"gamma must be positive, got {self.gamma}")


@dataclass(frozen=True)
class ServeResult:
    """Terminal outcome of one request.

    ``record`` is the request's own solo-priced
    :class:`~repro.decoding.metrics.DecodeRecord` — present whenever the
    request was admitted (for ``timeout`` and ``failed`` it holds the
    tokens committed before the deadline/fault), ``None`` for requests
    that never started.
    """

    request_id: str
    status: str                              #: one of the ``STATUS_*`` constants
    record: Optional[DecodeRecord] = None    #: per-request decode metrics
    error: Optional[str] = None              #: failure / rejection reason
    submitted_ms: float = 0.0                #: server clock at submission
    started_ms: Optional[float] = None       #: server clock at admission (prefill)
    finished_ms: Optional[float] = None      #: server clock at retirement

    def __post_init__(self) -> None:
        """Reject unknown status strings early."""
        if self.status not in _STATUSES:
            raise ServingError(f"unknown status {self.status!r}; expected {_STATUSES}")

    @property
    def ok(self) -> bool:
        """True when the request produced a complete generation."""
        return self.status == STATUS_COMPLETED

    @property
    def queue_ms(self) -> Optional[float]:
        """Server ms spent waiting for admission (None if never admitted)."""
        if self.started_ms is None:
            return None
        return self.started_ms - self.submitted_ms

    @property
    def service_ms(self) -> Optional[float]:
        """Server ms spent in the batch, prefill included (None if never admitted)."""
        if self.started_ms is None or self.finished_ms is None:
            return None
        return self.finished_ms - self.started_ms


class ServeHandle:
    """Future-like view of a submitted request.

    The scheduler resolves the handle exactly once; :meth:`result` blocks
    on a :class:`threading.Event` so a driver thread can feed the scheduler
    while client threads wait.  In the synchronous
    :func:`~repro.serving.scheduler.serve_requests` facade everything runs
    on one thread and the event is already set by the time it is read.
    """

    def __init__(self, request: ServeRequest, submitted_ms: float) -> None:
        self.request = request
        self.submitted_ms = submitted_ms
        self._done = threading.Event()
        self._result: Optional[ServeResult] = None

    @property
    def request_id(self) -> str:
        """The wrapped request's id."""
        return self.request.request_id

    @property
    def done(self) -> bool:
        """True once a terminal :class:`ServeResult` is available."""
        return self._done.is_set()

    def resolve(self, result: ServeResult) -> None:
        """Set the terminal result (scheduler-internal; one-shot)."""
        if self._done.is_set():
            raise ServingError(f"request {self.request_id!r} already resolved")
        self._result = result
        self._done.set()

    def result(self, timeout: Optional[float] = None) -> ServeResult:
        """Block until resolved and return the :class:`ServeResult`."""
        if not self._done.wait(timeout):
            raise ServingError(
                f"request {self.request_id!r} not resolved within {timeout}s"
            )
        assert self._result is not None
        return self._result

    def __repr__(self) -> str:
        status = self._result.status if self._result else "pending"
        return f"ServeHandle({self.request_id!r}, {status})"


def expiry_ms(handle: ServeHandle) -> Optional[float]:
    """Absolute server-clock deadline of a handle (None = no deadline)."""
    deadline = handle.request.deadline_ms
    if deadline is None:
        return None
    return handle.submitted_ms + deadline
