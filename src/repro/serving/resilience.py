"""Resilience policies for the serving tier: retry, breaker, shedding.

The policies are plain data + small state machines; the scheduler in
:mod:`repro.serving.scheduler` owns *when* they fire.  Everything is
deterministic given the policy seeds and the request stream, which is what
lets the chaos harness (:mod:`repro.robustness.chaos`) assert exact
token-identity and metric reconciliation after a fault storm.

* :class:`RetryPolicy` — exponential backoff with deterministic
  per-(request, attempt) jitter and a bounded retry budget.  Only faults
  classified transient by :func:`repro.robustness.faults.is_transient` are
  retried; retried requests restart from a fresh prefill with the engine
  RNG replayed, so their output is token-identical to a clean run.
* :class:`CircuitBreaker` + :class:`BreakerConfig` — a closed / open /
  half-open state machine over per-round acceptance and draft-fault rates.
  While open the scheduler forces target-only decoding; after a cooldown
  the breaker half-opens and probes speculation for a few rounds before
  re-closing (hysteresis: the re-close bar is higher than the open bar).
* :class:`ShedConfig` — load-shedding policy applied when queued requests
  wait longer than ``max_queue_ms``: ``reject-newest`` drains the youngest
  queued requests down to a target depth, ``reject-over-deadline`` drops
  exactly the queued requests that could not meet their deadline anyway.
* :class:`ResilienceConfig` — the bundle handed to
  :class:`~repro.serving.scheduler.ServingConfig`; ``None`` fields disable
  the corresponding policy, and a ``None`` bundle keeps the scheduler's
  legacy (fail-fast) behavior bit-for-bit.

See the "Resilience policies" section of ``docs/robustness.md``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import ServingError
from ..obs.metrics import get_registry

__all__ = [
    "RetryPolicy",
    "BreakerConfig",
    "CircuitBreaker",
    "ShedConfig",
    "ResilienceConfig",
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
    "SHED_REJECT_NEWEST",
    "SHED_REJECT_OVER_DEADLINE",
]

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"

#: Gauge encoding of breaker states (``resilience.breaker_state``).
_STATE_GAUGE = {BREAKER_CLOSED: 0, BREAKER_HALF_OPEN: 1, BREAKER_OPEN: 2}
#: Counter-name suffix per state (dashes are not metric-name friendly).
_STATE_SUFFIX = {BREAKER_CLOSED: "closed", BREAKER_HALF_OPEN: "half_open",
                 BREAKER_OPEN: "opened"}

SHED_REJECT_NEWEST = "reject-newest"
SHED_REJECT_OVER_DEADLINE = "reject-over-deadline"
_SHED_POLICIES = (SHED_REJECT_NEWEST, SHED_REJECT_OVER_DEADLINE)


def _hash_unit(seed: int, tag: str) -> float:
    """Deterministic uniform in [0, 1) from (seed, tag), SHA-256 based."""
    digest = hashlib.sha256(f"{seed}:{tag}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") / float(1 << 64)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter and a retry budget.

    ``backoff_ms(request_id, attempt)`` is a pure function of the policy
    seed, the request id, and the attempt index, so two chaos runs with
    the same seeds produce identical retry timelines regardless of
    scheduling order.  Attempt 0 is the first *retry* (the original run
    is not an attempt).
    """

    max_retries: int = 2            #: retries per request after the first run
    base_backoff_ms: float = 20.0   #: delay before the first retry
    backoff_multiplier: float = 2.0  #: growth factor per further attempt
    max_backoff_ms: float = 500.0   #: cap on the exponential term
    jitter_ms: float = 5.0          #: deterministic de-synchronization spread
    seed: int = 0                   #: jitter seed

    def __post_init__(self) -> None:
        """Validate the policy knobs."""
        if self.max_retries <= 0:
            raise ServingError(f"max_retries must be positive, got {self.max_retries}")
        if self.base_backoff_ms < 0 or self.jitter_ms < 0:
            raise ServingError("backoff and jitter must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ServingError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}"
            )

    def backoff_ms(self, request_id: str, attempt: int) -> float:
        """Server-ms delay before retry number ``attempt`` (0-based)."""
        delay = min(
            self.base_backoff_ms * self.backoff_multiplier ** attempt,
            self.max_backoff_ms,
        )
        return delay + self.jitter_ms * _hash_unit(self.seed, f"{request_id}:{attempt}")


@dataclass(frozen=True)
class BreakerConfig:
    """Thresholds of the speculation circuit breaker.

    The breaker watches a rolling window of scheduler rounds.  It opens
    when drafting is net-negative — acceptance below
    ``open_below_acceptance`` or draft faults above
    ``open_above_fault_rate`` per round — and, after ``cooldown_rounds``
    of target-only decoding, half-opens to probe speculation for
    ``probe_rounds``.  Probes must clear ``reclose_above_acceptance``
    (strictly above the open bar: hysteresis) to close the breaker again;
    otherwise it re-opens for another cooldown.
    """

    window: int = 8                       #: rolling window, in rounds
    min_drafted: int = 16                 #: draft tokens required to judge acceptance
    open_below_acceptance: float = 0.15   #: open when window acceptance < this
    open_above_fault_rate: float = 0.5    #: open when faults/round >= this
    cooldown_rounds: int = 4              #: open duration before probing
    probe_rounds: int = 2                 #: half-open probes before judging
    reclose_above_acceptance: float = 0.3  #: probes must beat this to close

    def __post_init__(self) -> None:
        """Validate thresholds, including the hysteresis ordering."""
        if self.window <= 0 or self.cooldown_rounds <= 0 or self.probe_rounds <= 0:
            raise ServingError("window, cooldown_rounds, probe_rounds must be positive")
        if self.min_drafted <= 0:
            raise ServingError(f"min_drafted must be positive, got {self.min_drafted}")
        if not 0.0 <= self.open_below_acceptance <= 1.0:
            raise ServingError("open_below_acceptance must be in [0, 1]")
        if self.reclose_above_acceptance < self.open_below_acceptance:
            raise ServingError(
                "reclose_above_acceptance must be >= open_below_acceptance "
                "(hysteresis), got "
                f"{self.reclose_above_acceptance} < {self.open_below_acceptance}"
            )
        if self.open_above_fault_rate < 0:
            raise ServingError("open_above_fault_rate must be non-negative")


class CircuitBreaker:
    """Closed / open / half-open state machine over speculation health.

    The scheduler calls :meth:`observe_round` exactly once per round with
    that round's draft/accept/fault totals, and consults
    :attr:`force_fallback` before stepping sessions.  State changes are
    published to the *current* metrics registry (gauge
    ``resilience.breaker_state`` plus ``resilience.breaker_*_total``
    counters) and recorded on :attr:`transitions` for exact reconciliation
    by the chaos harness.
    """

    def __init__(self, config: Optional[BreakerConfig] = None) -> None:
        self.config = config or BreakerConfig()
        self.state = BREAKER_CLOSED
        self.n_rounds = 0
        #: ``(round_index, from_state, to_state)`` per transition.
        self.transitions: List[Tuple[int, str, str]] = []
        self._window: List[Tuple[int, int, int]] = []   # (drafted, accepted, faults)
        self._rounds_open = 0
        self._probes: List[Tuple[int, int, int]] = []
        get_registry().gauge("resilience.breaker_state").set(_STATE_GAUGE[self.state])

    @property
    def force_fallback(self) -> bool:
        """True while the batch must decode target-only (breaker open)."""
        return self.state == BREAKER_OPEN

    def _transition(self, new_state: str) -> None:
        old, self.state = self.state, new_state
        self.transitions.append((self.n_rounds, old, new_state))
        registry = get_registry()
        registry.gauge("resilience.breaker_state").set(_STATE_GAUGE[new_state])
        registry.counter("resilience.breaker_transitions_total").inc()
        registry.counter(
            f"resilience.breaker_{_STATE_SUFFIX[new_state]}_total"
        ).inc()

    @staticmethod
    def _acceptance(rows: List[Tuple[int, int, int]]) -> Tuple[int, float]:
        drafted = sum(r[0] for r in rows)
        accepted = sum(r[1] for r in rows)
        return drafted, (accepted / drafted if drafted else 0.0)

    def observe_round(self, n_drafted: int, n_accepted: int, n_faults: int) -> None:
        """Feed one scheduler round's speculation totals into the machine."""
        self.n_rounds += 1
        cfg = self.config
        if self.state == BREAKER_OPEN:
            self._rounds_open += 1
            if self._rounds_open >= cfg.cooldown_rounds:
                self._probes = []
                self._transition(BREAKER_HALF_OPEN)
            return
        if self.state == BREAKER_HALF_OPEN:
            # Only rounds that actually speculated count as probes (an
            # idle round proves nothing about drafting health).
            if n_drafted == 0 and n_faults == 0:
                return
            self._probes.append((n_drafted, n_accepted, n_faults))
            if any(r[2] for r in self._probes):
                self._reopen()
                return
            if len(self._probes) >= cfg.probe_rounds:
                _, acceptance = self._acceptance(self._probes)
                if acceptance > cfg.reclose_above_acceptance:
                    self._window = []
                    self._transition(BREAKER_CLOSED)
                else:
                    self._reopen()
            return
        # closed: maintain the rolling window and check the open bars
        self._window.append((n_drafted, n_accepted, n_faults))
        if len(self._window) > cfg.window:
            del self._window[0]
        if len(self._window) < cfg.window:
            return
        faults_per_round = sum(r[2] for r in self._window) / len(self._window)
        drafted, acceptance = self._acceptance(self._window)
        if faults_per_round >= cfg.open_above_fault_rate or (
            drafted >= cfg.min_drafted and acceptance < cfg.open_below_acceptance
        ):
            self._reopen()

    def _reopen(self) -> None:
        self._rounds_open = 0
        self._window = []
        self._transition(BREAKER_OPEN)


@dataclass(frozen=True)
class ShedConfig:
    """Load-shedding policy under queue-time pressure.

    Pressure is "the oldest queued request has waited longer than
    ``max_queue_ms``".  ``reject-newest`` sheds from the tail of the queue
    down to ``shed_target_depth`` (default: half the queue bound),
    preserving the oldest work already closest to service;
    ``reject-over-deadline`` sheds exactly the queued requests whose
    deadline cannot be met even if admitted immediately.
    """

    max_queue_ms: float                   #: pressure threshold (oldest wait)
    policy: str = SHED_REJECT_NEWEST
    shed_target_depth: Optional[int] = None  #: reject-newest drain target

    def __post_init__(self) -> None:
        """Validate the shed policy."""
        if self.max_queue_ms <= 0:
            raise ServingError(f"max_queue_ms must be positive, got {self.max_queue_ms}")
        if self.policy not in _SHED_POLICIES:
            raise ServingError(
                f"unknown shed policy {self.policy!r}; choose from {_SHED_POLICIES}"
            )
        if self.shed_target_depth is not None and self.shed_target_depth < 0:
            raise ServingError("shed_target_depth must be non-negative")


@dataclass(frozen=True)
class ResilienceConfig:
    """Bundle of serving-tier resilience policies.

    Any field left ``None`` disables that policy;
    ``ServingConfig(resilience=None)`` (the default) keeps the scheduler's
    legacy fail-fast behavior exactly.  ``deadline_in_round`` additionally
    enforces deadlines *inside* draft/verify rounds via the engine's
    ``budget_ms`` check, so an expired request stops consuming batch
    compute mid-round.
    """

    retry: Optional[RetryPolicy] = None
    breaker: Optional[BreakerConfig] = None
    shed: Optional[ShedConfig] = None
    deadline_in_round: bool = True
