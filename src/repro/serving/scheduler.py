"""Continuous-batching scheduler over :class:`~repro.core.engine.AASDEngine`.

How batching works here
-----------------------
The engine's session API (:meth:`~repro.core.engine.AASDEngine.begin` /
:meth:`~repro.core.engine.AASDEngine.step`) keeps every piece of mutable
decode state on the :class:`~repro.core.engine.DecodeSession`, so the
scheduler can interleave many in-flight generations over one engine.  Each
scheduler *round* advances every active session by exactly one
draft-then-verify block; new requests join at these block boundaries (a
batched prefill) and finished ones retire without stalling the rest —
classic continuous batching.

Execution *and* pricing are batched.  When the engine is
:attr:`~repro.core.engine.AASDEngine.packed_ready` (a packable draft head
and greedy sampling) and the round holds more than one session, the
scheduler drives the engine's packed batched calls
(:meth:`~repro.core.engine.AASDEngine.begin_batch` /
:meth:`~repro.core.engine.AASDEngine.step_batch`): each round's prefills
and verify forwards run as one cu-seqlen-packed set of fused GEMMs and its
draft steps in ``(B, 1, D)`` lockstep — see ``docs/kernels.md`` — with
outputs bitwise token-identical to per-session stepping.  Otherwise
(fault-injection wrappers, non-greedy sampling, a batch of one, or a
breaker-forced fallback round) execution falls back to per-session numpy.
Either way the **server clock** is charged as if each round's draft steps
and target forwards ran as single batched GPU forwards, using the
``batched_*`` prices of :class:`~repro.decoding.cost_model.CostModel`
(memory-bound batching: base cost paid once per forward, per-token work
summed, small per-sequence increment).  Each session's own
:class:`~repro.decoding.metrics.DecodeRecord` is still charged solo prices
by the engine, so per-request attribution is identical to sequential
decoding — and with one request in the system every round reduces exactly
to the sequential prices, which the equivalence tests pin down.

Batch compatibility
-------------------
A batch only mixes requests with the same speculation depth (the paper's
gamma): requests pinning a different ``gamma`` wait in the queue until the
current batch drains, mirroring how a real server groups requests whose
draft/verify tensor shapes can share a forward.  The model is trivially
"the same" — one scheduler serves one engine.

Backpressure and deadlines
--------------------------
Admission control is a bounded queue (:class:`~repro.serving.queue.AdmissionQueue`)
raising :class:`~repro.errors.AdmissionError` when full.  Deadlines are
relative simulated-ms budgets checked both while queued and after every
round, so an expired request is retired mid-batch with the tokens it
committed so far.

Resilience
----------
``ServingConfig(resilience=ResilienceConfig(...))`` layers the policies of
:mod:`repro.serving.resilience` onto the round loop; the default ``None``
keeps the legacy fail-fast behavior exactly.  With a
:class:`~repro.serving.resilience.RetryPolicy`, a session that dies on a
*transient* fault (per :func:`repro.robustness.faults.is_transient`) is
dropped and re-enqueued after a deterministic backoff: the retry restarts
from a fresh prefill with the engine RNG restored to its pre-request
snapshot, so — under greedy sampling, where decoding consumes no RNG draws
— the retried output is token-identical to a clean run.  With a
:class:`~repro.serving.resilience.BreakerConfig`, a circuit breaker watches
per-round acceptance/fault rates and forces the whole batch target-only
while open.  With a :class:`~repro.serving.resilience.ShedConfig`, queued
requests are shed under queue-time pressure.  ``deadline_in_round=True``
passes each session's remaining budget into
:meth:`~repro.core.engine.AASDEngine.step` so a request expiring mid-round
stops before its verify forward.

Observability
-------------
Every round runs inside a ``schedule`` span (feeding the
``span_ms.schedule`` histogram when tracing is enabled with a registry),
each per-request prefill/step inside a ``request`` span tagged with the
request id, and the registry carries ``serving.queue_depth`` /
``serving.batch_occupancy`` / ``serving.kv_tokens`` gauges plus
``serving.requests_*_total`` counters.  Retired sessions fold their
KV-arena accounting into ``scheduler.memory`` (surfaced as
``bytes_copied`` / ``arena_grows`` / ``peak_cache_tokens`` on the
:class:`ServingReport`); see ``docs/performance.md``.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field as dataclasses_field
from itertools import zip_longest
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..core.engine import AASDEngine, DecodeSession, StepReport
from ..core.kv_arena import ArenaStats
from ..data.tasks import MultimodalSample
from ..decoding.adaptive import FixedGamma, GammaController
from ..decoding.metrics import DecodeRecord
from ..errors import AdmissionError, ServingError
from ..obs.logsetup import get_logger, log_exception
from ..obs.metrics import exact_quantile, get_registry
from ..obs.profile import summarize_latencies
from ..robustness.faults import is_transient
from ..utils.timing import SimulatedClock
from .queue import AdmissionQueue
from .resilience import (
    CircuitBreaker,
    ResilienceConfig,
    RetryPolicy,
    ShedConfig,
    SHED_REJECT_NEWEST,
)
from .request import (
    STATUS_COMPLETED,
    STATUS_FAILED,
    STATUS_REJECTED,
    STATUS_TIMEOUT,
    ServeHandle,
    ServeRequest,
    ServeResult,
    expiry_ms,
)

__all__ = [
    "ServingConfig",
    "ServingReport",
    "ContinuousBatchingScheduler",
    "serve_requests",
]

logger = get_logger(__name__)


@dataclass(frozen=True)
class ServingConfig:
    """Scheduler knobs: batch width, queue bound, per-session gamma policy."""

    max_batch_size: int = 8     #: sessions advanced per round
    max_queue_depth: int = 64   #: admission-control bound (backpressure)
    #: Optional per-session controller factory (e.g. ``AdaptiveGamma``);
    #: default is a fresh ``FixedGamma`` at the request's effective depth.
    gamma_controller_factory: Optional[Callable[[], GammaController]] = None
    #: Resilience policies (retry / breaker / shedding / in-round
    #: deadlines); ``None`` keeps the legacy fail-fast behavior exactly.
    resilience: Optional[ResilienceConfig] = None

    def __post_init__(self) -> None:
        """Validate the scheduler knobs."""
        if self.max_batch_size <= 0:
            raise ServingError(f"max_batch_size must be positive, got {self.max_batch_size}")
        if self.max_queue_depth <= 0:
            raise ServingError(f"max_queue_depth must be positive, got {self.max_queue_depth}")


@dataclass(frozen=True)
class ServingReport:
    """Aggregate outcome of one :func:`serve_requests` run."""

    results: Tuple[ServeResult, ...]        #: one per request, input order
    total_sim_ms: float                     #: server clock total
    sim_by_category: Dict[str, float]       #: server ms per phase
    n_rounds: int                           #: scheduler rounds executed
    max_batch_occupancy: int                #: widest batch observed
    bytes_copied: int = 0                   #: KV-arena bytes memcpy'd, all sessions
    arena_grows: int = 0                    #: KV-arena buffer reallocations
    peak_cache_tokens: int = 0              #: longest per-session KV seen
    n_retries: int = 0                      #: transient-fault retries scheduled
    n_shed: int = 0                         #: requests shed under queue pressure
    #: breaker ``(round, from, to)`` transitions, in order (empty = no breaker)
    breaker_transitions: Tuple[Tuple[int, str, str], ...] = ()
    #: per-metric latency digests on the server clock:
    #: ``{"ttft_ms"|"tpot_ms"|"e2e_ms": {count, mean, p50, p95, p99}}``
    latency_ms: Dict[str, Dict[str, float]] = dataclasses_field(default_factory=dict)
    #: committed tokens per target forward across all requests (prefill and
    #: fallback forwards included; 0.0 when nothing ran) — the headline
    #: number tree speculation moves.
    accepted_per_target_forward: float = 0.0
    block_efficiency_p50: float = 0.0       #: median tokens emitted per verify block
    block_efficiency_p95: float = 0.0       #: p95 tokens emitted per verify block

    @property
    def total_tokens(self) -> int:
        """Tokens committed across all requests (partial outputs included)."""
        return sum(r.record.n_tokens for r in self.results if r.record is not None)

    @property
    def tokens_per_s(self) -> float:
        """Aggregate decoding speed on the server's simulated clock."""
        if self.total_sim_ms <= 0:
            return 0.0
        return self.total_tokens / (self.total_sim_ms / 1000.0)

    def count(self, status: str) -> int:
        """Number of requests that ended in ``status``."""
        return sum(1 for r in self.results if r.status == status)

    def summary(self) -> Dict[str, object]:
        """Flat dict for logging / table rendering."""
        return {
            "n_requests": len(self.results),
            "completed": self.count(STATUS_COMPLETED),
            "timeout": self.count(STATUS_TIMEOUT),
            "rejected": self.count(STATUS_REJECTED),
            "failed": self.count(STATUS_FAILED),
            "total_tokens": self.total_tokens,
            "total_sim_ms": self.total_sim_ms,
            "tokens_per_s": self.tokens_per_s,
            "n_rounds": self.n_rounds,
            "max_batch_occupancy": self.max_batch_occupancy,
            "bytes_copied": self.bytes_copied,
            "arena_grows": self.arena_grows,
            "peak_cache_tokens": self.peak_cache_tokens,
            "n_retries": self.n_retries,
            "n_shed": self.n_shed,
            "breaker_transitions": len(self.breaker_transitions),
            "accepted_per_target_forward": self.accepted_per_target_forward,
            "block_efficiency_p50": self.block_efficiency_p50,
            "block_efficiency_p95": self.block_efficiency_p95,
            **{
                f"{metric}_{stat}": value
                for metric, digest in sorted(self.latency_ms.items())
                for stat, value in sorted(digest.items())
                if stat.startswith("p")
            },
        }


@dataclass
class _Active:
    """Scheduler-internal pairing of a handle with its live session."""

    handle: ServeHandle
    session: DecodeSession
    started_ms: float   #: server clock at admission
    n_faults_seen: int = 0   #: record.n_draft_faults already reported to the breaker
    #: server clock when the first token was committed (after the round's
    #: batched prefill charge); None only for sessions that never prefilled.
    first_token_ms: Optional[float] = None


@dataclass
class _RetryState:
    """Scheduler-internal retry bookkeeping for one request."""

    attempts: int = 0                       #: retries consumed so far
    rng_state: Optional[dict] = None        #: engine RNG snapshot at first admission


class ContinuousBatchingScheduler:
    """Interleaves many :class:`DecodeSession` objects over one engine.

    Drive it with :meth:`submit` + :meth:`run_until_idle` (or one
    :meth:`run_round` at a time); the synchronous :func:`serve_requests`
    facade does both for offline batches of requests.
    """

    def __init__(self, engine: AASDEngine, config: Optional[ServingConfig] = None) -> None:
        self.engine = engine
        self.config = config or ServingConfig()
        self.queue = AdmissionQueue(self.config.max_queue_depth)
        self.clock = SimulatedClock()   #: server simulated clock (milliseconds)
        self.n_rounds = 0
        self.max_batch_occupancy = 0
        self.memory = ArenaStats()   #: KV-arena accounting over retired sessions
        self._active: List[_Active] = []
        self._batch_gamma: Optional[int] = None
        resilience = self.config.resilience
        #: Circuit breaker (None unless configured via the resilience bundle).
        self.breaker: Optional[CircuitBreaker] = (
            CircuitBreaker(resilience.breaker)
            if resilience is not None and resilience.breaker is not None
            else None
        )
        self.n_retries = 0   #: transient-fault retries scheduled, lifetime
        self.n_shed = 0      #: requests shed under queue pressure, lifetime
        #: raw per-request latency samples (server-clock ms) keyed
        #: ``ttft_ms`` / ``tpot_ms`` / ``e2e_ms``; digested into the report.
        self.latency_samples: Dict[str, List[float]] = {}
        self._retry_state: Dict[str, _RetryState] = {}
        #: ``(ready_ms, handle)`` for requests waiting out their backoff.
        self._backoff: List[Tuple[float, ServeHandle]] = []

    @property
    def _retry_policy(self) -> Optional[RetryPolicy]:
        resilience = self.config.resilience
        return resilience.retry if resilience is not None else None

    @property
    def _shed_config(self) -> Optional[ShedConfig]:
        resilience = self.config.resilience
        return resilience.shed if resilience is not None else None

    # ------------------------------------------------------------------
    @property
    def now_ms(self) -> float:
        """Current server simulated time in milliseconds."""
        return self.clock.total

    @property
    def n_active(self) -> int:
        """Sessions currently in the batch."""
        return len(self._active)

    @property
    def idle(self) -> bool:
        """True when nothing is queued, in flight, or waiting out a backoff."""
        return not self._active and len(self.queue) == 0 and not self._backoff

    def _effective_gamma(self, request: ServeRequest) -> int:
        """The depth used for batch-compatibility grouping."""
        if request.gamma is not None:
            return request.gamma
        return self.engine.config.gamma

    def _controller(self, gamma: int) -> GammaController:
        """Fresh per-session gamma controller."""
        factory = self.config.gamma_controller_factory
        if factory is not None:
            return factory()
        return FixedGamma(gamma)

    # ------------------------------------------------------------------
    def submit(self, request: ServeRequest) -> ServeHandle:
        """Admit one request; raises :class:`AdmissionError` when the queue is full."""
        handle = self.queue.submit(request, now_ms=self.now_ms)
        get_registry().counter("serving.requests_submitted_total").inc()
        return handle

    def _resolve(self, handle: ServeHandle, status: str, *,
                 record: Optional[DecodeRecord] = None,
                 error: Optional[str] = None,
                 started_ms: Optional[float] = None,
                 first_token_ms: Optional[float] = None) -> None:
        """Retire a request with a terminal status (updates counters)."""
        retry_state = self._retry_state.pop(handle.request_id, None)
        retry_count = retry_state.attempts if retry_state is not None else 0
        handle.resolve(ServeResult(
            request_id=handle.request_id,
            status=status,
            record=record,
            error=error,
            submitted_ms=handle.submitted_ms,
            started_ms=started_ms,
            finished_ms=self.now_ms,
        ))
        self._record_latency(handle, record, first_token_ms)
        get_registry().counter(f"serving.requests_{status}_total").inc()
        if status != STATUS_COMPLETED:
            logger.warning(
                "request %s retired: %s",
                handle.request_id,
                status,
                extra={"event": f"request_{status}", "request_id": handle.request_id,
                       "error": error, "retry_count": retry_count},
            )

    def _record_latency(self, handle: ServeHandle,
                        record: Optional[DecodeRecord],
                        first_token_ms: Optional[float]) -> None:
        """Digest one retired request's server-clock latencies.

        TTFT = submit -> first committed token (queue wait plus the
        round's batched prefill); TPOT = steady-state ms per token after
        the first; E2E = submit -> retirement.  Every retirement
        contributes E2E; only requests that actually committed tokens
        contribute TTFT (and TPOT needs at least two).  Each sample feeds
        three sinks: the raw lists digested into the report, registry
        histograms (``serving.ttft_ms`` / ``serving.tpot_ms`` /
        ``serving.e2e_ms``), and a zero-duration ``request_latency`` span
        so exported traces carry per-request latencies for offline
        ``summarize`` runs.
        """
        samples: Dict[str, float] = {"e2e_ms": self.now_ms - handle.submitted_ms}
        if first_token_ms is not None and record is not None and record.n_tokens > 0:
            samples["ttft_ms"] = first_token_ms - handle.submitted_ms
            if record.n_tokens > 1:
                samples["tpot_ms"] = (
                    (self.now_ms - first_token_ms) / (record.n_tokens - 1)
                )
        registry = get_registry()
        for metric, value in samples.items():
            self.latency_samples.setdefault(metric, []).append(value)
            registry.histogram(f"serving.{metric}").observe(value)
        with self.engine.tracer.span("request_latency",
                                     request_id=handle.request_id, **samples):
            pass

    # ------------------------------------------------------------------
    def _expire_queued(self) -> None:
        """Time out queued requests whose deadline passed before admission."""
        for handle in self.queue.expire(self.now_ms):
            self._resolve(handle, STATUS_TIMEOUT,
                          error="deadline expired while queued")

    # ------------------------------------------------------------------
    # Resilience: retry scheduling, backoff waits, load shedding.
    # ------------------------------------------------------------------
    def _attempts(self, request_id: str) -> int:
        """Retries already consumed by ``request_id`` (0 when untracked)."""
        state = self._retry_state.get(request_id)
        return state.attempts if state is not None else 0

    def _restore_or_snapshot_rng(self, request_id: str) -> None:
        """Make a retried admission replay the original RNG stream.

        First admission snapshots the engine RNG state; a retry restores
        it, so the restarted decode draws exactly what the failed attempt
        would have.  Under greedy sampling decoding consumes no draws and
        this is an exact no-op — which is why retried outputs are
        token-identical to a clean run regardless of what batch-mates did
        in between (the guarantee the chaos harness pins down).  No-op
        unless a retry policy is configured.
        """
        if self._retry_policy is None:
            return
        state = self._retry_state.get(request_id)
        if state is None:
            self._retry_state[request_id] = _RetryState(
                rng_state=copy.deepcopy(self.engine.rng.bit_generator.state)
            )
        elif state.rng_state is not None:
            self.engine.rng.bit_generator.state = copy.deepcopy(state.rng_state)

    def _maybe_retry(self, handle: ServeHandle, exc: BaseException) -> bool:
        """Schedule a transient-fault retry; False means the fault is terminal.

        A retry discards the failed attempt entirely (partial tokens,
        record, caches) and re-enqueues the request after a deterministic
        backoff — re-admission restores the engine RNG snapshot taken at
        first admission, so the restarted decode replays the original
        token stream.  Not retried: persistent faults, exhausted budgets,
        and backoffs that would land past the request's deadline.
        """
        policy = self._retry_policy
        if policy is None or not is_transient(exc):
            return False
        state = self._retry_state.get(handle.request_id)
        if state is None or state.attempts >= policy.max_retries:
            return False
        ready_ms = self.now_ms + policy.backoff_ms(handle.request_id, state.attempts)
        limit = expiry_ms(handle)
        if limit is not None and ready_ms >= limit:
            return False
        state.attempts += 1
        self.n_retries += 1
        self._backoff.append((ready_ms, handle))
        registry = get_registry()
        registry.counter("resilience.retries_total").inc()
        registry.gauge("resilience.pending_retries").set(len(self._backoff))
        log_exception(logger, "request_retry", exc,
                      request_id=handle.request_id,
                      retry_count=state.attempts,
                      ready_ms=ready_ms)
        return True

    def _requeue_ready_backoffs(self) -> None:
        """Move retries whose backoff elapsed back into the admission queue."""
        if not self._backoff:
            return
        still: List[Tuple[float, ServeHandle]] = []
        for ready_ms, handle in self._backoff:
            if ready_ms <= self.now_ms:
                self.queue.requeue(handle)
            else:
                still.append((ready_ms, handle))
        self._backoff = still
        get_registry().gauge("resilience.pending_retries").set(len(self._backoff))

    def _advance_to_next_backoff(self) -> None:
        """Idle-wait (on the simulated clock) for the earliest pending retry.

        Only called when retries are the *only* remaining work; the wait
        is charged to the ``backoff`` category so reports show time spent
        stalled versus decoding.
        """
        earliest = min(ready for ready, _ in self._backoff)
        if earliest > self.now_ms:
            self.clock.charge(earliest - self.now_ms, "backoff")
        self._requeue_ready_backoffs()

    def _shed_queued(self) -> None:
        """Apply the configured shed policy under queue-time pressure."""
        shed_cfg = self._shed_config
        if shed_cfg is None:
            return
        wait = self.queue.oldest_wait_ms(self.now_ms)
        if wait is None or wait <= shed_cfg.max_queue_ms:
            return
        if shed_cfg.policy == SHED_REJECT_NEWEST:
            target = shed_cfg.shed_target_depth
            if target is None:
                target = self.config.max_queue_depth // 2
            victims = self.queue.shed_newest(target)
        else:
            # The projected extra wait of a queued request is at least the
            # current oldest wait (service is not outpacing arrivals when
            # this fires), so deadlines inside that horizon are lost causes.
            victims = self.queue.shed_over_deadline(self.now_ms, wait)
        registry = get_registry()
        for handle in victims:
            self.n_shed += 1
            registry.counter("resilience.requests_shed_total").inc()
            self._resolve(
                handle, STATUS_REJECTED,
                error=f"shed under queue pressure ({shed_cfg.policy}, "
                      f"oldest wait {wait:.0f}ms)",
            )

    def _admit(self, span) -> None:
        """Fill free batch slots from the queue (batched prefill).

        Only requests whose effective gamma matches the active batch are
        taken; incompatible ones stay queued until the batch drains.  The
        server clock is charged one *batched* prefill for all admissions
        of this round, plus the per-request projector application.
        """
        free = self.config.max_batch_size - len(self._active)
        if free <= 0:
            return
        if self._batch_gamma is None:
            lead = self.queue.pop_ready(1)
            if not lead:
                return
            self._batch_gamma = self._effective_gamma(lead[0].request)
            handles = lead + self.queue.pop_ready(
                free - 1,
                lambda h: self._effective_gamma(h.request) == self._batch_gamma,
            )
        else:
            handles = self.queue.pop_ready(
                free,
                lambda h: self._effective_gamma(h.request) == self._batch_gamma,
            )
        if not handles:
            return

        started_ms = self.now_ms
        admitted: List[_Active] = []
        tracer = self.engine.tracer
        if len(handles) > 1 and self.engine.packed_ready:
            # Packed path: one cu-seqlen-packed prefill forward for the
            # whole admission (docs/kernels.md).  Per-request rng snapshot
            # and span bookkeeping are preserved; begin_batch returns a
            # per-request session or exception so fault isolation matches
            # the solo loop below.
            for handle in handles:
                with tracer.span("request", request_id=handle.request_id,
                                 phase="prefill"):
                    self._restore_or_snapshot_rng(handle.request_id)
            outcomes = self.engine.begin_batch(
                [h.request.sample for h in handles],
                records=[DecodeRecord() for _ in handles],
                max_new_tokens=[h.request.max_new_tokens for h in handles],
                gamma_controllers=[
                    self._controller(self._effective_gamma(h.request))
                    for h in handles
                ],
                request_ids=[h.request_id for h in handles],
            )
            for handle, outcome in zip(handles, outcomes):
                if isinstance(outcome, Exception):
                    if self._maybe_retry(handle, outcome):
                        continue
                    log_exception(logger, "prefill_failed", outcome,
                                  request_id=handle.request_id,
                                  retry_count=self._attempts(handle.request_id))
                    self._resolve(handle, STATUS_FAILED,
                                  error=f"prefill failed: {outcome}",
                                  started_ms=started_ms)
                    continue
                entry = _Active(handle, outcome, started_ms)
                self._active.append(entry)
                admitted.append(entry)
            handles = []
        for handle in handles:
            request = handle.request
            with tracer.span("request", request_id=request.request_id, phase="prefill"):
                self._restore_or_snapshot_rng(request.request_id)
                try:
                    session = self.engine.begin(
                        request.sample,
                        record=DecodeRecord(),
                        max_new_tokens=request.max_new_tokens,
                        gamma_controller=self._controller(self._effective_gamma(request)),
                        request_id=request.request_id,
                    )
                except Exception as exc:  # isolate the fault to this request
                    if self._maybe_retry(handle, exc):
                        continue
                    log_exception(logger, "prefill_failed", exc,
                                  request_id=request.request_id,
                                  retry_count=self._attempts(request.request_id))
                    self._resolve(handle, STATUS_FAILED, error=f"prefill failed: {exc}",
                                  started_ms=started_ms)
                    continue
            entry = _Active(handle, session, started_ms)
            self._active.append(entry)
            admitted.append(entry)
        if admitted:
            n_prefilled = len(admitted)
            cost = self.engine.cost_model
            charge = cost.batched_prefill(n_prefilled)
            head = self.engine.head
            if head.config.use_target_kv and head.projector is not None:
                charge += n_prefilled * cost.projector()
            self.clock.charge(charge, "prefill")
            span.add_sim_ms(charge)
            span.set_attr("n_admitted", n_prefilled)
            # begin() committed each session's first token; on the server
            # clock that token exists once the batched prefill is charged.
            for entry in admitted:
                entry.first_token_ms = self.now_ms

    def _step_budget_ms(self, entry: _Active) -> Optional[float]:
        """Remaining deadline budget to pass into the engine step (or None)."""
        resilience = self.config.resilience
        if resilience is None or not resilience.deadline_in_round:
            return None
        limit = expiry_ms(entry.handle)
        if limit is None:
            return None
        return limit - self.now_ms

    def _step_batch(self, span) -> None:
        """Advance every active session one block; charge batched prices.

        With resilience configured, this is also where the policies bite:
        the breaker's ``force_fallback`` flips the whole batch target-only,
        per-session deadline budgets let the engine expire a request
        before its verify forward, and sessions dying on transient faults
        are dropped for retry instead of failing.
        """
        tracer = self.engine.tracer
        force_fallback = self.breaker is not None and self.breaker.force_fallback
        stepped: List[Tuple[_Active, StepReport]] = []
        removed: List[_Active] = []
        n_escaped_faults = 0
        n_record_faults = 0
        eligible = [e for e in self._active if not e.session.finished]
        outcomes: List[Tuple[_Active, object]] = []
        if len(eligible) > 1 and not force_fallback and self.engine.packed_ready:
            # Packed path: one lockstep draft + one cu-seqlen-packed verify
            # forward for the whole round (docs/kernels.md).  Per-request
            # spans are still emitted so traces keep request granularity;
            # a batch-wide engine failure is attributed to every session
            # (each then goes through the same retry/fail path as a solo
            # step failure would).
            for entry in eligible:
                with tracer.span("request", request_id=entry.handle.request_id,
                                 phase="step"):
                    pass
            try:
                reports = self.engine.step_batch(
                    [e.session for e in eligible],
                    budgets_ms=[self._step_budget_ms(e) for e in eligible],
                )
                outcomes = list(zip(eligible, reports))
            except Exception as exc:
                log_exception(logger, "step_fault", exc, batch=len(eligible))
                outcomes = [(e, exc) for e in eligible]
        else:
            for entry in eligible:
                with tracer.span("request", request_id=entry.handle.request_id,
                                 phase="step"):
                    try:
                        report = self.engine.step(
                            entry.session,
                            budget_ms=self._step_budget_ms(entry),
                            force_fallback=force_fallback,
                        )
                    except Exception as exc:  # isolate the fault to this request
                        log_exception(logger, "step_fault", exc,
                                      request_id=entry.handle.request_id)
                        outcomes.append((entry, exc))
                        continue
                outcomes.append((entry, report))
        for entry, outcome in outcomes:
            if isinstance(outcome, Exception):
                n_escaped_faults += 1
                n_record_faults += (
                    entry.session.record.n_draft_faults - entry.n_faults_seen
                )
                removed.append(entry)
                self.memory.add(entry.session.memory_stats())
                if self._maybe_retry(entry.handle, outcome):
                    continue
                log_exception(logger, "step_failed", outcome,
                              request_id=entry.handle.request_id,
                              retry_count=self._attempts(entry.handle.request_id))
                self._resolve(entry.handle, STATUS_FAILED,
                              record=self.engine.finish(entry.session),
                              error=f"step failed: {outcome}",
                              started_ms=entry.started_ms,
                              first_token_ms=entry.first_token_ms)
                continue
            report = outcome
            n_record_faults += (
                entry.session.record.n_draft_faults - entry.n_faults_seen
            )
            entry.n_faults_seen = entry.session.record.n_draft_faults
            stepped.append((entry, report))
            if report.kind == "expired":
                # Mid-round deadline: the engine dropped the speculated
                # block before the verify; retire with the partial output
                # now instead of letting it occupy a slot to round end.
                removed.append(entry)
                self.memory.add(entry.session.memory_stats())
                self._resolve(entry.handle, STATUS_TIMEOUT,
                              record=self.engine.finish(entry.session),
                              error="deadline expired mid-round",
                              started_ms=entry.started_ms,
                              first_token_ms=entry.first_token_ms)
        for entry in removed:
            self._active.remove(entry)
        reports = [r for _, r in stepped]
        if self.breaker is not None and (stepped or n_escaped_faults):
            self.breaker.observe_round(
                n_drafted=sum(len(r.draft_kv_lens) for r in reports),
                n_accepted=sum(r.n_accepted for r in reports),
                n_faults=n_escaped_faults + n_record_faults,
            )
        if not reports:
            return
        kv_tokens = sum(
            e.session.target_cache.seq_len + e.session.hybrid.total_len
            for e in self._active
        )
        span.set_attr("kv_tokens", kv_tokens)
        get_registry().gauge("serving.kv_tokens").set(kv_tokens)

        charge = self._charge_round(reports)
        span.add_sim_ms(charge)
        span.set_attr("batch_size", len(reports))
        occupancy = len(reports)
        self.max_batch_occupancy = max(self.max_batch_occupancy, occupancy)
        get_registry().gauge("serving.batch_occupancy").set(occupancy)

    def _charge_round(self, reports: Sequence) -> float:
        """Price one round's draft steps + target forward on the server clock.

        Draft steps are grouped *by position*: position ``i`` of every
        session that drafted that deep shares one batched head forward.
        For tree rounds "position" means *expansion index* — the i-th
        node each session's tree grew — which matches the solo charges
        exactly (every expansion is priced once) even though tree shapes
        differ across sessions.  All target feeds (verify blocks and
        1-token fallback steps) share one batched verify forward; tree
        rounds price it per fed tree node via
        :meth:`~repro.decoding.cost_model.CostModel.batched_tree_verify`,
        so a request's rejected branches are billed exactly once by the
        forward that fed them and never again at rollback (rollback is
        free — rejected rows are never written).  With a single session
        the charges reduce exactly to the engine's own solo prices, so a
        batch of one costs the same as sequential decoding.
        """
        cost = self.engine.cost_model
        charged = 0.0
        drafted = [r.draft_kv_lens for r in reports if r.draft_kv_lens]
        for lens_at_pos in zip_longest(*drafted):
            lens = [kv for kv in lens_at_pos if kv is not None]
            if lens:
                ms = cost.batched_aasd_step(lens)
                self.clock.charge(ms, "draft")
                charged += ms
        # Expired sessions drafted but never fed the target (feed_size 0):
        # their draft work is priced above, but they join no verify.
        feeds = [r.feed_size for r in reports if r.feed_size > 0]
        if len(reports) == 1 and reports[0].kind == "fallback":
            # Solo fallback: keep exact parity with sequential decoding,
            # which prices a plain target step (not a 1-token verify).
            ms = cost.target_step()
            self.clock.charge(ms, "fallback")
            charged += ms
        elif feeds:
            if any(getattr(r, "tree", False) for r in reports):
                ms = cost.batched_tree_verify(feeds)
            else:
                ms = cost.batched_verify(feeds)
            self.clock.charge(ms, "verify")
            charged += ms
        return charged

    def _retire(self) -> None:
        """Resolve finished and deadline-expired sessions (batch keeps going)."""
        now = self.now_ms
        still: List[_Active] = []
        for entry in self._active:
            session, handle = entry.session, entry.handle
            if session.finished:
                self.memory.add(session.memory_stats())
                self._resolve(handle, STATUS_COMPLETED,
                              record=self.engine.finish(session),
                              started_ms=entry.started_ms,
                              first_token_ms=entry.first_token_ms)
            else:
                limit = expiry_ms(handle)
                if limit is not None and now >= limit:
                    # Mid-batch expiry: keep the partial generation.
                    self.memory.add(session.memory_stats())
                    self._resolve(handle, STATUS_TIMEOUT,
                                  record=self.engine.finish(session),
                                  error="deadline expired mid-batch",
                                  started_ms=entry.started_ms,
                                  first_token_ms=entry.first_token_ms)
                else:
                    still.append(entry)
        self._active = still
        if not self._active:
            self._batch_gamma = None

    # ------------------------------------------------------------------
    def run_round(self) -> bool:
        """One scheduler round; returns False when there was nothing to do.

        A round: requeue elapsed backoffs -> expire queued deadlines ->
        shed under queue pressure -> admit into free slots (batched
        prefill) -> advance every active session one block (batched
        draft/verify) -> retire finished / expired / failed sessions.
        When pending retries are the only remaining work, the round
        idle-waits the simulated clock to the earliest backoff expiry
        (charged as ``backoff``) before admitting.
        """
        retries_before, shed_before = self.n_retries, self.n_shed
        self._requeue_ready_backoffs()
        self._expire_queued()
        self._shed_queued()
        if self.idle:
            return False
        if not self._active and len(self.queue) == 0 and self._backoff:
            self._advance_to_next_backoff()
        with self.engine.tracer.span("schedule", round=self.n_rounds) as span:
            self._admit(span)
            self._step_batch(span)
            self._retire()
            if self.breaker is not None:
                span.set_attr("breaker_state", self.breaker.state)
            if self.n_retries > retries_before:
                span.set_attr("n_retried", self.n_retries - retries_before)
            if self.n_shed > shed_before:
                span.set_attr("n_shed", self.n_shed - shed_before)
        self.n_rounds += 1
        get_registry().counter("serving.rounds_total").inc()
        return True

    def run_until_idle(self, max_rounds: Optional[int] = None) -> int:
        """Run rounds until no work remains; returns rounds executed.

        ``max_rounds`` is a safety valve for tests; exceeding it raises
        :class:`ServingError` (it indicates a scheduler bug, since every
        round makes progress on some session).
        """
        executed = 0
        while self.run_round():
            executed += 1
            if max_rounds is not None and executed > max_rounds:
                raise ServingError(f"scheduler still busy after {max_rounds} rounds")
        return executed


def _normalize(requests: Iterable[Union[ServeRequest, MultimodalSample]]) -> List[ServeRequest]:
    """Wrap raw samples as requests with generated ids."""
    normalized: List[ServeRequest] = []
    for i, item in enumerate(requests):
        if isinstance(item, ServeRequest):
            normalized.append(item)
        else:
            normalized.append(ServeRequest(request_id=f"req-{i:03d}", sample=item))
    return normalized


def serve_requests(
    engine: AASDEngine,
    requests: Iterable[Union[ServeRequest, MultimodalSample]],
    config: Optional[ServingConfig] = None,
    *,
    scheduler: Optional[ContinuousBatchingScheduler] = None,
) -> ServingReport:
    """Serve a batch of requests to completion and report aggregate throughput.

    The synchronous facade for offline runs: submits every request
    (running scheduler rounds whenever admission control pushes back),
    drains the system, and returns one :class:`ServeResult` per request in
    input order plus server-clock throughput.  Raw
    :class:`~repro.data.tasks.MultimodalSample` items are auto-wrapped as
    requests with generated ids.

    Pass a fresh ``scheduler`` to inspect its state (clock, memory,
    breaker, gauges) after the run — ``engine`` and ``config`` are then
    taken from it and the positional arguments must agree.
    """
    if scheduler is None:
        scheduler = ContinuousBatchingScheduler(engine, config)
    elif scheduler.engine is not engine:
        raise ServingError("serve_requests: scheduler was built for a different engine")
    normalized = _normalize(requests)
    handles: Dict[str, ServeHandle] = {}
    early: Dict[str, ServeResult] = {}
    for request in normalized:
        # Backpressure: when the queue is full, run rounds until a slot
        # frees instead of dropping the request (offline semantics).
        while scheduler.queue.free == 0 and scheduler.run_round():
            pass
        try:
            handles[request.request_id] = scheduler.submit(request)
        except AdmissionError as exc:
            early[request.request_id] = ServeResult(
                request_id=request.request_id,
                status=STATUS_REJECTED,
                error=str(exc),
                submitted_ms=scheduler.now_ms,
            )
            get_registry().counter("serving.requests_rejected_total").inc()
    scheduler.run_until_idle()

    results = []
    for request in normalized:
        if request.request_id in early:
            results.append(early[request.request_id])
        else:
            results.append(handles[request.request_id].result(timeout=0))
    records = [r.record for r in results if r.record is not None]
    n_forwards = sum(r.n_target_forwards for r in records)
    block_emits = [float(b.n_emitted) for r in records for b in r.blocks]
    return ServingReport(
        results=tuple(results),
        total_sim_ms=scheduler.clock.total,
        sim_by_category=dict(scheduler.clock.by_category),
        n_rounds=scheduler.n_rounds,
        max_batch_occupancy=scheduler.max_batch_occupancy,
        bytes_copied=scheduler.memory.bytes_copied,
        arena_grows=scheduler.memory.grow_events,
        peak_cache_tokens=scheduler.memory.peak_tokens,
        n_retries=scheduler.n_retries,
        n_shed=scheduler.n_shed,
        breaker_transitions=(
            tuple(scheduler.breaker.transitions) if scheduler.breaker else ()
        ),
        latency_ms=summarize_latencies(scheduler.latency_samples),
        accepted_per_target_forward=(
            sum(r.n_tokens for r in records) / n_forwards if n_forwards else 0.0
        ),
        block_efficiency_p50=(
            exact_quantile(block_emits, 0.50) if block_emits else 0.0
        ),
        block_efficiency_p95=(
            exact_quantile(block_emits, 0.95) if block_emits else 0.0
        ),
    )
