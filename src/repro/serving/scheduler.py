"""Continuous-batching scheduler over :class:`~repro.core.engine.AASDEngine`.

How batching works here
-----------------------
The engine's session API (:meth:`~repro.core.engine.AASDEngine.begin` /
:meth:`~repro.core.engine.AASDEngine.step`) keeps every piece of mutable
decode state on the :class:`~repro.core.engine.DecodeSession`, so the
scheduler can interleave many in-flight generations over one engine.  Each
scheduler *round* advances every active session by exactly one
draft-then-verify block; new requests join at these block boundaries (a
batched prefill) and finished ones retire without stalling the rest —
classic continuous batching.

Execution is per-session numpy, but the **server clock** is charged as if
each round's draft steps and target forwards ran as single batched GPU
forwards, using the ``batched_*`` prices of
:class:`~repro.decoding.cost_model.CostModel` (memory-bound batching: base
cost paid once per forward, per-token work summed, small per-sequence
increment).  Each session's own :class:`~repro.decoding.metrics.DecodeRecord`
is still charged solo prices by the engine, so per-request attribution is
identical to sequential decoding — and with one request in the system every
round reduces exactly to the sequential prices, which the equivalence tests
pin down.

Batch compatibility
-------------------
A batch only mixes requests with the same speculation depth (the paper's
gamma): requests pinning a different ``gamma`` wait in the queue until the
current batch drains, mirroring how a real server groups requests whose
draft/verify tensor shapes can share a forward.  The model is trivially
"the same" — one scheduler serves one engine.

Backpressure and deadlines
--------------------------
Admission control is a bounded queue (:class:`~repro.serving.queue.AdmissionQueue`)
raising :class:`~repro.errors.AdmissionError` when full.  Deadlines are
relative simulated-ms budgets checked both while queued and after every
round, so an expired request is retired mid-batch with the tokens it
committed so far.

Observability
-------------
Every round runs inside a ``schedule`` span (feeding the
``span_ms.schedule`` histogram when tracing is enabled with a registry),
each per-request prefill/step inside a ``request`` span tagged with the
request id, and the registry carries ``serving.queue_depth`` /
``serving.batch_occupancy`` / ``serving.kv_tokens`` gauges plus
``serving.requests_*_total`` counters.  Retired sessions fold their
KV-arena accounting into ``scheduler.memory`` (surfaced as
``bytes_copied`` / ``arena_grows`` / ``peak_cache_tokens`` on the
:class:`ServingReport`); see ``docs/performance.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import zip_longest
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..core.engine import AASDEngine, DecodeSession
from ..core.kv_arena import ArenaStats
from ..data.tasks import MultimodalSample
from ..decoding.adaptive import FixedGamma, GammaController
from ..decoding.metrics import DecodeRecord
from ..errors import AdmissionError, ServingError
from ..obs.logsetup import get_logger, log_exception
from ..obs.metrics import get_registry
from ..utils.timing import SimulatedClock
from .queue import AdmissionQueue
from .request import (
    STATUS_COMPLETED,
    STATUS_FAILED,
    STATUS_REJECTED,
    STATUS_TIMEOUT,
    ServeHandle,
    ServeRequest,
    ServeResult,
    expiry_ms,
)

__all__ = [
    "ServingConfig",
    "ServingReport",
    "ContinuousBatchingScheduler",
    "serve_requests",
]

logger = get_logger(__name__)


@dataclass(frozen=True)
class ServingConfig:
    """Scheduler knobs: batch width, queue bound, per-session gamma policy."""

    max_batch_size: int = 8     #: sessions advanced per round
    max_queue_depth: int = 64   #: admission-control bound (backpressure)
    #: Optional per-session controller factory (e.g. ``AdaptiveGamma``);
    #: default is a fresh ``FixedGamma`` at the request's effective depth.
    gamma_controller_factory: Optional[Callable[[], GammaController]] = None

    def __post_init__(self) -> None:
        """Validate the scheduler knobs."""
        if self.max_batch_size <= 0:
            raise ServingError(f"max_batch_size must be positive, got {self.max_batch_size}")
        if self.max_queue_depth <= 0:
            raise ServingError(f"max_queue_depth must be positive, got {self.max_queue_depth}")


@dataclass(frozen=True)
class ServingReport:
    """Aggregate outcome of one :func:`serve_requests` run."""

    results: Tuple[ServeResult, ...]        #: one per request, input order
    total_sim_ms: float                     #: server clock total
    sim_by_category: Dict[str, float]       #: server ms per phase
    n_rounds: int                           #: scheduler rounds executed
    max_batch_occupancy: int                #: widest batch observed
    bytes_copied: int = 0                   #: KV-arena bytes memcpy'd, all sessions
    arena_grows: int = 0                    #: KV-arena buffer reallocations
    peak_cache_tokens: int = 0              #: longest per-session KV seen

    @property
    def total_tokens(self) -> int:
        """Tokens committed across all requests (partial outputs included)."""
        return sum(r.record.n_tokens for r in self.results if r.record is not None)

    @property
    def tokens_per_s(self) -> float:
        """Aggregate decoding speed on the server's simulated clock."""
        if self.total_sim_ms <= 0:
            return 0.0
        return self.total_tokens / (self.total_sim_ms / 1000.0)

    def count(self, status: str) -> int:
        """Number of requests that ended in ``status``."""
        return sum(1 for r in self.results if r.status == status)

    def summary(self) -> Dict[str, object]:
        """Flat dict for logging / table rendering."""
        return {
            "n_requests": len(self.results),
            "completed": self.count(STATUS_COMPLETED),
            "timeout": self.count(STATUS_TIMEOUT),
            "rejected": self.count(STATUS_REJECTED),
            "failed": self.count(STATUS_FAILED),
            "total_tokens": self.total_tokens,
            "total_sim_ms": self.total_sim_ms,
            "tokens_per_s": self.tokens_per_s,
            "n_rounds": self.n_rounds,
            "max_batch_occupancy": self.max_batch_occupancy,
            "bytes_copied": self.bytes_copied,
            "arena_grows": self.arena_grows,
            "peak_cache_tokens": self.peak_cache_tokens,
        }


@dataclass
class _Active:
    """Scheduler-internal pairing of a handle with its live session."""

    handle: ServeHandle
    session: DecodeSession
    started_ms: float   #: server clock at admission


class ContinuousBatchingScheduler:
    """Interleaves many :class:`DecodeSession` objects over one engine.

    Drive it with :meth:`submit` + :meth:`run_until_idle` (or one
    :meth:`run_round` at a time); the synchronous :func:`serve_requests`
    facade does both for offline batches of requests.
    """

    def __init__(self, engine: AASDEngine, config: Optional[ServingConfig] = None) -> None:
        self.engine = engine
        self.config = config or ServingConfig()
        self.queue = AdmissionQueue(self.config.max_queue_depth)
        self.clock = SimulatedClock()   #: server simulated clock (milliseconds)
        self.n_rounds = 0
        self.max_batch_occupancy = 0
        self.memory = ArenaStats()   #: KV-arena accounting over retired sessions
        self._active: List[_Active] = []
        self._batch_gamma: Optional[int] = None

    # ------------------------------------------------------------------
    @property
    def now_ms(self) -> float:
        """Current server simulated time in milliseconds."""
        return self.clock.total

    @property
    def n_active(self) -> int:
        """Sessions currently in the batch."""
        return len(self._active)

    @property
    def idle(self) -> bool:
        """True when nothing is queued or in flight."""
        return not self._active and len(self.queue) == 0

    def _effective_gamma(self, request: ServeRequest) -> int:
        """The depth used for batch-compatibility grouping."""
        if request.gamma is not None:
            return request.gamma
        return self.engine.config.gamma

    def _controller(self, gamma: int) -> GammaController:
        """Fresh per-session gamma controller."""
        factory = self.config.gamma_controller_factory
        if factory is not None:
            return factory()
        return FixedGamma(gamma)

    # ------------------------------------------------------------------
    def submit(self, request: ServeRequest) -> ServeHandle:
        """Admit one request; raises :class:`AdmissionError` when the queue is full."""
        handle = self.queue.submit(request, now_ms=self.now_ms)
        get_registry().counter("serving.requests_submitted_total").inc()
        return handle

    def _resolve(self, handle: ServeHandle, status: str, *,
                 record: Optional[DecodeRecord] = None,
                 error: Optional[str] = None,
                 started_ms: Optional[float] = None) -> None:
        """Retire a request with a terminal status (updates counters)."""
        handle.resolve(ServeResult(
            request_id=handle.request_id,
            status=status,
            record=record,
            error=error,
            submitted_ms=handle.submitted_ms,
            started_ms=started_ms,
            finished_ms=self.now_ms,
        ))
        get_registry().counter(f"serving.requests_{status}_total").inc()
        if status != STATUS_COMPLETED:
            logger.warning(
                "request %s retired: %s",
                handle.request_id,
                status,
                extra={"event": f"request_{status}", "request_id": handle.request_id,
                       "error": error},
            )

    # ------------------------------------------------------------------
    def _expire_queued(self) -> None:
        """Time out queued requests whose deadline passed before admission."""
        for handle in self.queue.expire(self.now_ms):
            self._resolve(handle, STATUS_TIMEOUT,
                          error="deadline expired while queued")

    def _admit(self, span) -> None:
        """Fill free batch slots from the queue (batched prefill).

        Only requests whose effective gamma matches the active batch are
        taken; incompatible ones stay queued until the batch drains.  The
        server clock is charged one *batched* prefill for all admissions
        of this round, plus the per-request projector application.
        """
        free = self.config.max_batch_size - len(self._active)
        if free <= 0:
            return
        if self._batch_gamma is None:
            lead = self.queue.pop_ready(1)
            if not lead:
                return
            self._batch_gamma = self._effective_gamma(lead[0].request)
            handles = lead + self.queue.pop_ready(
                free - 1,
                lambda h: self._effective_gamma(h.request) == self._batch_gamma,
            )
        else:
            handles = self.queue.pop_ready(
                free,
                lambda h: self._effective_gamma(h.request) == self._batch_gamma,
            )
        if not handles:
            return

        started_ms = self.now_ms
        n_prefilled = 0
        tracer = self.engine.tracer
        for handle in handles:
            request = handle.request
            with tracer.span("request", request_id=request.request_id, phase="prefill"):
                try:
                    session = self.engine.begin(
                        request.sample,
                        record=DecodeRecord(),
                        max_new_tokens=request.max_new_tokens,
                        gamma_controller=self._controller(self._effective_gamma(request)),
                        request_id=request.request_id,
                    )
                except Exception as exc:  # isolate the fault to this request
                    log_exception(logger, "prefill_failed", exc,
                                  request_id=request.request_id)
                    self._resolve(handle, STATUS_FAILED, error=f"prefill failed: {exc}",
                                  started_ms=started_ms)
                    continue
            self._active.append(_Active(handle, session, started_ms))
            n_prefilled += 1
        if n_prefilled:
            cost = self.engine.cost_model
            charge = cost.batched_prefill(n_prefilled)
            head = self.engine.head
            if head.config.use_target_kv and head.projector is not None:
                charge += n_prefilled * cost.projector()
            self.clock.charge(charge, "prefill")
            span.add_sim_ms(charge)
            span.set_attr("n_admitted", n_prefilled)

    def _step_batch(self, span) -> None:
        """Advance every active session one block; charge batched prices."""
        tracer = self.engine.tracer
        reports = []
        failed: List[_Active] = []
        for entry in self._active:
            if entry.session.finished:
                continue
            with tracer.span("request", request_id=entry.handle.request_id,
                             phase="step"):
                try:
                    reports.append(self.engine.step(entry.session))
                except Exception as exc:  # isolate the fault to this request
                    log_exception(logger, "step_failed", exc,
                                  request_id=entry.handle.request_id)
                    failed.append(entry)
                    self.memory.add(entry.session.memory_stats())
                    self._resolve(entry.handle, STATUS_FAILED,
                                  record=self.engine.finish(entry.session),
                                  error=f"step failed: {exc}",
                                  started_ms=entry.started_ms)
        for entry in failed:
            self._active.remove(entry)
        if not reports:
            return
        kv_tokens = sum(
            e.session.target_cache.seq_len + e.session.hybrid.total_len
            for e in self._active
        )
        span.set_attr("kv_tokens", kv_tokens)
        get_registry().gauge("serving.kv_tokens").set(kv_tokens)

        charge = self._charge_round(reports)
        span.add_sim_ms(charge)
        span.set_attr("batch_size", len(reports))
        occupancy = len(reports)
        self.max_batch_occupancy = max(self.max_batch_occupancy, occupancy)
        get_registry().gauge("serving.batch_occupancy").set(occupancy)

    def _charge_round(self, reports: Sequence) -> float:
        """Price one round's draft steps + target forward on the server clock.

        Draft steps are grouped *by position*: position ``i`` of every
        session that drafted that deep shares one batched head forward.
        All target feeds (verify blocks and 1-token fallback steps) share
        one batched verify forward.  With a single session the charges
        reduce exactly to the engine's own solo prices, so a batch of one
        costs the same as sequential decoding.
        """
        cost = self.engine.cost_model
        charged = 0.0
        drafted = [r.draft_kv_lens for r in reports if r.draft_kv_lens]
        for lens_at_pos in zip_longest(*drafted):
            lens = [kv for kv in lens_at_pos if kv is not None]
            if lens:
                ms = cost.batched_aasd_step(lens)
                self.clock.charge(ms, "draft")
                charged += ms
        if len(reports) == 1 and reports[0].kind == "fallback":
            # Solo fallback: keep exact parity with sequential decoding,
            # which prices a plain target step (not a 1-token verify).
            ms = cost.target_step()
            self.clock.charge(ms, "fallback")
        else:
            ms = cost.batched_verify([r.feed_size for r in reports])
            self.clock.charge(ms, "verify")
        charged += ms
        return charged

    def _retire(self) -> None:
        """Resolve finished and deadline-expired sessions (batch keeps going)."""
        now = self.now_ms
        still: List[_Active] = []
        for entry in self._active:
            session, handle = entry.session, entry.handle
            if session.finished:
                self.memory.add(session.memory_stats())
                self._resolve(handle, STATUS_COMPLETED,
                              record=self.engine.finish(session),
                              started_ms=entry.started_ms)
            else:
                limit = expiry_ms(handle)
                if limit is not None and now >= limit:
                    # Mid-batch expiry: keep the partial generation.
                    self.memory.add(session.memory_stats())
                    self._resolve(handle, STATUS_TIMEOUT,
                                  record=self.engine.finish(session),
                                  error="deadline expired mid-batch",
                                  started_ms=entry.started_ms)
                else:
                    still.append(entry)
        self._active = still
        if not self._active:
            self._batch_gamma = None

    # ------------------------------------------------------------------
    def run_round(self) -> bool:
        """One scheduler round; returns False when there was nothing to do.

        A round: expire queued deadlines -> admit into free slots (batched
        prefill) -> advance every active session one block (batched
        draft/verify) -> retire finished / expired / failed sessions.
        """
        self._expire_queued()
        if self.idle:
            return False
        with self.engine.tracer.span("schedule", round=self.n_rounds) as span:
            self._admit(span)
            self._step_batch(span)
            self._retire()
        self.n_rounds += 1
        get_registry().counter("serving.rounds_total").inc()
        return True

    def run_until_idle(self, max_rounds: Optional[int] = None) -> int:
        """Run rounds until no work remains; returns rounds executed.

        ``max_rounds`` is a safety valve for tests; exceeding it raises
        :class:`ServingError` (it indicates a scheduler bug, since every
        round makes progress on some session).
        """
        executed = 0
        while self.run_round():
            executed += 1
            if max_rounds is not None and executed > max_rounds:
                raise ServingError(f"scheduler still busy after {max_rounds} rounds")
        return executed


def _normalize(requests: Iterable[Union[ServeRequest, MultimodalSample]]) -> List[ServeRequest]:
    """Wrap raw samples as requests with generated ids."""
    normalized: List[ServeRequest] = []
    for i, item in enumerate(requests):
        if isinstance(item, ServeRequest):
            normalized.append(item)
        else:
            normalized.append(ServeRequest(request_id=f"req-{i:03d}", sample=item))
    return normalized


def serve_requests(
    engine: AASDEngine,
    requests: Iterable[Union[ServeRequest, MultimodalSample]],
    config: Optional[ServingConfig] = None,
) -> ServingReport:
    """Serve a batch of requests to completion and report aggregate throughput.

    The synchronous facade for offline runs: submits every request
    (running scheduler rounds whenever admission control pushes back),
    drains the system, and returns one :class:`ServeResult` per request in
    input order plus server-clock throughput.  Raw
    :class:`~repro.data.tasks.MultimodalSample` items are auto-wrapped as
    requests with generated ids.
    """
    scheduler = ContinuousBatchingScheduler(engine, config)
    normalized = _normalize(requests)
    handles: Dict[str, ServeHandle] = {}
    early: Dict[str, ServeResult] = {}
    for request in normalized:
        # Backpressure: when the queue is full, run rounds until a slot
        # frees instead of dropping the request (offline semantics).
        while scheduler.queue.free == 0 and scheduler.run_round():
            pass
        try:
            handles[request.request_id] = scheduler.submit(request)
        except AdmissionError as exc:
            early[request.request_id] = ServeResult(
                request_id=request.request_id,
                status=STATUS_REJECTED,
                error=str(exc),
                submitted_ms=scheduler.now_ms,
            )
            get_registry().counter("serving.requests_rejected_total").inc()
    scheduler.run_until_idle()

    results = []
    for request in normalized:
        if request.request_id in early:
            results.append(early[request.request_id])
        else:
            results.append(handles[request.request_id].result(timeout=0))
    return ServingReport(
        results=tuple(results),
        total_sim_ms=scheduler.clock.total,
        sim_by_category=dict(scheduler.clock.by_category),
        n_rounds=scheduler.n_rounds,
        max_batch_occupancy=scheduler.max_batch_occupancy,
        bytes_copied=scheduler.memory.bytes_copied,
        arena_grows=scheduler.memory.grow_events,
        peak_cache_tokens=scheduler.memory.peak_tokens,
    )
