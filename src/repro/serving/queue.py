"""Bounded FIFO admission queue with deadline expiry.

Admission control is the serving layer's backpressure mechanism: the queue
holds at most ``max_depth`` waiting requests and :meth:`AdmissionQueue.submit`
raises :class:`~repro.errors.AdmissionError` when full, so overload turns
into an explicit, immediate signal instead of unbounded latency.  The
scheduler additionally expires queued requests whose deadline passes before
they are ever admitted (:meth:`AdmissionQueue.expire`).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, List, Optional

from ..errors import AdmissionError, ServingError
from ..obs.metrics import get_registry
from .request import ServeHandle, ServeRequest, expiry_ms

__all__ = ["AdmissionQueue"]


class AdmissionQueue:
    """Bounded FIFO of :class:`~repro.serving.request.ServeHandle` objects.

    Thread-safe; publishes its depth as the ``serving.queue_depth`` gauge
    on every mutation so dashboards see backlog without polling.
    """

    def __init__(self, max_depth: int = 64) -> None:
        if max_depth <= 0:
            raise ServingError(f"max_depth must be positive, got {max_depth}")
        self.max_depth = max_depth
        self._lock = threading.Lock()
        self._items: deque = deque()
        self._ids: set = set()
        self._publish()

    # ------------------------------------------------------------------
    def _publish(self) -> None:
        """Push the current depth to the ``serving.queue_depth`` gauge."""
        get_registry().gauge("serving.queue_depth").set(len(self._items))

    @property
    def depth(self) -> int:
        """Number of requests currently waiting."""
        with self._lock:
            return len(self._items)

    @property
    def free(self) -> int:
        """Remaining admission capacity."""
        with self._lock:
            return self.max_depth - len(self._items)

    # ------------------------------------------------------------------
    def submit(self, request: ServeRequest, now_ms: float) -> ServeHandle:
        """Enqueue ``request``; raises :class:`AdmissionError` when full.

        ``now_ms`` (server clock) is stamped as the submission time, from
        which any relative deadline is anchored.  Duplicate request ids are
        refused — per-request attribution relies on their uniqueness.
        """
        with self._lock:
            if len(self._items) >= self.max_depth:
                raise AdmissionError(
                    f"queue full ({self.max_depth} waiting); "
                    f"request {request.request_id!r} refused"
                )
            if request.request_id in self._ids:
                raise AdmissionError(f"duplicate request_id {request.request_id!r}")
            handle = ServeHandle(request, submitted_ms=now_ms)
            self._items.append(handle)
            self._ids.add(request.request_id)
            self._publish()
        return handle

    def pop_ready(
        self,
        k: int,
        predicate: Optional[Callable[[ServeHandle], bool]] = None,
    ) -> List[ServeHandle]:
        """Dequeue up to ``k`` handles satisfying ``predicate``, FIFO order.

        Handles failing the predicate stay queued *in place* (no reordering
        among themselves), which is how the scheduler leaves gamma-
        incompatible requests waiting for the current batch to drain.
        """
        if k <= 0:
            return []
        taken: List[ServeHandle] = []
        with self._lock:
            kept: deque = deque()
            while self._items:
                handle = self._items.popleft()
                if len(taken) < k and (predicate is None or predicate(handle)):
                    taken.append(handle)
                    self._ids.discard(handle.request_id)
                else:
                    kept.append(handle)
            self._items = kept
            self._publish()
        return taken

    def requeue(self, handle: ServeHandle) -> None:
        """Front-insert a handle (retry re-admission).

        Capacity-exempt: a retried request already passed admission once
        and holds an unresolved handle a client is waiting on, so
        backpressure must not orphan it.  It joins the *front* of the
        queue — by submission time it is the oldest waiter.
        """
        with self._lock:
            if handle.request_id in self._ids:
                raise AdmissionError(
                    f"request {handle.request_id!r} is already queued"
                )
            self._items.appendleft(handle)
            self._ids.add(handle.request_id)
            self._publish()

    def oldest_wait_ms(self, now_ms: float) -> Optional[float]:
        """Queue time of the oldest waiter (None when empty).

        The scheduler's load-shedding pressure signal: sustained growth
        here means admission is outpacing service.
        """
        with self._lock:
            if not self._items:
                return None
            return now_ms - self._items[0].submitted_ms

    def shed_newest(self, target_depth: int) -> List[ServeHandle]:
        """Drop handles from the *tail* until at most ``target_depth`` wait.

        The reject-newest shed policy: the oldest requests (closest to
        service, longest already invested) keep their place.  Returns the
        shed handles for the scheduler to reject.
        """
        if target_depth < 0:
            raise ServingError(f"target_depth must be non-negative, got {target_depth}")
        shed: List[ServeHandle] = []
        with self._lock:
            while len(self._items) > target_depth:
                handle = self._items.pop()
                self._ids.discard(handle.request_id)
                shed.append(handle)
            self._publish()
        return shed

    def shed_over_deadline(self, now_ms: float, horizon_ms: float) -> List[ServeHandle]:
        """Drop queued handles whose deadline falls inside the horizon.

        The reject-over-deadline shed policy: a request whose absolute
        deadline is within ``horizon_ms`` (the projected further wait)
        cannot finish in time anyway, so shedding it costs nothing and
        frees queue space for requests that still can.  Deadline-less
        requests are never shed by this policy.
        """
        shed: List[ServeHandle] = []
        with self._lock:
            kept: deque = deque()
            for handle in self._items:
                limit = expiry_ms(handle)
                if limit is not None and limit < now_ms + horizon_ms:
                    shed.append(handle)
                    self._ids.discard(handle.request_id)
                else:
                    kept.append(handle)
            self._items = kept
            self._publish()
        return shed

    def expire(self, now_ms: float) -> List[ServeHandle]:
        """Remove and return queued handles whose deadline has passed."""
        expired: List[ServeHandle] = []
        with self._lock:
            kept: deque = deque()
            for handle in self._items:
                limit = expiry_ms(handle)
                if limit is not None and now_ms >= limit:
                    expired.append(handle)
                    self._ids.discard(handle.request_id)
                else:
                    kept.append(handle)
            self._items = kept
            self._publish()
        return expired

    def __len__(self) -> int:
        return self.depth

    def __repr__(self) -> str:
        return f"AdmissionQueue(depth={self.depth}, max_depth={self.max_depth})"
