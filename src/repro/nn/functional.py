"""Functional NN ops built from :mod:`repro.nn.tensor` primitives.

Everything here is differentiable (where it makes sense) and numerically
stabilised: softmax-family ops subtract a detached row max before
exponentiation, so the same code path is safe for logits of any magnitude.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .tensor import Tensor, as_tensor, is_grad_enabled

__all__ = [
    "softmax",
    "log_softmax",
    "cross_entropy",
    "kl_divergence",
    "nll_loss",
    "mse_loss",
    "gelu",
    "silu",
    "relu",
    "embedding",
    "dropout",
    "one_hot",
]


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x - x.data.max(axis=axis, keepdims=True)
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x - x.data.max(axis=axis, keepdims=True)
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    ignore_index: Optional[int] = None,
) -> Tensor:
    """Mean token-level cross entropy.

    Parameters
    ----------
    logits:
        ``(..., vocab)`` unnormalised scores.
    targets:
        Integer array broadcastable to ``logits.shape[:-1]``.
    ignore_index:
        Target value whose positions contribute zero loss (e.g. padding).
    """
    targets = np.asarray(targets)
    logp = log_softmax(logits, axis=-1)
    flat_logp = logp.reshape(-1, logp.shape[-1])
    flat_targets = targets.reshape(-1)
    if ignore_index is not None:
        keep = flat_targets != ignore_index
        if not keep.any():
            raise ValueError("cross_entropy: every target equals ignore_index")
        safe_targets = np.where(keep, flat_targets, 0)
        picked = flat_logp.take_along_axis(safe_targets[:, None], axis=1)
        picked = picked.masked_fill(~keep[:, None], 0.0)
        return -picked.sum() * (1.0 / float(keep.sum()))
    picked = flat_logp.take_along_axis(flat_targets[:, None], axis=1)
    return -picked.mean()


def nll_loss(logp: Tensor, targets: np.ndarray) -> Tensor:
    """Mean negative log likelihood given log-probabilities."""
    targets = np.asarray(targets).reshape(-1)
    flat = logp.reshape(-1, logp.shape[-1])
    picked = flat.take_along_axis(targets[:, None], axis=1)
    return -picked.mean()


def kl_divergence(teacher_logits: Tensor, student_logits: Tensor, axis: int = -1) -> Tensor:
    """Mean KL(teacher || student) over all leading dims.

    The teacher distribution is detached: only the student receives
    gradients, which is the standard distillation setup.
    """
    teacher_p = softmax(as_tensor(teacher_logits).detach(), axis=axis)
    teacher_logp = log_softmax(as_tensor(teacher_logits).detach(), axis=axis)
    student_logp = log_softmax(student_logits, axis=axis)
    per_elem = teacher_p * (teacher_logp - student_logp)
    per_row = per_elem.sum(axis=axis)
    return per_row.mean()


def mse_loss(pred: Tensor, target: Tensor) -> Tensor:
    """Mean squared error."""
    diff = as_tensor(pred) - as_tensor(target)
    return (diff * diff).mean()


_SQRT_2_OVER_PI = float(np.sqrt(2.0 / np.pi))


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation)."""
    x = as_tensor(x)
    inner = (x + (x * x * x) * 0.044715) * _SQRT_2_OVER_PI
    return x * 0.5 * (inner.tanh() + 1.0)


def silu(x: Tensor) -> Tensor:
    """SiLU / swish activation used by LLaMA-style MLPs."""
    x = as_tensor(x)
    return x * x.sigmoid()


def relu(x: Tensor) -> Tensor:
    return as_tensor(x).relu()


def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Differentiable embedding lookup ``weight[indices]``."""
    indices = np.asarray(indices, dtype=np.int64)
    return weight[indices]


def dropout(x: Tensor, p: float, training: bool, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout; identity when not training or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    if p >= 1.0:
        raise ValueError("dropout probability must be < 1")
    gen = rng if rng is not None else np.random.default_rng()
    mask = (gen.random(x.shape) >= p).astype(x.data.dtype) / (1.0 - p)
    return x * Tensor(mask)


def one_hot(indices: np.ndarray, depth: int) -> np.ndarray:
    """Plain-numpy one-hot encoding (no gradient involved)."""
    indices = np.asarray(indices, dtype=np.int64)
    out = np.zeros(indices.shape + (depth,), dtype=np.float32)
    np.put_along_axis(out, indices[..., None], 1.0, axis=-1)
    return out
