"""Ragged (variable-length) batch packing: the cu-seqlen kernel layout.

A batch of B requests with lengths ``L_0..L_{B-1}`` is packed into one
``(1, sum(L_i), d)`` tensor plus an offsets vector ``cu`` (*cumulative
sequence lengths*, the flash-attention / vLLM idiom): request ``i`` owns
rows ``cu[i]:cu[i+1]``.  Every *row-wise* op of a transformer stack —
embedding gather, RMSNorm, the q/k/v/o projections, RoPE, the MLP, the
LM head — then runs as **one** fused call over all rows instead of B
per-request Python dispatches.  Only attention needs per-request
structure, because request ``i``'s queries may attend to request ``i``'s
keys alone; see :func:`repro.nn.attention.ragged_attend`.

Packing-stability contract
--------------------------
Packing is used by decode paths whose outputs must be **bitwise**
identical to the sequential per-request path (greedy speculative
decoding is lossless, and the serving tests assert token identity).
That works because of two empirical properties of the BLAS this repo
runs on, pinned by ``tests/nn/test_ragged.py::TestPackingStability``:

* **M >= 2 rows are stable under packing**: row ``r`` of
  ``(M, K) @ (K, N)`` is bitwise independent of ``M`` for every
  ``M >= 2`` — the kernel reduces over K identically per row, so
  stacking more rows on top never changes an existing row.
* **M == 1 is different**: a single-row matmul takes the gemv kernel,
  whose K-reduction order differs from the gemm kernel's once K is large
  enough (observed at K >= 64 in float32).  A lone row therefore may NOT
  be packed into a taller matrix.  Instead, B single-token requests are
  run *lockstep* as ``np.matmul((B, 1, K), (K, N))`` — numpy loops the
  batch axis, so each slice still takes the gemv kernel (bitwise equal
  to the solo call) while Python pays one dispatch instead of B.

Consequently: the verify/prefill paths (every row >= 2 tokens) use
cu-seqlen packing via :func:`pack_rows`, and the draft path (1 token per
request per step) uses lockstep ``(B, 1, d)`` batching.  Layout details
and a worked example live in ``docs/kernels.md``.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, Union

import numpy as np

from .tensor import Tensor, concat

__all__ = [
    "cu_seqlens",
    "row_extents",
    "pack_rows",
    "unpack_rows",
    "ragged_blocked",
]


def cu_seqlens(lengths: Sequence[int]) -> np.ndarray:
    """Cumulative sequence-length offsets ``[0, L0, L0+L1, ...]``.

    The returned int64 vector has ``len(lengths) + 1`` entries; segment
    ``i`` of a packed tensor is ``packed[cu[i]:cu[i+1]]`` along the
    packed axis.
    """
    cu = np.zeros(len(lengths) + 1, dtype=np.int64)
    np.cumsum(np.asarray(lengths, dtype=np.int64), out=cu[1:])
    return cu


def row_extents(cu: np.ndarray) -> List[Tuple[int, int]]:
    """``(start, end)`` pairs per segment of a cu-seqlen offsets vector."""
    return [(int(cu[i]), int(cu[i + 1])) for i in range(len(cu) - 1)]


def pack_rows(rows: Sequence[Union[Tensor, np.ndarray]], axis: int = 1) -> Tensor:
    """Concatenate per-request rows into one packed tensor.

    ``rows`` are tensors shaped ``(1, L_i, ...)`` (or any shapes equal
    outside ``axis``); the result is their concatenation along ``axis``
    — one allocation, one memcpy per row.  Use :func:`cu_seqlens` on the
    per-row lengths to index the result.
    """
    tensors = [r if isinstance(r, Tensor) else Tensor(np.asarray(r)) for r in rows]
    if len(tensors) == 1:
        return tensors[0]
    return concat(tensors, axis=axis)


def unpack_rows(packed: np.ndarray, cu: np.ndarray, axis: int = 1) -> List[np.ndarray]:
    """Split a packed array back into per-request views (zero-copy).

    The inverse of :func:`pack_rows`: returns one numpy view per
    segment, sliced along ``axis`` at the ``cu`` offsets.
    """
    data = np.asarray(packed)
    index: List[slice] = [slice(None)] * data.ndim
    views = []
    for start, end in row_extents(cu):
        index[axis] = slice(start, end)
        views.append(data[tuple(index)])
    return views


def ragged_blocked(
    query_positions: Sequence[np.ndarray],
    key_positions: Sequence[np.ndarray],
) -> np.ndarray:
    """Block-diagonal ragged attention mask; ``True`` marks blocked pairs.

    Generalizes :func:`repro.nn.attention.causal_mask` to a packed batch:
    for per-request query/key position rows, the returned
    ``(sum_q, sum_k)`` boolean matrix blocks every cross-request pair
    outright and applies the causal rule (key position > query position)
    inside each request's diagonal block.

    This is the mask a *fused* ragged attention over concatenated keys
    would use (``ragged_attend(..., fused=True)``); the bitwise-exact
    serving path instead attends per segment and never materializes it.
    """
    if len(query_positions) != len(key_positions):
        raise ValueError(
            f"{len(query_positions)} query rows vs {len(key_positions)} key rows"
        )
    q_rows = [np.asarray(q).reshape(-1) for q in query_positions]
    k_rows = [np.asarray(k).reshape(-1) for k in key_positions]
    cu_q = cu_seqlens([len(q) for q in q_rows])
    cu_k = cu_seqlens([len(k) for k in k_rows])
    blocked = np.ones((int(cu_q[-1]), int(cu_k[-1])), dtype=bool)
    for i, (q, k) in enumerate(zip(q_rows, k_rows)):
        blocked[cu_q[i]:cu_q[i + 1], cu_k[i]:cu_k[i + 1]] = (
            k.reshape(1, -1) > q.reshape(-1, 1)
        )
    return blocked
