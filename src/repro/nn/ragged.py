"""Ragged (variable-length) batch packing: the cu-seqlen kernel layout.

A batch of B requests with lengths ``L_0..L_{B-1}`` is packed into one
``(1, sum(L_i), d)`` tensor plus an offsets vector ``cu`` (*cumulative
sequence lengths*, the flash-attention / vLLM idiom): request ``i`` owns
rows ``cu[i]:cu[i+1]``.  Every *row-wise* op of a transformer stack —
embedding gather, RMSNorm, the q/k/v/o projections, RoPE, the MLP, the
LM head — then runs as **one** fused call over all rows instead of B
per-request Python dispatches.  Only attention needs per-request
structure, because request ``i``'s queries may attend to request ``i``'s
keys alone; see :func:`repro.nn.attention.ragged_attend`.

Packing-stability contract
--------------------------
Packing is used by decode paths whose outputs must be **bitwise**
identical to the sequential per-request path (greedy speculative
decoding is lossless, and the serving tests assert token identity).
That works because of two empirical properties of the BLAS this repo
runs on, pinned by ``tests/nn/test_ragged.py::TestPackingStability``:

* **M >= 2 rows are stable under packing**: row ``r`` of
  ``(M, K) @ (K, N)`` is bitwise independent of ``M`` for every
  ``M >= 2`` — the kernel reduces over K identically per row, so
  stacking more rows on top never changes an existing row.
* **M == 1 is different**: a single-row matmul takes the gemv kernel,
  whose K-reduction order differs from the gemm kernel's once K is large
  enough (observed at K >= 64 in float32).  A lone row therefore may NOT
  be packed into a taller matrix.  Instead, B single-token requests are
  run *lockstep* as ``np.matmul((B, 1, K), (K, N))`` — numpy loops the
  batch axis, so each slice still takes the gemv kernel (bitwise equal
  to the solo call) while Python pays one dispatch instead of B.

Consequently: the verify/prefill paths (every row >= 2 tokens) use
cu-seqlen packing via :func:`pack_rows`, and the draft path (1 token per
request per step) uses lockstep ``(B, 1, d)`` batching.  Layout details
and a worked example live in ``docs/kernels.md``.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, Union

import numpy as np

from .tensor import Tensor, concat

__all__ = [
    "cu_seqlens",
    "row_extents",
    "pack_rows",
    "unpack_rows",
    "ragged_blocked",
    "tree_blocked",
]


def cu_seqlens(lengths: Sequence[int]) -> np.ndarray:
    """Cumulative sequence-length offsets ``[0, L0, L0+L1, ...]``.

    The returned int64 vector has ``len(lengths) + 1`` entries; segment
    ``i`` of a packed tensor is ``packed[cu[i]:cu[i+1]]`` along the
    packed axis.
    """
    cu = np.zeros(len(lengths) + 1, dtype=np.int64)
    np.cumsum(np.asarray(lengths, dtype=np.int64), out=cu[1:])
    return cu


def row_extents(cu: np.ndarray) -> List[Tuple[int, int]]:
    """``(start, end)`` pairs per segment of a cu-seqlen offsets vector."""
    return [(int(cu[i]), int(cu[i + 1])) for i in range(len(cu) - 1)]


def pack_rows(rows: Sequence[Union[Tensor, np.ndarray]], axis: int = 1) -> Tensor:
    """Concatenate per-request rows into one packed tensor.

    ``rows`` are tensors shaped ``(1, L_i, ...)`` (or any shapes equal
    outside ``axis``); the result is their concatenation along ``axis``
    — one allocation, one memcpy per row.  Use :func:`cu_seqlens` on the
    per-row lengths to index the result.
    """
    tensors = [r if isinstance(r, Tensor) else Tensor(np.asarray(r)) for r in rows]
    if len(tensors) == 1:
        return tensors[0]
    return concat(tensors, axis=axis)


def unpack_rows(packed: np.ndarray, cu: np.ndarray, axis: int = 1) -> List[np.ndarray]:
    """Split a packed array back into per-request views (zero-copy).

    The inverse of :func:`pack_rows`: returns one numpy view per
    segment, sliced along ``axis`` at the ``cu`` offsets.
    """
    data = np.asarray(packed)
    index: List[slice] = [slice(None)] * data.ndim
    views = []
    for start, end in row_extents(cu):
        index[axis] = slice(start, end)
        views.append(data[tuple(index)])
    return views


def tree_blocked(parents: Sequence[int]) -> np.ndarray:
    """Feed-local tree-attention mask; ``True`` marks blocked pairs.

    A speculation tree is serialized depth-first into a token list plus a
    parent-pointer array: ``parents[i]`` is the node index of node ``i``'s
    parent, with ``-1`` meaning a child of the *anchor* (the last committed
    token, fed as row 0 of the verification feed).  DFS serialization
    guarantees ``parents[i] < i``, so one forward pass over the parent
    pointers computes the full ancestor closure.

    The returned ``(n+1, n+1)`` boolean matrix covers the feed rows
    ``[anchor, node_0, .., node_{n-1}]``: row ``r`` may attend exactly to
    itself, the anchor, and its root-path ancestors — every sibling branch
    is blocked.  Committed-context keys are handled by the caller (they
    precede the anchor, so the plain causal rule already admits them; see
    :func:`ragged_blocked`).

    For a linear chain (``parents == [-1, 0, 1, ...]``) every earlier feed
    row is an ancestor, so the mask degenerates to the strict upper
    triangle — exactly the causal mask of a linear verify feed, which is
    what makes branch-factor-1 tree verification bitwise identical to the
    linear speculative path.
    """
    n = len(parents)
    allow = np.eye(n + 1, dtype=bool)
    allow[:, 0] = True
    for i, parent in enumerate(parents):
        p = int(parent)
        if not -1 <= p < i:
            raise ValueError(
                f"node {i} has parent {p}; DFS serialization requires -1 <= parent < node"
            )
        allow[i + 1] |= allow[p + 1]
    return ~allow


def ragged_blocked(
    query_positions: Sequence[np.ndarray],
    key_positions: Sequence[np.ndarray],
    tree_parent_rows: Union[Sequence[Union[Sequence[int], None]], None] = None,
) -> np.ndarray:
    """Block-diagonal ragged attention mask; ``True`` marks blocked pairs.

    Generalizes :func:`repro.nn.attention.causal_mask` to a packed batch:
    for per-request query/key position rows, the returned
    ``(sum_q, sum_k)`` boolean matrix blocks every cross-request pair
    outright and applies the causal rule (key position > query position)
    inside each request's diagonal block.

    ``tree_parent_rows`` optionally carries one parent-pointer array per
    request (or ``None`` for plain causal requests): request ``i``'s
    queries are then a tree-verification feed ``[anchor] + nodes`` whose
    trailing ``len(parents) + 1`` key columns additionally get the
    :func:`tree_blocked` mask OR'd in, so each node attends only to the
    committed context, the anchor, and its root-path ancestors — never to
    sibling branches that may share its position.

    This is the exact mask of the fused verification path
    (``ragged_attend(..., fused=True)``), which slices its per-segment
    masks out of this layout; the two paths are bitwise identical.
    """
    if len(query_positions) != len(key_positions):
        raise ValueError(
            f"{len(query_positions)} query rows vs {len(key_positions)} key rows"
        )
    if tree_parent_rows is not None and len(tree_parent_rows) != len(query_positions):
        raise ValueError(
            f"{len(tree_parent_rows)} tree parent rows vs "
            f"{len(query_positions)} query rows"
        )
    q_rows = [np.asarray(q).reshape(-1) for q in query_positions]
    k_rows = [np.asarray(k).reshape(-1) for k in key_positions]
    cu_q = cu_seqlens([len(q) for q in q_rows])
    cu_k = cu_seqlens([len(k) for k in k_rows])
    blocked = np.ones((int(cu_q[-1]), int(cu_k[-1])), dtype=bool)
    for i, (q, k) in enumerate(zip(q_rows, k_rows)):
        block = k.reshape(1, -1) > q.reshape(-1, 1)
        parents = tree_parent_rows[i] if tree_parent_rows is not None else None
        if parents is not None:
            n_feed = len(parents) + 1
            if n_feed != len(q):
                raise ValueError(
                    f"request {i}: {len(parents)} tree parents imply a feed of "
                    f"{n_feed} rows, got {len(q)} query rows"
                )
            if n_feed > len(k):
                raise ValueError(
                    f"request {i}: feed of {n_feed} rows exceeds {len(k)} key rows"
                )
            block[:, len(k) - n_feed:] |= tree_blocked(parents)
        blocked[cu_q[i]:cu_q[i + 1], cu_k[i]:cu_k[i + 1]] = block
    return blocked
