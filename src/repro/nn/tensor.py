"""Reverse-mode automatic differentiation on numpy arrays.

This module is the foundation of the ``repro`` NN substrate: a small,
explicit autodiff engine in the style of PyTorch's eager mode.  A
:class:`Tensor` wraps a ``numpy.ndarray`` together with an optional gradient
and a backward closure; calling :meth:`Tensor.backward` runs reverse-mode
differentiation over the recorded graph.

Design notes
------------
* Broadcasting follows numpy semantics everywhere.  Gradients flowing into a
  broadcast operand are reduced back to the operand's shape by
  :func:`unbroadcast`.
* The graph is built eagerly.  Each op attaches a ``_backward`` closure to its
  output; :meth:`Tensor.backward` topologically sorts the graph and invokes
  the closures in reverse order.
* Only ops used by the AASD reproduction are implemented, but each is a
  general-purpose primitive (matmul with batch dims, reductions with axes,
  slicing, concatenation, gather, ...).
"""

from __future__ import annotations

import time
from typing import Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from ..obs.profile import OP_GEMM, PROFILER as _PROFILER

__all__ = [
    "Tensor",
    "as_tensor",
    "matmul_data",
    "no_grad",
    "is_grad_enabled",
    "unbroadcast",
    "concat",
    "stack",
    "where",
]

Scalar = Union[int, float]
TensorLike = Union["Tensor", np.ndarray, Scalar, Sequence]

_DEFAULT_DTYPE = np.float32


class _GradMode:
    """Process-wide switch for gradient recording (see :func:`no_grad`)."""

    enabled: bool = True


class no_grad:
    """Context manager that disables graph construction.

    Inside a ``with no_grad():`` block all ops produce detached tensors.
    Used by inference paths (generation, speculative decoding) where graph
    bookkeeping would only waste memory.
    """

    def __enter__(self) -> "no_grad":
        self._prev = _GradMode.enabled
        _GradMode.enabled = False
        return self

    def __exit__(self, *exc_info) -> None:
        _GradMode.enabled = self._prev


def is_grad_enabled() -> bool:
    """Return whether ops currently record the autodiff graph."""
    return _GradMode.enabled


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after numpy broadcasting.

    Sums over leading axes that were added by broadcasting and over axes
    whose original extent was 1.
    """
    if grad.shape == shape:
        return grad
    # Sum out prepended broadcast dimensions.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were broadcast from size 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def matmul_data(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``np.matmul`` with the repo's GEMM attribution hook.

    Every GEMM in the repo flows through here (``Tensor.__matmul__``
    delegates, and inference fast paths that skip the autograd wrapper —
    e.g. :meth:`repro.nn.attention.MultiHeadAttention.attend` — call it
    directly), so this one hook gives complete compute attribution.  One
    flag check when profiling is off; timing only (no RNG, no copies)
    when on.
    """
    if _PROFILER.enabled:
        begin = time.perf_counter()
        product = np.matmul(a, b)
        _PROFILER.record(
            OP_GEMM,
            1000.0 * (time.perf_counter() - begin),
            flops=2.0 * product.size * a.shape[-1],
        )
        return product
    return np.matmul(a, b)


class Tensor:
    """A numpy array with reverse-mode autodiff support."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "name")

    def __init__(
        self,
        data: TensorLike,
        requires_grad: bool = False,
        name: str = "",
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data)
        if arr.dtype.kind in "fc" and arr.dtype != np.float64:
            arr = arr.astype(_DEFAULT_DTYPE, copy=False)
        elif arr.dtype.kind in "iub":
            arr = arr.astype(_DEFAULT_DTYPE)
        self.data: np.ndarray = arr
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad)
        self._backward = None
        self._prev: Tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape, dtype=_DEFAULT_DTYPE), requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape, dtype=_DEFAULT_DTYPE), requires_grad)

    @staticmethod
    def full(shape: Sequence[int], value: Scalar, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.full(shape, value, dtype=_DEFAULT_DTYPE), requires_grad)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}{grad_flag}{label})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a view of this tensor cut off from the graph."""
        return Tensor(self.data)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), self.requires_grad)

    # ------------------------------------------------------------------
    # Graph plumbing
    # ------------------------------------------------------------------
    def _make_child(self, data: np.ndarray, parents: Tuple["Tensor", ...]) -> "Tensor":
        out = Tensor(data)
        if _GradMode.enabled and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._prev = tuple(p for p in parents if p.requires_grad)
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = unbroadcast(np.asarray(grad, dtype=self.data.dtype), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy() if grad.base is not None else grad
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        Parameters
        ----------
        grad:
            Upstream gradient; defaults to ones (scalar outputs only need
            the default).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without an explicit gradient requires a scalar output")
            grad = np.ones_like(self.data)
        self.grad = np.asarray(grad, dtype=self.data.dtype).reshape(self.data.shape)

        topo: list = []
        visited = set()
        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if id(parent) not in visited:
                    stack.append((parent, False))

        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Arithmetic primitives
    # ------------------------------------------------------------------
    def __add__(self, other: TensorLike) -> "Tensor":
        other = as_tensor(other)
        out = self._make_child(self.data + other.data, (self, other))
        if out.requires_grad:
            def _backward(grad: np.ndarray, a=self, b=other) -> None:
                if a.requires_grad:
                    a._accumulate(grad)
                if b.requires_grad:
                    b._accumulate(grad)
            out._backward = _backward
        return out

    __radd__ = __add__

    def __mul__(self, other: TensorLike) -> "Tensor":
        other = as_tensor(other)
        out = self._make_child(self.data * other.data, (self, other))
        if out.requires_grad:
            def _backward(grad: np.ndarray, a=self, b=other) -> None:
                if a.requires_grad:
                    a._accumulate(grad * b.data)
                if b.requires_grad:
                    b._accumulate(grad * a.data)
            out._backward = _backward
        return out

    __rmul__ = __mul__

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __sub__(self, other: TensorLike) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other: TensorLike) -> "Tensor":
        return as_tensor(other) + (-self)

    def __truediv__(self, other: TensorLike) -> "Tensor":
        other = as_tensor(other)
        out = self._make_child(self.data / other.data, (self, other))
        if out.requires_grad:
            def _backward(grad: np.ndarray, a=self, b=other) -> None:
                if a.requires_grad:
                    a._accumulate(grad / b.data)
                if b.requires_grad:
                    b._accumulate(-grad * a.data / (b.data * b.data))
            out._backward = _backward
        return out

    def __rtruediv__(self, other: TensorLike) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: Scalar) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("Tensor.__pow__ supports scalar exponents only")
        out = self._make_child(self.data ** exponent, (self,))
        if out.requires_grad:
            def _backward(grad: np.ndarray, a=self, p=exponent) -> None:
                a._accumulate(grad * p * (a.data ** (p - 1)))
            out._backward = _backward
        return out

    def __matmul__(self, other: TensorLike) -> "Tensor":
        other = as_tensor(other)
        product = matmul_data(self.data, other.data)
        out = self._make_child(product, (self, other))
        if out.requires_grad:
            def _backward(grad: np.ndarray, a=self, b=other) -> None:
                if a.requires_grad:
                    if b.data.ndim == 1:
                        a._accumulate(np.outer(grad, b.data) if a.data.ndim > 1 else grad * b.data)
                    else:
                        ga = np.matmul(grad, np.swapaxes(b.data, -1, -2))
                        a._accumulate(ga)
                if b.requires_grad:
                    if a.data.ndim == 1:
                        gb = np.outer(a.data, grad) if b.data.ndim > 1 else grad * a.data
                        b._accumulate(gb)
                    else:
                        gb = np.matmul(np.swapaxes(a.data, -1, -2), grad)
                        b._accumulate(gb)
            out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)
        out = self._make_child(data, (self,))
        if out.requires_grad:
            def _backward(grad: np.ndarray, a=self, y=data) -> None:
                a._accumulate(grad * y)
            out._backward = _backward
        return out

    def log(self) -> "Tensor":
        out = self._make_child(np.log(self.data), (self,))
        if out.requires_grad:
            def _backward(grad: np.ndarray, a=self) -> None:
                a._accumulate(grad / a.data)
            out._backward = _backward
        return out

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)
        out = self._make_child(data, (self,))
        if out.requires_grad:
            def _backward(grad: np.ndarray, a=self, y=data) -> None:
                a._accumulate(grad / (2.0 * y))
            out._backward = _backward
        return out

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)
        out = self._make_child(data, (self,))
        if out.requires_grad:
            def _backward(grad: np.ndarray, a=self, y=data) -> None:
                a._accumulate(grad * (1.0 - y * y))
            out._backward = _backward
        return out

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))
        out = self._make_child(data, (self,))
        if out.requires_grad:
            def _backward(grad: np.ndarray, a=self, y=data) -> None:
                a._accumulate(grad * y * (1.0 - y))
            out._backward = _backward
        return out

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out = self._make_child(self.data * mask, (self,))
        if out.requires_grad:
            def _backward(grad: np.ndarray, a=self, m=mask) -> None:
                a._accumulate(grad * m)
            out._backward = _backward
        return out

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        out = self._make_child(np.abs(self.data), (self,))
        if out.requires_grad:
            def _backward(grad: np.ndarray, a=self, s=sign) -> None:
                a._accumulate(grad * s)
            out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        out = self._make_child(self.data.sum(axis=axis, keepdims=keepdims), (self,))
        if out.requires_grad:
            def _backward(grad: np.ndarray, a=self, ax=axis, kd=keepdims) -> None:
                g = grad
                if ax is not None and not kd:
                    axes = (ax,) if isinstance(ax, int) else tuple(ax)
                    for axis_idx in sorted(a2 % a.data.ndim for a2 in axes):
                        g = np.expand_dims(g, axis_idx)
                a._accumulate(np.broadcast_to(g, a.data.shape))
            out._backward = _backward
        return out

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a % self.data.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)
        out = self._make_child(data, (self,))
        if out.requires_grad:
            def _backward(grad: np.ndarray, a=self, ax=axis, kd=keepdims, y=data) -> None:
                g = grad
                yk = y
                if ax is not None and not kd:
                    g = np.expand_dims(g, ax)
                    yk = np.expand_dims(y, ax)
                mask = (a.data == yk)
                # Split gradient among ties to keep gradcheck exact.
                counts = mask.sum(axis=ax, keepdims=True) if ax is not None else mask.sum()
                a._accumulate(g * mask / counts)
            out._backward = _backward
        return out

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = self._make_child(self.data.reshape(shape), (self,))
        if out.requires_grad:
            def _backward(grad: np.ndarray, a=self) -> None:
                a._accumulate(grad.reshape(a.data.shape))
            out._backward = _backward
        return out

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out = self._make_child(self.data.transpose(axes), (self,))
        if out.requires_grad:
            inverse = tuple(np.argsort(axes))
            def _backward(grad: np.ndarray, a=self, inv=inverse) -> None:
                a._accumulate(grad.transpose(inv))
            out._backward = _backward
        return out

    def swapaxes(self, a: int, b: int) -> "Tensor":
        out = self._make_child(np.swapaxes(self.data, a, b), (self,))
        if out.requires_grad:
            def _backward(grad: np.ndarray, t=self, i=a, j=b) -> None:
                t._accumulate(np.swapaxes(grad, i, j))
            out._backward = _backward
        return out

    def __getitem__(self, index) -> "Tensor":
        out = self._make_child(self.data[index], (self,))
        if out.requires_grad:
            def _backward(grad: np.ndarray, a=self, idx=index) -> None:
                full = np.zeros_like(a.data)
                np.add.at(full, idx, grad)
                a._accumulate(full)
            out._backward = _backward
        return out

    def take_along_axis(self, indices: np.ndarray, axis: int) -> "Tensor":
        """Differentiable gather along ``axis`` (``np.take_along_axis``)."""
        indices = np.asarray(indices)
        out = self._make_child(np.take_along_axis(self.data, indices, axis=axis), (self,))
        if out.requires_grad:
            def _backward(grad: np.ndarray, a=self, idx=indices, ax=axis) -> None:
                full = np.zeros_like(a.data)
                # np.put_along_axis overwrites; accumulate by explicit loop-free add.
                _scatter_add_along_axis(full, idx, grad, ax)
                a._accumulate(full)
            out._backward = _backward
        return out

    def pad(self, pad_width: Sequence[Tuple[int, int]]) -> "Tensor":
        out = self._make_child(np.pad(self.data, pad_width), (self,))
        if out.requires_grad:
            slices = tuple(slice(lo, lo + s) for (lo, _), s in zip(pad_width, self.data.shape))
            def _backward(grad: np.ndarray, a=self, sl=slices) -> None:
                a._accumulate(grad[sl])
            out._backward = _backward
        return out

    def masked_fill(self, mask: np.ndarray, value: Scalar) -> "Tensor":
        """Return a tensor equal to ``self`` where ``mask`` is False and ``value`` elsewhere."""
        mask = np.asarray(mask, dtype=bool)
        data = np.where(mask, np.asarray(value, dtype=self.data.dtype), self.data)
        out = self._make_child(data, (self,))
        if out.requires_grad:
            def _backward(grad: np.ndarray, a=self, m=mask) -> None:
                a._accumulate(np.where(m, 0.0, grad))
            out._backward = _backward
        return out


def _scatter_add_along_axis(target: np.ndarray, indices: np.ndarray, values: np.ndarray, axis: int) -> None:
    """In-place scatter-add of ``values`` into ``target`` along ``axis``."""
    axis = axis % target.ndim
    grids = list(np.indices(indices.shape))
    grids[axis] = indices
    np.add.at(target, tuple(grids), values)


def as_tensor(value: TensorLike) -> Tensor:
    """Coerce ``value`` into a :class:`Tensor` (no copy for tensors)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable concatenation along ``axis``."""
    tensors = [as_tensor(t) for t in tensors]
    # repro: allow[hotpath-reach] -- concat() is the allocation primitive itself; callers own the budget
    data = np.concatenate([t.data for t in tensors], axis=axis)
    out = Tensor(data)
    if _GradMode.enabled and any(t.requires_grad for t in tensors):
        out.requires_grad = True
        out._prev = tuple(t for t in tensors if t.requires_grad)
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)
        def _backward(grad: np.ndarray, ts=tensors, offs=offsets, ax=axis) -> None:
            ax_norm = ax % grad.ndim
            for t, lo, hi in zip(ts, offs[:-1], offs[1:]):
                if t.requires_grad:
                    slicer = [slice(None)] * grad.ndim
                    slicer[ax_norm] = slice(lo, hi)
                    t._accumulate(grad[tuple(slicer)])
        out._backward = _backward
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable stack along a new ``axis``."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)
    out = Tensor(data)
    if _GradMode.enabled and any(t.requires_grad for t in tensors):
        out.requires_grad = True
        out._prev = tuple(t for t in tensors if t.requires_grad)
        def _backward(grad: np.ndarray, ts=tensors, ax=axis) -> None:
            pieces = np.split(grad, len(ts), axis=ax)
            for t, piece in zip(ts, pieces):
                if t.requires_grad:
                    t._accumulate(np.squeeze(piece, axis=ax))
        out._backward = _backward
    return out


def where(condition: np.ndarray, a: TensorLike, b: TensorLike) -> Tensor:
    """Differentiable ``np.where`` over tensors ``a`` and ``b``."""
    condition = np.asarray(condition, dtype=bool)
    a, b = as_tensor(a), as_tensor(b)
    out = Tensor(np.where(condition, a.data, b.data))
    if _GradMode.enabled and (a.requires_grad or b.requires_grad):
        out.requires_grad = True
        out._prev = tuple(t for t in (a, b) if t.requires_grad)
        def _backward(grad: np.ndarray, c=condition, ta=a, tb=b) -> None:
            if ta.requires_grad:
                ta._accumulate(np.where(c, grad, 0.0))
            if tb.requires_grad:
                tb._accumulate(np.where(c, 0.0, grad))
        out._backward = _backward
    return out
