"""Raw-ndarray inference kernels that bitwise-mirror the autograd layers.

The packed serving rounds (``docs/kernels.md``) promise **bitwise** token
identity with the per-request autograd path, so these helpers replay the
*exact* numpy op sequence of their :mod:`repro.nn` counterparts — same
ufuncs, same order, same scalar-promotion behaviour (python scalars are
wrapped with ``np.asarray`` exactly where ``as_tensor`` would wrap them) —
minus the per-op graph-node allocations.  GEMMs go through
:func:`repro.nn.tensor.matmul_data` so the wall-clock profiler keeps
attributing them to the ``gemm`` bucket.

Only inference may call these: they take and return plain ``np.ndarray``
and build no autograd graph.  Training code must keep using the layer
``Module`` objects.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .tensor import matmul_data

__all__ = [
    "linear_data",
    "rmsnorm_data",
    "sigmoid_data",
    "silu_data",
    "swiglu_data",
    "split_heads_data",
    "merge_heads_data",
    "rope_data",
    "project_qkv_data",
]


def linear_data(
    x: np.ndarray, weight: np.ndarray, bias: Optional[np.ndarray] = None
) -> np.ndarray:
    """``x @ W^T (+ b)`` with ``weight`` in the ``(out, in)`` layout of
    :class:`repro.nn.layers.Linear`."""
    out = matmul_data(x, weight.swapaxes(-1, -2))
    if bias is not None:
        out = out + bias
    return out


def rmsnorm_data(x: np.ndarray, weight: np.ndarray, eps: float) -> np.ndarray:
    """:class:`repro.nn.normalization.RMSNorm` on raw arrays.

    Mirrors ``x / sqrt(mean(x*x) + eps) * weight`` where the mean is
    computed as ``sum * (1/n)`` — the decomposition ``Tensor.mean`` uses —
    so the reduction order (and hence every bit) matches the layer.  The
    final scale runs in place on the quotient (same product, one fewer
    ``(sum_tokens, D)`` temporary).
    """
    ms = (x * x).sum(axis=-1, keepdims=True) * np.asarray(1.0 / x.shape[-1])
    out = x / np.sqrt(ms + np.asarray(eps))
    out *= weight
    return out


def sigmoid_data(x: np.ndarray) -> np.ndarray:
    """Logistic function, the ``1/(1 + exp(-x))`` form ``Tensor.sigmoid`` uses.

    Runs in place on the ``-x`` copy: ``t += 1.0`` and ``1/t`` produce the
    exact bits of ``1.0 + exp(-x)`` and ``1.0 / (...)`` (IEEE addition is
    commutative) with three fewer full-size temporaries.
    """
    t = np.negative(x)
    np.exp(t, out=t)
    t += 1.0
    np.divide(1.0, t, out=t)
    return t


def silu_data(x: np.ndarray) -> np.ndarray:
    """SiLU / swish: ``x * sigmoid(x)``, multiplied in place on the sigmoid."""
    s = sigmoid_data(x)
    np.multiply(x, s, out=s)
    return s


def swiglu_data(
    x: np.ndarray, gate_w: np.ndarray, up_w: np.ndarray, down_w: np.ndarray
) -> np.ndarray:
    """:class:`repro.nn.transformer.SwiGLU` MLP: ``down(silu(gate(x)) * up(x))``."""
    gated = silu_data(linear_data(x, gate_w))
    gated *= linear_data(x, up_w)
    return linear_data(gated, down_w)


def split_heads_data(x: np.ndarray, n_heads: int) -> np.ndarray:
    """``(B, T, D) -> (B, H, T, D/H)`` (zero-copy view chain)."""
    b, t, d = x.shape
    return x.reshape(b, t, n_heads, d // n_heads).transpose(0, 2, 1, 3)


def merge_heads_data(x: np.ndarray) -> np.ndarray:
    """``(B, H, T, Dh) -> (B, T, H*Dh)``."""
    b, h, t, dh = x.shape
    return x.transpose(0, 2, 1, 3).reshape(b, t, h * dh)


def rope_data(x: np.ndarray, cos: np.ndarray, sin: np.ndarray) -> np.ndarray:
    """Rotary transform ``x*cos + rotate_half(x)*sin`` on raw arrays.

    ``cos``/``sin`` are the float32 tables from
    :meth:`repro.nn.rope.RotaryEmbedding.tables`; the float64 activations
    promote exactly as in the autograd path.
    """
    half = x.shape[-1] // 2
    x1 = x[..., :half]
    x2 = x[..., half:]
    out = x * cos
    # repro: allow[hotpath-reach] -- the rotate-half buffer IS the RoPE math; O(feed), freed immediately
    rot = np.concatenate([-x2, x1], axis=-1)
    rot *= sin
    out += rot
    return out


def project_qkv_data(
    attn, x: np.ndarray, positions: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """:meth:`MultiHeadAttention.project_qkv` on raw arrays.

    ``attn`` is the :class:`repro.nn.attention.MultiHeadAttention` whose
    weights (and rotary table) to use; returns per-head ``(q, k, v)`` with
    RoPE applied when the layer owns a rotary embedding.
    """
    q = split_heads_data(linear_data(x, attn.wq.weight.data), attn.n_heads)
    k = split_heads_data(linear_data(x, attn.wk.weight.data), attn.n_heads)
    v = split_heads_data(linear_data(x, attn.wv.weight.data), attn.n_heads)
    if attn.rope is not None:
        cos, sin = attn.rope.tables(positions)
        q = rope_data(q, cos, sin)
        k = rope_data(k, cos, sin)
    return q, k, v
