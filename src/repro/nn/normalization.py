"""Normalization layers: LayerNorm and RMSNorm (LLaMA-style)."""

from __future__ import annotations

from .module import Module, Parameter
from .tensor import Tensor
from . import initializers as init

__all__ = ["LayerNorm", "RMSNorm"]


class LayerNorm(Module):
    """Standard layer normalization over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.weight = Parameter(init.ones((dim,)), name="weight")
        self.bias = Parameter(init.zeros((dim,)), name="bias")

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered / (var + self.eps).sqrt()
        return normed * self.weight + self.bias


class RMSNorm(Module):
    """Root-mean-square normalization, the LLaMA default."""

    def __init__(self, dim: int, eps: float = 1e-6) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.weight = Parameter(init.ones((dim,)), name="weight")

    def forward(self, x: Tensor) -> Tensor:
        ms = (x * x).mean(axis=-1, keepdims=True)
        return x / (ms + self.eps).sqrt() * self.weight
