"""Weight initializers.

All initializers take an explicit ``numpy.random.Generator`` so model
construction is fully deterministic given a seed.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

__all__ = ["normal", "uniform", "xavier_uniform", "kaiming_normal", "zeros", "ones"]


def normal(rng: np.random.Generator, shape: Sequence[int], std: float = 0.02) -> np.ndarray:
    """Gaussian init with the GPT-style default std of 0.02."""
    return (rng.standard_normal(tuple(shape)) * std).astype(np.float32)


def uniform(rng: np.random.Generator, shape: Sequence[int], bound: float) -> np.ndarray:
    return rng.uniform(-bound, bound, tuple(shape)).astype(np.float32)


def _fan(shape: Sequence[int]) -> Tuple[int, int]:
    if len(shape) < 2:
        return int(shape[0]), int(shape[0])
    fan_in = int(np.prod(shape[1:]))
    fan_out = int(shape[0])
    return fan_in, fan_out


def xavier_uniform(rng: np.random.Generator, shape: Sequence[int], gain: float = 1.0) -> np.ndarray:
    """Glorot uniform initialization."""
    fan_in, fan_out = _fan(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return uniform(rng, shape, bound)


def kaiming_normal(rng: np.random.Generator, shape: Sequence[int]) -> np.ndarray:
    """He-normal initialization for ReLU-family activations."""
    fan_in, _ = _fan(shape)
    std = np.sqrt(2.0 / fan_in)
    return normal(rng, shape, std=std)


def zeros(shape: Sequence[int]) -> np.ndarray:
    return np.zeros(tuple(shape), dtype=np.float32)


def ones(shape: Sequence[int]) -> np.ndarray:
    return np.ones(tuple(shape), dtype=np.float32)
