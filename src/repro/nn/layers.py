"""Core layers: Linear, Embedding, Dropout, Sequential, MLP."""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from . import functional as F
from . import initializers as init
from .module import Module, Parameter
from .tensor import Tensor

__all__ = ["Linear", "Embedding", "Dropout", "Sequential", "MLP"]


class Linear(Module):
    """Affine map ``y = x W^T + b`` with weight shape ``(out, in)``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        gen = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform(gen, (out_features, in_features)), name="weight")
        self.bias = Parameter(init.zeros((out_features,)), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.swapaxes(-1, -2)
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear(in={self.in_features}, out={self.out_features}, bias={self.bias is not None})"


class Embedding(Module):
    """Token embedding table of shape ``(vocab, dim)``."""

    def __init__(self, num_embeddings: int, dim: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        gen = rng if rng is not None else np.random.default_rng()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(init.normal(gen, (num_embeddings, dim)), name="weight")

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding index out of range [0, {self.num_embeddings}): "
                f"min={indices.min()}, max={indices.max()}"
            )
        return F.embedding(self.weight, indices)

    def __repr__(self) -> str:
        return f"Embedding(num={self.num_embeddings}, dim={self.dim})"


class Dropout(Module):
    """Inverted dropout layer (identity in eval mode)."""

    def __init__(self, p: float = 0.0, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training, rng=self._rng)


class Sequential(Module):
    """Run modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.items: List[Module] = list(modules)

    def forward(self, x):
        for m in self.items:
            x = m(x)
        return x

    def __len__(self) -> int:
        return len(self.items)

    def __getitem__(self, i: int) -> Module:
        return self.items[i]


class MLP(Module):
    """Simple feed-forward network with a configurable activation."""

    def __init__(
        self,
        sizes: Sequence[int],
        activation: Callable[[Tensor], Tensor] = F.gelu,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if len(sizes) < 2:
            raise ValueError("MLP needs at least input and output sizes")
        gen = rng if rng is not None else np.random.default_rng()
        self.layers = [
            Linear(sizes[i], sizes[i + 1], bias=bias, rng=gen) for i in range(len(sizes) - 1)
        ]
        self.activation = activation

    def forward(self, x: Tensor) -> Tensor:
        for i, layer in enumerate(self.layers):
            x = layer(x)
            if i < len(self.layers) - 1:
                x = self.activation(x)
        return x
