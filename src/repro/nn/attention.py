"""Multi-head attention with KV-cache support.

The attention layer here is the one used by both the target MLLM backbone and
the AASD draft head, so it exposes exactly the hooks the paper's method
needs:

* incremental decoding against cached key/value arrays,
* access to the per-layer K/V produced for new tokens (the target model's
  last-layer KV is what the AASD speculating module consumes),
* arbitrary boolean attention masks in addition to the implicit causal rule.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from . import functional as F
from .layers import Linear
from .module import Module
from .rope import RotaryEmbedding, apply_rope
from .tensor import Tensor, concat

__all__ = ["MultiHeadAttention", "causal_mask", "split_heads", "merge_heads"]


def causal_mask(query_positions: np.ndarray, key_positions: np.ndarray) -> np.ndarray:
    """Boolean mask of shape ``(Tq, Tk)``; True marks *blocked* pairs.

    A query at absolute position ``i`` may attend to keys at positions
    ``<= i``.
    """
    q = np.asarray(query_positions).reshape(-1, 1)
    k = np.asarray(key_positions).reshape(1, -1)
    return k > q


def split_heads(x: Tensor, n_heads: int) -> Tensor:
    """``(B, T, D) -> (B, H, T, D/H)``."""
    b, t, d = x.shape
    if d % n_heads != 0:
        raise ValueError(f"model dim {d} not divisible by n_heads {n_heads}")
    return x.reshape(b, t, n_heads, d // n_heads).transpose(0, 2, 1, 3)


def merge_heads(x: Tensor) -> Tensor:
    """``(B, H, T, Dh) -> (B, T, H*Dh)``."""
    b, h, t, dh = x.shape
    return x.transpose(0, 2, 1, 3).reshape(b, t, h * dh)


class MultiHeadAttention(Module):
    """Causal multi-head self-attention with RoPE and optional KV cache."""

    def __init__(
        self,
        dim: int,
        n_heads: int,
        rope: Optional[RotaryEmbedding] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if dim % n_heads != 0:
            raise ValueError(f"dim {dim} must be divisible by n_heads {n_heads}")
        self.dim = dim
        self.n_heads = n_heads
        self.head_dim = dim // n_heads
        self.rope = rope
        gen = rng if rng is not None else np.random.default_rng()
        self.wq = Linear(dim, dim, bias=False, rng=gen)
        self.wk = Linear(dim, dim, bias=False, rng=gen)
        self.wv = Linear(dim, dim, bias=False, rng=gen)
        self.wo = Linear(dim, dim, bias=False, rng=gen)

    def project_qkv(
        self, x: Tensor, positions: np.ndarray
    ) -> Tuple[Tensor, Tensor, Tensor]:
        """Compute (q, k, v) heads for new tokens at absolute ``positions``.

        Shapes: x ``(B, T, D)`` -> each of q/k/v ``(B, H, T, Dh)``.  RoPE is
        applied to q and k when the layer owns a rotary table.
        """
        q = split_heads(self.wq(x), self.n_heads)
        k = split_heads(self.wk(x), self.n_heads)
        v = split_heads(self.wv(x), self.n_heads)
        if self.rope is not None:
            cos, sin = self.rope.tables(positions)
            q = apply_rope(q, cos, sin)
            k = apply_rope(k, cos, sin)
        return q, k, v

    @staticmethod
    def attend(
        q: Tensor,
        k: Tensor,
        v: Tensor,
        blocked: Optional[np.ndarray] = None,
    ) -> Tensor:
        """Scaled dot-product attention; ``blocked`` marks disallowed pairs.

        ``blocked`` broadcasts against the score tensor ``(B, H, Tq, Tk)``.
        """
        scale = 1.0 / np.sqrt(q.shape[-1])
        scores = (q @ k.swapaxes(-1, -2)) * scale
        if blocked is not None:
            scores = scores.masked_fill(blocked, -1e9)
        weights = F.softmax(scores, axis=-1)
        return weights @ v

    def forward(
        self,
        x: Tensor,
        positions: np.ndarray,
        past_kv: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        key_positions: Optional[np.ndarray] = None,
        extra_blocked: Optional[np.ndarray] = None,
    ) -> Tuple[Tensor, Tensor, Tensor]:
        """Causal self-attention over new tokens plus an optional KV cache.

        Parameters
        ----------
        x:
            New-token activations ``(B, T, D)``.
        positions:
            Absolute positions of the T new tokens (used for RoPE and the
            causal rule).
        past_kv:
            Cached ``(K, V)`` arrays of shape ``(B, H, Tpast, Dh)``; treated
            as constants (no gradient flows into the cache).
        key_positions:
            Absolute positions of the cached keys; defaults to
            ``arange(Tpast)``.
        extra_blocked:
            Extra boolean blocking mask broadcastable to ``(Tq, Tk_total)``,
            combined (OR) with the causal mask.  Used by the ablations that
            hide the image or text KV segments.

        Returns
        -------
        (output, k_new, v_new):
            ``output`` is ``(B, T, D)`` after the output projection;
            ``k_new``/``v_new`` are the fresh per-head K/V for the new tokens
            (post-RoPE), ready to append to a cache.
        """
        positions = np.asarray(positions, dtype=np.int64)
        q, k_new, v_new = self.project_qkv(x, positions)

        if past_kv is not None:
            past_k, past_v = past_kv
            k_all = concat([Tensor(np.asarray(past_k)), k_new], axis=2)
            v_all = concat([Tensor(np.asarray(past_v)), v_new], axis=2)
            n_past = np.asarray(past_k).shape[2]
            if key_positions is None:
                key_positions = np.arange(n_past, dtype=np.int64)
            all_key_pos = np.concatenate([np.asarray(key_positions, dtype=np.int64), positions])
        else:
            k_all, v_all = k_new, v_new
            all_key_pos = positions

        blocked = causal_mask(positions, all_key_pos)
        if extra_blocked is not None:
            blocked = blocked | np.asarray(extra_blocked, dtype=bool)

        out = self.attend(q, k_all, v_all, blocked=blocked)
        return self.wo(merge_heads(out)), k_new, v_new
