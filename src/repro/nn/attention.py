"""Multi-head attention with KV-cache support.

The attention layer here is the one used by both the target MLLM backbone and
the AASD draft head, so it exposes exactly the hooks the paper's method
needs:

* incremental decoding against cached key/value arrays,
* access to the per-layer K/V produced for new tokens (the target model's
  last-layer KV is what the AASD speculating module consumes),
* arbitrary boolean attention masks in addition to the implicit causal rule.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from . import functional as F
from .layers import Linear
from .module import Module
from .ragged import cu_seqlens, pack_rows, ragged_blocked
from .rope import RotaryEmbedding, apply_rope
from .tensor import Tensor, concat, is_grad_enabled, matmul_data

__all__ = [
    "MultiHeadAttention",
    "attend_data",
    "causal_mask",
    "split_heads",
    "merge_heads",
    "ragged_attend",
]


def attend_data(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    blocked: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Scaled dot-product attention on raw arrays (inference fast path).

    Exactly the op sequence of :meth:`MultiHeadAttention.attend` — same
    numpy calls in the same order, so the result is bitwise identical —
    minus the autograd graph nodes.  Decode paths call attention once per
    request per layer per round, which makes those five skipped ``Tensor``
    allocations a measurable wall-clock win; the packed serving kernels
    (``docs/kernels.md``) call this directly on cache views.
    """
    scale = 1.0 / np.sqrt(q.shape[-1])
    # 0-d array, not a scalar: matches as_tensor(scale)'s dtype
    # promotion in the autograd path exactly
    scores = matmul_data(q, k.swapaxes(-1, -2)) * np.asarray(scale)
    if blocked is not None:
        # same masked value np.where would produce, without a new array
        np.copyto(scores, np.asarray(-1e9, dtype=scores.dtype), where=blocked)
    # in-place softmax: identical ufuncs in identical order, fewer
    # temporaries (attention runs once per request per layer per round)
    scores -= scores.max(axis=-1, keepdims=True)
    np.exp(scores, out=scores)
    scores /= scores.sum(axis=-1, keepdims=True)
    return matmul_data(scores, v)


def ragged_attend(
    q: Tensor,
    cu_q: np.ndarray,
    keys: Sequence[Tensor],
    values: Sequence[Tensor],
    blocked: Optional[Sequence[Optional[np.ndarray]]] = None,
    *,
    fused: bool = False,
    query_positions: Optional[Sequence[np.ndarray]] = None,
    key_positions: Optional[Sequence[np.ndarray]] = None,
    tree_parent_rows: Optional[Sequence[Optional[Sequence[int]]]] = None,
) -> Tensor:
    """Attention over a cu-seqlen-packed ragged batch of B requests.

    ``q`` is the packed query tensor ``(1, H, sum_q, Dh)`` whose segment
    ``i`` (rows ``cu_q[i]:cu_q[i+1]``) belongs to request ``i``;
    ``keys[i]``/``values[i]`` are that request's keys/values
    ``(1, H, Tk_i, Dh)`` — typically zero-copy arena views from a
    :class:`repro.core.kv_arena.BlockTable`.  Queries never attend
    across requests.

    Two entry modes, one execution strategy:

    * **Segment-exact** (default): runs :meth:`MultiHeadAttention.attend`
      once per request on the query segment, with ``blocked[i]`` as that
      request's mask (``None`` entries skip masking entirely — the fast
      path when causality is vacuous).  Each segment's scores/softmax/
      value GEMMs have exactly the solo path's shapes, so the result is
      **bitwise identical** to per-request attention.  This is the mode
      the packed decode paths use.
    * **Fused** (``fused=True``): the caller hands over ``query_positions``
      / ``key_positions`` (required in this mode; ``blocked`` is ignored)
      plus optional per-request ``tree_parent_rows``, and the masks are
      built internally — per request, the matching diagonal block of
      :func:`repro.nn.ragged.ragged_blocked` (causal rule, plus the
      :func:`repro.nn.ragged.tree_blocked` ancestor mask for requests
      carrying tree parents).  Execution still attends **per segment**:
      one concatenated score GEMM would reduce at different shapes than
      the solo path and is *not* bitwise stable on this BLAS (pinned by
      ``tests/nn/test_ragged.py::TestPackingStability``), and a fully
      masked cross-segment score contributes an exact float32 zero to the
      softmax sum whose accumulation-order effects still perturb the
      result by ulps.  Per-segment execution under the internally built
      masks is therefore the exact semantics of the fused mask layout —
      bitwise identical to the segment path and to solo attention — and
      is the tree-verification path used by the engine.

    Returns the packed attention output ``(1, H, sum_q, Dh)``.
    """
    if len(keys) != len(values):
        raise ValueError(f"{len(keys)} key blocks vs {len(values)} value blocks")
    if len(keys) != len(cu_q) - 1:
        raise ValueError(f"{len(keys)} KV blocks vs {len(cu_q) - 1} query segments")
    if fused:
        if query_positions is None or key_positions is None:
            raise ValueError("fused ragged attention requires query/key positions")
        mask = ragged_blocked(query_positions, key_positions, tree_parent_rows)
        cu_k = cu_seqlens([np.asarray(k).reshape(-1).shape[0] for k in key_positions])
        blocked = [
            mask[int(cu_q[i]):int(cu_q[i + 1]), int(cu_k[i]):int(cu_k[i + 1])]
            for i in range(len(keys))
        ]
    outs = []
    for i, (k, v) in enumerate(zip(keys, values)):
        q_i = q[:, :, int(cu_q[i]):int(cu_q[i + 1]), :]
        mask = blocked[i] if blocked is not None else None
        outs.append(MultiHeadAttention.attend(q_i, k, v, blocked=mask))
    return pack_rows(outs, axis=2)


def causal_mask(query_positions: np.ndarray, key_positions: np.ndarray) -> np.ndarray:
    """Boolean mask of shape ``(Tq, Tk)``; True marks *blocked* pairs.

    A query at absolute position ``i`` may attend to keys at positions
    ``<= i``.
    """
    q = np.asarray(query_positions).reshape(-1, 1)
    k = np.asarray(key_positions).reshape(1, -1)
    return k > q


def split_heads(x: Tensor, n_heads: int) -> Tensor:
    """``(B, T, D) -> (B, H, T, D/H)``."""
    b, t, d = x.shape
    if d % n_heads != 0:
        raise ValueError(f"model dim {d} not divisible by n_heads {n_heads}")
    return x.reshape(b, t, n_heads, d // n_heads).transpose(0, 2, 1, 3)


def merge_heads(x: Tensor) -> Tensor:
    """``(B, H, T, Dh) -> (B, T, H*Dh)``."""
    b, h, t, dh = x.shape
    return x.transpose(0, 2, 1, 3).reshape(b, t, h * dh)


class MultiHeadAttention(Module):
    """Causal multi-head self-attention with RoPE and optional KV cache."""

    def __init__(
        self,
        dim: int,
        n_heads: int,
        rope: Optional[RotaryEmbedding] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if dim % n_heads != 0:
            raise ValueError(f"dim {dim} must be divisible by n_heads {n_heads}")
        self.dim = dim
        self.n_heads = n_heads
        self.head_dim = dim // n_heads
        self.rope = rope
        gen = rng if rng is not None else np.random.default_rng()
        self.wq = Linear(dim, dim, bias=False, rng=gen)
        self.wk = Linear(dim, dim, bias=False, rng=gen)
        self.wv = Linear(dim, dim, bias=False, rng=gen)
        self.wo = Linear(dim, dim, bias=False, rng=gen)

    def project_qkv(
        self, x: Tensor, positions: np.ndarray
    ) -> Tuple[Tensor, Tensor, Tensor]:
        """Compute (q, k, v) heads for new tokens at absolute ``positions``.

        Shapes: x ``(B, T, D)`` -> each of q/k/v ``(B, H, T, Dh)``.  RoPE is
        applied to q and k when the layer owns a rotary table.
        """
        q = split_heads(self.wq(x), self.n_heads)
        k = split_heads(self.wk(x), self.n_heads)
        v = split_heads(self.wv(x), self.n_heads)
        if self.rope is not None:
            cos, sin = self.rope.tables(positions)
            q = apply_rope(q, cos, sin)
            k = apply_rope(k, cos, sin)
        return q, k, v

    @staticmethod
    def attend(
        q: Tensor,
        k: Tensor,
        v: Tensor,
        blocked: Optional[np.ndarray] = None,
    ) -> Tensor:
        """Scaled dot-product attention; ``blocked`` marks disallowed pairs.

        ``blocked`` broadcasts against the score tensor ``(B, H, Tq, Tk)``.

        When no gradient can flow (inference, or no input requires grad)
        the same numpy ops run in the same order without the autograd
        wrappers — bitwise-identical output, but decode-path attention is
        called once per request per layer per round, so skipping the
        five intermediate graph nodes is a real wall-clock win.
        """
        scale = 1.0 / np.sqrt(q.shape[-1])
        track = is_grad_enabled() and (
            q.requires_grad or k.requires_grad or v.requires_grad
        )
        if not track:
            return Tensor(attend_data(q.data, k.data, v.data, blocked))
        scores = (q @ k.swapaxes(-1, -2)) * scale
        if blocked is not None:
            scores = scores.masked_fill(blocked, -1e9)
        weights = F.softmax(scores, axis=-1)
        return weights @ v

    def forward(
        self,
        x: Tensor,
        positions: np.ndarray,
        past_kv: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        key_positions: Optional[np.ndarray] = None,
        extra_blocked: Optional[np.ndarray] = None,
    ) -> Tuple[Tensor, Tensor, Tensor]:
        """Causal self-attention over new tokens plus an optional KV cache.

        Parameters
        ----------
        x:
            New-token activations ``(B, T, D)``.
        positions:
            Absolute positions of the T new tokens (used for RoPE and the
            causal rule).
        past_kv:
            Cached ``(K, V)`` arrays of shape ``(B, H, Tpast, Dh)``; treated
            as constants (no gradient flows into the cache).
        key_positions:
            Absolute positions of the cached keys; defaults to
            ``arange(Tpast)``.
        extra_blocked:
            Extra boolean blocking mask broadcastable to ``(Tq, Tk_total)``,
            combined (OR) with the causal mask.  Used by the ablations that
            hide the image or text KV segments.

        Returns
        -------
        (output, k_new, v_new):
            ``output`` is ``(B, T, D)`` after the output projection;
            ``k_new``/``v_new`` are the fresh per-head K/V for the new tokens
            (post-RoPE), ready to append to a cache.
        """
        positions = np.asarray(positions, dtype=np.int64)
        q, k_new, v_new = self.project_qkv(x, positions)

        if past_kv is not None:
            past_k, past_v = past_kv
            k_all = concat([Tensor(np.asarray(past_k)), k_new], axis=2)
            v_all = concat([Tensor(np.asarray(past_v)), v_new], axis=2)
            n_past = np.asarray(past_k).shape[2]
            if key_positions is None:
                key_positions = np.arange(n_past, dtype=np.int64)
            all_key_pos = np.concatenate([np.asarray(key_positions, dtype=np.int64), positions])
        else:
            k_all, v_all = k_new, v_new
            all_key_pos = positions

        blocked = causal_mask(positions, all_key_pos)
        if extra_blocked is not None:
            blocked = blocked | np.asarray(extra_blocked, dtype=bool)

        out = self.attend(q, k_all, v_all, blocked=blocked)
        return self.wo(merge_heads(out)), k_new, v_new
