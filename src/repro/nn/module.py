"""Module base class: parameter registration, state dicts, train/eval mode."""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from .tensor import Tensor

__all__ = ["Module", "Parameter"]


class Parameter(Tensor):
    """A tensor that is registered as trainable when assigned to a module."""

    def __init__(self, data, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all NN building blocks.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; those are discovered automatically for ``parameters()``,
    ``state_dict()`` and mode switching, mirroring the PyTorch contract.
    """

    def __init__(self) -> None:
        self.training: bool = True

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for attr, value in vars(self).items():
            if attr == "training":
                continue
            name = f"{prefix}{attr}"
            if isinstance(value, Parameter):
                yield name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{name}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{name}.{i}.")
                    elif isinstance(item, Parameter):
                        yield f"{name}.{i}", item

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        yield self
        for value in vars(self).items():
            pass
        for attr, value in vars(self).items():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    # ------------------------------------------------------------------
    # Parameter counting / gradients
    # ------------------------------------------------------------------
    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    # ------------------------------------------------------------------
    # Train / eval mode
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for m in self.modules():
            m.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if strict and (missing or unexpected):
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)} unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            if name not in state:
                continue
            value = np.asarray(state[name])
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: checkpoint {value.shape} vs model {param.data.shape}"
                )
            param.data = value.astype(param.data.dtype, copy=True)

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
