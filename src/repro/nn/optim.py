"""Optimizers: SGD, Adam, AdamW, plus gradient clipping."""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from .tensor import Tensor

__all__ = ["Optimizer", "SGD", "Adam", "AdamW", "clip_grad_norm"]


def clip_grad_norm(parameters: Iterable[Tensor], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= ``max_norm``.

    Returns the pre-clip norm (useful for logging).
    """
    params = [p for p in parameters if p.grad is not None]
    if not params:
        return 0.0
    total = float(np.sqrt(sum(float((p.grad.astype(np.float64) ** 2).sum()) for p in params)))
    if max_norm > 0 and total > max_norm:
        scale = max_norm / (total + 1e-12)
        for p in params:
            p.grad = p.grad * scale
    return total


class Optimizer:
    """Base class keeping the parameter list and zero_grad."""

    def __init__(self, parameters: Iterable[Tensor], lr: float) -> None:
        self.parameters: List[Tensor] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.grad = None

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Tensor], lr: float, momentum: float = 0.0) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.parameters)

    def step(self) -> None:
        for i, p in enumerate(self.parameters):
            if p.grad is None:
                continue
            grad = p.grad
            if self.momentum > 0:
                if self._velocity[i] is None:
                    self._velocity[i] = np.zeros_like(p.data)
                self._velocity[i] = self.momentum * self._velocity[i] + grad
                grad = self._velocity[i]
            p.data = p.data - self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015)."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for i, p in enumerate(self.parameters):
            if p.grad is None:
                continue
            g = p.grad
            self._m[i] = self.beta1 * self._m[i] + (1 - self.beta1) * g
            self._v[i] = self.beta2 * self._v[i] + (1 - self.beta2) * (g * g)
            m_hat = self._m[i] / bias1
            v_hat = self._v[i] / bias2
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019)."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.01,
    ) -> None:
        super().__init__(parameters, lr, betas, eps)
        self.weight_decay = weight_decay

    def step(self) -> None:
        if self.weight_decay > 0:
            for p in self.parameters:
                if p.grad is not None:
                    p.data = p.data - self.lr * self.weight_decay * p.data
        super().step()
