"""Checkpoint I/O: module state dicts as ``.npz`` plus JSON metadata.

Fault-tolerance guarantees:

* **Atomic writes** — state is serialised to a temporary file in the target
  directory, flushed and fsync'd, then moved into place with ``os.replace``.
  A crash mid-save can never leave a truncated ``.npz`` under the final name.
* **Per-tensor SHA-256 checksums** — stored inside the archive and verified
  on load, so silent corruption (byte flips, partial copies) is detected
  instead of producing garbage weights.
* **One exception type** — every failure mode (``zipfile.BadZipFile``,
  ``OSError``, missing tensors, checksum mismatch) surfaces as
  :class:`~repro.errors.CheckpointError` carrying the offending path.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import zipfile
import zlib
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..errors import CheckpointError
from .module import Module

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "save_state_dict",
    "load_state_dict",
    "state_dict_checksums",
    "verify_checkpoint",
]

_META_KEY = "__meta_json__"
_CHECKSUM_KEY = "__checksums_json__"


def _normalize_path(path: Path) -> Path:
    """``np.savez`` appends ``.npz`` when missing; make load/save symmetric."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def _tensor_sha256(array: np.ndarray) -> str:
    array = np.ascontiguousarray(array)
    digest = hashlib.sha256()
    digest.update(str(array.dtype).encode("utf-8"))
    digest.update(str(array.shape).encode("utf-8"))
    digest.update(array.tobytes())
    return digest.hexdigest()


def state_dict_checksums(state: Dict[str, np.ndarray]) -> Dict[str, str]:
    """SHA-256 digest per tensor (dtype and shape are part of the digest)."""
    return {name: _tensor_sha256(np.asarray(value)) for name, value in state.items()}


def _json_blob(payload: Any) -> np.ndarray:
    return np.frombuffer(json.dumps(payload).encode("utf-8"), dtype=np.uint8)


def save_state_dict(path: Path, state: Dict[str, np.ndarray], meta: Optional[Dict[str, Any]] = None) -> None:
    """Atomically write a state dict (and optional metadata) to ``path``."""
    path = _normalize_path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = dict(state)
    payload[_CHECKSUM_KEY] = _json_blob(state_dict_checksums(state))
    if meta is not None:
        payload[_META_KEY] = _json_blob(meta)

    fd, tmp_name = tempfile.mkstemp(dir=path.parent, prefix=path.stem + ".", suffix=".tmp.npz")
    tmp_path = Path(tmp_name)
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez(handle, **payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except OSError as exc:
        raise CheckpointError(f"failed to write checkpoint {path}: {exc}", path=path) from exc
    finally:
        if tmp_path.exists():
            tmp_path.unlink()


def load_state_dict(path: Path, verify: bool = True) -> Tuple[Dict[str, np.ndarray], Optional[Dict[str, Any]]]:
    """Read ``(state_dict, meta)`` back from ``path``.

    ``verify=True`` recomputes per-tensor SHA-256 digests against the stored
    manifest (legacy archives without one load unverified).  Every failure —
    unreadable file, truncated/byte-flipped archive, checksum mismatch —
    raises :class:`CheckpointError` naming the path.
    """
    path = _normalize_path(path)
    try:
        with np.load(path) as archive:
            state = {
                k: np.asarray(archive[k])
                for k in archive.files
                if k not in (_META_KEY, _CHECKSUM_KEY)
            }
            meta = None
            if _META_KEY in archive.files:
                meta = json.loads(bytes(archive[_META_KEY].tobytes()).decode("utf-8"))
            checksums = None
            if _CHECKSUM_KEY in archive.files:
                checksums = json.loads(bytes(archive[_CHECKSUM_KEY].tobytes()).decode("utf-8"))
    except CheckpointError:
        raise
    except (zipfile.BadZipFile, zlib.error, OSError, KeyError, ValueError, EOFError) as exc:
        raise CheckpointError(
            f"corrupt or unreadable checkpoint {path}: {type(exc).__name__}: {exc}",
            path=path,
        ) from exc
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"corrupt checkpoint metadata in {path}: {exc}", path=path) from exc

    if verify and checksums is not None:
        missing = sorted(set(checksums) - set(state))
        if missing:
            raise CheckpointError(
                f"checkpoint {path} is missing tensors listed in its manifest: {missing}",
                path=path,
            )
        for name, expected in checksums.items():
            actual = _tensor_sha256(state[name])
            if actual != expected:
                raise CheckpointError(
                    f"checksum mismatch for tensor {name!r} in {path}: "
                    f"expected {expected[:12]}..., got {actual[:12]}...",
                    path=path,
                )
    return state, meta


def verify_checkpoint(path: Path) -> Dict[str, Any]:
    """Integrity-check one checkpoint without loading it into a model.

    Returns ``{"ok": bool, "n_tensors": int, "has_checksums": bool,
    "error": str | None}``; never raises.
    """
    path = _normalize_path(path)
    try:
        state, _ = load_state_dict(path, verify=True)
        with np.load(path) as archive:
            has_checksums = _CHECKSUM_KEY in archive.files
    except CheckpointError as exc:
        return {"ok": False, "n_tensors": 0, "has_checksums": False, "error": str(exc)}
    return {
        "ok": True,
        "n_tensors": len(state),
        "has_checksums": has_checksums,
        "error": None,
    }


def save_checkpoint(path: Path, module: Module, meta: Optional[Dict[str, Any]] = None) -> None:
    """Save a module's parameters and metadata."""
    save_state_dict(path, module.state_dict(), meta=meta)


def load_checkpoint(path: Path, module: Module, strict: bool = True) -> Optional[Dict[str, Any]]:
    """Load parameters into ``module``; returns the stored metadata.

    Tensor-set or shape mismatches between the checkpoint and the module
    are reported as :class:`CheckpointError` (with the path), not as raw
    ``KeyError``/``ValueError`` from the module layer.
    """
    path = _normalize_path(path)
    state, meta = load_state_dict(path)
    try:
        module.load_state_dict(state, strict=strict)
    except (KeyError, ValueError) as exc:
        raise CheckpointError(
            f"checkpoint {path} does not match module: {exc}", path=path
        ) from exc
    return meta
