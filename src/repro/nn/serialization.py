"""Checkpoint I/O: module state dicts as ``.npz`` plus JSON metadata."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

import numpy as np

from .module import Module

__all__ = ["save_checkpoint", "load_checkpoint", "save_state_dict", "load_state_dict"]

_META_KEY = "__meta_json__"


def save_state_dict(path: Path, state: Dict[str, np.ndarray], meta: Optional[Dict[str, Any]] = None) -> None:
    """Write a state dict (and optional JSON-serialisable metadata) to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = dict(state)
    if meta is not None:
        payload[_META_KEY] = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    np.savez(path, **payload)


def load_state_dict(path: Path) -> Tuple[Dict[str, np.ndarray], Optional[Dict[str, Any]]]:
    """Read ``(state_dict, meta)`` back from ``path``."""
    path = Path(path)
    with np.load(path) as archive:
        state = {k: archive[k] for k in archive.files if k != _META_KEY}
        meta = None
        if _META_KEY in archive.files:
            meta = json.loads(bytes(archive[_META_KEY].tobytes()).decode("utf-8"))
    return state, meta


def save_checkpoint(path: Path, module: Module, meta: Optional[Dict[str, Any]] = None) -> None:
    """Save a module's parameters and metadata."""
    save_state_dict(path, module.state_dict(), meta=meta)


def load_checkpoint(path: Path, module: Module, strict: bool = True) -> Optional[Dict[str, Any]]:
    """Load parameters into ``module``; returns the stored metadata."""
    state, meta = load_state_dict(path)
    module.load_state_dict(state, strict=strict)
    return meta
