"""``repro.nn`` — a small numpy autodiff NN framework.

Substrate for the AASD reproduction: tensors with reverse-mode autodiff,
LLaMA-style layers (RMSNorm, RoPE, SwiGLU, KV-cached attention), optimizers,
schedules and checkpoint I/O.
"""

from . import functional
from .attention import MultiHeadAttention, causal_mask, merge_heads, split_heads
from .layers import MLP, Dropout, Embedding, Linear, Sequential
from .module import Module, Parameter
from .normalization import LayerNorm, RMSNorm
from .optim import SGD, Adam, AdamW, Optimizer, clip_grad_norm
from .rope import RotaryEmbedding, apply_rope
from .schedule import apply_schedule, constant, warmup_cosine, warmup_linear
from .serialization import (
    load_checkpoint,
    load_state_dict,
    save_checkpoint,
    save_state_dict,
    state_dict_checksums,
    verify_checkpoint,
)
from .tensor import Tensor, as_tensor, concat, is_grad_enabled, no_grad, stack, where
from .transformer import DecoderBlock, SwiGLU

__all__ = [
    "functional",
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "concat",
    "stack",
    "where",
    "Module",
    "Parameter",
    "Linear",
    "Embedding",
    "Dropout",
    "Sequential",
    "MLP",
    "LayerNorm",
    "RMSNorm",
    "MultiHeadAttention",
    "causal_mask",
    "split_heads",
    "merge_heads",
    "RotaryEmbedding",
    "apply_rope",
    "DecoderBlock",
    "SwiGLU",
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "clip_grad_norm",
    "constant",
    "warmup_cosine",
    "warmup_linear",
    "apply_schedule",
    "save_checkpoint",
    "load_checkpoint",
    "save_state_dict",
    "load_state_dict",
    "state_dict_checksums",
    "verify_checkpoint",
]
