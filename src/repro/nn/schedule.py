"""Learning-rate schedules as plain callables ``step -> lr``."""

from __future__ import annotations

import math
from typing import Callable

__all__ = ["constant", "warmup_cosine", "warmup_linear", "apply_schedule"]

Schedule = Callable[[int], float]


def constant(lr: float) -> Schedule:
    """Constant learning rate."""
    def fn(step: int) -> float:
        return lr
    return fn


def warmup_cosine(lr: float, warmup_steps: int, total_steps: int, min_lr: float = 0.0) -> Schedule:
    """Linear warmup then cosine decay to ``min_lr``."""
    if total_steps <= warmup_steps:
        raise ValueError("total_steps must exceed warmup_steps")

    def fn(step: int) -> float:
        if step < warmup_steps:
            return lr * (step + 1) / max(1, warmup_steps)
        progress = (step - warmup_steps) / max(1, total_steps - warmup_steps)
        progress = min(1.0, progress)
        return min_lr + 0.5 * (lr - min_lr) * (1.0 + math.cos(math.pi * progress))

    return fn


def warmup_linear(lr: float, warmup_steps: int, total_steps: int) -> Schedule:
    """Linear warmup then linear decay to zero."""
    if total_steps <= warmup_steps:
        raise ValueError("total_steps must exceed warmup_steps")

    def fn(step: int) -> float:
        if step < warmup_steps:
            return lr * (step + 1) / max(1, warmup_steps)
        remaining = max(0.0, 1.0 - (step - warmup_steps) / (total_steps - warmup_steps))
        return lr * remaining

    return fn


def apply_schedule(optimizer, schedule: Schedule, step: int) -> float:
    """Set ``optimizer.lr`` from the schedule and return the value."""
    lr = schedule(step)
    optimizer.lr = lr
    return lr
