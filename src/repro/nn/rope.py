"""Rotary position embeddings (RoPE), as used by LLaMA.

RoPE rotates query/key head vectors by position-dependent angles so that the
dot product ``q_i . k_j`` depends on the relative offset ``i - j``.  The cache
of cos/sin tables is precomputed once per (head_dim, base) pair.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from .tensor import Tensor, concat

__all__ = ["RotaryEmbedding", "apply_rope"]


class RotaryEmbedding:
    """Precomputed cos/sin tables for RoPE.

    The table grows lazily: asking for positions beyond the current capacity
    doubles the table, so callers never need to guess a maximum length.
    """

    def __init__(self, head_dim: int, base: float = 10000.0, initial_len: int = 256) -> None:
        if head_dim % 2 != 0:
            raise ValueError(f"RoPE head_dim must be even, got {head_dim}")
        self.head_dim = head_dim
        self.base = base
        self._cos = np.empty((0, head_dim), dtype=np.float32)
        self._sin = np.empty((0, head_dim), dtype=np.float32)
        self._grow(initial_len)

    def _grow(self, min_len: int) -> None:
        length = max(min_len, 2 * max(1, self._cos.shape[0]))
        half = self.head_dim // 2
        inv_freq = 1.0 / (self.base ** (np.arange(0, half, dtype=np.float64) / half))
        t = np.arange(length, dtype=np.float64)
        freqs = np.outer(t, inv_freq)  # (length, half)
        # repro: allow[hotpath-reach] -- table doubling: amortized O(log T) growths, not per-step
        emb = np.concatenate([freqs, freqs], axis=-1)
        self._cos = np.cos(emb).astype(np.float32)
        self._sin = np.sin(emb).astype(np.float32)

    def tables(self, positions: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Return (cos, sin) tables gathered at ``positions``."""
        positions = np.asarray(positions, dtype=np.int64)
        if positions.size and positions.max() >= self._cos.shape[0]:
            self._grow(int(positions.max()) + 1)
        return self._cos[positions], self._sin[positions]


def _rotate_half(x: Tensor) -> Tensor:
    half = x.shape[-1] // 2
    x1 = x[..., :half]
    x2 = x[..., half:]
    return concat([-x2, x1], axis=-1)


def apply_rope(x: Tensor, cos: np.ndarray, sin: np.ndarray) -> Tensor:
    """Apply the rotary transform to ``x`` of shape ``(..., T, head_dim)``.

    ``cos``/``sin`` must have shape ``(T, head_dim)`` (already gathered at the
    absolute positions of the T entries) and broadcast over leading dims.
    """
    return x * Tensor(cos) + _rotate_half(x) * Tensor(sin)
