"""Transformer building blocks: SwiGLU MLP and pre-norm decoder block."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from . import functional as F
from .attention import MultiHeadAttention
from .layers import Linear
from .module import Module
from .normalization import RMSNorm
from .rope import RotaryEmbedding
from .tensor import Tensor

__all__ = ["SwiGLU", "DecoderBlock"]


class SwiGLU(Module):
    """LLaMA-style gated MLP: ``down(silu(gate(x)) * up(x))``."""

    def __init__(self, dim: int, hidden_dim: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        gen = rng if rng is not None else np.random.default_rng()
        self.gate = Linear(dim, hidden_dim, bias=False, rng=gen)
        self.up = Linear(dim, hidden_dim, bias=False, rng=gen)
        self.down = Linear(hidden_dim, dim, bias=False, rng=gen)

    def forward(self, x: Tensor) -> Tensor:
        return self.down(F.silu(self.gate(x)) * self.up(x))


class DecoderBlock(Module):
    """Pre-norm decoder block: RMSNorm -> attn -> +res; RMSNorm -> MLP -> +res."""

    def __init__(
        self,
        dim: int,
        n_heads: int,
        mlp_hidden: int,
        rope: Optional[RotaryEmbedding] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        gen = rng if rng is not None else np.random.default_rng()
        self.attn_norm = RMSNorm(dim)
        self.attn = MultiHeadAttention(dim, n_heads, rope=rope, rng=gen)
        self.mlp_norm = RMSNorm(dim)
        self.mlp = SwiGLU(dim, mlp_hidden, rng=gen)

    def forward(
        self,
        x: Tensor,
        positions: np.ndarray,
        past_kv: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        key_positions: Optional[np.ndarray] = None,
        extra_blocked: Optional[np.ndarray] = None,
    ) -> Tuple[Tensor, Tensor, Tensor]:
        """Return (hidden, k_new, v_new) for the new tokens."""
        attn_out, k_new, v_new = self.attn(
            self.attn_norm(x),
            positions=positions,
            past_kv=past_kv,
            key_positions=key_positions,
            extra_blocked=extra_blocked,
        )
        x = x + attn_out
        x = x + self.mlp(self.mlp_norm(x))
        return x, k_new, v_new
