"""Rule base class, registry, and the analysis engine.

A rule is a small class with a unique ``rule_id`` and one or both hooks:

* :meth:`Rule.check_module` — called once per parsed module (AST-local
  rules: determinism, hot-path allocation, ...);
* :meth:`Rule.check_project` — called once with the whole
  :class:`~repro.analysis.project.Project` (graph rules: layering).

Registering is one decorator::

    @register
    class MyRule(Rule):
        rule_id = "my-rule"
        description = "what it enforces"

        def check_module(self, module, project):
            yield self.finding(module, node.lineno, "message")

:func:`run_analysis` loads the project, runs every (or a selected subset
of) registered rule, attaches source snippets, and returns findings in a
stable order.  Parse failures surface as findings under the built-in
``parse-error`` rule so a broken file can never silently skip analysis.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Type

from .findings import SEVERITY_ERROR, Finding
from .project import ModuleInfo, Project, load_project

__all__ = ["Rule", "register", "rule_ids", "get_rule", "default_rules",
           "run_rules", "run_analysis", "PARSE_ERROR_RULE_ID"]

#: Rule id used for files that fail to parse.
PARSE_ERROR_RULE_ID = "parse-error"

_REGISTRY: Dict[str, Type["Rule"]] = {}


class Rule:
    """Base class for analysis rules; subclass and :func:`register`."""

    rule_id: str = ""
    description: str = ""
    severity: str = SEVERITY_ERROR
    fix_hint: str = ""

    def finding(self, module: ModuleInfo, line: int, message: str,
                fix_hint: Optional[str] = None) -> Finding:
        """Build a finding anchored in ``module`` with this rule's identity."""
        return Finding(
            file=module.file,
            line=line,
            rule_id=self.rule_id,
            message=message,
            fix_hint=self.fix_hint if fix_hint is None else fix_hint,
            severity=self.severity,
            snippet=module.snippet(line),
        )

    def check_module(self, module: ModuleInfo, project: Project) -> Iterable[Finding]:
        """Per-module hook; yield findings (default: none)."""
        return ()

    def check_project(self, project: Project) -> Iterable[Finding]:
        """Whole-project hook; yield findings (default: none)."""
        return ()


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding ``cls`` to the global rule registry."""
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    if cls.rule_id in _REGISTRY and _REGISTRY[cls.rule_id] is not cls:
        raise ValueError(f"duplicate rule id {cls.rule_id!r}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def rule_ids() -> List[str]:
    """Sorted ids of every registered rule."""
    _load_builtin_rules()
    return sorted(_REGISTRY)


def get_rule(rule_id: str) -> Rule:
    """Fresh instance of the registered rule with ``rule_id``."""
    _load_builtin_rules()
    return _REGISTRY[rule_id]()


def default_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in id order."""
    _load_builtin_rules()
    return [_REGISTRY[rid]() for rid in sorted(_REGISTRY)]


def _load_builtin_rules() -> None:
    # Imported lazily so `framework` has no import-time dependency on the
    # rule modules (which import framework back for @register).
    from . import rules  # noqa: F401  (import registers the rules)


def run_rules(project: Project, rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """Run ``rules`` (default: all registered) over a loaded project."""
    if rules is None:
        rules = default_rules()
    findings: List[Finding] = []
    for file, line, message in project.parse_errors:
        findings.append(Finding(
            file=file, line=line, rule_id=PARSE_ERROR_RULE_ID,
            message=f"file does not parse: {message}",
            fix_hint="fix the syntax error; unparseable files are never analyzed",
        ))
    for rule in rules:
        for module in project.modules.values():
            findings.extend(rule.check_module(module, project))
        findings.extend(rule.check_project(project))
    # Attach snippets for findings built without one (e.g. project-level
    # rules that only had the module name at hand).
    patched = []
    for f in findings:
        if not f.snippet:
            module = project.by_file(f.file)
            if module is not None:
                f = replace(f, snippet=module.snippet(f.line))
        patched.append(f)
    return sorted(patched, key=Finding.sort_key)


def run_analysis(paths: Sequence, rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """Load ``paths`` into a project and run the rules over it."""
    return run_rules(load_project(paths), rules)
