"""``repro.analysis`` — AST-based invariant linter for this codebase.

The repo's architectural invariants (layering direction, seeded-RNG
determinism, zero-copy hot paths, view read-only-ness, exception and lock
discipline) exist only as convention without enforcement; this package
makes them an executable CI gate.  It is pure stdlib (``ast`` + ``json``)
so it runs on any tree without importing the code under analysis.

Pieces:

* :mod:`~repro.analysis.framework` — :class:`Rule` base class, registry,
  :func:`run_analysis` engine;
* :mod:`~repro.analysis.project` — parsed modules + resolved import graph;
* :mod:`~repro.analysis.rules` — the six repo-specific rules;
* :mod:`~repro.analysis.baseline` — justified suppression entries keyed by
  source content, not line numbers;
* :mod:`~repro.analysis.reporters` — text and JSON output;
* :mod:`~repro.analysis.docs_check` / :mod:`~repro.analysis.docstrings` —
  the folded docs gates (``docs`` / ``docstrings`` subcommands);
* :mod:`~repro.analysis.cli` — ``python -m repro.analysis``.

See ``docs/static_analysis.md`` for the rule catalogue and workflow.
"""

from .baseline import Baseline, BaselineEntry, write_baseline
from .findings import SEVERITY_ERROR, SEVERITY_WARNING, Finding
from .framework import (Rule, default_rules, get_rule, register, rule_ids,
                        run_analysis, run_rules)
from .project import ImportEdge, ModuleInfo, Project, load_project

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Finding",
    "ImportEdge",
    "ModuleInfo",
    "Project",
    "Rule",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "default_rules",
    "get_rule",
    "load_project",
    "register",
    "rule_ids",
    "run_analysis",
    "run_rules",
    "write_baseline",
]
