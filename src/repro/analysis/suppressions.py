"""Inline suppressions: ``# repro: allow[rule-id] -- reason``.

The baseline file suppresses *pre-existing* findings; inline allows are
for code where the violation is the point — a sanctioned allocation on a
setup path, a fixture deliberately seeded with a bug.  The comment lives
next to the code it excuses::

    blocks = np.stack(parts)  # repro: allow[hotpath-reach] -- prefill runs once per request

or, when the line is long, on its own line directly above the offending
one::

    # repro: allow[view-escape] -- snapshot is copied by the caller
    rows = table.gather_rows(idx)

Both forms require a justification after ``--``; an allow without one is
**ignored** and additionally reported as an ``inline-allow`` error — the
same no-silent-suppression contract the baseline enforces with its
``justification`` field.  Several rules can share one comment:
``allow[rule-a, rule-b]``.  Allows that match no finding are surfaced as
stale, mirroring stale baseline entries.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, List, Tuple

from .findings import SEVERITY_ERROR, Finding
from .project import Project

__all__ = ["InlineAllow", "InlineSuppressions", "collect_suppressions",
           "INLINE_ALLOW_RULE_ID"]

#: Rule id under which malformed allow comments are reported.
INLINE_ALLOW_RULE_ID = "inline-allow"

_ALLOW_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[^\]]*)\]\s*(?:--\s*(?P<reason>.*))?$"
)


@dataclass
class InlineAllow:
    """One parsed allow comment and the source line(s) it covers."""

    file: str
    line: int                 #: line the comment is on
    target_line: int          #: line the allow applies to
    rules: Tuple[str, ...]
    reason: str
    used: bool = False

    @property
    def justified(self) -> bool:
        """True when a non-empty reason follows the ``--`` separator."""
        return bool(self.reason.strip())


class InlineSuppressions:
    """All allow comments of a project, indexed by (file, line)."""

    def __init__(self, allows: List[InlineAllow]) -> None:
        self.allows = allows
        self._by_site: Dict[Tuple[str, int], List[InlineAllow]] = {}
        for allow in allows:
            self._by_site.setdefault((allow.file, allow.target_line), []).append(allow)

    def suppresses(self, finding: Finding) -> bool:
        """True when a justified allow covers the finding's rule and line."""
        hit = False
        for allow in self._by_site.get((finding.file, finding.line), ()):
            if allow.justified and finding.rule_id in allow.rules:
                allow.used = True
                hit = True
        return hit

    def problems(self) -> List[Finding]:
        """Error findings for allow comments missing a justification."""
        out = []
        for allow in self.allows:
            if not allow.justified:
                out.append(Finding(
                    file=allow.file, line=allow.line,
                    rule_id=INLINE_ALLOW_RULE_ID,
                    message=(
                        f"inline allow for {', '.join(allow.rules)} has no "
                        f"justification and was ignored; write "
                        f"`# repro: allow[{','.join(allow.rules)}] -- <reason>`"
                    ),
                    fix_hint="a suppression without a written reason is a "
                             "silent escape hatch; say why the finding is "
                             "acceptable here",
                    severity=SEVERITY_ERROR,
                ))
        return out

    def unused(self) -> List[InlineAllow]:
        """Justified allows that matched no finding — stale, delete them."""
        return [a for a in self.allows if a.justified and not a.used]


def _comments(module) -> List[Tuple[int, str, bool]]:
    """(line, text, standalone) for every real comment token in a module.

    Tokenizing (rather than regex over raw lines) keeps allow-shaped text
    inside docstrings and f-strings from being parsed as a suppression.
    """
    source = "\n".join(module.lines) + "\n"
    out: List[Tuple[int, str, bool]] = []
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                standalone = tok.line.strip().startswith("#")
                out.append((tok.start[0], tok.string, standalone))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass  # unparseable tail; the parse-error rule reports the file
    return out


def collect_suppressions(project: Project) -> InlineSuppressions:
    """Parse every allow comment in the project's source lines."""
    allows: List[InlineAllow] = []
    for module in project.modules.values():
        for line, text, standalone in _comments(module):
            m = _ALLOW_RE.search(text)
            if m is None:
                continue
            rules = tuple(r.strip() for r in m.group("rules").split(",")
                          if r.strip())
            if not rules:
                continue
            allows.append(InlineAllow(
                file=module.file,
                line=line,
                target_line=line + 1 if standalone else line,
                rules=rules,
                reason=(m.group("reason") or "").strip(),
            ))
    return InlineSuppressions(allows)
