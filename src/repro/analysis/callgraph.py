"""Whole-program call graph over a parsed :class:`~repro.analysis.project.Project`.

This module is the spine of the interprocedural rule packs
(``lock-discipline``, ``lock-order``, ``determinism-flow``,
``hotpath-reach``): it turns the per-module ASTs into a project-wide
symbol table (every function, method, and class under a stable qualified
name), resolves call sites to their targets, and answers reachability
queries.

Resolution is deliberately *static and conservative* — no code is ever
imported or executed:

* direct calls (``helper()``), module-qualified calls (``mod.helper()``),
  and imported names (``from m import helper``) resolve through each
  module's import environment;
* constructor calls (``AdmissionQueue(...)``) resolve to the class and its
  ``__init__`` when one exists;
* method calls resolve through a light type-inference pass: ``self``
  binds to the enclosing class, ``self.attr`` types come from
  ``__init__``-time assignments (``self.q = AdmissionQueue(...)``,
  annotated parameters passed through, ``self.x: T`` annotations), locals
  pick up types from annotations and constructor assignments, and chained
  calls follow return-type annotations (``get_registry().gauge(n).set(v)``);
* property accesses (``queue.depth``) produce call edges to the getter,
  because evaluating a property *does* run its body (and may take locks);
* decorators are transparent: a decorated function keeps its name and its
  edges, and ``super().m()`` resolves through the base-class list.

Anything unresolvable (dynamic dispatch through unknown objects, calls on
values whose type inference loses track of) simply produces no edge —
rules built on the graph are therefore *may-miss*, never import-unsound.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .astutil import dotted_name
from .project import ModuleInfo, Project

__all__ = ["FunctionInfo", "ClassInfo", "CallSite", "CallEdge", "CallGraph",
           "build_call_graph", "call_graph_for"]


@dataclass
class FunctionInfo:
    """One function or method in the project, under a stable qualified name."""

    qname: str                    #: ``repro.serving.queue.AdmissionQueue.submit``
    module: str                   #: dotted module name
    name: str                     #: bare function name
    node: ast.AST                 #: the FunctionDef/AsyncFunctionDef node
    cls: Optional[str] = None     #: owning class qname (None for plain functions)
    decorators: Tuple[str, ...] = ()   #: dotted decorator names (best effort)
    returns: Optional[str] = None      #: resolved return-type class qname

    @property
    def is_property(self) -> bool:
        """True when the function is decorated as a property getter."""
        return any(d == "property" or d.endswith(".getter") for d in self.decorators)

    @property
    def lineno(self) -> int:
        """1-based definition line."""
        return self.node.lineno


@dataclass
class ClassInfo:
    """One class: its methods, resolved bases, and inferred attribute types."""

    qname: str                     #: ``repro.serving.queue.AdmissionQueue``
    module: str                    #: dotted module name
    name: str                      #: bare class name
    node: ast.ClassDef             #: the ClassDef node
    bases: List[str] = field(default_factory=list)      #: resolved base qnames
    methods: Dict[str, str] = field(default_factory=dict)  #: bare name -> func qname
    attr_types: Dict[str, str] = field(default_factory=dict)  #: self.attr -> class qname


@dataclass
class CallSite:
    """One resolved call (or property access) inside a function body."""

    node: ast.AST                  #: the Call (or Attribute, for properties) node
    line: int                      #: 1-based source line
    callees: Tuple[str, ...]       #: resolved target function qnames


@dataclass(frozen=True)
class CallEdge:
    """``caller`` may invoke ``callee`` at ``line``."""

    caller: str
    callee: str
    line: int


class CallGraph:
    """Symbol table + resolved call edges + reachability queries."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.edges: List[CallEdge] = []
        #: per-function resolved call sites, in source order
        self.sites: Dict[str, List[CallSite]] = {}
        self._out: Dict[str, List[CallEdge]] = {}
        self._in: Dict[str, List[CallEdge]] = {}
        #: per-module import environment: local name -> dotted target
        self._imports: Dict[str, Dict[str, str]] = {}
        #: per-module global instance types: name -> class qname
        self._global_types: Dict[str, Dict[str, str]] = {}

    # -- queries -------------------------------------------------------
    def callees(self, qname: str) -> List[CallEdge]:
        """Outgoing edges of ``qname`` (empty for unknown names)."""
        return list(self._out.get(qname, ()))

    def callers(self, qname: str) -> List[CallEdge]:
        """Incoming edges of ``qname`` (empty for unknown names)."""
        return list(self._in.get(qname, ()))

    def find(self, pattern: str) -> List[str]:
        """Function qnames matching a glob ``pattern`` (sorted)."""
        return sorted(q for q in self.functions if fnmatchcase(q, pattern))

    def reachable(self, entries: Sequence[str]) -> Dict[str, Tuple[str, ...]]:
        """BFS closure from ``entries``: qname -> call path from an entry.

        The path (a tuple of qnames, entry first) is the shortest witness,
        used by rules to explain *why* a function is on a hot path.
        """
        paths: Dict[str, Tuple[str, ...]] = {}
        frontier: List[str] = []
        for entry in entries:
            if entry in self.functions and entry not in paths:
                paths[entry] = (entry,)
                frontier.append(entry)
        while frontier:
            nxt: List[str] = []
            for caller in frontier:
                for edge in self._out.get(caller, ()):
                    if edge.callee not in paths:
                        paths[edge.callee] = paths[caller] + (edge.callee,)
                        nxt.append(edge.callee)
            frontier = nxt
        return paths

    def mro(self, class_qname: str) -> List[str]:
        """The class plus its (project-resolved) bases, nearest first."""
        order: List[str] = []
        stack = [class_qname]
        while stack:
            qname = stack.pop(0)
            if qname in order or qname not in self.classes:
                continue
            order.append(qname)
            stack.extend(self.classes[qname].bases)
        return order

    def resolve_method(self, class_qname: str, method: str) -> Optional[str]:
        """Function qname implementing ``method`` on ``class_qname`` (via MRO)."""
        for qname in self.mro(class_qname):
            hit = self.classes[qname].methods.get(method)
            if hit is not None:
                return hit
        return None

    def module_env(self, module: str) -> Dict[str, str]:
        """The import environment of ``module`` (name -> dotted target)."""
        return self._imports.get(module, {})

    # -- construction helpers (used by the builder) --------------------
    def _add_edge(self, caller: str, callee: str, line: int) -> None:
        edge = CallEdge(caller, callee, line)
        self.edges.append(edge)
        self._out.setdefault(caller, []).append(edge)
        self._in.setdefault(callee, []).append(edge)


# ----------------------------------------------------------------------
# pass 1: symbols
# ----------------------------------------------------------------------

def _decorator_names(node: ast.AST) -> Tuple[str, ...]:
    names = []
    for dec in getattr(node, "decorator_list", ()):
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = dotted_name(target)
        if name:
            names.append(name)
    return tuple(names)


def _collect_symbols(graph: CallGraph, module: ModuleInfo) -> None:
    """Register every function, method, and class defined in ``module``."""

    def walk_body(body: List[ast.stmt], prefix: str, cls: Optional[str]) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qname = f"{prefix}.{stmt.name}"
                info = FunctionInfo(
                    qname=qname, module=module.name, name=stmt.name,
                    node=stmt, cls=cls, decorators=_decorator_names(stmt),
                )
                graph.functions[qname] = info
                if cls is not None:
                    graph.classes[cls].methods.setdefault(stmt.name, qname)
                # nested defs get their own entries under the parent's qname
                walk_body(stmt.body, qname, None)
            elif isinstance(stmt, ast.ClassDef):
                qname = f"{prefix}.{stmt.name}"
                graph.classes[qname] = ClassInfo(
                    qname=qname, module=module.name, name=stmt.name, node=stmt,
                )
                walk_body(stmt.body, qname, qname)

    walk_body(module.tree.body, module.name, None)


def _collect_imports(graph: CallGraph, module: ModuleInfo) -> None:
    """Build the name -> dotted-target environment for one module."""
    env: Dict[str, str] = {}
    parts = module.name.split(".")
    anchor = parts if module.is_package else parts[:-1]
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                env[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname:
                    env[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base_parts = anchor[: len(anchor) - (node.level - 1)]
                if node.level - 1 > len(anchor):
                    continue
            else:
                base_parts = []
            if node.module:
                base_parts = base_parts + node.module.split(".")
            base = ".".join(p for p in base_parts if p)
            for alias in node.names:
                if alias.name == "*":
                    continue
                env[alias.asname or alias.name] = (
                    f"{base}.{alias.name}" if base else alias.name
                )
    graph._imports[module.name] = env


def _resolve_symbol(graph: CallGraph, module: str, name: str) -> Optional[str]:
    """Dotted ``name`` as seen from ``module`` -> project symbol qname."""
    env = graph.module_env(module)
    parts = name.split(".")
    # longest imported prefix wins: `m.attr.f` with `import m.attr as ma`...
    for cut in range(len(parts), 0, -1):
        head = ".".join(parts[:cut])
        target = env.get(head)
        if target is not None:
            candidate = ".".join([target] + parts[cut:])
            break
    else:
        candidate = f"{module}.{name}"
    for table in (graph.functions, graph.classes):
        if candidate in table:
            return candidate
    # an imported module's attribute: `from repro import obs; obs.get_tracer`
    return None


# ----------------------------------------------------------------------
# pass 2: types
# ----------------------------------------------------------------------

def _annotation_to_class(graph: CallGraph, module: str,
                         annotation: Optional[ast.AST]) -> Optional[str]:
    """Class qname an annotation refers to (Optional[...]/strings unwrapped)."""
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(annotation, ast.Subscript):
        # Optional[X] / Final[X]: look inside; Tuple/List of things: give up.
        base = dotted_name(annotation.value) or ""
        if base.split(".")[-1] in ("Optional", "Final", "Annotated"):
            inner = annotation.slice
            if isinstance(inner, ast.Tuple) and inner.elts:
                inner = inner.elts[0]
            return _annotation_to_class(graph, module, inner)
        return None
    name = dotted_name(annotation)
    if name is None:
        return None
    resolved = _resolve_symbol(graph, module, name)
    if resolved in graph.classes:
        return resolved
    return None


class _TypeEnv:
    """Local name -> class qname map for one function body."""

    def __init__(self, graph: CallGraph, func: FunctionInfo) -> None:
        self.graph = graph
        self.func = func
        self.locals: Dict[str, str] = {}
        node = func.node
        if func.cls is not None and getattr(node, "args", None) is not None:
            args = node.args
            if args.args and args.args[0].arg in ("self", "cls"):
                self.locals[args.args[0].arg] = func.cls
        for arg in _all_args(node):
            cls = _annotation_to_class(graph, func.module, arg.annotation)
            if cls is not None:
                self.locals[arg.arg] = cls

    def infer(self, expr: ast.AST) -> Optional[str]:
        """Class qname ``expr`` evaluates to, or None when unknown."""
        graph, func = self.graph, self.func
        if isinstance(expr, ast.Name):
            if expr.id in self.locals:
                return self.locals[expr.id]
            return graph._global_types.get(func.module, {}).get(expr.id)
        if isinstance(expr, ast.Attribute):
            owner = self.infer(expr.value)
            if owner is not None:
                for qname in graph.mro(owner):
                    hit = graph.classes[qname].attr_types.get(expr.attr)
                    if hit is not None:
                        return hit
                # a property access types as the getter's return annotation
                target = graph.resolve_method(owner, expr.attr)
                if target is not None and graph.functions[target].is_property:
                    return graph.functions[target].returns
            return None
        if isinstance(expr, ast.Call):
            targets = _resolve_call_targets(graph, func, self, expr)
            for target in targets:
                if target in graph.classes:
                    return target
                info = graph.functions.get(target)
                if info is not None and info.name == "__init__" and info.cls:
                    return info.cls
                if info is not None and info.returns:
                    return info.returns
            return None
        if isinstance(expr, ast.IfExp):
            return self.infer(expr.body) or self.infer(expr.orelse)
        if isinstance(expr, ast.NamedExpr):
            return self.infer(expr.value)
        if isinstance(expr, ast.Await):
            return self.infer(expr.value)
        return None


def _all_args(node: ast.AST) -> List[ast.arg]:
    args = getattr(node, "args", None)
    if args is None:
        return []
    return list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)


def _collect_attr_types(graph: CallGraph, cls: ClassInfo) -> None:
    """Infer ``self.attr`` types from method bodies (``__init__`` first)."""
    ordered = sorted(
        cls.methods.items(), key=lambda kv: (kv[0] != "__init__", kv[0]))
    for _name, func_qname in ordered:
        func = graph.functions[func_qname]
        env = _TypeEnv(graph, func)
        for node in ast.walk(func.node):
            target = None
            value = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target = node.target
                cls_from_ann = _annotation_to_class(
                    graph, func.module, node.annotation)
                if (cls_from_ann and isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    cls.attr_types.setdefault(target.attr, cls_from_ann)
                value = node.value
            if (target is not None and value is not None
                    and isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"):
                inferred = env.infer(value)
                if inferred is not None:
                    cls.attr_types.setdefault(target.attr, inferred)


def _collect_global_types(graph: CallGraph, module: ModuleInfo) -> None:
    """Module-level singleton instances (``_REGISTRY = Registry()``)."""
    types: Dict[str, str] = {}
    for stmt in module.tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name) \
                and isinstance(stmt.value, ast.Call):
            name = dotted_name(stmt.value.func)
            if name is None:
                continue
            resolved = _resolve_symbol(graph, module.name, name)
            if resolved in graph.classes:
                types[stmt.targets[0].id] = resolved
    graph._global_types[module.name] = types


def _resolve_returns(graph: CallGraph) -> None:
    for func in graph.functions.values():
        annotation = getattr(func.node, "returns", None)
        func.returns = _annotation_to_class(graph, func.module, annotation)


def _resolve_bases(graph: CallGraph) -> None:
    for cls in graph.classes.values():
        for base in cls.node.bases:
            name = dotted_name(base)
            if name is None:
                continue
            resolved = _resolve_symbol(graph, cls.module, name)
            if resolved in graph.classes:
                cls.bases.append(resolved)


# ----------------------------------------------------------------------
# pass 3: edges
# ----------------------------------------------------------------------

def _resolve_call_targets(graph: CallGraph, func: FunctionInfo,
                          env: _TypeEnv, call: ast.Call) -> List[str]:
    """Project symbols a call may dispatch to (functions or classes)."""
    target = call.func
    # super().m(...)
    if (isinstance(target, ast.Attribute) and isinstance(target.value, ast.Call)
            and isinstance(target.value.func, ast.Name)
            and target.value.func.id == "super" and func.cls is not None):
        for base in graph.classes[func.cls].bases:
            hit = graph.resolve_method(base, target.attr)
            if hit is not None:
                return [hit]
        return []
    name = dotted_name(target)
    if name is not None:
        # nested function defined in this (or an enclosing) scope
        scope = func.qname
        while "." in scope:
            candidate = f"{scope}.{name}"
            if candidate in graph.functions:
                return [candidate]
            scope = scope.rsplit(".", 1)[0]
        resolved = _resolve_symbol(graph, func.module, name)
        if resolved is not None:
            return [resolved]
    if isinstance(target, ast.Attribute):
        owner = env.infer(target.value)
        if owner is not None:
            hit = graph.resolve_method(owner, target.attr)
            if hit is not None:
                return [hit]
    return []


def _normalize_targets(graph: CallGraph, targets: List[str]) -> List[str]:
    """Map class targets to their ``__init__`` (when defined) for edges."""
    out = []
    for target in targets:
        if target in graph.classes:
            init = graph.resolve_method(target, "__init__")
            out.append(init if init is not None else target)
        else:
            out.append(target)
    return out


def _collect_edges(graph: CallGraph, func: FunctionInfo) -> None:
    env = _TypeEnv(graph, func)
    sites: List[CallSite] = []

    # locals pick up constructor/annotation types in source order first:
    # a single forward pass is enough for the idioms the repo uses.
    for node in ast.walk(func.node):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            inferred = env.infer(node.value)
            if inferred is not None:
                env.locals.setdefault(node.targets[0].id, inferred)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            cls = _annotation_to_class(graph, func.module, node.annotation)
            if cls is not None:
                env.locals.setdefault(node.target.id, cls)
        elif isinstance(node, ast.With):
            for item in node.items:
                if item.optional_vars is not None and \
                        isinstance(item.optional_vars, ast.Name):
                    inferred = env.infer(item.context_expr)
                    if inferred is not None:
                        env.locals.setdefault(item.optional_vars.id, inferred)

    nested_ids: Set[int] = set()
    for n in ast.walk(func.node):
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef)) and n is not func.node:
            nested_ids.update(id(sub) for sub in ast.walk(n) if sub is not n)

    for node in ast.walk(func.node):
        if id(node) in nested_ids:
            continue  # nested defs are their own functions in the graph
        if isinstance(node, ast.Call):
            targets = _normalize_targets(
                graph, _resolve_call_targets(graph, func, env, node))
            targets = [t for t in targets if t in graph.functions]
            if targets:
                sites.append(CallSite(node=node, line=node.lineno,
                                      callees=tuple(sorted(set(targets)))))
                for callee in sites[-1].callees:
                    graph._add_edge(func.qname, callee, node.lineno)
        elif isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load) \
                and node is not getattr(getattr(node, "parent", None), "func", None):
            # property access runs the getter: emit a call edge for it
            owner = env.infer(node.value)
            if owner is not None:
                target = graph.resolve_method(owner, node.attr)
                if target is not None and graph.functions[target].is_property:
                    sites.append(CallSite(node=node, line=node.lineno,
                                          callees=(target,)))
                    graph._add_edge(func.qname, target, node.lineno)
    sites.sort(key=lambda s: (s.line, getattr(s.node, "col_offset", 0)))
    graph.sites[func.qname] = sites


def _mark_parents(tree: ast.AST) -> None:
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child.parent = node  # type: ignore[attr-defined]


def call_graph_for(project: Project) -> CallGraph:
    """The project's call graph, built once and cached on the project.

    Every interprocedural rule pack calls this, so a full analysis run
    pays the graph-construction cost exactly once per loaded project.
    """
    cached = getattr(project, "_call_graph", None)
    if cached is None:
        cached = build_call_graph(project)
        project._call_graph = cached  # type: ignore[attr-defined]
    return cached


def build_call_graph(project: Project) -> CallGraph:
    """Build the whole-program :class:`CallGraph` for ``project``."""
    graph = CallGraph(project)
    for module in project.modules.values():
        _collect_symbols(graph, module)
        _collect_imports(graph, module)
    _resolve_bases(graph)
    _resolve_returns(graph)
    for module in project.modules.values():
        _collect_global_types(graph, module)
    for cls in graph.classes.values():
        _collect_attr_types(graph, cls)
    for module in project.modules.values():
        _mark_parents(module.tree)
    for func in list(graph.functions.values()):
        _collect_edges(graph, func)
    return graph
