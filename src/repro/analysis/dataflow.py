"""Interprocedural forward taint analysis over the call graph.

This is the small dataflow framework the ``determinism-flow`` rule pack is
built on (and that future packs can reuse): a :class:`TaintSpec` names the
*sources* (expressions that produce a tainted value — an unseeded RNG, a
wall-clock read, an environment variable), and the engine propagates that
taint through the program until it settles:

* through local bindings (``x = source()``, tuple unpacks, ``a if c else b``);
* through attributes (``self.rng = source()`` taints ``(Class, "rng")``
  project-wide, and any later ``self.rng`` / typed ``obj.rng`` read);
* through calls, in both directions: a call's result is tainted when the
  callee's *return summary* is tainted, and passing a tainted argument
  taints the callee's parameter for the next fixpoint round.

The analysis is flow-insensitive across rounds (a fixpoint over function
summaries) and deliberately does **not** taint data *derived from* a
tainted object (``rng.normal()`` output, arithmetic on a timestamp): the
rules built on it track the tainted value itself reaching a sink slot,
which keeps the false-positive surface small.  After convergence, a final
pass records :class:`TaintEvent` facts — every tainted assignment and
every tainted call argument, with the source location that originated the
taint — which rules filter into findings with their own sink predicates.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .astutil import dotted_name
from .callgraph import CallGraph, FunctionInfo, _TypeEnv

__all__ = ["Taint", "TaintSpec", "TaintEvent", "TaintAnalysis", "run_taint"]

#: Fixpoint safety valve; real projects converge in a handful of rounds.
MAX_ROUNDS = 20


@dataclass(frozen=True)
class Taint:
    """One tainted value: a label (what kind) and its origin (where from)."""

    label: str    #: spec-defined category, e.g. ``unseeded-rng``
    origin: str   #: human-readable source site, e.g. ``file.py:84: np.random.default_rng()``


class TaintSpec:
    """What counts as a source; subclass and override :meth:`source_label`."""

    def source_label(self, node: ast.AST, func: FunctionInfo,
                     graph: CallGraph) -> Optional[str]:
        """Label when ``node`` (a Call/Attribute/Subscript) births taint."""
        return None


@dataclass(frozen=True)
class TaintEvent:
    """One observed flow of a tainted value, for rules to filter."""

    kind: str                     #: ``assign`` or ``call-arg``
    func: str                     #: qname of the function the event is in
    line: int                     #: 1-based source line
    taint: Taint                  #: what flowed
    target: str = ""              #: assign: ``self.rng`` / ``rng`` target text
    callee: str = ""              #: call-arg: resolved callee qname
    param: str = ""               #: call-arg: parameter name when known


class TaintAnalysis:
    """Converged taint facts: summaries plus the flat event list."""

    def __init__(self, graph: CallGraph, spec: TaintSpec) -> None:
        self.graph = graph
        self.spec = spec
        #: function qname -> taints its return value may carry
        self.returns: Dict[str, Set[Taint]] = {}
        #: (function qname, param name) -> taints callers may pass in
        self.params: Dict[Tuple[str, str], Set[Taint]] = {}
        #: (class qname, attr name) -> taints stored on instances
        self.attrs: Dict[Tuple[str, str], Set[Taint]] = {}
        self.events: List[TaintEvent] = []

    def run(self) -> "TaintAnalysis":
        """Iterate to fixpoint, then record events; returns self."""
        for _ in range(MAX_ROUNDS):
            before = (self._size(self.returns), self._size(self.params),
                      self._size(self.attrs))
            for func in self.graph.functions.values():
                _FunctionPass(self, func, record=False).run()
            after = (self._size(self.returns), self._size(self.params),
                     self._size(self.attrs))
            if after == before:
                break
        for func in self.graph.functions.values():
            _FunctionPass(self, func, record=True).run()
        self.events.sort(key=lambda e: (e.func, e.line, e.taint.label))
        return self

    @staticmethod
    def _size(table: Dict) -> int:
        return sum(len(v) for v in table.values())

    # -- helpers used by the per-function pass -------------------------
    def attr_taints(self, class_qname: Optional[str], attr: str) -> Set[Taint]:
        """Taints of ``attr`` over the class and its bases."""
        if class_qname is None:
            return set()
        out: Set[Taint] = set()
        for qname in self.graph.mro(class_qname):
            out |= self.attrs.get((qname, attr), set())
        return out

    def add_attr(self, class_qname: str, attr: str, taints: Set[Taint]) -> None:
        """Record taints stored on ``class_qname.attr``."""
        if taints:
            self.attrs.setdefault((class_qname, attr), set()).update(taints)


class _FunctionPass:
    """One forward pass over a function body (statements in source order)."""

    def __init__(self, analysis: TaintAnalysis, func: FunctionInfo,
                 record: bool) -> None:
        self.a = analysis
        self.func = func
        self.record = record
        self.env = _TypeEnv(analysis.graph, func)
        self.locals: Dict[str, Set[Taint]] = {}
        for arg in _arg_names(func.node):
            seeded = analysis.params.get((func.qname, arg))
            if seeded:
                self.locals[arg] = set(seeded)

    # -- expression taint ----------------------------------------------
    def taints_of(self, node: ast.AST) -> Set[Taint]:
        label = self.a.spec.source_label(node, self.func, self.a.graph)
        if label is not None:
            module = self.a.graph.project.modules.get(self.func.module)
            file = module.file if module is not None else self.func.module
            snippet = ""
            if module is not None:
                snippet = module.snippet(getattr(node, "lineno", 1))
            origin = f"{file}:{getattr(node, 'lineno', 1)}: {snippet}".rstrip(": ")
            return {Taint(label, origin)}
        if isinstance(node, ast.Name):
            return set(self.locals.get(node.id, ()))
        if isinstance(node, ast.Attribute):
            return self.a.attr_taints(self.env.infer(node.value), node.attr)
        if isinstance(node, ast.Call):
            self._visit_call(node)
            out: Set[Taint] = set()
            for callee in self._callees(node):
                out |= self.a.returns.get(callee, set())
            return out
        if isinstance(node, ast.IfExp):
            return self.taints_of(node.body) | self.taints_of(node.orelse)
        if isinstance(node, ast.BoolOp):
            out = set()
            for value in node.values:
                out |= self.taints_of(value)
            return out
        if isinstance(node, (ast.Tuple, ast.List)):
            out = set()
            for elt in node.elts:
                out |= self.taints_of(elt)
            return out
        if isinstance(node, ast.NamedExpr):
            taints = self.taints_of(node.value)
            self.locals[node.target.id] = set(taints)
            return taints
        if isinstance(node, (ast.Await, ast.Starred)):
            return self.taints_of(node.value)
        return set()

    def _callees(self, call: ast.Call) -> Tuple[str, ...]:
        for site in self.a.graph.sites.get(self.func.qname, ()):
            if site.node is call:
                return site.callees
        return ()

    def _visit_call(self, call: ast.Call) -> None:
        """Propagate tainted arguments into callee parameters (+ events)."""
        callees = self._callees(call)
        args: List[Tuple[str, ast.AST]] = []
        for i, arg in enumerate(call.args):
            args.append((f"#{i}", arg if not isinstance(arg, ast.Starred)
                         else arg.value))
        for kw in call.keywords:
            args.append((kw.arg or "**", kw.value))
        for slot, expr in args:
            taints = self.taints_of(expr)
            if not taints:
                continue
            for callee in callees or ("",):
                param = self._param_name(callee, slot)
                if callee and param:
                    self.a.params.setdefault((callee, param), set()).update(taints)
                if self.record:
                    for taint in taints:
                        self.a.events.append(TaintEvent(
                            kind="call-arg", func=self.func.qname,
                            line=call.lineno, taint=taint,
                            callee=callee, param=param or slot,
                        ))

    def _param_name(self, callee: str, slot: str) -> Optional[str]:
        info = self.a.graph.functions.get(callee)
        if info is None:
            return None
        names = _arg_names(info.node)
        if info.cls is not None and names and names[0] in ("self", "cls"):
            names = names[1:]
        if slot.startswith("#"):
            idx = int(slot[1:])
            return names[idx] if idx < len(names) else None
        return slot if slot in names else None

    # -- statement walk ------------------------------------------------
    def run(self) -> None:
        for stmt in _flat_statements(self.func.node.body):
            self._visit_stmt(stmt)

    def _visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            taints = self.taints_of(stmt.value)
            for target in stmt.targets:
                self._bind(target, taints)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._bind(stmt.target, self.taints_of(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            taints = self.taints_of(stmt.value)
            if isinstance(stmt.target, ast.Name):
                taints = taints | set(self.locals.get(stmt.target.id, ()))
            self._bind(stmt.target, taints)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                taints = self.taints_of(stmt.value)
                if taints:
                    self.a.returns.setdefault(self.func.qname, set()).update(taints)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taints = self.taints_of(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, taints)
        elif isinstance(stmt, ast.For):
            self.taints_of(stmt.iter)
        else:
            for expr in _stmt_exprs(stmt):
                self.taints_of(expr)

    def _bind(self, target: ast.AST, taints: Set[Taint]) -> None:
        if isinstance(target, ast.Name):
            if taints:
                self.locals[target.id] = set(taints)
                self._record_assign(target.id, target.lineno, taints)
            else:
                self.locals.pop(target.id, None)
        elif isinstance(target, ast.Attribute):
            owner = self.env.infer(target.value)
            if taints and owner is not None:
                self.a.add_attr(owner, target.attr, taints)
                text = f"{dotted_name(target) or target.attr}"
                self._record_assign(text, target.lineno, taints)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, taints)
        # subscript stores don't bind names; taint dies there

    def _record_assign(self, target: str, line: int, taints: Set[Taint]) -> None:
        if not self.record:
            return
        for taint in taints:
            self.a.events.append(TaintEvent(
                kind="assign", func=self.func.qname, line=line,
                taint=taint, target=target,
            ))


def _arg_names(node: ast.AST) -> List[str]:
    args = getattr(node, "args", None)
    if args is None:
        return []
    names = [a.arg for a in list(args.posonlyargs) + list(args.args)]
    names += [a.arg for a in args.kwonlyargs]
    return names


def _flat_statements(body: List[ast.stmt]) -> List[ast.stmt]:
    """Statements in source order, descending control flow, skipping defs."""
    out: List[ast.stmt] = []
    stack = list(reversed(body))
    while stack:
        stmt = stack.pop()
        out.append(stmt)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        blocks = [getattr(stmt, "body", None), getattr(stmt, "orelse", None),
                  getattr(stmt, "finalbody", None)]
        for handler in getattr(stmt, "handlers", ()) or ():
            blocks.append(handler.body)
        for case in getattr(stmt, "cases", ()) or ():
            blocks.append(case.body)
        for block in reversed([b for b in blocks if b]):
            stack.extend(reversed(block))
    return out


def _stmt_exprs(stmt: ast.stmt):
    """Top-level expression children of a statement (not nested blocks)."""
    for name in ("value", "test", "exc", "iter", "target"):
        child = getattr(stmt, name, None)
        if isinstance(child, ast.expr):
            yield child


def run_taint(graph: CallGraph, spec: TaintSpec) -> TaintAnalysis:
    """Run ``spec`` to fixpoint over ``graph``; returns the converged facts."""
    return TaintAnalysis(graph, spec).run()
