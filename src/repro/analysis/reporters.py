"""Text, JSON, and SARIF reporters for analysis findings.

The text reporter is the human view: one ``file:line: rule: message`` line
per finding plus an indented fix hint, then a summary.  The JSON reporter
is the machine view CI uploads as an artifact; its schema is versioned and
round-trips through :meth:`Finding.to_dict`.  The SARIF reporter emits
`SARIF 2.1.0 <https://docs.oasis-open.org/sarif/sarif/v2.1.0/>`_ so
editors and code-review UIs can render findings in place; suppressed
findings are included with a ``suppressions`` entry rather than dropped,
which is what lets a reviewer audit what the baseline hides.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from .baseline import Baseline
from .findings import SEVERITY_ERROR, Finding

__all__ = ["render_text", "render_json", "render_sarif", "report_payload"]

#: Schema version of the JSON report.
JSON_VERSION = 1

#: SARIF spec pinned by the reporter.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def render_text(active: Sequence[Finding], suppressed: Sequence[Finding],
                baseline: Optional[Baseline] = None, n_files: int = 0) -> str:
    """Human-readable report; active findings first, then bookkeeping."""
    lines: List[str] = []
    for f in active:
        lines.append(f"{f.location}: {f.rule_id}: {f.message}")
        if f.fix_hint:
            lines.append(f"    hint: {f.fix_hint}")
    if active:
        lines.append("")
    by_rule: Dict[str, int] = {}
    for f in active:
        by_rule[f.rule_id] = by_rule.get(f.rule_id, 0) + 1
    if by_rule:
        breakdown = ", ".join(f"{rid}={n}" for rid, n in sorted(by_rule.items()))
        lines.append(f"{len(active)} finding(s) across {n_files} file(s): {breakdown}")
    else:
        lines.append(f"clean: 0 findings across {n_files} file(s)"
                     + (f" ({len(suppressed)} baselined)" if suppressed else ""))
    if baseline is not None:
        for entry in baseline.unjustified():
            lines.append(
                f"note: baseline entry for {entry.file} ({entry.rule}) has no "
                f"justification and was ignored"
            )
        for entry in baseline.unused():
            lines.append(
                f"note: stale baseline entry for {entry.file} ({entry.rule}): "
                f"{entry.content!r} no longer matches — delete it"
            )
    return "\n".join(lines)


def report_payload(active: Sequence[Finding], suppressed: Sequence[Finding],
                   rule_ids: Sequence[str], n_files: int) -> Dict[str, object]:
    """The JSON report as a plain dict (also used by tests)."""
    return {
        "version": JSON_VERSION,
        "n_files": n_files,
        "rules": list(rule_ids),
        "findings": [f.to_dict() for f in active],
        "baselined": [f.to_dict() for f in suppressed],
        "summary": {
            "errors": sum(1 for f in active if f.severity == SEVERITY_ERROR),
            "warnings": sum(1 for f in active if f.severity != SEVERITY_ERROR),
            "baselined": len(suppressed),
        },
    }


def render_json(active: Sequence[Finding], suppressed: Sequence[Finding],
                rule_ids: Sequence[str], n_files: int) -> str:
    """The JSON report as a string."""
    return json.dumps(report_payload(active, suppressed, rule_ids, n_files),
                      indent=2, sort_keys=True)


def _sarif_result(finding: Finding, suppressed: bool) -> Dict[str, object]:
    result: Dict[str, object] = {
        "ruleId": finding.rule_id,
        "level": "error" if finding.severity == SEVERITY_ERROR else "warning",
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": finding.file},
                "region": {
                    "startLine": finding.line,
                    **({"snippet": {"text": finding.snippet}}
                       if finding.snippet else {}),
                },
            },
        }],
    }
    if suppressed:
        result["suppressions"] = [{"kind": "external",
                                   "justification": "baselined or inline-allowed"}]
    return result


def render_sarif(active: Sequence[Finding], suppressed: Sequence[Finding],
                 rules: Sequence = ()) -> str:
    """SARIF 2.1.0 report; ``rules`` are Rule instances for driver metadata."""
    driver_rules = []
    for rule in rules:
        entry: Dict[str, object] = {
            "id": rule.rule_id,
            "shortDescription": {"text": rule.description},
        }
        if rule.fix_hint:
            entry["help"] = {"text": rule.fix_hint}
        driver_rules.append(entry)
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": "repro.analysis",
                "informationUri": "docs/static_analysis.md",
                "rules": driver_rules,
            }},
            "results": (
                [_sarif_result(f, suppressed=False) for f in active]
                + [_sarif_result(f, suppressed=True) for f in suppressed]
            ),
        }],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
