"""Command-line interface: ``python -m repro.analysis``.

Three entry points behind one module:

* ``python -m repro.analysis [PATHS...]`` — run the AST invariant rules
  (default path: ``src``) against the committed baseline; exit 1 on any
  non-baselined error finding.
* ``python -m repro.analysis docs`` — markdown link integrity and
  executable doc examples (folded ``scripts/check_docs.py``).
* ``python -m repro.analysis docstrings`` — public docstring coverage
  gate (folded ``scripts/check_docstrings.py``).

Exit codes: 0 clean (possibly via baseline), 1 findings, 2 usage error.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import List, Optional, Sequence

from . import docs_check, docstrings
from .baseline import Baseline, write_baseline
from .findings import SEVERITY_ERROR
from .framework import default_rules, rule_ids, run_rules
from .project import load_project
from .reporters import render_json, render_text

__all__ = ["main", "DEFAULT_BASELINE"]

#: Baseline filename looked up in the cwd when --baseline is not given.
DEFAULT_BASELINE = "analysis_baseline.json"


def _build_parser():
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST invariant linter for the repro codebase "
                    "(subcommands: docs, docstrings)",
    )
    parser.add_argument("paths", nargs="*", default=None,
                        help="files/directories to analyze (default: src)")
    parser.add_argument("--baseline", default=None,
                        help=f"suppression file (default: ./{DEFAULT_BASELINE} "
                             f"when present)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="stdout format (default: text)")
    parser.add_argument("--output", default=None, metavar="FILE",
                        help="also write the JSON report to FILE (for CI artifacts)")
    parser.add_argument("--write-baseline", default=None, metavar="FILE",
                        help="write current findings as a baseline skeleton and exit 0")
    parser.add_argument("--rules", default=None,
                        help="comma-separated rule ids to run (default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print registered rule ids and exit")
    return parser


def _select_rules(spec: Optional[str]) -> List:
    if spec is None:
        return default_rules()
    wanted = [s.strip() for s in spec.split(",") if s.strip()]
    known = set(rule_ids())
    unknown = [w for w in wanted if w not in known]
    if unknown:
        raise SystemExit(f"unknown rule id(s): {', '.join(unknown)} "
                         f"(known: {', '.join(sorted(known))})")
    return [r for r in default_rules() if r.rule_id in wanted]


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "docs":
        return docs_check.main(argv[1:])
    if argv and argv[0] == "docstrings":
        return docstrings.main(argv[1:])

    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in default_rules():
            print(f"{rule.rule_id}: {rule.description}")
        return 0

    paths = args.paths or ["src"]
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        parser.error(f"path(s) not found: {', '.join(missing)}")

    try:
        selected = _select_rules(args.rules)
    except SystemExit as exc:
        if isinstance(exc.code, str):
            print(exc.code, file=sys.stderr)
            return 2
        raise

    project = load_project(paths)
    findings = run_rules(project, selected)
    n_files = len(project.modules) + len(project.parse_errors)

    if args.write_baseline:
        n = write_baseline(findings, args.write_baseline)
        print(f"wrote {n} baseline entr{'y' if n == 1 else 'ies'} to "
              f"{args.write_baseline} — now justify or fix each one")
        return 0

    baseline_path = args.baseline
    if baseline_path is None and Path(DEFAULT_BASELINE).exists():
        baseline_path = DEFAULT_BASELINE
    baseline = Baseline.load(baseline_path) if baseline_path else Baseline()

    active = [f for f in findings if not baseline.suppresses(f)]
    suppressed = [f for f in findings if f not in active]

    ids = [r.rule_id for r in selected]
    if args.format == "json":
        print(render_json(active, suppressed, ids, n_files))
    else:
        print(render_text(active, suppressed, baseline, n_files))
    if args.output:
        out = Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(render_json(active, suppressed, ids, n_files) + "\n",
                       encoding="utf-8")

    return 1 if any(f.severity == SEVERITY_ERROR for f in active) else 0
