"""Command-line interface: ``python -m repro.analysis``.

Entry points behind one module:

* ``python -m repro.analysis [check] [PATHS...]`` — run every analysis
  rule (lexical + whole-program) against the committed baseline and the
  inline ``# repro: allow[...]`` suppressions (default path: ``src``);
  exit 1 on any non-suppressed error finding.  ``check`` is the explicit
  spelling CI uses; with no subcommand the behaviour is identical.
* ``python -m repro.analysis graph [PATHS...]`` — build and inspect the
  whole-program call graph: summary stats, ``--callees``/``--callers`` of
  a function, ``--reachable`` closure from entry patterns, or a full JSON
  dump for tooling.
* ``python -m repro.analysis docs`` — markdown link integrity and
  executable doc examples (folded ``scripts/check_docs.py``).
* ``python -m repro.analysis docstrings`` — public docstring coverage
  gate (folded ``scripts/check_docstrings.py``).

Exit codes: 0 clean (possibly via baseline/allows), 1 findings, 2 usage
error.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import List, Optional, Sequence

from . import docs_check, docstrings
from .baseline import Baseline, write_baseline
from .findings import SEVERITY_ERROR
from .framework import default_rules, rule_ids, run_rules
from .project import load_project
from .reporters import render_json, render_sarif, render_text
from .suppressions import collect_suppressions

__all__ = ["main", "graph_main", "DEFAULT_BASELINE"]

#: Baseline filename looked up in the cwd when --baseline is not given.
DEFAULT_BASELINE = "analysis_baseline.json"


def _build_parser():
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Whole-program invariant analyzer for the repro codebase "
                    "(subcommands: check, graph, docs, docstrings)",
    )
    parser.add_argument("paths", nargs="*", default=None,
                        help="files/directories to analyze (default: src)")
    parser.add_argument("--baseline", default=None,
                        help=f"suppression file (default: ./{DEFAULT_BASELINE} "
                             f"when present)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", help="stdout format (default: text)")
    parser.add_argument("--output", default=None, metavar="FILE",
                        help="also write the JSON report to FILE (for CI artifacts)")
    parser.add_argument("--sarif", default=None, metavar="FILE",
                        help="also write a SARIF 2.1.0 report to FILE")
    parser.add_argument("--write-baseline", default=None, metavar="FILE",
                        help="write current findings as a baseline skeleton and exit 0")
    parser.add_argument("--rules", default=None,
                        help="comma-separated rule ids to run (default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print registered rule ids and exit")
    return parser


def _build_graph_parser():
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis graph",
        description="Build and inspect the whole-program call graph",
    )
    parser.add_argument("paths", nargs="*", default=None,
                        help="files/directories to load (default: src)")
    parser.add_argument("--callees", default=None, metavar="QNAME",
                        help="print resolved callees of a function "
                             "(glob patterns allowed)")
    parser.add_argument("--callers", default=None, metavar="QNAME",
                        help="print resolved callers of a function "
                             "(glob patterns allowed)")
    parser.add_argument("--reachable", default=None, metavar="PATTERN",
                        help="print the reachability closure (with witness "
                             "paths) from entry functions matching PATTERN")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format (default: text)")
    return parser


def _select_rules(spec: Optional[str]) -> List:
    if spec is None:
        return default_rules()
    wanted = [s.strip() for s in spec.split(",") if s.strip()]
    known = set(rule_ids())
    unknown = [w for w in wanted if w not in known]
    if unknown:
        raise SystemExit(f"unknown rule id(s): {', '.join(unknown)} "
                         f"(known: {', '.join(sorted(known))})")
    return [r for r in default_rules() if r.rule_id in wanted]


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "docs":
        return docs_check.main(argv[1:])
    if argv and argv[0] == "docstrings":
        return docstrings.main(argv[1:])
    if argv and argv[0] == "graph":
        return graph_main(argv[1:])
    if argv and argv[0] == "check":
        argv = argv[1:]

    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in default_rules():
            print(f"{rule.rule_id}: {rule.description}")
        return 0

    paths = args.paths or ["src"]
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        parser.error(f"path(s) not found: {', '.join(missing)}")

    try:
        selected = _select_rules(args.rules)
    except SystemExit as exc:
        if isinstance(exc.code, str):
            print(exc.code, file=sys.stderr)
            return 2
        raise

    project = load_project(paths)
    findings = run_rules(project, selected)
    n_files = len(project.modules) + len(project.parse_errors)

    if args.write_baseline:
        n = write_baseline(findings, args.write_baseline)
        print(f"wrote {n} baseline entr{'y' if n == 1 else 'ies'} to "
              f"{args.write_baseline} — now justify or fix each one")
        return 0

    baseline_path = args.baseline
    if baseline_path is None and Path(DEFAULT_BASELINE).exists():
        baseline_path = DEFAULT_BASELINE
    baseline = Baseline.load(baseline_path) if baseline_path else Baseline()
    inline = collect_suppressions(project)

    active, suppressed = [], []
    for f in findings:
        # Both layers get asked (each tracks which entries fired), so a
        # finding covered twice still marks both suppressions used.
        in_baseline = baseline.suppresses(f)
        in_inline = inline.suppresses(f)
        (suppressed if in_baseline or in_inline else active).append(f)
    active.extend(inline.problems())

    ids = [r.rule_id for r in selected]
    if args.format == "json":
        print(render_json(active, suppressed, ids, n_files))
    elif args.format == "sarif":
        print(render_sarif(active, suppressed, selected))
    else:
        print(render_text(active, suppressed, baseline, n_files))
        for allow in inline.unused():
            print(f"note: stale inline allow at {allow.file}:{allow.line} "
                  f"({', '.join(allow.rules)}) matched nothing — delete it")
    if args.output:
        out = Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(render_json(active, suppressed, ids, n_files) + "\n",
                       encoding="utf-8")
    if args.sarif:
        out = Path(args.sarif)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(render_sarif(active, suppressed, selected) + "\n",
                       encoding="utf-8")

    return 1 if any(f.severity == SEVERITY_ERROR for f in active) else 0


def graph_main(argv: Optional[Sequence[str]] = None) -> int:
    """``graph`` subcommand: dump/inspect the call graph."""
    import json

    from .callgraph import build_call_graph

    parser = _build_graph_parser()
    args = parser.parse_args(list(argv or []))
    paths = args.paths or ["src"]
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        parser.error(f"path(s) not found: {', '.join(missing)}")

    graph = build_call_graph(load_project(paths))

    if args.callees or args.callers:
        pattern = args.callees or args.callers
        hits = graph.find(pattern)
        if not hits:
            print(f"no function matches {pattern!r}", file=sys.stderr)
            return 2
        for qname in hits:
            edges = graph.callees(qname) if args.callees else graph.callers(qname)
            print(f"{qname}:")
            for edge in sorted(edges, key=lambda e: (e.line, e.callee, e.caller)):
                other = edge.callee if args.callees else edge.caller
                print(f"  line {edge.line}: {other}")
        return 0

    if args.reachable:
        entries = graph.find(args.reachable)
        if not entries:
            print(f"no entry matches {args.reachable!r}", file=sys.stderr)
            return 2
        closure = graph.reachable(entries)
        if args.format == "json":
            print(json.dumps({q: list(p) for q, p in sorted(closure.items())},
                             indent=2))
        else:
            for qname in sorted(closure):
                print(f"{qname}  [{' -> '.join(closure[qname])}]")
            print(f"\n{len(closure)} function(s) reachable from "
                  f"{len(entries)} entr{'y' if len(entries) == 1 else 'ies'}")
        return 0

    if args.format == "json":
        payload = {
            "functions": sorted(graph.functions),
            "classes": sorted(graph.classes),
            "edges": [
                {"caller": e.caller, "callee": e.callee, "line": e.line}
                for e in sorted(graph.edges,
                                key=lambda e: (e.caller, e.line, e.callee))
            ],
        }
        print(json.dumps(payload, indent=2))
    else:
        n_sites = sum(len(sites) for sites in graph.sites.values())
        print(f"{len(graph.functions)} functions, {len(graph.classes)} "
              f"classes, {len(graph.edges)} resolved call edges across "
              f"{n_sites} call sites")
    return 0
