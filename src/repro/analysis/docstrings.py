"""Docstring-coverage gate for the documented public surface.

Folded into ``repro.analysis`` from the original
``scripts/check_docstrings.py`` (a thin shim remains there).  Walks the
targets listed in :data:`TARGETS` — each either a package directory
(scanned recursively) or a single module file (e.g. the ragged-kernel
modules backing docs/kernels.md) — with ``ast`` (no imports, so it is
safe on any tree) and computes the fraction of *public* definitions —
modules, classes, functions, and methods whose names don't start with an
underscore (dunders other than ``__init__`` are ignored; ``__init__``
counts as covered by its class docstring) — that carry a docstring.
Fails if any target is below :data:`THRESHOLD`.

Usage::

    python -m repro.analysis docstrings [--list-missing] [--root DIR]
"""

from __future__ import annotations

import argparse
import ast
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Tuple

__all__ = ["TARGETS", "THRESHOLD", "STRICT", "collect", "main"]

#: Targets under the coverage gate (the linter holds itself to it too).
#: A directory is scanned recursively; a ``.py`` entry gates one module —
#: the ragged-batch kernel surface documented by docs/kernels.md.
TARGETS = (
    "src/repro/serving",
    "src/repro/core",
    "src/repro/analysis",
    "src/repro/nn/ragged.py",
    "src/repro/nn/kernels.py",
    "src/repro/decoding/tree.py",
    "src/repro/analysis/callgraph.py",
    "src/repro/analysis/dataflow.py",
    "src/repro/analysis/suppressions.py",
    "src/repro/analysis/rules/lockorder.py",
    "src/repro/analysis/rules/taintflow.py",
    "src/repro/analysis/rules/escape.py",
    "src/repro/analysis/rules/hotreach.py",
)
THRESHOLD = 0.90
#: Per-target overrides on top of :data:`THRESHOLD` — the tree-speculation
#: module and the whole-program analysis engine ship fully documented, so
#: they are held at 100%.
STRICT = {
    "src/repro/decoding/tree.py": 1.0,
    "src/repro/analysis/callgraph.py": 1.0,
    "src/repro/analysis/dataflow.py": 1.0,
    "src/repro/analysis/suppressions.py": 1.0,
    "src/repro/analysis/rules/lockorder.py": 1.0,
    "src/repro/analysis/rules/taintflow.py": 1.0,
    "src/repro/analysis/rules/escape.py": 1.0,
    "src/repro/analysis/rules/hotreach.py": 1.0,
}


def iter_public_defs(tree: ast.Module, module: str) -> Iterator[Tuple[str, bool]]:
    """Yield ``(qualified_name, has_docstring)`` for the module + members."""
    yield module, ast.get_docstring(tree) is not None

    def walk(node: ast.AST, prefix: str) -> Iterator[Tuple[str, bool]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                name = child.name
                if name.startswith("_") and not name.startswith("__"):
                    continue
                if name.startswith("__") and name.endswith("__"):
                    continue  # dunders documented by convention, not required
                qualified = f"{prefix}.{name}"
                yield qualified, ast.get_docstring(child) is not None
                if isinstance(child, ast.ClassDef):
                    yield from walk(child, qualified)

    yield from walk(tree, module)


def collect(root: Path, target: str) -> List[Tuple[str, bool]]:
    """``(name, documented)`` pairs for every public def under one target.

    ``target`` is repo-relative: a directory is walked recursively, a
    single ``.py`` file contributes just that module.
    """
    entries = []
    package = root / target
    paths = [package] if package.suffix == ".py" else sorted(package.rglob("*.py"))
    for path in paths:
        module = ".".join(path.relative_to(root / "src").with_suffix("").parts)
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        entries.extend(iter_public_defs(tree, module))
    return entries


def main(argv: Optional[Sequence[str]] = None, root: Optional[Path] = None) -> int:
    """CLI entry; ``root`` (repo root) defaults to ``--root`` or the cwd."""
    parser = argparse.ArgumentParser(
        prog="repro.analysis docstrings",
        description="docstring coverage gate for the documented public surface",
    )
    parser.add_argument(
        "--list-missing", action="store_true", help="print every undocumented name"
    )
    parser.add_argument(
        "--root", type=Path, default=None,
        help="repository root holding src/ (default: cwd)",
    )
    args = parser.parse_args(argv)
    root = args.root if args.root is not None else (root or Path.cwd())

    failed = False
    for target in TARGETS:
        need = STRICT.get(target, THRESHOLD)
        entries = collect(root, target)
        documented = sum(1 for _, ok in entries if ok)
        coverage = documented / len(entries) if entries else 1.0
        status = "ok " if coverage >= need else "FAIL"
        print(
            f"{status} {target}: {documented}/{len(entries)} public defs "
            f"documented ({coverage:.1%}, need >= {need:.0%})"
        )
        missing = [name for name, ok in entries if not ok]
        if coverage < need:
            failed = True
        if missing and (args.list_missing or coverage < need):
            for name in missing:
                print(f"    missing: {name}")
    return 1 if failed else 0
