"""The :class:`Finding` model every analysis rule reports through.

A finding pins one defect to one source location and carries everything a
reporter (or the baseline matcher) needs: the rule that fired, a
human-readable message, an actionable fix hint, and the stripped source
line (``snippet``) the finding anchors to.  Snippet-based identity is what
makes baseline entries survive unrelated line drift — see
:mod:`repro.analysis.baseline`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

__all__ = ["Finding", "SEVERITY_ERROR", "SEVERITY_WARNING"]

#: Findings at this severity fail the run (exit code 1) unless baselined.
SEVERITY_ERROR = "error"
#: Advisory findings: reported, never fatal.
SEVERITY_WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    file: str           #: path as reported (relative to the invocation cwd)
    line: int           #: 1-based line the finding anchors to
    rule_id: str        #: id of the rule that produced it
    message: str        #: what is wrong, in one sentence
    fix_hint: str = ""  #: how to fix it (shown indented under the message)
    severity: str = SEVERITY_ERROR
    snippet: str = ""   #: stripped source line at ``line`` (baseline identity)

    @property
    def location(self) -> str:
        """``file:line`` anchor, the conventional clickable form."""
        return f"{self.file}:{self.line}"

    def sort_key(self):
        """Stable ordering: by file, then line, then rule."""
        return (self.file, self.line, self.rule_id)

    def to_dict(self) -> dict:
        """Plain-dict form for the JSON reporter."""
        return asdict(self)
