"""``python -m repro.analysis`` — see :mod:`repro.analysis.cli`."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
