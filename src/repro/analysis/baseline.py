"""Baseline suppression: a committed, justified list of accepted findings.

The baseline is a JSON file of entries identified by ``(rule, file,
content)`` where ``content`` is the stripped source line a finding anchors
to — *not* a line number, so entries survive unrelated edits above them.
Every entry must carry a non-empty ``justification``; an entry without one
is treated as absent, which keeps "baseline it" from becoming a silent
escape hatch.

Workflow: run ``python -m repro.analysis src/ --write-baseline
analysis_baseline.json``, delete the entries you intend to *fix*, and
replace each remaining ``TODO`` justification with a real sentence.  Stale
entries (matching nothing anymore) are reported so the file shrinks as
violations are fixed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from .findings import Finding

__all__ = ["BaselineEntry", "Baseline", "write_baseline"]

_TODO = "TODO: justify this suppression or fix the finding"


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding: rule + file + the exact offending source line."""

    rule: str
    file: str
    content: str
    justification: str = ""

    @property
    def justified(self) -> bool:
        """True when a real (non-TODO, non-empty) justification is present."""
        return bool(self.justification.strip()) and not self.justification.startswith("TODO")

    def matches(self, finding: Finding) -> bool:
        """Entry suppresses ``finding`` (same rule, file, and source line)."""
        return (
            self.rule == finding.rule_id
            and self.file == finding.file
            and self.content == finding.snippet
        )


class Baseline:
    """A loaded suppression file plus bookkeeping of which entries fired."""

    def __init__(self, entries: Sequence[BaselineEntry] = (),
                 path: Optional[Path] = None) -> None:
        self.entries = list(entries)
        self.path = path
        self._used = [False] * len(self.entries)

    @classmethod
    def load(cls, path) -> "Baseline":
        """Read a baseline file; a missing path yields an empty baseline."""
        path = Path(path)
        if not path.exists():
            return cls([], path=path)
        payload = json.loads(path.read_text(encoding="utf-8"))
        entries = [
            BaselineEntry(
                rule=e["rule"],
                file=e["file"],
                content=e["content"],
                justification=e.get("justification", ""),
            )
            for e in payload.get("entries", [])
        ]
        return cls(entries, path=path)

    def __len__(self) -> int:
        return len(self.entries)

    def suppresses(self, finding: Finding) -> bool:
        """True when a *justified* entry matches ``finding`` (marks it used)."""
        hit = False
        for i, entry in enumerate(self.entries):
            if entry.justified and entry.matches(finding):
                self._used[i] = True
                hit = True
        return hit

    def unused(self) -> List[BaselineEntry]:
        """Entries that matched nothing — stale, should be deleted."""
        return [e for e, used in zip(self.entries, self._used) if not used]

    def unjustified(self) -> List[BaselineEntry]:
        """Entries lacking a real justification — never applied."""
        return [e for e in self.entries if not e.justified]


def write_baseline(findings: Iterable[Finding], path) -> int:
    """Write ``findings`` as a baseline skeleton; returns the entry count.

    Justifications are filled with a TODO placeholder, so a freshly written
    baseline suppresses nothing until a human writes real sentences.
    """
    seen = set()
    entries = []
    for f in sorted(findings, key=Finding.sort_key):
        key = (f.rule_id, f.file, f.snippet)
        if key in seen:
            continue
        seen.add(key)
        entries.append({
            "rule": f.rule_id,
            "file": f.file,
            "content": f.snippet,
            "justification": _TODO,
        })
    payload = {"version": 1, "entries": entries}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return len(entries)
