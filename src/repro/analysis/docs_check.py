"""Docs honesty checks: link integrity + executable examples.

Folded into ``repro.analysis`` from the original ``scripts/check_docs.py``
(a thin shim remains there for existing CI invocations).  Two checks:

1. **Links** — every relative markdown link in ``docs/*.md`` and
   ``README.md`` must point at an existing file (fragments are stripped;
   external ``http(s)``/``mailto`` links are not fetched).
2. **Examples** — the fenced ``python`` blocks of the executable pages
   (``docs/api_guide.md``, ``docs/serving.md``, ``docs/kernels.md``)
   are run top-to-bottom in
   one shared namespace per page, from a scratch working directory.  A
   block preceded by an ``<!-- doccheck: skip -->`` marker is
   compile-checked only (used for pages whose examples would train
   models).

Usage::

    python -m repro.analysis docs [--links-only] [--root DIR]

Exits non-zero on the first category of failure, listing every offender.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import re
import sys
import tempfile
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Sequence

__all__ = ["check_links", "run_examples", "main"]

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"^```")
SKIP_MARKER = "<!-- doccheck: skip -->"

#: Pages whose python blocks must execute end-to-end.
EXECUTABLE_PAGES = ("docs/api_guide.md", "docs/serving.md", "docs/kernels.md")


def iter_doc_files(root: Path) -> Iterator[Path]:
    """README plus every page under ``docs/``."""
    readme = root / "README.md"
    if readme.exists():
        yield readme
    yield from sorted((root / "docs").glob("*.md"))


def check_links(root: Path) -> List[str]:
    """Return a list of ``file:line: broken-target`` strings."""
    errors = []
    for path in iter_doc_files(root):
        text = path.read_text(encoding="utf-8")
        # ignore links inside fenced code blocks
        in_fence = False
        for lineno, line in enumerate(text.splitlines(), start=1):
            if FENCE_RE.match(line.strip()):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for target in LINK_RE.findall(line):
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                rel = target.split("#", 1)[0]
                if not rel:  # pure fragment, same-page anchor
                    continue
                resolved = (path.parent / rel).resolve()
                if not resolved.exists():
                    errors.append(f"{path.relative_to(root)}:{lineno}: {target}")
    return errors


@dataclass
class CodeBlock:
    """One fenced python block of a documentation page."""

    lineno: int
    source: str
    skip: bool


def extract_python_blocks(path: Path) -> List[CodeBlock]:
    """Fenced ``python`` blocks with their skip markers, in page order."""
    blocks = []
    lines = path.read_text(encoding="utf-8").splitlines()
    i = 0
    pending_skip = False
    while i < len(lines):
        stripped = lines[i].strip()
        if stripped == SKIP_MARKER:
            pending_skip = True
        elif stripped.startswith("```python"):
            start = i + 1
            body = []
            i += 1
            while i < len(lines) and not lines[i].strip().startswith("```"):
                body.append(lines[i])
                i += 1
            blocks.append(CodeBlock(start + 1, "\n".join(body), pending_skip))
            pending_skip = False
        elif stripped:  # any other non-blank line clears a dangling marker
            pending_skip = False
        i += 1
    return blocks


def run_examples(root: Path, rel_path: str) -> List[str]:
    """Execute (or compile) every python block of one page; return errors."""
    path = root / rel_path
    blocks = extract_python_blocks(path)
    if not blocks:
        return [f"{rel_path}: no python blocks found"]
    errors = []
    namespace: dict = {"__name__": f"doccheck_{path.stem}"}
    with tempfile.TemporaryDirectory(prefix="doccheck-") as scratch:
        with contextlib.ExitStack() as stack:
            cwd = os.getcwd()
            os.chdir(scratch)
            stack.callback(os.chdir, cwd)
            for block in blocks:
                label = f"{rel_path}:{block.lineno}"
                try:
                    code = compile(block.source, label, "exec")
                except SyntaxError:
                    errors.append(f"{label}: syntax error\n{traceback.format_exc()}")
                    continue
                if block.skip:
                    print(f"  compiled  {label}")
                    continue
                try:
                    exec(code, namespace)
                except Exception:
                    errors.append(f"{label}: raised\n{traceback.format_exc()}")
                    break  # later blocks depend on this namespace
                print(f"  executed  {label}")
    return errors


def main(argv: Optional[Sequence[str]] = None, root: Optional[Path] = None) -> int:
    """CLI entry; ``root`` (repo root) defaults to ``--root`` or the cwd."""
    parser = argparse.ArgumentParser(
        prog="repro.analysis docs",
        description="doc link integrity + executable examples",
    )
    parser.add_argument(
        "--links-only", action="store_true", help="skip executing doc examples"
    )
    parser.add_argument(
        "--root", type=Path, default=None,
        help="repository root holding README.md and docs/ (default: cwd)",
    )
    args = parser.parse_args(argv)
    root = args.root if args.root is not None else (root or Path.cwd())
    # Doc examples import repro; make a source checkout work uninstalled.
    src = root / "src"
    if src.is_dir() and str(src) not in sys.path:
        sys.path.insert(0, str(src))

    link_errors = check_links(root)
    n_files = len(list(iter_doc_files(root)))
    if link_errors:
        print(f"broken links ({len(link_errors)}):")
        for err in link_errors:
            print(f"  {err}")
        return 1
    print(f"links ok across {n_files} markdown files")

    if not args.links_only:
        for rel_path in EXECUTABLE_PAGES:
            print(f"running examples in {rel_path}")
            errors = run_examples(root, rel_path)
            if errors:
                for err in errors:
                    print(err)
                return 1
    print("docs ok")
    return 0
