"""Project loading: parse every module once, resolve the import graph.

The analysis engine works on a :class:`Project`: every ``*.py`` file under
the scanned paths parsed into a :class:`ModuleInfo` (dotted name, AST,
source lines), plus the resolved intra-project import graph as a list of
:class:`ImportEdge`.  Rules never re-read or re-parse files.

Module naming does not assume the repo layout: a file's dotted name is
computed by ascending from its directory while ``__init__.py`` files are
present, so ``src/repro/core/engine.py`` becomes ``repro.core.engine`` and
a synthetic test tree ``fixtures/layering/utils/helpers.py`` becomes
``utils.helpers``.  Only imports that resolve to modules *inside* the
project produce edges; stdlib and third-party imports are ignored.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["ModuleInfo", "ImportEdge", "Project", "load_project", "module_name_for"]


@dataclass(frozen=True)
class ModuleInfo:
    """One parsed source file."""

    path: Path          #: absolute path on disk
    file: str           #: path as reported in findings (cwd-relative, posix)
    name: str           #: dotted module name (``repro.core.engine``)
    is_package: bool    #: True for ``__init__.py`` files
    tree: ast.Module    #: parsed AST
    lines: Tuple[str, ...] = ()  #: source split into lines (1-based via idx-1)

    def snippet(self, line: int) -> str:
        """Stripped source text at 1-based ``line`` (empty if out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""


@dataclass(frozen=True)
class ImportEdge:
    """``src`` imports ``dst`` at ``line`` (both dotted project modules)."""

    src: str
    dst: str
    line: int


@dataclass
class Project:
    """Everything the rules see: parsed modules plus the import graph."""

    modules: Dict[str, ModuleInfo] = field(default_factory=dict)
    imports: List[ImportEdge] = field(default_factory=list)
    #: files that failed to parse: (file, lineno, message)
    parse_errors: List[Tuple[str, int, str]] = field(default_factory=list)

    def by_file(self, file: str) -> Optional[ModuleInfo]:
        """Module whose reported path equals ``file`` (None if absent)."""
        for module in self.modules.values():
            if module.file == file:
                return module
        return None

    def graph(self) -> Dict[str, List[Tuple[str, int]]]:
        """Adjacency view of the import edges: src -> [(dst, line), ...]."""
        adj: Dict[str, List[Tuple[str, int]]] = {name: [] for name in self.modules}
        for edge in self.imports:
            adj.setdefault(edge.src, []).append((edge.dst, edge.line))
        return adj


def module_name_for(path: Path) -> Tuple[str, bool]:
    """Dotted name of the module at ``path`` and whether it is a package.

    Ascends from the file's directory while ``__init__.py`` files exist, so
    the name is anchored at the topmost enclosing package regardless of
    where the tree lives on disk.
    """
    path = path.resolve()
    is_package = path.name == "__init__.py"
    top = path.parent
    while (top.parent / "__init__.py").exists():
        top = top.parent
    anchor = top.parent
    rel = path.relative_to(anchor).with_suffix("")
    parts = list(rel.parts)
    if is_package:
        parts = parts[:-1]
    return ".".join(parts), is_package


def _iter_source_files(paths: Sequence[Path]) -> Iterable[Path]:
    seen = set()
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            candidates = [path]
        elif path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = []
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def _reported_path(path: Path) -> str:
    """Path as findings report it: cwd-relative when possible, posix style."""
    resolved = path.resolve()
    try:
        rel = resolved.relative_to(Path.cwd())
        return rel.as_posix()
    except ValueError:
        return resolved.as_posix()


def _resolve_candidates(target_parts: List[str], names: List[str],
                        modules: Dict[str, ModuleInfo]) -> List[str]:
    """Project modules an import of ``target_parts`` (+ names) refers to.

    ``from a.b import c`` may bind the submodule ``a.b.c`` or an attribute
    of ``a.b``; both are tried, most specific first.  Unresolvable imports
    (stdlib, third-party) yield nothing.
    """
    base = ".".join(p for p in target_parts if p)
    resolved = []
    for name in names or [""]:
        if name:
            specific = f"{base}.{name}" if base else name
            if specific in modules:
                resolved.append(specific)
                continue
        if base in modules:
            resolved.append(base)
    return resolved


def _iter_load_time_nodes(tree: ast.Module) -> Iterable[ast.AST]:
    """AST nodes executed at module load: everything except function bodies.

    Function-level (lazy) imports are the sanctioned way to break an import
    cycle, so they must not appear in the graph; ``if TYPE_CHECKING:``
    blocks never execute and are skipped for the same reason.  Class bodies,
    top-level conditionals, and try/except fallbacks all run at import time
    and are descended into.
    """
    stack: List[ast.AST] = list(tree.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.If):
            test = ast.dump(node.test)
            if "TYPE_CHECKING" in test:
                stack.extend(node.orelse)
                continue
        yield node
        for child in ast.iter_child_nodes(node):
            stack.append(child)


def _edges_for(module: ModuleInfo, modules: Dict[str, ModuleInfo]) -> List[ImportEdge]:
    edges = []
    parts = module.name.split(".")
    # The package an unqualified relative import is anchored at.
    parent = parts if module.is_package else parts[:-1]
    for node in _iter_load_time_nodes(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                dotted = alias.name.split(".")
                # `import a.b.c` binds a; the dependency is on the deepest module.
                while dotted:
                    name = ".".join(dotted)
                    if name in modules:
                        edges.append(ImportEdge(module.name, name, node.lineno))
                        break
                    dotted = dotted[:-1]
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = parent[: len(parent) - (node.level - 1)]
                if node.level - 1 > len(parent):
                    continue  # beyond the project root; not resolvable
            else:
                base = []
            if node.module:
                base = base + node.module.split(".")
            names = [alias.name for alias in node.names if alias.name != "*"]
            for dst in _resolve_candidates(base, names, modules):
                edges.append(ImportEdge(module.name, dst, node.lineno))
    # one edge per (src, dst), earliest line wins
    unique: Dict[Tuple[str, str], ImportEdge] = {}
    for edge in edges:
        key = (edge.src, edge.dst)
        if key not in unique or edge.line < unique[key].line:
            unique[key] = edge
    return [unique[k] for k in sorted(unique)]


def load_project(paths: Sequence) -> Project:
    """Parse every source file under ``paths`` into a :class:`Project`."""
    project = Project()
    for path in _iter_source_files([Path(p) for p in paths]):
        file = _reported_path(path)
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            project.parse_errors.append((file, exc.lineno or 1, exc.msg or "syntax error"))
            continue
        name, is_package = module_name_for(path)
        project.modules[name] = ModuleInfo(
            path=path.resolve(),
            file=file,
            name=name,
            is_package=is_package,
            tree=tree,
            lines=tuple(source.splitlines()),
        )
    for module in list(project.modules.values()):
        project.imports.extend(_edges_for(module, project.modules))
    return project
