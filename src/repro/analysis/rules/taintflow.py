"""Determinism taint: nondeterministic values must not reach decode paths.

The lexical ``determinism`` rule catches *local* sins — a call on numpy's
global RNG state, a wall-clock seed at the call site.  What it cannot see
is an unseeded generator or a wall-clock read created in one function and
*flowing* into a decode/verify/sampling component through a helper, a
constructor default, or an attribute — the exact shape of the day-one bug
this pack was built around (``Sampler.__init__`` silently defaulting to
``np.random.default_rng()``).

Built on :mod:`repro.analysis.dataflow`, sources are:

* ``np.random.default_rng()`` / ``SeedSequence()`` **with no arguments** —
  an OS-entropy generator, different every process;
* wall-clock reads (``time.time``/``perf_counter``/``datetime.now`` and
  friends) outside the observability layer, which legitimately timestamps;
* environment reads (``os.environ[...]``, ``os.getenv``) — config that
  changes between machines without appearing in any experiment manifest.

The taint engine propagates these through locals, attributes, returns and
call arguments; this rule then flags only the flows that matter: a tainted
value landing in an rng/seed-shaped slot (``self.rng = ...``, a ``rng=``
or ``seed=`` argument) of the decode stack (``repro.decoding.*`` /
``repro.core.*``).  Derived data (e.g. a ``WallTimer`` elapsed reading
used in metrics) never fires — the rule tracks the nondeterministic value
itself, not arithmetic downstream of it.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Sequence, Set, Tuple

from ..astutil import dotted_name, dotted_tail
from ..callgraph import CallGraph, FunctionInfo, call_graph_for
from ..dataflow import TaintEvent, TaintSpec, run_taint
from ..framework import Rule, register
from ..project import Project
from .determinism import WALL_CLOCK_TAILS

__all__ = ["DeterminismFlowRule", "DeterminismTaintSpec"]

#: Module prefixes whose rng/seed slots are sinks (the decode stack).
DEFAULT_SINK_PREFIXES: Tuple[str, ...] = ("repro.decoding.", "repro.core.")

#: Modules allowed to read the wall clock (observability owns timing).
DEFAULT_CLOCK_EXEMPT: Tuple[str, ...] = ("repro.obs.", "repro.utils.timing")

#: Attribute / parameter names that hold generators or seeds.
SINK_SLOTS = {"rng", "_rng", "seed", "_seed", "generator", "_generator"}

LABEL_RNG = "unseeded-rng"
LABEL_CLOCK = "wall-clock"
LABEL_ENV = "env-read"


class DeterminismTaintSpec(TaintSpec):
    """Sources of nondeterminism for the dataflow engine."""

    def __init__(self, clock_exempt: Sequence[str] = DEFAULT_CLOCK_EXEMPT) -> None:
        self.clock_exempt = tuple(clock_exempt)

    def source_label(self, node: ast.AST, func: FunctionInfo,
                     graph: CallGraph) -> Optional[str]:
        """Label unseeded-rng, wall-clock, and env-read expressions."""
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            tail = name.rsplit(".", 1)[-1] if name else ""
            if tail in ("default_rng", "SeedSequence") and not node.args \
                    and not node.keywords:
                return LABEL_RNG
            clock = dotted_tail(node.func, 2)
            if clock in WALL_CLOCK_TAILS and not self._clock_ok(func.module):
                return LABEL_CLOCK
            if name in ("os.getenv", "os.environ.get"):
                return LABEL_ENV
        if isinstance(node, ast.Subscript):
            base = dotted_name(node.value)
            if base == "os.environ":
                return LABEL_ENV
        return None

    def _clock_ok(self, module: str) -> bool:
        return any(module == p or module.startswith(p) or module == p.rstrip(".")
                   for p in self.clock_exempt)


@register
class DeterminismFlowRule(Rule):
    """Interprocedural: nondeterministic values reaching decode rng/seed slots."""

    rule_id = "determinism-flow"
    description = (
        "no unseeded RNG, wall-clock read, or environment value may flow "
        "(interprocedurally) into an rng/seed slot of the decode stack"
    )
    fix_hint = (
        "thread an explicit seed from config and build the generator with "
        "repro.utils.rng.derive(seed, tag) at the edge"
    )

    def __init__(self, sink_prefixes: Sequence[str] = DEFAULT_SINK_PREFIXES,
                 clock_exempt: Sequence[str] = DEFAULT_CLOCK_EXEMPT) -> None:
        self.sink_prefixes = tuple(sink_prefixes)
        self.spec = DeterminismTaintSpec(clock_exempt)

    def check_project(self, project: Project) -> Iterator:
        """Report taint events that land in a seed/rng slot of a sink module."""
        graph = call_graph_for(project)
        analysis = run_taint(graph, self.spec)
        seen: Set[Tuple[str, int, str]] = set()
        for event in analysis.events:
            func = graph.functions.get(event.func)
            if func is None or not self._in_sink_module(func.module):
                continue
            slot = self._sink_slot(event)
            if slot is None:
                continue
            module = project.modules.get(func.module)
            if module is None:
                continue
            key = (func.module, event.line, event.taint.label)
            if key in seen:
                continue
            seen.add(key)
            yield self.finding(
                module, event.line,
                f"{event.taint.label} value reaches {slot} in "
                f"{_short(event.func)} (source: {event.taint.origin}); "
                f"decode output now varies between runs",
            )

    # ------------------------------------------------------------------
    def _in_sink_module(self, module: str) -> bool:
        return any(module.startswith(p) or module == p.rstrip(".")
                   for p in self.sink_prefixes)

    def _sink_slot(self, event: TaintEvent) -> Optional[str]:
        """Human-readable sink description, or None when not a sink."""
        if event.kind == "assign":
            name = event.target.rsplit(".", 1)[-1]
            if name in SINK_SLOTS:
                return f"`{event.target}`"
        elif event.kind == "call-arg":
            param = event.param.lstrip("#")
            if event.param in SINK_SLOTS or param in SINK_SLOTS:
                callee = _short(event.callee) if event.callee else "a callee"
                return f"parameter `{event.param}` of {callee}"
        return None


def _short(qname: str) -> str:
    parts = qname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 1 else qname
