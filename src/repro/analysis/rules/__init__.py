"""Built-in rules; importing this package registers all of them.

Rule catalogue (see ``docs/static_analysis.md`` for the full writeup).
Lexical packs (single-AST, PR 5):

================== ==========================================================
``layering``       import direction follows the architecture's layer contract;
                   module import graph is acyclic
``determinism``    no global np.random state, stdlib random, or wall-clock
                   seeds — randomness flows through repro.utils.rng
``hotpath-alloc``  no np.concatenate/np.stack/.copy() in zero-copy modules
``view-mutation``  no in-place writes through arena view API results
``except-discipline`` no bare except; broad handlers log structurally or
                   re-raise; CheckpointError is never swallowed
================== ==========================================================

Whole-program packs (call graph + dataflow, PR 10):

==================== ========================================================
``lock-discipline``  lockset analysis: guarded state is written with
                     self._lock held on *every* call path from a public entry
``lock-order``       nested acquisitions follow one global order; no path
                     re-acquires a held (non-reentrant) lock
``determinism-flow`` unseeded RNGs / wall-clock / env values must not flow
                     into decode rng/seed slots (interprocedural taint)
``view-escape``      arena views are not read/returned/stored/captured past
                     a mutation of the producing cache
``hotpath-reach``    no tensor allocation anywhere transitively reachable
                     from the serving/decode entry points
==================== ========================================================
"""

from .determinism import DeterminismRule
from .escape import ViewEscapeRule
from .exceptions import ExceptionDisciplineRule
from .hotpath import HotPathAllocationRule
from .hotreach import HotPathReachRule
from .layering import LayeringRule
from .lockorder import LockOrderRule
from .locks import LockDisciplineRule
from .taintflow import DeterminismFlowRule
from .views import ViewMutationRule

__all__ = [
    "DeterminismFlowRule",
    "DeterminismRule",
    "ExceptionDisciplineRule",
    "HotPathAllocationRule",
    "HotPathReachRule",
    "LayeringRule",
    "LockDisciplineRule",
    "LockOrderRule",
    "ViewEscapeRule",
    "ViewMutationRule",
]
