"""Built-in rules; importing this package registers all of them.

Rule catalogue (see ``docs/static_analysis.md`` for the full writeup):

================== ==========================================================
``layering``       import direction follows the architecture's layer contract;
                   module import graph is acyclic
``determinism``    no global np.random state, stdlib random, or wall-clock
                   seeds — randomness flows through repro.utils.rng
``hotpath-alloc``  no np.concatenate/np.stack/.copy() in zero-copy modules
``view-mutation``  no in-place writes through arena view API results
``except-discipline`` no bare except; broad handlers log structurally or
                   re-raise; CheckpointError is never swallowed
``lock-discipline`` classes owning self._lock write attributes only under it
================== ==========================================================
"""

from .determinism import DeterminismRule
from .exceptions import ExceptionDisciplineRule
from .hotpath import HotPathAllocationRule
from .layering import LayeringRule
from .locks import LockDisciplineRule
from .views import ViewMutationRule

__all__ = [
    "DeterminismRule",
    "ExceptionDisciplineRule",
    "HotPathAllocationRule",
    "LayeringRule",
    "LockDisciplineRule",
    "ViewMutationRule",
]
