"""View mutation: never write through an arena's zero-copy views.

``Arena.view()``, ``KVCache.layer()``/``last_layer()``/``positions`` and
``HybridKVCache.gather()`` return arrays that alias arena storage and are
documented "valid until the next mutation".  Writing *into* one
(``view[i] = x``, ``view[...] += y``) corrupts cache state for every other
reader — including COW forks that still share the buffer — and no shape
check can catch it.

This rule does a conservative per-scope taint pass: names bound from a
view-returning API are tainted; a subscript store or augmented assignment
through a tainted name (or directly through a view-API call) is flagged.
Rebinding a name to anything else clears the taint, and ``.copy()`` on a
view produces an untainted array (allocation rules are hotpath-alloc's
business, not this rule's).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from ..framework import Rule, register
from ..project import ModuleInfo, Project
from ..astutil import walk_functions

__all__ = ["ViewMutationRule"]

#: Methods whose return values alias arena storage.
VIEW_METHODS = {"view", "layer", "last_layer", "gather"}
#: Attributes (properties) whose values alias arena storage.
VIEW_ATTRS = {"positions"}


def _is_view_expr(node: ast.AST) -> bool:
    """Expression that evaluates to a zero-copy view (or tuple of them)."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        return node.func.attr in VIEW_METHODS
    if isinstance(node, ast.Attribute):
        return node.attr in VIEW_ATTRS
    if isinstance(node, ast.Subscript):
        # A slice of a view is still a view: cache.layer(0)[0] aliases too.
        return _is_view_expr(node.value)
    return False


def _subscript_base(node: ast.AST) -> ast.AST:
    """Innermost value of nested subscripts: ``x`` for ``x[0][1:]``."""
    while isinstance(node, ast.Subscript):
        node = node.value
    return node


def _target_names(target: ast.AST) -> List[str]:
    """Plain names bound by an assignment target (tuples unpacked)."""
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names = []
        for elt in target.elts:
            names.extend(_target_names(elt))
        return names
    return []


@register
class ViewMutationRule(Rule):
    """Flag in-place writes through values returned by arena view APIs."""

    rule_id = "view-mutation"
    description = (
        "values returned by arena view APIs (view/layer/last_layer/gather/"
        "positions) alias cache storage and must never be written in place"
    )
    fix_hint = (
        "mutate through the cache API (append/truncate) or take an explicit "
        ".copy() before writing; views are documented read-only aliases"
    )

    def check_module(self, module: ModuleInfo, project: Project) -> Iterator:
        for _scope, body in walk_functions(module.tree):
            yield from self._check_scope(module, body)

    # ------------------------------------------------------------------
    def _check_scope(self, module: ModuleInfo, body: List[ast.stmt]) -> Iterator:
        tainted: Set[str] = set()
        for stmt in self._flat_statements(body):
            if isinstance(stmt, ast.Assign):
                # Writes first (the RHS is evaluated before the store, but
                # taint only changes via the targets below).
                for target in stmt.targets:
                    yield from self._check_store(module, target, tainted)
                names = [n for t in stmt.targets for n in _target_names(t)]
                if _is_view_expr(stmt.value):
                    tainted.update(names)
                else:
                    tainted.difference_update(names)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                names = _target_names(stmt.target)
                if _is_view_expr(stmt.value):
                    tainted.update(names)
                else:
                    tainted.difference_update(names)
            elif isinstance(stmt, ast.AugAssign):
                target = stmt.target
                if isinstance(target, ast.Name) and target.id in tainted:
                    yield self.finding(
                        module, stmt.lineno,
                        f"augmented assignment mutates zero-copy view "
                        f"{target.id!r} in place",
                    )
                else:
                    yield from self._check_store(module, target, tainted)

    def _check_store(self, module: ModuleInfo, target: ast.AST,
                     tainted: Set[str]) -> Iterator:
        """Flag subscript stores whose base is a tainted name or view call."""
        if not isinstance(target, ast.Subscript):
            if isinstance(target, (ast.Tuple, ast.List)):
                for elt in target.elts:
                    yield from self._check_store(module, elt, tainted)
            return
        base = _subscript_base(target)
        if isinstance(base, ast.Name) and base.id in tainted:
            yield self.finding(
                module, target.lineno,
                f"in-place write into zero-copy view {base.id!r}",
            )
        elif _is_view_expr(base):
            yield self.finding(
                module, target.lineno,
                "in-place write directly into an arena view API result",
            )

    @staticmethod
    def _flat_statements(body: List[ast.stmt]) -> Iterator[ast.stmt]:
        """Statements of a scope in source order, descending into control
        flow but not into nested function/class definitions (those get
        their own scope pass)."""
        stack = list(reversed(body))
        while stack:
            stmt = stack.pop()
            yield stmt
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            for field_body in (getattr(stmt, "body", None),
                               getattr(stmt, "orelse", None),
                               getattr(stmt, "finalbody", None)):
                if field_body:
                    stack.extend(reversed(field_body))
            for handler in getattr(stmt, "handlers", ()) or ():
                stack.extend(reversed(handler.body))
            for case in getattr(stmt, "cases", ()) or ():
                stack.extend(reversed(case.body))
