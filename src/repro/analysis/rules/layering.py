"""Layer contract: the architecture's import direction, enforced.

``docs/architecture.md`` declares the layering ("``nn`` knows nothing
above it; ``core`` depends on ``models``/``nn`` but not on ``serving``;
``obs`` is leaf-free").  This rule makes that paragraph executable: every
top-level subpackage of ``repro`` is assigned a layer, an import may only
point *sideways or down*, and the module-level import graph must be
acyclic (same-layer imports are legal exactly because cycles are rejected
at module granularity).

The default contract, bottom to top:

* layer 0 — **foundation**: ``errors``, ``version``, ``obs``, ``nn``,
  ``tokenizer``, ``utils``, ``analysis``.  ``obs`` sits at the bottom on
  purpose: everything emits metrics/spans into it, it imports none of the
  emitters.
* layer 1 — **substrate**: ``data``, ``models``.
* layer 2 — **method**: ``decoding``, ``core``, ``robustness``,
  ``training`` (``core`` prices blocks through ``decoding.cost_model`` and
  degrades through ``robustness.guards``; they share a layer, cycle-checked
  per module).
* layer 3 — **application**: ``serving``, ``eval``, ``zoo``, and the
  package facade.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..findings import Finding
from ..framework import Rule, register
from ..project import Project

__all__ = ["LayeringRule", "DEFAULT_LAYERS"]

#: Bottom-to-top layer contract: (layer name, top-level subpackage keys).
#: The empty key is the ``repro`` package facade itself.
DEFAULT_LAYERS: Sequence[Tuple[str, Set[str]]] = (
    ("foundation", {"errors", "version", "obs", "nn", "tokenizer", "utils", "analysis"}),
    ("substrate", {"data", "models"}),
    ("method", {"decoding", "core", "robustness", "training"}),
    ("application", {"serving", "eval", "zoo", ""}),
)

#: Top-level package whose children the layer keys name.
ROOT_PACKAGE = "repro"


@register
class LayeringRule(Rule):
    """Reject upward imports against the layer contract, and import cycles."""

    rule_id = "layering"
    description = (
        "module imports must point sideways or down the declared layer "
        "contract, and the module import graph must be acyclic"
    )
    fix_hint = (
        "invert the dependency (emit through a callback / move shared code "
        "down a layer); the contract lives in docs/architecture.md and "
        "repro/analysis/rules/layering.py"
    )

    def __init__(self, layers: Optional[Sequence[Tuple[str, Set[str]]]] = None,
                 root_package: str = ROOT_PACKAGE) -> None:
        self.layers = list(layers if layers is not None else DEFAULT_LAYERS)
        self.root_package = root_package
        self._index: Dict[str, Tuple[int, str]] = {}
        for depth, (label, keys) in enumerate(self.layers):
            for key in keys:
                self._index[key] = (depth, label)

    # ------------------------------------------------------------------
    def _layer_of(self, module: str) -> Optional[Tuple[int, str]]:
        """(depth, label) for a dotted module, None when outside the contract."""
        parts = module.split(".")
        if parts[0] == self.root_package:
            key = parts[1] if len(parts) > 1 else ""
        else:
            key = parts[0]
        return self._index.get(key)

    def check_project(self, project: Project):
        findings: List[Finding] = []
        for edge in project.imports:
            src_layer = self._layer_of(edge.src)
            dst_layer = self._layer_of(edge.dst)
            if src_layer is None or dst_layer is None:
                continue  # outside the contract (tests, fixtures, scripts)
            if dst_layer[0] > src_layer[0]:
                module = project.modules[edge.src]
                findings.append(self.finding(
                    module, edge.line,
                    f"upward import: {edge.src} (layer {src_layer[0]}, "
                    f"{src_layer[1]}) imports {edge.dst} (layer {dst_layer[0]}, "
                    f"{dst_layer[1]})",
                ))
        findings.extend(self._cycles(project))
        return findings

    # ------------------------------------------------------------------
    def _cycles(self, project: Project) -> List[Finding]:
        """One finding per strongly connected component of size > 1."""
        adj = project.graph()
        index: Dict[str, int] = {}
        low: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        sccs: List[List[str]] = []
        counter = [0]

        def strongconnect(v: str) -> None:
            # Iterative Tarjan (explicit stack) — module graphs can be deep.
            work = [(v, iter(adj.get(v, ())))]
            index[v] = low[v] = counter[0]
            counter[0] += 1
            stack.append(v)
            on_stack.add(v)
            while work:
                node, edges = work[-1]
                advanced = False
                for dst, _line in edges:
                    if dst not in index:
                        index[dst] = low[dst] = counter[0]
                        counter[0] += 1
                        stack.append(dst)
                        on_stack.add(dst)
                        work.append((dst, iter(adj.get(dst, ()))))
                        advanced = True
                        break
                    if dst in on_stack:
                        low[node] = min(low[node], index[dst])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    component = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        component.append(w)
                        if w == node:
                            break
                    if len(component) > 1:
                        sccs.append(sorted(component))

        for v in sorted(adj):
            if v not in index:
                strongconnect(v)

        findings = []
        for component in sccs:
            members = set(component)
            anchor = component[0]
            line = 1
            for dst, edge_line in adj.get(anchor, ()):
                if dst in members:
                    line = edge_line
                    break
            module = project.modules[anchor]
            findings.append(self.finding(
                module, line,
                "import cycle: " + " -> ".join(component + [component[0]]),
                fix_hint="break the cycle by extracting the shared piece into "
                         "a lower-layer module",
            ))
        return findings
