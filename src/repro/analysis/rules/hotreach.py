"""Interprocedural hot-path allocation: reachability closes the loophole.

The lexical ``hotpath-alloc`` rule guards a fixed list of zero-copy
modules, which leaves an obvious escape hatch: move the ``np.concatenate``
into a helper that lives *outside* the tagged set and call it from the
decode loop.  Nothing lexical can object — but the per-token complexity
class regressed all the same.

This pack computes, over the whole-program call graph, everything
transitively reachable from the serving/decode entry points
(``ContinuousBatchingScheduler.run_round``, ``AASDEngine.step*`` /
``_step*`` by default) and applies the same allocator checks
(``np.concatenate``/``stack``/``vstack``/``hstack`` and ``.copy()``) to
every reached function — wherever its module lives.  Each finding carries
the call path that makes the site hot (``run_round -> _drain -> helper``),
so "why is this hot?" is answered in the message, not by archaeology.

Functions already covered by the lexical rule's module list are skipped
(one finding per site, from whichever rule owns it), as is the sanctioned
reference implementation.  Resolution is conservative — an unresolved
dynamic call contributes no reachability — so a finding here always comes
with a concrete witness path.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Sequence, Set, Tuple

from ..astutil import dotted_name
from ..callgraph import call_graph_for
from ..framework import Rule, register
from ..project import Project
from .hotpath import (DEFAULT_EXEMPT, DEFAULT_HOT_MODULES,
                      DEFAULT_HOT_PREFIXES, FORBIDDEN_NP)

__all__ = ["HotPathReachRule"]

#: fnmatch-style entry patterns: the decode/serving hot loops.
DEFAULT_ENTRY_PATTERNS: Tuple[str, ...] = (
    "repro.serving.scheduler.ContinuousBatchingScheduler.run_round",
    "repro.core.engine.AASDEngine.step*",
    "repro.core.engine.AASDEngine._step*",
)


@register
class HotPathReachRule(Rule):
    """Forbid tensor allocation anywhere reachable from decode entry points."""

    rule_id = "hotpath-reach"
    description = (
        "no np.concatenate/np.stack/.copy() anywhere transitively reachable "
        "from the serving/decode entry points (call-graph reachability)"
    )
    fix_hint = (
        "write into preallocated arena storage, hoist the allocation out of "
        "the per-step path, or — if it is setup-only — add an inline "
        "`# repro: allow[hotpath-reach] -- <reason>`"
    )

    def __init__(self, entry_patterns: Sequence[str] = DEFAULT_ENTRY_PATTERNS,
                 lexical_modules: Optional[Set[str]] = None,
                 lexical_prefixes: Optional[Sequence[str]] = None,
                 exempt: Optional[Set[str]] = None) -> None:
        self.entry_patterns = tuple(entry_patterns)
        self.lexical_modules = (lexical_modules if lexical_modules is not None
                                else set(DEFAULT_HOT_MODULES))
        self.lexical_prefixes = tuple(lexical_prefixes
                                      if lexical_prefixes is not None
                                      else DEFAULT_HOT_PREFIXES)
        self.exempt = exempt if exempt is not None else set(DEFAULT_EXEMPT)

    def check_project(self, project: Project) -> Iterator:
        """Flag allocation sites inside the decode entry points' closure."""
        graph = call_graph_for(project)
        entries = sorted({q for pattern in self.entry_patterns
                          for q in graph.find(pattern)})
        if not entries:
            return
        reachable = graph.reachable(entries)
        for qname in sorted(reachable):
            func = graph.functions.get(qname)
            if func is None or self._lexically_covered(func.module):
                continue
            module = project.modules.get(func.module)
            if module is None:
                continue
            path = reachable[qname]
            for line, what in self._alloc_sites(func.node):
                via = " -> ".join(_short(p) for p in path)
                yield self.finding(
                    module, line,
                    f"hot-path allocation: {what} in {_short(qname)}, "
                    f"reachable from a decode entry via {via}",
                )

    # ------------------------------------------------------------------
    def _lexically_covered(self, module: str) -> bool:
        """Modules the lexical hotpath-alloc rule already owns (or exempts)."""
        if module in self.exempt:
            return True
        return (module in self.lexical_modules
                or module.startswith(self.lexical_prefixes))

    @staticmethod
    def _alloc_sites(func_node: ast.AST) -> Iterator[Tuple[int, str]]:
        """(line, description) for each forbidden allocator call in the body."""
        for node in ast.walk(func_node):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is not None:
                parts = name.split(".")
                if (len(parts) >= 2 and parts[-2] in ("np", "numpy")
                        and parts[-1] in FORBIDDEN_NP):
                    yield node.lineno, f"{name}()"
                    continue
            if isinstance(node.func, ast.Attribute) and node.func.attr == "copy":
                yield node.lineno, ".copy()"


def _short(qname: str) -> str:
    """Trailing ``Class.method`` (or bare name) of a qualified name."""
    parts = qname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 1 else qname
