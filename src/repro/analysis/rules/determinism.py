"""Determinism: all randomness flows through explicit, seeded Generators.

Token-identity tests (``tests/core/test_arena_equivalence.py``) and the
paper's lossless-output claim depend on every stochastic component taking
an explicit ``np.random.Generator`` derived via :mod:`repro.utils.rng`.
Three ways that discipline silently dies:

* a call on numpy's *global* RNG state (``np.random.seed``,
  ``np.random.rand``, ...) — shared mutable state across every component;
* the stdlib :mod:`random` module — a second, unseeded entropy source;
* a wall-clock-derived seed (``default_rng(int(time.time()))``) — different
  output every run, undetectable in a single test invocation.

Constructing independent generators (``np.random.default_rng``,
``SeedSequence``, bit generators) stays legal — that is exactly what
``repro.utils.rng.derive`` builds on.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..astutil import call_name, dotted_name, dotted_tail
from ..framework import Rule, register
from ..project import ModuleInfo, Project

__all__ = ["DeterminismRule"]

#: np.random attributes that construct independent generators (allowed).
ALLOWED_NP_RANDOM = {
    "default_rng", "Generator", "BitGenerator", "SeedSequence",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
}

#: Functions that consume a seed; wall-clock values must never reach them.
SEEDERS = {"default_rng", "derive", "seed_sequence", "SeedSequence", "seed", "RandomState"}

#: Dotted tails that read the wall clock.
WALL_CLOCK_TAILS = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "datetime.now", "datetime.utcnow",
}


@register
class DeterminismRule(Rule):
    """Forbid global numpy RNG calls, stdlib random, and wall-clock seeds."""

    rule_id = "determinism"
    description = (
        "randomness must flow through explicit seeded Generators "
        "(repro.utils.rng); no global np.random state, stdlib random, or "
        "wall-clock seeds"
    )
    fix_hint = (
        "derive an explicit Generator with repro.utils.rng.derive(seed, tag) "
        "and pass it down; never touch global RNG state"
    )

    def check_module(self, module: ModuleInfo, project: Project) -> Iterator:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.finding(
                            module, node.lineno,
                            "stdlib random imported; use numpy Generators from "
                            "repro.utils.rng instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module and (
                    node.module == "random" or node.module.startswith("random.")
                ):
                    yield self.finding(
                        module, node.lineno,
                        "stdlib random imported; use numpy Generators from "
                        "repro.utils.rng instead",
                    )
            elif isinstance(node, ast.Call):
                finding = self._check_call(module, node)
                if finding is not None:
                    yield finding

    # ------------------------------------------------------------------
    def _check_call(self, module: ModuleInfo, node: ast.Call):
        name = dotted_name(node.func)
        if name is not None:
            parts = name.split(".")
            if len(parts) >= 3 and parts[-3] in ("np", "numpy") and parts[-2] == "random":
                if parts[-1] not in ALLOWED_NP_RANDOM:
                    return self.finding(
                        module, node.lineno,
                        f"call on numpy's global RNG state: {name}() mutates "
                        f"shared state and breaks seeded reproducibility",
                    )
        func_tail = call_name(node)
        if func_tail in SEEDERS:
            clock = self._wall_clock_arg(node)
            if clock is not None:
                return self.finding(
                    module, node.lineno,
                    f"wall-clock-derived seed: {func_tail}(...{clock}()...) "
                    f"changes every run",
                )
        return None

    @staticmethod
    def _wall_clock_arg(node: ast.Call) -> Optional[str]:
        """Dotted tail of a wall-clock call nested in the seed arguments."""
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Call):
                    tail = dotted_tail(sub.func, 2)
                    if tail in WALL_CLOCK_TAILS:
                        return tail
        return None
