"""Lock-order hazards: acquisition-order inversions and re-entrant acquires.

The repo holds several independent ``threading.Lock`` instances — the
admission queue, every metric in the registry, the tracer, the profiler —
and code paths legitimately nest them (``AdmissionQueue._publish`` updates
the queue-depth gauge *while holding* the queue lock).  Nesting is fine as
long as every thread acquires in a consistent global order; two paths that
nest the same pair of locks in opposite orders can deadlock under exactly
the concurrency the chaos storms (PR 6) exercise, and nothing
single-threaded will ever reproduce it.

Built on the whole-program call graph, this pack:

* computes, for every function, the set of lock *owners* (lock-owning
  classes, identified by ``self._lock`` in ``__init__``) whose lock the
  function may acquire — directly via ``with self._lock:`` or transitively
  through any resolved call (fixpoint over the call graph);
* walks every ``with self._lock:`` region and, for each call inside it,
  adds an order edge ``holder -> acquired`` for every lock the callee may
  take — re-acquisition of the *same* class's lock is reported immediately
  (``threading.Lock`` is not re-entrant: that is a guaranteed one-thread
  deadlock, the classic helper-calls-public-API slip);
* reports every cycle in the resulting acquisition-order graph as a
  potential deadlock, naming one witness site per edge of the cycle.

Like every call-graph pack, resolution is conservative: an unresolvable
dynamic call contributes no edge, so findings here are high-confidence.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from ..callgraph import CallGraph, call_graph_for
from ..framework import Rule, register
from ..project import Project
from .locks import assigns_lock

__all__ = ["LockOrderRule"]


def _lock_owners(graph: CallGraph) -> Set[str]:
    """Class qnames whose ``__init__`` creates ``self._lock``."""
    owners: Set[str] = set()
    for cls in graph.classes.values():
        init = graph.resolve_method(cls.qname, "__init__")
        if init is None or graph.functions[init].cls != cls.qname:
            init_info = None
        else:
            init_info = graph.functions[init]
        if init_info is not None and assigns_lock(init_info.node):
            owners.add(cls.qname)
    return owners


def _is_self_lock(node: ast.AST) -> bool:
    return (isinstance(node, ast.Attribute) and node.attr == "_lock"
            and isinstance(node.value, ast.Name) and node.value.id == "self")


def _direct_acquirers(graph: CallGraph, owners: Set[str]) -> Set[str]:
    """Functions containing a literal ``with self._lock:`` acquisition."""
    acquirers: Set[str] = set()
    for qname, func in graph.functions.items():
        if func.cls not in owners:
            continue
        for node in ast.walk(func.node):
            if isinstance(node, (ast.With, ast.AsyncWith)) and any(
                    _is_self_lock(item.context_expr) for item in node.items):
                acquirers.add(qname)
                break
    return acquirers


def _may_acquire(graph: CallGraph, owners: Set[str],
                 direct: Set[str]) -> Dict[str, Set[str]]:
    """Fixpoint: function qname -> lock-owner classes it may acquire."""
    acq: Dict[str, Set[str]] = {
        q: ({graph.functions[q].cls} if q in direct else set())  # type: ignore[arg-type]
        for q in graph.functions
    }
    changed = True
    while changed:
        changed = False
        for qname in graph.functions:
            merged = set(acq[qname])
            for edge in graph.callees(qname):
                merged |= acq.get(edge.callee, set())
            if merged != acq[qname]:
                acq[qname] = merged
                changed = True
    return acq


@register
class LockOrderRule(Rule):
    """Detect lock-order inversions and non-reentrant re-acquisition."""

    rule_id = "lock-order"
    description = (
        "nested lock acquisitions must follow one global order, and no call "
        "path may re-acquire a held (non-reentrant) self._lock"
    )
    fix_hint = (
        "hoist the inner acquisition out of the locked region (compute "
        "under the lock, publish after), or make every path take the locks "
        "in the same order"
    )

    def check_project(self, project: Project) -> Iterator:
        """Flag self-deadlocks and acquisition-order cycles project-wide."""
        graph = call_graph_for(project)
        owners = _lock_owners(graph)
        if not owners:
            return
        direct = _direct_acquirers(graph, owners)
        acq = _may_acquire(graph, owners, direct)

        # holder class -> acquired class -> first witness (file, line, text)
        order: Dict[str, Dict[str, Tuple[str, int, str]]] = {}
        for qname, func in sorted(graph.functions.items()):
            if func.cls not in owners:
                continue
            holder: str = func.cls
            module = project.modules.get(func.module)
            if module is None:
                continue
            for call, line in self._locked_calls(func.node):
                callees = self._callees_at(graph, qname, call)
                for callee in callees:
                    for acquired in sorted(acq.get(callee, ())):
                        if acquired == holder:
                            yield self.finding(
                                module, line,
                                f"re-acquisition of {_short(holder)}._lock: "
                                f"{_short(qname)} calls {_short(callee)} with "
                                f"the lock already held; threading.Lock is "
                                f"not re-entrant, this path self-deadlocks",
                            )
                        else:
                            order.setdefault(holder, {}).setdefault(
                                acquired,
                                (func.module, line, f"{_short(qname)} -> {_short(callee)}"),
                            )
        yield from self._report_cycles(project, graph, order)

    # ------------------------------------------------------------------
    def _locked_calls(self, func_node: ast.AST) -> Iterator[Tuple[ast.Call, int]]:
        """Every Call node lexically inside a ``with self._lock:`` region."""

        def visit(stmts: List[ast.stmt], locked: bool) -> Iterator[Tuple[ast.Call, int]]:
            for stmt in stmts:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                    continue
                if locked:
                    for node in ast.walk(stmt):
                        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                             ast.Lambda)):
                            continue
                        if isinstance(node, ast.Call):
                            yield node, node.lineno
                    continue
                if isinstance(stmt, (ast.With, ast.AsyncWith)):
                    inner = locked or any(
                        _is_self_lock(item.context_expr) for item in stmt.items)
                    yield from visit(stmt.body, inner)
                    continue
                for body in (getattr(stmt, "body", None),
                             getattr(stmt, "orelse", None),
                             getattr(stmt, "finalbody", None)):
                    if body:
                        yield from visit(body, locked)
                for handler in getattr(stmt, "handlers", ()) or ():
                    yield from visit(handler.body, locked)
                for case in getattr(stmt, "cases", ()) or ():
                    yield from visit(case.body, locked)

        yield from visit(getattr(func_node, "body", []), False)

    @staticmethod
    def _callees_at(graph: CallGraph, qname: str, call: ast.Call) -> Tuple[str, ...]:
        for site in graph.sites.get(qname, ()):
            if site.node is call:
                return site.callees
        return ()

    def _report_cycles(self, project: Project, graph: CallGraph,
                       order: Dict[str, Dict[str, Tuple[str, int, str]]]) -> Iterator:
        """DFS cycle detection over the acquisition-order graph."""
        seen_cycles: Set[Tuple[str, ...]] = set()
        for start in sorted(order):
            stack: List[Tuple[str, List[str]]] = [(start, [start])]
            while stack:
                node, path = stack.pop()
                for nxt in sorted(order.get(node, ())):
                    if nxt == start:
                        cycle = tuple(sorted(path))
                        if cycle in seen_cycles:
                            continue
                        seen_cycles.add(cycle)
                        names = " -> ".join(_short(c) for c in path + [start])
                        witness_mod, line, via = order[node][nxt]
                        module = project.modules.get(witness_mod)
                        if module is None:
                            continue
                        yield self.finding(
                            module, line,
                            f"lock-order inversion: acquisition cycle "
                            f"{names} (witness: {via}); opposite nesting "
                            f"orders can deadlock under concurrency",
                        )
                    elif nxt not in path and len(path) < 8:
                        stack.append((nxt, path + [nxt]))


def _short(qname: str) -> str:
    """Trailing ``Class.method`` (or ``Class``) of a qualified name."""
    parts = qname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 1 else qname
