"""Hot-path allocation discipline: the zero-copy rule, enforced.

The KV-arena refactor (PR 4) removed every O(T) ``np.concatenate`` from
the decode hot path; ``benchmarks/bench_kv_arena.py`` asserts the >=5x win
that depends on it.  One innocent ``np.concatenate`` or ``.copy()`` in an
inner loop silently reverts the complexity class without failing any
correctness test — exactly the kind of regression a linter catches and a
reviewer doesn't.

Tagged hot-path modules: the engine block loop, both arena-backed caches,
the arena itself, and everything under ``repro.decoding`` (the per-token
inner loops).  ``repro.core.reference`` is exempt by design: it preserves
the concatenate-based implementations as the executable spec the property
tests compare against.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Sequence, Set

from ..astutil import dotted_name
from ..framework import Rule, register
from ..project import ModuleInfo, Project

__all__ = ["HotPathAllocationRule"]

#: Modules under the zero-copy contract.
DEFAULT_HOT_MODULES: Set[str] = {
    "repro.core.engine",
    "repro.core.hybrid_cache",
    "repro.models.kv_cache",
    "repro.utils.arena",
}
#: Dotted prefixes fully under the contract.
DEFAULT_HOT_PREFIXES: Sequence[str] = ("repro.decoding.",)
#: The executable spec keeps its concatenates on purpose.
DEFAULT_EXEMPT: Set[str] = {"repro.core.reference"}

#: numpy allocators forbidden on the hot path.
FORBIDDEN_NP = {"concatenate", "stack", "vstack", "hstack", "copy"}


@register
class HotPathAllocationRule(Rule):
    """Forbid np.concatenate/np.stack/.copy() in hot-path modules."""

    rule_id = "hotpath-alloc"
    description = (
        "decode hot-path modules must not allocate via np.concatenate/"
        "np.stack/.copy(); storage goes through arena append/truncate/views"
    )
    fix_hint = (
        "write into preallocated arena storage (append/truncate/view, see "
        "docs/performance.md); repro.core.reference is the only sanctioned "
        "concatenate implementation"
    )

    def __init__(self, hot_modules: Optional[Set[str]] = None,
                 hot_prefixes: Optional[Sequence[str]] = None,
                 exempt: Optional[Set[str]] = None) -> None:
        self.hot_modules = hot_modules if hot_modules is not None else DEFAULT_HOT_MODULES
        self.hot_prefixes = tuple(hot_prefixes if hot_prefixes is not None
                                  else DEFAULT_HOT_PREFIXES)
        self.exempt = exempt if exempt is not None else DEFAULT_EXEMPT

    def applies(self, module: ModuleInfo) -> bool:
        """True when ``module`` is under the zero-copy contract."""
        if module.name in self.exempt:
            return False
        return module.name in self.hot_modules or module.name.startswith(self.hot_prefixes)

    def check_module(self, module: ModuleInfo, project: Project) -> Iterator:
        if not self.applies(module):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = dotted_name(func)
            if name is not None:
                parts = name.split(".")
                if (len(parts) >= 2 and parts[-2] in ("np", "numpy")
                        and parts[-1] in FORBIDDEN_NP):
                    yield self.finding(
                        module, node.lineno,
                        f"hot-path allocation: {name}() in zero-copy module "
                        f"{module.name}",
                    )
                    continue
            if isinstance(func, ast.Attribute) and func.attr == "copy":
                yield self.finding(
                    module, node.lineno,
                    f".copy() in zero-copy module {module.name}",
                )
