"""Lockset discipline: guarded state is only written with ``self._lock`` held.

The metrics registry, the serving admission queue, the tracer, and the
profiler are documented thread-safe; their invariant used to be enforced
*lexically* — every attribute write inside a ``with self._lock:`` block in
the same method.  That misses both directions: a helper whose writes are
lexically bare but which is only ever called under the lock is perfectly
safe (the old rule flagged it), while a helper called from even one
unlocked path is a data race no single-threaded test will catch (the old
rule could not say which).

This version computes a per-class *lockset* over the intra-class call
graph.  Any class whose ``__init__`` assigns ``self._lock`` opts in; then:

* every public method (and every private method never called from inside
  the class) is an *entry*, assumed to be invoked with the lock **not**
  held;
* lock state propagates through ``self.helper()`` calls — a call inside a
  ``with self._lock:`` block enters the helper with the lock held, a call
  outside enters it bare, and helpers inherit the caller's state
  transitively;
* a write to ``self.<attr>`` is flagged iff some path from an entry
  reaches it with the lock not held — and the finding names that path.

``__init__``/``__post_init__``/``__new__`` stay exempt as callers and as
writers: the object is not shared yet.  Classes without ``self._lock``
are untouched.  Lock *ordering* hazards (inversions, non-reentrant
re-acquisition) are the ``lock-order`` pack's job, not this one's.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from ..framework import Rule, register
from ..project import ModuleInfo, Project

__all__ = ["LockDisciplineRule", "collect_lock_facts", "unlocked_reachable",
           "MethodFacts", "LOCK_ATTR", "UNGUARDED_METHODS", "assigns_lock"]

#: Methods allowed to write without the lock (object not yet shared).
UNGUARDED_METHODS = {"__init__", "__post_init__", "__new__"}
LOCK_ATTR = "_lock"


def assigns_lock(func: ast.AST) -> bool:
    """True when ``func`` (an ``__init__``) binds ``self._lock``."""
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (isinstance(target, ast.Attribute) and target.attr == LOCK_ATTR
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    return True
    return False


def _is_self_lock(node: ast.AST) -> bool:
    return (isinstance(node, ast.Attribute) and node.attr == LOCK_ATTR
            and isinstance(node.value, ast.Name) and node.value.id == "self")


def _self_attr_target(node: ast.AST) -> str:
    """Attribute name when ``node`` is a ``self.<attr>`` store, else ''."""
    if (isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return ""


def _stmt_expr_calls(stmt: ast.stmt) -> Iterator[ast.Call]:
    """Call nodes in the expressions directly owned by ``stmt``.

    Child statement blocks (``body``/``orelse``/...) are *not* entered —
    the lexical walk handles those with their own lock state — and neither
    are nested function definitions (their bodies run later, lock-free).
    """
    for fname, value in ast.iter_fields(stmt):
        if fname in ("body", "orelse", "finalbody", "handlers", "cases", "items"):
            continue
        values = value if isinstance(value, list) else [value]
        for v in values:
            if isinstance(v, ast.expr):
                yield from _expr_calls(v)


def _expr_calls(expr: ast.expr) -> Iterator[ast.Call]:
    """Call nodes in ``expr``, skipping lambda bodies (they run later)."""
    stack: List[ast.AST] = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Lambda):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


@dataclass
class MethodFacts:
    """Lock-relevant facts about one method, from a single lexical walk."""

    name: str
    node: ast.AST
    #: ``(attr, lineno, locked)`` for every ``self.<attr>`` store
    writes: List[Tuple[str, int, bool]] = field(default_factory=list)
    #: ``(method, lineno, locked)`` for every ``self.<method>()`` call
    self_calls: List[Tuple[str, int, bool]] = field(default_factory=list)
    #: lines of ``with self._lock:`` acquisitions (lexical)
    acquire_lines: List[int] = field(default_factory=list)
    #: ``with self._lock:`` nested inside an already-locked region
    nested_acquires: List[int] = field(default_factory=list)


def collect_lock_facts(cls: ast.ClassDef) -> Dict[str, MethodFacts]:
    """Per-method lock facts for a lock-owning class (all methods)."""
    facts: Dict[str, MethodFacts] = {}
    for method in cls.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        mf = MethodFacts(name=method.name, node=method)
        _walk(method.body, False, mf)
        facts[method.name] = mf
    return facts


def _walk(stmts: List[ast.stmt], locked: bool, mf: MethodFacts) -> None:
    for stmt in stmts:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue  # nested scopes run later, outside this lock region
        for call in _stmt_expr_calls(stmt):
            if (isinstance(call.func, ast.Attribute)
                    and isinstance(call.func.value, ast.Name)
                    and call.func.value.id == "self"):
                mf.self_calls.append((call.func.attr, call.lineno, locked))
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                for call in _expr_calls(item.context_expr):
                    if (isinstance(call.func, ast.Attribute)
                            and isinstance(call.func.value, ast.Name)
                            and call.func.value.id == "self"):
                        mf.self_calls.append((call.func.attr, call.lineno, locked))
            acquires = any(_is_self_lock(item.context_expr) for item in stmt.items)
            if acquires:
                mf.acquire_lines.append(stmt.lineno)
                if locked:
                    mf.nested_acquires.append(stmt.lineno)
            _walk(stmt.body, locked or acquires, mf)
            continue
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            for target in targets:
                attr = _self_attr_target(target)
                if attr and attr != LOCK_ATTR:
                    mf.writes.append((attr, stmt.lineno, locked))
        for body in (getattr(stmt, "body", None), getattr(stmt, "orelse", None),
                     getattr(stmt, "finalbody", None)):
            if body:
                _walk(body, locked, mf)
        for handler in getattr(stmt, "handlers", ()) or ():
            _walk(handler.body, locked, mf)
        for case in getattr(stmt, "cases", ()) or ():
            _walk(case.body, locked, mf)


def _is_entry(name: str) -> bool:
    """Public surface: plain public names and dunders (``__len__``, ...)."""
    if name in UNGUARDED_METHODS:
        return False
    if name.startswith("__") and name.endswith("__"):
        return True
    return not name.startswith("_")


def unlocked_reachable(facts: Dict[str, MethodFacts]) -> Dict[str, Tuple[str, ...]]:
    """Methods reachable with the lock *not* held, with a witness path.

    Entries are the public methods plus private methods never called from
    inside the class (they may be invoked externally); ``__init__``-family
    methods never seed or propagate reachability (the object is unshared
    while they run).
    """
    called = {callee for mf in facts.values()
              if mf.name not in UNGUARDED_METHODS
              for callee, _, _ in mf.self_calls}
    unlocked: Dict[str, Tuple[str, ...]] = {}
    frontier: List[str] = []
    for name, mf in sorted(facts.items()):
        if mf.name in UNGUARDED_METHODS:
            continue
        if _is_entry(name) or name not in called:
            unlocked[name] = (name,)
            frontier.append(name)
    while frontier:
        nxt: List[str] = []
        for name in frontier:
            for callee, _line, locked in facts[name].self_calls:
                if locked or callee in UNGUARDED_METHODS:
                    continue
                if callee in facts and callee not in unlocked:
                    unlocked[callee] = unlocked[name] + (callee,)
                    nxt.append(callee)
        frontier = nxt
    return unlocked


@register
class LockDisciplineRule(Rule):
    """Writes to guarded state must hold the lock on every call path."""

    rule_id = "lock-discipline"
    description = (
        "in classes that create self._lock, every attribute write must hold "
        "the lock on every call path from a public entry (lockset analysis "
        "over the intra-class call graph)"
    )
    fix_hint = "wrap the write in `with self._lock:`, or make every call " \
               "path to this helper enter it with the lock already held"

    def check_module(self, module: ModuleInfo, project: Project) -> Iterator:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(self, module: ModuleInfo, cls: ast.ClassDef) -> Iterator:
        init = next((m for m in cls.body
                     if isinstance(m, (ast.FunctionDef, ast.AsyncFunctionDef))
                     and m.name == "__init__"), None)
        if init is None or not assigns_lock(init):
            return
        facts = collect_lock_facts(cls)
        unlocked = unlocked_reachable(facts)
        for name, path in sorted(unlocked.items()):
            mf = facts[name]
            for attr, line, locked in mf.writes:
                if locked:
                    continue
                via = ""
                if len(path) > 1:
                    via = (" (reachable without the lock via "
                           + " -> ".join(f"{cls.name}.{p}" for p in path) + ")")
                yield self.finding(
                    module, line,
                    f"unguarded write to self.{attr} in {cls.name}.{name}: "
                    f"class owns self._lock, so shared state must be "
                    f"written under it{via}",
                )
