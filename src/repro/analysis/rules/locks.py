"""Lock discipline: guarded classes only mutate state under ``self._lock``.

The metrics registry and the serving admission queue are documented
thread-safe; their invariant is lexical — every attribute write happens
inside a ``with self._lock:`` block.  A new method that writes
``self._value`` without the lock is a data race that no single-threaded
test will ever catch.

The rule is self-scoping: any class whose ``__init__`` assigns
``self._lock`` opts into checking, and from then on *every* method (except
``__init__``/``__post_init__``, which run before the object is shared)
must wrap attribute writes in ``with self._lock:``.  Classes without a
``_lock`` attribute are untouched, so single-threaded code pays nothing.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from ..framework import Rule, register
from ..project import ModuleInfo, Project

__all__ = ["LockDisciplineRule"]

#: Methods allowed to write without the lock (object not yet shared).
UNGUARDED_METHODS = {"__init__", "__post_init__", "__new__"}
LOCK_ATTR = "_lock"


def _assigns_lock(func: ast.FunctionDef) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (isinstance(target, ast.Attribute) and target.attr == LOCK_ATTR
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    return True
    return False


def _is_self_lock(node: ast.AST) -> bool:
    return (isinstance(node, ast.Attribute) and node.attr == LOCK_ATTR
            and isinstance(node.value, ast.Name) and node.value.id == "self")


def _self_attr_target(node: ast.AST) -> str:
    """Attribute name when ``node`` is a ``self.<attr>`` store, else ''."""
    if (isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return ""


@register
class LockDisciplineRule(Rule):
    """In classes owning ``self._lock``, attribute writes need the lock."""

    rule_id = "lock-discipline"
    description = (
        "classes that create self._lock must perform every attribute write "
        "inside a `with self._lock:` block (outside __init__)"
    )
    fix_hint = "wrap the write in `with self._lock:` (or compute outside, "\
               "assign inside the guarded block)"

    def check_module(self, module: ModuleInfo, project: Project) -> Iterator:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(self, module: ModuleInfo, cls: ast.ClassDef) -> Iterator:
        methods = [n for n in cls.body
                   if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))]
        init = next((m for m in methods if m.name == "__init__"), None)
        if init is None or not _assigns_lock(init):
            return
        for method in methods:
            if method.name in UNGUARDED_METHODS:
                continue
            yield from self._check_method(module, cls, method)

    def _check_method(self, module: ModuleInfo, cls: ast.ClassDef,
                      method: ast.FunctionDef) -> Iterator:
        """Walk the method body tracking `with self._lock:` nesting."""

        def visit(stmts: List[ast.stmt], locked: bool) -> Iterator:
            for stmt in stmts:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                    continue  # nested scopes manage their own state
                if isinstance(stmt, (ast.With, ast.AsyncWith)):
                    inner = locked or any(
                        _is_self_lock(item.context_expr) for item in stmt.items
                    )
                    yield from visit(stmt.body, inner)
                    continue
                if not locked:
                    targets = []
                    if isinstance(stmt, ast.Assign):
                        targets = stmt.targets
                    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
                        targets = [stmt.target]
                    for target in targets:
                        attr = _self_attr_target(target)
                        if attr and attr != LOCK_ATTR:
                            yield self.finding(
                                module, stmt.lineno,
                                f"unguarded write to self.{attr} in "
                                f"{cls.name}.{method.name}: class owns "
                                f"self._lock, so shared state must be "
                                f"written under it",
                            )
                for body in (getattr(stmt, "body", None),
                             getattr(stmt, "orelse", None),
                             getattr(stmt, "finalbody", None)):
                    if body:
                        yield from visit(body, locked)
                for handler in getattr(stmt, "handlers", ()) or ():
                    yield from visit(handler.body, locked)
                for case in getattr(stmt, "cases", ()) or ():
                    yield from visit(case.body, locked)

        yield from visit(method.body, locked=False)
