"""View escape: zero-copy arena views must not outlive their valid window.

The arena contract (PR 4) is that every view handed out by
``Arena.view()`` / ``KVCache.layer()`` / ``BlockTable.layer_blocks()`` /
``gather_rows()`` / ``positions`` is **valid until the next mutation** of
the cache that produced it.  The lexical ``view-mutation`` rule stops
writes *through* a view; this pack catches the other half of the contract
— a view that *escapes* its valid window and gets read after the storage
underneath it has been rewritten:

* **stale read / stale return** — a local bound to a view is used (or
  returned) after a mutating call (``append``/``rollback``/
  ``clear_draft``/...) on *the same cache object*.  The classic shape:
  ``rows = table.gather_rows(...); table.append(...); score(rows)`` — the
  second line may have re-packed the block the view aliases;
* **store on self** — ``self.cached = table.layer_blocks(...)`` makes the
  view outlive the call frame entirely; *any* later mutation invalidates
  it with no visible signal;
* **closure capture** — a nested ``def`` or ``lambda`` that closes over a
  view local runs at some later time, i.e. potentially after a mutation.

Staleness is tracked per *receiver expression*: only a mutator call on the
same dotted receiver (``table.append`` after ``table.gather_rows``)
invalidates, so ``results.append(x)`` on an ordinary list never trips the
rule.  Rebinding a name — including to an explicit ``.copy()`` — clears
its view status.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set

from ..astutil import dotted_name, walk_functions
from ..framework import Rule, register
from ..project import ModuleInfo, Project
from .views import VIEW_ATTRS, VIEW_METHODS, _target_names

__all__ = ["ViewEscapeRule", "MUTATORS"]

#: Cache methods that invalidate previously returned views.
MUTATORS = {"append", "append_context", "append_draft", "clear_draft",
            "truncate", "extend_positions", "rollback"}

#: View-producing methods beyond the lexical rule's set (BlockTable API).
EXTRA_VIEW_METHODS = {"layer_blocks", "position_rows", "gather_rows"}


@dataclass
class _ViewInfo:
    """A local currently bound to a zero-copy view."""

    receiver: str        #: dotted receiver that produced it ("" if unknown)
    bind_line: int
    stale_line: int = 0  #: line of the invalidating mutator call (0 = fresh)
    mutator: str = ""    #: name of the invalidating mutator


def _view_receiver(node: ast.AST) -> Optional[str]:
    """Dotted receiver when ``node`` evaluates to a view, else None.

    A receiver of plain ``self`` returns None: inside the producing class
    the view contract is the class's own to manage (the reference cache
    reslicing ``self.positions`` is bookkeeping, not an escape).
    """
    receiver: Optional[str] = None
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in VIEW_METHODS | EXTRA_VIEW_METHODS:
            receiver = dotted_name(node.func.value) or ""
    elif isinstance(node, ast.Attribute) and node.attr in VIEW_ATTRS:
        receiver = dotted_name(node.value) or ""
    elif isinstance(node, ast.Subscript):
        receiver = _view_receiver(node.value)  # a slice of a view is a view
    return None if receiver == "self" else receiver


def _owned_exprs(stmt: ast.stmt) -> Iterator[ast.expr]:
    """Expressions directly owned by ``stmt`` (child blocks excluded)."""
    for fname, value in ast.iter_fields(stmt):
        if fname in ("body", "orelse", "finalbody", "handlers", "cases"):
            continue
        values = value if isinstance(value, list) else [value]
        for v in values:
            if isinstance(v, ast.expr):
                yield v
            elif isinstance(v, ast.withitem):
                yield v.context_expr


def _free_names(node: ast.AST) -> Set[str]:
    """Name loads inside ``node`` (used to detect closure capture)."""
    return {n.id for n in ast.walk(node)
            if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)}


@register
class ViewEscapeRule(Rule):
    """Flag arena views read, returned, stored, or captured past a mutation."""

    rule_id = "view-escape"
    description = (
        "zero-copy arena views are valid only until the next mutation of "
        "the producing cache; they must not be read after a mutator call, "
        "stored on self, or captured by a closure"
    )
    fix_hint = (
        "consume the view before mutating the cache, or take an explicit "
        ".copy() when the value must outlive the next append/rollback"
    )

    def check_module(self, module: ModuleInfo, project: Project) -> Iterator:
        """Track view lifetimes through every function scope in the module."""
        for _scope, body in walk_functions(module.tree):
            yield from self._check_scope(module, body)

    # ------------------------------------------------------------------
    def _check_scope(self, module: ModuleInfo, body: List[ast.stmt]) -> Iterator:
        views: Dict[str, _ViewInfo] = {}
        for stmt in self._flat_statements(body):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_capture(module, stmt, stmt.name, views)
                continue
            if isinstance(stmt, ast.ClassDef):
                continue
            bound = self._bound_names(stmt)
            for expr in _owned_exprs(stmt):
                yield from self._check_expr(module, stmt, expr, views, bound)
            self._apply_mutators(stmt, views)
            yield from self._apply_bindings(module, stmt, views)

    def _check_expr(self, module: ModuleInfo, stmt: ast.stmt, expr: ast.expr,
                    views: Dict[str, _ViewInfo], bound: Set[str]) -> Iterator:
        """Stale reads and lambda captures inside one owned expression."""
        stack: List[ast.AST] = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Lambda):
                yield from self._check_capture(module, node, "<lambda>", views)
                continue
            if (isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
                    and node.id in views and node.id not in bound):
                info = views[node.id]
                if info.stale_line:
                    verb = ("returned" if isinstance(stmt, ast.Return)
                            else "read")
                    yield self.finding(
                        module, node.lineno,
                        f"stale view {verb}: {node.id!r} (view of "
                        f"{info.receiver or 'a cache'} from line "
                        f"{info.bind_line}) is used after "
                        f"{info.receiver}.{info.mutator}() on line "
                        f"{info.stale_line} invalidated it",
                    )
            stack.extend(ast.iter_child_nodes(node))

    def _check_capture(self, module: ModuleInfo, func: ast.AST, name: str,
                       views: Dict[str, _ViewInfo]) -> Iterator:
        captured = sorted(_free_names(func) & set(views))
        for view_name in captured:
            yield self.finding(
                module, func.lineno,
                f"closure {name!r} captures zero-copy view {view_name!r}; "
                f"it may run after the cache mutates, reading through a "
                f"dangling alias",
            )

    def _apply_mutators(self, stmt: ast.stmt,
                        views: Dict[str, _ViewInfo]) -> None:
        """Mark views stale when their receiver is mutated in ``stmt``."""
        receivers = {info.receiver for info in views.values() if info.receiver}
        if not receivers:
            return
        for expr in _owned_exprs(stmt):
            for node in ast.walk(expr):
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in MUTATORS):
                    recv = dotted_name(node.func.value)
                    if recv in receivers:
                        for info in views.values():
                            if info.receiver == recv and not info.stale_line:
                                info.stale_line = node.lineno
                                info.mutator = node.func.attr

    def _apply_bindings(self, module: ModuleInfo, stmt: ast.stmt,
                        views: Dict[str, _ViewInfo]) -> Iterator:
        """Track new view bindings; flag stores of views onto ``self``."""
        pairs = []
        if isinstance(stmt, ast.Assign):
            pairs = [(t, stmt.value) for t in stmt.targets]
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            pairs = [(stmt.target, stmt.value)]
        for target, value in pairs:
            receiver = _view_receiver(value)
            is_view_name = (isinstance(value, ast.Name) and value.id in views)
            if receiver is None and is_view_name:
                receiver = views[value.id].receiver
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self" and receiver is not None):
                yield self.finding(
                    module, stmt.lineno,
                    f"zero-copy view stored on self.{target.attr}: it "
                    f"outlives this call frame, and any later mutation of "
                    f"{receiver or 'the cache'} silently invalidates it",
                )
                continue
            for name in _target_names(target):
                if receiver is not None:
                    views[name] = _ViewInfo(receiver=receiver,
                                            bind_line=stmt.lineno)
                else:
                    views.pop(name, None)

    @staticmethod
    def _bound_names(stmt: ast.stmt) -> Set[str]:
        """Names (re)bound by this statement — their reads aren't stale."""
        if isinstance(stmt, ast.Assign):
            return {n for t in stmt.targets for n in _target_names(t)}
        if isinstance(stmt, ast.AnnAssign):
            return set(_target_names(stmt.target))
        if isinstance(stmt, ast.For):
            return set(_target_names(stmt.target))
        return set()

    @staticmethod
    def _flat_statements(body: List[ast.stmt]) -> Iterator[ast.stmt]:
        """Scope statements in source order; nested defs yielded, not entered."""
        stack = list(reversed(body))
        while stack:
            stmt = stack.pop()
            yield stmt
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            for field_body in (getattr(stmt, "body", None),
                               getattr(stmt, "orelse", None),
                               getattr(stmt, "finalbody", None)):
                if field_body:
                    stack.extend(reversed(field_body))
            for handler in getattr(stmt, "handlers", ()) or ():
                stack.extend(reversed(handler.body))
            for case in getattr(stmt, "cases", ()) or ():
                stack.extend(reversed(case.body))
