"""Exception discipline: no silent failure on the decode path.

Graceful degradation (PR 1) is a feature *because* every fault is visible:
a draft fault logs a structured event, counts on the
:class:`~repro.decoding.metrics.DecodeRecord`, and degrades the session.
A bare ``except`` or a broad ``except Exception`` that neither re-raises
nor emits a structured log turns that into silent data loss.  Three
checks:

* **bare except** — always an error (catches ``KeyboardInterrupt`` too);
* **broad except** (``Exception``/``BaseException``) — allowed only when
  the handler visibly accounts for the fault: a structured log call
  (``logger.warning/error/exception/critical(..., extra=...)`` or the
  :func:`repro.obs.logsetup.log_exception` helper), a
  ``traceback.format_exc``/``print_exc`` capture, or an unconditional
  re-raise as the handler's last statement;
* **swallowed CheckpointError** — a handler catching ``CheckpointError``
  whose body is only ``pass``/``...``/``continue``/``break`` discards an
  integrity failure on the fault-tolerance path.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..astutil import call_name, dotted_name
from ..framework import Rule, register
from ..project import ModuleInfo, Project

__all__ = ["ExceptionDisciplineRule"]

BROAD_NAMES = {"Exception", "BaseException"}
#: Logger method names that count as structured logging when passed extra=.
LOG_METHODS = {"debug", "info", "warning", "error", "exception", "critical"}
#: Call names that always count as structured fault handling.
STRUCTURED_CALLS = {"log_exception", "format_exc", "print_exc"}


def _exception_names(handler: ast.ExceptHandler):
    """Exception type names a handler catches (tuple types unpacked)."""
    node = handler.type
    if node is None:
        return []
    nodes = node.elts if isinstance(node, ast.Tuple) else [node]
    names = []
    for n in nodes:
        dotted = dotted_name(n)
        if dotted is not None:
            names.append(dotted.split(".")[-1])
    return names


def _is_structured_log(node: ast.Call) -> bool:
    name = call_name(node)
    if name in STRUCTURED_CALLS:
        return True
    if name in LOG_METHODS and isinstance(node.func, ast.Attribute):
        # `.exception()` attaches the traceback by itself; the other levels
        # need structured context via extra=.
        if name == "exception":
            return True
        return any(kw.arg == "extra" for kw in node.keywords)
    return False


def _handler_accounts_for_fault(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Call) and _is_structured_log(node):
            return True
    last = handler.body[-1]
    return isinstance(last, ast.Raise)


def _body_is_noop(handler: ast.ExceptHandler) -> bool:
    for stmt in handler.body:
        if isinstance(stmt, (ast.Pass, ast.Continue, ast.Break)):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # `...` or a bare docstring
        return False
    return True


@register
class ExceptionDisciplineRule(Rule):
    """Bare/broad excepts must log structurally or re-raise; no swallowed
    CheckpointError."""

    rule_id = "except-discipline"
    description = (
        "no bare except; broad `except Exception` must structurally log "
        "(extra= / log_exception / traceback) or end in re-raise; "
        "CheckpointError must never be swallowed"
    )
    fix_hint = (
        "call repro.obs.logsetup.log_exception(logger, event, exc, ...) in "
        "the handler (or narrow the exception type / re-raise)"
    )

    def check_module(self, module: ModuleInfo, project: Project) -> Iterator:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Try):
                continue
            for handler in node.handlers:
                yield from self._check_handler(module, handler)

    def _check_handler(self, module: ModuleInfo, handler: ast.ExceptHandler) -> Iterator:
        names = _exception_names(handler)
        if handler.type is None:
            yield self.finding(
                module, handler.lineno,
                "bare except: catches everything including KeyboardInterrupt",
                fix_hint="name the exception types you expect, broadest "
                         "`except Exception` with structured logging",
            )
            return
        if any(n in BROAD_NAMES for n in names):
            if not _handler_accounts_for_fault(handler):
                yield self.finding(
                    module, handler.lineno,
                    "broad `except Exception` without structured logging or "
                    "terminal re-raise: the fault disappears",
                )
        if "CheckpointError" in names and _body_is_noop(handler):
            yield self.finding(
                module, handler.lineno,
                "swallowed CheckpointError: an integrity failure is discarded "
                "without logging, quarantine, or re-raise",
                fix_hint="quarantine/rebuild the artifact or re-raise; see "
                         "docs/robustness.md",
            )
