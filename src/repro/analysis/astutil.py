"""Small AST helpers shared by the rules."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

__all__ = ["dotted_name", "dotted_tail", "walk_functions", "call_name"]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None.

    Call nodes inside the chain break it (``f().x`` has no static dotted
    name), which is the conservative behaviour every rule wants.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def dotted_tail(node: ast.AST, n: int = 2) -> Optional[str]:
    """Last ``n`` components of the chain (``time.time`` from ``t.time.time``)."""
    name = dotted_name(node)
    if name is None:
        return None
    return ".".join(name.split(".")[-n:])


def call_name(node: ast.Call) -> Optional[str]:
    """Trailing identifier of the called function (``foo`` for ``a.b.foo()``)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def walk_functions(tree: ast.AST) -> Iterator[Tuple[ast.AST, List[ast.stmt]]]:
    """Yield ``(scope_node, body)`` for the module and every function in it."""
    if isinstance(tree, ast.Module):
        yield tree, tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, node.body
