"""Shared utilities: deterministic RNG streams and clocks."""

from .rng import derive, seed_sequence
from .timing import SimulatedClock, WallTimer

__all__ = ["derive", "seed_sequence", "SimulatedClock", "WallTimer"]
