"""Shared utilities: deterministic RNG streams, clocks, arena buffers."""

from .arena import MIN_CAPACITY, Arena, ArenaStats, combined_stats
from .rng import derive, seed_sequence
from .timing import SimulatedClock, WallTimer

__all__ = [
    "derive",
    "seed_sequence",
    "SimulatedClock",
    "WallTimer",
    "Arena",
    "ArenaStats",
    "MIN_CAPACITY",
    "combined_stats",
]
