"""Clocks: real wall time and the simulated latency clock.

Speculative-decoding speedups on 1M-parameter numpy models do not reflect
7B-on-GPU behaviour, so the benchmark harness charges time to a
:class:`SimulatedClock` using the calibrated cost model in
:mod:`repro.decoding.cost_model`, while also keeping real wall time for
reference.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict

__all__ = ["SimulatedClock", "WallTimer"]


@dataclass
class SimulatedClock:
    """Accumulates simulated time, broken down by named category.

    Units are whatever the caller charges consistently — the benchmark
    harness uses seconds; :class:`repro.decoding.metrics.DecodeRecord`
    embeds one charged in cost-model milliseconds per pipeline phase.
    """

    total: float = 0.0
    by_category: Dict[str, float] = field(default_factory=dict)

    def charge(self, seconds: float, category: str = "other") -> None:
        if seconds < 0:
            raise ValueError(f"cannot charge negative time: {seconds}")
        self.total += seconds
        self.by_category[category] = self.by_category.get(category, 0.0) + seconds

    def reset(self) -> None:
        self.total = 0.0
        self.by_category.clear()


class WallTimer:
    """Context manager measuring wall time in seconds."""

    def __init__(self) -> None:
        self.elapsed: float = 0.0

    def __enter__(self) -> "WallTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._start

    def split(self) -> float:
        """Wall seconds elapsed so far, without stopping the timer.

        Used for intermediate marks inside the timed block — e.g. the
        engine stamps time-to-first-token right after prefill commits.
        """
        return time.perf_counter() - self._start
