"""Zero-copy KV arenas: preallocated storage for the decode hot path.

The naive caches paid O(T) ``np.concatenate`` work on *every* appended
token and a slice-copy on every rollback — O(T^2) per sequence, times the
batch width in the serving scheduler.  This module provides the storage
layer that removes both costs:

* :class:`Arena` — an amortized-doubling buffer growing along one axis.
  Appends memcpy only the new tokens into preallocated slack; truncation
  (draft rollback) is a pointer decrement; reads return **cached
  zero-copy views** that stay identity-stable until the next mutation.
* **Copy-on-write forking** (:meth:`Arena.fork`) — a fork shares the
  backing buffer in O(1).  The fork privatizes itself on its first write;
  the original keeps appending into shared slack (always beyond every
  fork's visible range) and only pays a copy if it rolls back *below* a
  fork's snapshot length and then appends.  This is what makes
  ``KVCache.clone()`` cheap for read-mostly verification snapshots.
* :class:`ArenaStats` — per-cache byte/grow/peak accounting, mirrored
  into the process :class:`~repro.obs.metrics.MetricsRegistry`
  (``kv_arena.bytes_copied_total``, ``kv_arena.grow_events_total``,
  ``kv_arena.peak_tokens``) so ``python -m repro.obs summarize`` can show
  the memory story next to the per-phase wall table.

Growth policy: capacities start at :data:`MIN_CAPACITY` tokens and double
until they fit the request, so total relocation work over a sequence of
appends is O(T) — amortized O(1) per token.

This module lives in ``repro.utils`` (below both ``repro.models`` and
``repro.core``) so either cache can build on it without an import cycle;
``repro.core.kv_arena`` re-exports it as the documented public surface.
See ``docs/performance.md`` for the full design discussion.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..errors import ShapeError
from ..obs.metrics import get_registry
from ..obs.profile import OP_ARENA_COPY, OP_ARENA_VIEW, PROFILER as _PROFILER

__all__ = ["Arena", "ArenaStats", "MIN_CAPACITY", "combined_stats"]

#: Smallest capacity (in tokens along the grow axis) an arena allocates.
MIN_CAPACITY = 64


@dataclass
class ArenaStats:
    """Copy/growth accounting for one cache's arenas (shared across them).

    ``bytes_copied`` counts every byte the arenas memcpy'd: the
    unavoidable new-token writes plus the occasional doubling/COW
    relocations.  ``grow_events`` counts buffer reallocations, and
    ``peak_tokens`` is the longest any arena ever got.  The same three
    numbers are mirrored into the metrics registry so cross-request
    aggregates exist without threading stats objects around.
    """

    bytes_copied: int = 0
    grow_events: int = 0
    peak_tokens: int = 0

    def add(self, other: "ArenaStats") -> "ArenaStats":
        """Accumulate ``other`` into self (peak is a max); returns self."""
        self.bytes_copied += other.bytes_copied
        self.grow_events += other.grow_events
        self.peak_tokens = max(self.peak_tokens, other.peak_tokens)
        return self


def combined_stats(*caches: object) -> ArenaStats:
    """Sum ``arena_stats()`` over caches, skipping ones without arenas.

    Tolerant by design: reference (non-arena) cache implementations and
    ``None`` slots contribute nothing, so instrumentation call sites never
    need to care which storage backs a session.
    """
    total = ArenaStats()
    for cache in caches:
        getter = getattr(cache, "arena_stats", None)
        if getter is not None:
            total.add(getter())
    return total


class _Store:
    """Refcounted backing buffer shared between an arena and its COW forks.

    ``frozen_len`` is the high-water mark of every fork's snapshot length:
    slots below it may be visible to another sharer and must never be
    rewritten in place while ``refs > 1``.
    """

    __slots__ = ("buf", "refs", "frozen_len")

    def __init__(self, buf: np.ndarray) -> None:
        self.buf = buf
        self.refs = 1
        self.frozen_len = 0


def _grown_capacity(current: int, needed: int) -> int:
    """Next capacity: double from ``current`` until ``needed`` fits."""
    cap = max(current, MIN_CAPACITY)
    while cap < needed:
        cap *= 2
    return cap


class Arena:
    """Amortized-doubling append buffer growing along one axis.

    Shape is fixed except along ``axis`` (the token axis).  ``view()``
    returns the live prefix as a cached numpy view — no data is copied,
    and the same ndarray object comes back until a mutation invalidates
    it, which is what lets callers assert "no copy happened between my
    reads".
    """

    __slots__ = (
        "_store", "_len", "_axis", "_owner", "_stats", "_view",
        "_reg", "_ctr_bytes", "_gauge_peak",
    )

    def __init__(
        self,
        item_shape: Tuple[int, ...],
        axis: int,
        dtype: np.dtype,
        stats: Optional[ArenaStats] = None,
        capacity: int = MIN_CAPACITY,
    ) -> None:
        shape = list(item_shape)
        shape[axis] = max(int(capacity), MIN_CAPACITY)
        self._store = _Store(np.empty(tuple(shape), dtype=dtype))
        self._len = 0
        self._axis = axis
        self._owner = True
        self._stats = stats if stats is not None else ArenaStats()
        self._view: Optional[np.ndarray] = None
        self._reg = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Live tokens along the grow axis."""
        return self._len

    @property
    def capacity(self) -> int:
        """Allocated slots along the grow axis."""
        return self._store.buf.shape[self._axis]

    @property
    def dtype(self) -> np.dtype:
        """Element dtype of the backing buffer."""
        return self._store.buf.dtype

    @property
    def stats(self) -> ArenaStats:
        """The (possibly shared) accounting object this arena feeds."""
        return self._stats

    @property
    def shared(self) -> bool:
        """True while the backing buffer is shared with a COW fork."""
        return self._store.refs > 1

    def _slice(self, n: int) -> Tuple[slice, ...]:
        """Index tuple selecting the first ``n`` tokens along the axis."""
        index = [slice(None)] * self._store.buf.ndim
        index[self._axis] = slice(0, n)
        return tuple(index)

    def _metrics(self):
        """Cached (bytes counter, peak gauge) handles for the hot append path.

        Appends run per request per layer per round, so re-resolving the
        metric objects through the registry's name->object map (a lock
        plus a dict probe each) on every call is measurable.  The cache
        is keyed on registry identity so ``set_registry`` swaps in tests
        still take effect.
        """
        registry = get_registry()
        if registry is not self._reg:
            self._reg = registry
            self._ctr_bytes = registry.counter("kv_arena.bytes_copied_total")
            self._gauge_peak = registry.gauge("kv_arena.peak_tokens")
        return self._ctr_bytes, self._gauge_peak

    def view(self) -> np.ndarray:
        """Zero-copy view of the live prefix; cached until a mutation.

        The returned array aliases arena storage: it is valid until the
        next ``append``/``truncate`` on this arena, after which its
        contents are undefined (rollback + append rewrites slots in
        place).  Copy it if you need to hold it across mutations.
        """
        if self._view is None:
            if _PROFILER.enabled:
                begin = time.perf_counter()
                self._view = self._store.buf[self._slice(self._len)]
                _PROFILER.record(OP_ARENA_VIEW,
                                 1000.0 * (time.perf_counter() - begin))
            else:
                self._view = self._store.buf[self._slice(self._len)]
        return self._view

    # ------------------------------------------------------------------
    def _relocate(self, capacity: int) -> None:
        """Move the live prefix into a fresh private buffer (grow or COW split)."""
        shape = list(self._store.buf.shape)
        shape[self._axis] = capacity
        fresh = np.empty(tuple(shape), dtype=self._store.buf.dtype)
        live = self._store.buf[self._slice(self._len)]
        if _PROFILER.enabled:
            begin = time.perf_counter()
            fresh[self._slice(self._len)] = live
            _PROFILER.record(OP_ARENA_COPY,
                             1000.0 * (time.perf_counter() - begin),
                             nbytes=live.nbytes)
        else:
            fresh[self._slice(self._len)] = live
        if self._store.refs > 1:
            self._store.refs -= 1
            self._store = _Store(fresh)
        else:
            self._store.buf = fresh
            self._store.frozen_len = 0
        self._owner = True
        moved = live.nbytes
        self._stats.bytes_copied += moved
        self._stats.grow_events += 1
        registry = get_registry()
        registry.counter("kv_arena.grow_events_total").inc()
        registry.counter("kv_arena.bytes_copied_total").inc(moved)

    def append(self, array: np.ndarray) -> None:
        """Memcpy ``array`` (same shape off-axis) into preallocated slack."""
        array = np.asarray(array)
        if array.ndim != self._store.buf.ndim:
            raise ShapeError(
                f"arena append ndim {array.ndim} != {self._store.buf.ndim}"
            )
        expect = self._store.buf.shape
        got = array.shape
        if got[: self._axis] != expect[: self._axis] or got[self._axis + 1:] != expect[self._axis + 1:]:
            raise ShapeError(
                f"arena append shape {array.shape} incompatible with "
                f"item shape {tuple(expect)} (axis {self._axis} free)"
            )
        n_new = array.shape[self._axis]
        need = self._len + n_new
        store = self._store
        unsafe_shared = store.refs > 1 and (
            not self._owner or self._len < store.frozen_len
        )
        if need > self.capacity or unsafe_shared:
            self._relocate(_grown_capacity(self.capacity, need))
        index = [slice(None)] * self._store.buf.ndim
        index[self._axis] = slice(self._len, need)
        if _PROFILER.enabled:
            begin = time.perf_counter()
            self._store.buf[tuple(index)] = array
            _PROFILER.record(OP_ARENA_COPY,
                             1000.0 * (time.perf_counter() - begin),
                             nbytes=array.nbytes)
        else:
            self._store.buf[tuple(index)] = array
        self._len = need
        self._view = None
        self._stats.bytes_copied += array.nbytes
        self._stats.peak_tokens = max(self._stats.peak_tokens, need)
        ctr_bytes, gauge_peak = self._metrics()
        ctr_bytes.inc(array.nbytes)
        if need > gauge_peak.value:
            gauge_peak.set(need)

    def truncate(self, new_len: int) -> None:
        """Drop tokens beyond ``new_len``: a pointer decrement, no copy."""
        if not 0 <= new_len <= self._len:
            raise ShapeError(
                f"cannot truncate arena of len {self._len} to {new_len}"
            )
        if new_len != self._len:
            self._len = new_len
            self._view = None

    def fork(self, stats: Optional[ArenaStats] = None) -> "Arena":
        """O(1) copy-on-write fork sharing this arena's storage.

        The fork reads the current prefix for free and privatizes itself
        on its first ``append``; this arena keeps in-place append rights
        for slots beyond the fork's snapshot length.  ``stats`` lets the
        forking cache route the fork's accounting into its own
        :class:`ArenaStats`.
        """
        store = self._store
        store.refs += 1
        store.frozen_len = max(store.frozen_len, self._len)
        fork = Arena.__new__(Arena)
        fork._store = store
        fork._len = self._len
        fork._axis = self._axis
        fork._owner = False
        fork._stats = stats if stats is not None else ArenaStats()
        fork._view = None
        fork._reg = None
        return fork
