"""Deterministic RNG management.

Every stochastic component in the library takes an explicit
``numpy.random.Generator``.  :func:`derive` produces independent child
generators from a root seed and a string tag, so "the tokenizer corpus",
"model init", and "sampling" streams never interact.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive", "seed_sequence"]


def seed_sequence(seed: int, tag: str = "") -> np.random.SeedSequence:
    """Build a SeedSequence from an integer seed and an optional tag."""
    digest = hashlib.sha256(f"{seed}:{tag}".encode("utf-8")).digest()
    entropy = int.from_bytes(digest[:16], "little")
    return np.random.SeedSequence(entropy)


def derive(seed: int, tag: str = "") -> np.random.Generator:
    """Return a Generator deterministically derived from (seed, tag)."""
    return np.random.default_rng(seed_sequence(seed, tag))
