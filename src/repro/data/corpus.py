"""Text corpora: vocabulary builder and the text-only pretraining stream.

``build_reference_texts`` enumerates enough template output to cover the
entire synthetic language, so the tokenizer vocabulary is closed (no
``<unk>`` at train or eval time).  ``text_only_corpus`` is the RedPajama
stand-in used to pretrain the small language-only draft models: it contains
fluent sentences *about* scenes but is never paired with an image, so a model
trained on it learns syntax and plausible attribute words without any way to
know which attribute is correct for a particular image.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..utils.rng import derive
from . import language
from .scenes import COLORS, GRID_POSITIONS, SHAPES, SIZES, sample_scene

__all__ = ["build_reference_texts", "text_only_corpus", "BASE_WORDS"]

#: Every word the templates can emit, listed explicitly so vocabulary
#: coverage does not depend on sampling luck.
BASE_WORDS: List[str] = sorted(
    set(
        list(SHAPES)
        + list(COLORS)
        + list(SIZES)
        + [w for name, _ in GRID_POSITIONS for w in name.split()]
        + list(language.NUMBER_WORDS)
        + [
            "a", "b", "the", "image", "shows", "contains", "in", "is", "are",
            "there", "and", "of", "to", "i", "can", "see", "that", "makes",
            "what", "where", "how", "which", "many", "big", "color", "object",
            "objects", "describe", "briefly", "detail", "detailed", "write",
            "short", "caption", "for", "shown", "give", "description", "every",
            "question", "choices", "answer", "so", "yes", "no", "above", "below",
            "left", "right",
        ]
    )
)


def build_reference_texts(seed: int = 0, n_scenes: int = 200) -> List[str]:
    """Texts that jointly cover the whole synthetic language.

    Used to build the tokenizer vocabulary; includes one synthetic sentence
    enumerating every base word plus sampled template outputs.
    """
    rng = derive(seed, "corpus:reference")
    texts: List[str] = [" ".join(BASE_WORDS)]
    generators = (
        language.caption_sample,
        language.conversation_sample,
        language.detail_sample,
        language.reasoning_sample,
        language.scienceqa_sample,
    )
    for _ in range(n_scenes):
        scene = sample_scene(rng)
        for gen in generators:
            prompt, response = gen(scene, rng)
            texts.append(f"{prompt} {response}")
    return texts


def text_only_corpus(seed: int = 0, n_documents: int = 500) -> List[str]:
    """Text-only pretraining stream (RedPajama/OIG stand-in).

    Each document is a prompt/response pair rendered from a random scene that
    is *not* shipped with the text, so a language model can learn the
    template grammar and the marginal distribution of attribute words, but
    nothing about any particular image.
    """
    rng = derive(seed, "corpus:text-only")
    generators = (
        language.caption_sample,
        language.conversation_sample,
        language.detail_sample,
        language.reasoning_sample,
        language.scienceqa_sample,
    )
    docs: List[str] = []
    for i in range(n_documents):
        scene = sample_scene(rng)
        gen = generators[i % len(generators)]
        prompt, response = gen(scene, rng)
        docs.append(f"{prompt} {response}")
    return docs
