"""Rasteriser: scenes -> RGB pixel arrays.

The renderer produces ``(H, W, 3)`` float32 arrays in ``[0, 1]`` (default
48x48).  Each grid cell is 16x16 pixels and holds one shape drawn from an
analytic mask (48x48 by default, 16-pixel cells).  This is the stand-in
for COCO/LLaVA images: small enough for a numpy ViT, rich enough that
shape/color/size/position are all recoverable only from pixels.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .scenes import COLORS, Scene

__all__ = ["ImageRenderer", "DEFAULT_IMAGE_SIZE"]

DEFAULT_IMAGE_SIZE = 48
_BACKGROUND = 0.06


def _shape_mask(shape: str, cell: int, radius: float) -> np.ndarray:
    """Boolean mask of a shape centred in a ``cell x cell`` tile."""
    c = (cell - 1) / 2.0
    ys, xs = np.mgrid[0:cell, 0:cell].astype(np.float64)
    dy, dx = ys - c, xs - c
    if shape == "circle":
        return dx * dx + dy * dy <= radius * radius
    if shape == "square":
        return (np.abs(dx) <= radius) & (np.abs(dy) <= radius)
    if shape == "triangle":
        # Upward triangle: widens linearly towards the bottom edge.
        return (dy >= -radius) & (dy <= radius) & (np.abs(dx) <= (dy + radius) / 2.0)
    if shape == "diamond":
        return np.abs(dx) + np.abs(dy) <= radius
    if shape == "cross":
        bar = max(1.0, radius / 2.0)
        return ((np.abs(dx) <= bar) & (np.abs(dy) <= radius)) | (
            (np.abs(dy) <= bar) & (np.abs(dx) <= radius)
        )
    if shape == "star":
        # Plus of diagonals: union of the two diagonal bars.
        bar = max(1.0, radius / 2.0)
        return ((np.abs(dx - dy) <= bar) | (np.abs(dx + dy) <= bar)) & (
            (np.abs(dx) <= radius) & (np.abs(dy) <= radius)
        )
    raise ValueError(f"unknown shape {shape!r}")


class ImageRenderer:
    """Deterministic scene -> image rasteriser."""

    def __init__(self, image_size: int = DEFAULT_IMAGE_SIZE) -> None:
        if image_size % 3 != 0:
            raise ValueError(f"image_size must be divisible by 3, got {image_size}")
        self.image_size = image_size
        self.cell = image_size // 3

    @property
    def shape(self) -> Tuple[int, int, int]:
        return (self.image_size, self.image_size, 3)

    def radius_for(self, size: str) -> float:
        """Pixel radius for a size word, relative to the cell size."""
        if size == "small":
            return self.cell * 0.18
        if size == "large":
            return self.cell * 0.38
        raise ValueError(f"unknown size {size!r}")

    def render(self, scene: Scene) -> np.ndarray:
        """Render ``scene`` to an ``(H, W, 3)`` float32 array in [0, 1]."""
        img = np.full(self.shape, _BACKGROUND, dtype=np.float32)
        for obj in scene:
            row, col = obj.cell
            mask = _shape_mask(obj.shape, self.cell, self.radius_for(obj.size))
            rgb = np.asarray(COLORS[obj.color], dtype=np.float32)
            tile = img[
                row * self.cell : (row + 1) * self.cell,
                col * self.cell : (col + 1) * self.cell,
            ]
            tile[mask] = rgb
        return img
