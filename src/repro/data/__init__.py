"""Synthetic multimodal data: scenes, images, language, tasks, corpora."""

from .ascii_art import image_to_ascii, scene_summary
from .corpus import BASE_WORDS, build_reference_texts, text_only_corpus
from .dataloader import (
    IGNORE_INDEX,
    MultimodalBatch,
    collate_multimodal,
    iter_batches,
    pack_documents,
)
from .images import DEFAULT_IMAGE_SIZE, ImageRenderer
from .language import (
    NUMBER_WORDS,
    caption_sample,
    conversation_sample,
    detail_sample,
    reasoning_sample,
    scienceqa_sample,
)
from .scenes import COLORS, GRID_POSITIONS, SHAPES, SIZES, Scene, SceneObject, sample_scene
from .tasks import DATASET_NAMES, MultimodalSample, TaskDataset, make_dataset

__all__ = [
    "Scene",
    "SceneObject",
    "sample_scene",
    "SHAPES",
    "COLORS",
    "SIZES",
    "GRID_POSITIONS",
    "ImageRenderer",
    "DEFAULT_IMAGE_SIZE",
    "NUMBER_WORDS",
    "caption_sample",
    "conversation_sample",
    "detail_sample",
    "reasoning_sample",
    "scienceqa_sample",
    "MultimodalSample",
    "TaskDataset",
    "make_dataset",
    "DATASET_NAMES",
    "build_reference_texts",
    "text_only_corpus",
    "BASE_WORDS",
    "IGNORE_INDEX",
    "MultimodalBatch",
    "collate_multimodal",
    "pack_documents",
    "iter_batches",
    "image_to_ascii",
    "scene_summary",
]
