"""Task datasets: COCO-sim captioning, LLaVA-Bench-sim mix, ScienceQA-sim.

Every dataset is a deterministic function of ``(seed, size)`` and yields
:class:`MultimodalSample` records — an image array plus a prompt/response
pair grounded in the same scene.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from ..utils.rng import derive
from . import language
from .images import DEFAULT_IMAGE_SIZE, ImageRenderer
from .scenes import Scene, sample_scene

__all__ = [
    "MultimodalSample",
    "TaskDataset",
    "make_dataset",
    "DATASET_BUILDERS",
    "DATASET_NAMES",
]

Generator = Callable[[Scene, np.random.Generator], Tuple[str, str]]

_GENERATORS: Dict[str, Generator] = {
    "caption": language.caption_sample,
    "conversation": language.conversation_sample,
    "detail": language.detail_sample,
    "reasoning": language.reasoning_sample,
    "scienceqa": language.scienceqa_sample,
}


@dataclass(frozen=True)
class MultimodalSample:
    """One evaluation/training example."""

    image: np.ndarray
    prompt: str
    response: str
    task: str
    scene: Scene

    def full_text(self) -> str:
        """Prompt and response as one string (no image marker)."""
        return f"{self.prompt} {self.response}"


@dataclass
class TaskDataset:
    """A named, finite, deterministic list of multimodal samples."""

    name: str
    samples: List[MultimodalSample] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self):
        return iter(self.samples)

    def __getitem__(self, idx: int) -> MultimodalSample:
        return self.samples[idx]

    def subset(self, n: int) -> "TaskDataset":
        return TaskDataset(name=self.name, samples=self.samples[:n])


def _build(
    name: str,
    task_mix: Sequence[str],
    size: int,
    seed: int,
    image_size: int,
) -> TaskDataset:
    rng = derive(seed, f"dataset:{name}")
    renderer = ImageRenderer(image_size)
    samples: List[MultimodalSample] = []
    for i in range(size):
        scene = sample_scene(rng)
        task = task_mix[i % len(task_mix)]
        prompt, response = _GENERATORS[task](scene, rng)
        samples.append(
            MultimodalSample(
                image=renderer.render(scene),
                prompt=prompt,
                response=response,
                task=task,
                scene=scene,
            )
        )
    return TaskDataset(name=name, samples=samples)


def _coco_sim(size: int, seed: int, image_size: int) -> TaskDataset:
    return _build("coco-sim", ("caption",), size, seed, image_size)


def _llava_bench_sim(size: int, seed: int, image_size: int) -> TaskDataset:
    return _build(
        "llava-bench-sim", ("conversation", "detail", "reasoning"), size, seed, image_size
    )


def _scienceqa_sim(size: int, seed: int, image_size: int) -> TaskDataset:
    return _build("scienceqa-sim", ("scienceqa",), size, seed, image_size)


DATASET_BUILDERS: Dict[str, Callable[[int, int, int], TaskDataset]] = {
    "coco-sim": _coco_sim,
    "llava-bench-sim": _llava_bench_sim,
    "scienceqa-sim": _scienceqa_sim,
}

DATASET_NAMES: Tuple[str, ...] = tuple(DATASET_BUILDERS)


def make_dataset(name: str, size: int, seed: int = 0, image_size: int = DEFAULT_IMAGE_SIZE) -> TaskDataset:
    """Build one of the three evaluation datasets by name."""
    if name not in DATASET_BUILDERS:
        raise KeyError(f"unknown dataset {name!r}; choose from {sorted(DATASET_BUILDERS)}")
    if size <= 0:
        raise ValueError(f"dataset size must be positive, got {size}")
    return DATASET_BUILDERS[name](size, seed, image_size)
