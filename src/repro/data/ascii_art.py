"""Terminal rendering of scene images (for the examples).

Maps each pixel block to a colored unicode glyph so `examples/vqa_chat.py`
can show what the model is looking at without any image viewer.
"""

from __future__ import annotations

import numpy as np

from .scenes import COLORS, Scene

__all__ = ["image_to_ascii", "scene_summary"]

_GLYPHS = " .:-=+*#%@"


def image_to_ascii(image: np.ndarray, width: int = 36) -> str:
    """Render an ``(H, W, 3)`` image as an ASCII block.

    Uses luminance for glyph choice and the first letter of the nearest
    palette color for colored pixels, so shapes remain identifiable.
    """
    image = np.asarray(image, dtype=np.float32)
    h, w, _ = image.shape
    step = max(1, w // width)
    rows = []
    palette = {name: np.asarray(rgb, dtype=np.float32) for name, rgb in COLORS.items()}
    background = image.reshape(-1, 3).min(axis=0)
    for y in range(0, h, step):
        row = []
        for x in range(0, w, step):
            block = image[y : y + step, x : x + step].reshape(-1, 3).mean(axis=0)
            lum = float(block.mean())
            if np.abs(block - background).sum() < 0.15:
                row.append(" ")
                continue
            nearest = min(palette, key=lambda name: float(np.abs(palette[name] - block).sum()))
            glyph_idx = min(len(_GLYPHS) - 1, int(lum * len(_GLYPHS)))
            row.append(nearest[0] if lum > 0.2 else _GLYPHS[glyph_idx])
        rows.append("".join(row))
    return "\n".join(rows)


def scene_summary(scene: Scene) -> str:
    """One-line human-readable description of a scene."""
    return "; ".join(f"{obj.phrase()} in the {obj.position}" for obj in scene)
